// Example: size a deployment for energy-neutral operation.
//
// "How big a cell and how big a supercap does my node need?" — answered
// with the library's own models for a few report rates and scenarios.
// The sizing queries are independent, so they fan out across the
// focv_runtime work-stealing pool (pass `--jobs N` to pick the worker
// count); results are printed in query order regardless of schedule.
//
//   ./build/examples/sizing_tool [--jobs N] [--controller SPEC]
//                                [--trace out.json] [--metrics out.jsonl]
//                                [--snapshot out.json] [--flight out.json]
//
// --controller sizes for any registered MPPT technique instead of the
// paper's S&H FOCV, e.g. `--controller "graddesc[lr=0.1]"` (grammar and
// catalog: mppt/registry.hpp). The telemetry flags are the shared
// obs::CliTelemetry set: --trace captures the fan-out as Chrome
// trace_event JSON (one span per sizing query plus the node-tier spans
// underneath), --metrics dumps the focv-obs/v1 JSONL stream, --snapshot
// writes focv-obs-snapshot/v1 JSON + Prometheus text at PATH.prom, and
// --flight arms the anomaly flight recorder.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "node/sizing.hpp"
#include "obs/cli.hpp"
#include "obs/obs.hpp"
#include "pv/cell_library.hpp"
#include "runtime/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace focv;

  int jobs = 0;  // 0 = one worker per hardware thread
  obs::CliTelemetry telemetry;
  std::string controller_spec = "focv";  // the paper's technique by default
  for (int i = 1; i < argc; ++i) {
    if (telemetry.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) jobs = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--controller") == 0 && i + 1 < argc) controller_spec = argv[++i];
  }
  telemetry.begin();

  // Fail fast (with the registry's token-quoting message) before the
  // pool fans out.
  core::register_paper_controller();
  try {
    (void)mppt::Registry::instance().resolve(controller_spec);
  } catch (const mppt::SpecError& e) {
    std::fprintf(stderr, "sizing_tool: %s\n", e.what());
    return 2;
  }

  const env::LightTrace office = env::office_desk_mixed();
  const env::LightTrace mobile = env::semi_mobile_day();

  struct Case {
    const char* name;
    const env::LightTrace* trace;
    double report_period;
  };
  const Case cases[] = {
      {"office desk", &office, 600.0}, {"office desk", &office, 120.0},
      {"office desk", &office, 30.0},  {"semi-mobile", &mobile, 120.0},
  };
  const std::size_t n_cases = std::size(cases);

  // One shared immutable query prototype per case; every run clones its
  // controller internally, so the fan-out needs no synchronisation.
  std::vector<node::SizingResult> results(n_cases);
  runtime::ThreadPool pool(jobs);
  pool.parallel_for(n_cases, [&](std::size_t i) {
    std::optional<obs::Tracer::Span> span;
    if (obs::enabled()) {
      span.emplace(obs::tracer().span("sizing_query", "sizing"));
      span->arg("scenario", cases[i].name);
      span->arg("report_period_s", cases[i].report_period);
    }
    node::SizingQuery query;
    query.use_cell(pv::sanyo_am1815());
    query.use_scenario(*cases[i].trace);
    query.use_controller(controller_spec);
    query.load.report_period = cases[i].report_period;
    results[i] = node::size_for_energy_neutrality(query);
    if (span) span->arg("feasible", results[i].feasible ? 1.0 : 0.0);
  });

  std::printf("controller: %s\n",
              mppt::Registry::instance().canonical(controller_spec).c_str());
  ConsoleTable table({"scenario", "report period", "cell area", "daily harvest",
                      "daily load", "storage"});
  for (std::size_t i = 0; i < n_cases; ++i) {
    const Case& cs = cases[i];
    const node::SizingResult& r = results[i];
    table.add_row(
        {cs.name, ConsoleTable::num(cs.report_period, 0) + " s",
         r.feasible ? ConsoleTable::num(r.area_factor * pv::sanyo_am1815().area_cm2(), 1) +
                          " cm^2"
                    : "infeasible",
         ConsoleTable::num(r.daily_harvest_j, 2) + " J",
         ConsoleTable::num(r.daily_load_j, 2) + " J",
         r.feasible ? ConsoleTable::num(r.storage_f_at_3v, 2) + " F @ 3 V" : "--"});
  }
  table.print(std::cout);

  std::printf(
      "\nReading: a single AM-1815 (25 cm^2) runs a 10-minute reporter on an office\n"
      "desk; tighter duty cycles scale the cell area and the ride-through storage.\n");

  if (telemetry.any()) {
    const runtime::ThreadPool::WorkerStats stats = pool.total_stats();
    std::printf("pool: %llu tasks executed, %llu stolen\n",
                static_cast<unsigned long long>(stats.executed),
                static_cast<unsigned long long>(stats.stolen));
  }
  telemetry.finish();
  return 0;
}
