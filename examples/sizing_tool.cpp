// Example: size a deployment for energy-neutral operation.
//
// "How big a cell and how big a supercap does my node need?" — answered
// with the library's own models for a few report rates and scenarios.
//
//   ./build/examples/sizing_tool
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "node/sizing.hpp"
#include "pv/cell_library.hpp"

int main() {
  using namespace focv;

  const env::LightTrace office = env::office_desk_mixed();
  const env::LightTrace mobile = env::semi_mobile_day();

  ConsoleTable table({"scenario", "report period", "cell area", "daily harvest",
                      "daily load", "storage"});
  struct Case {
    const char* name;
    const env::LightTrace* trace;
    double report_period;
  };
  const Case cases[] = {
      {"office desk", &office, 600.0}, {"office desk", &office, 120.0},
      {"office desk", &office, 30.0},  {"semi-mobile", &mobile, 120.0},
  };
  for (const Case& cs : cases) {
    auto controller = core::make_paper_controller();
    node::SizingQuery query;
    query.cell = &pv::sanyo_am1815();
    query.scenario = cs.trace;
    query.controller = &controller;
    query.load.report_period = cs.report_period;
    const node::SizingResult r = node::size_for_energy_neutrality(query);
    table.add_row(
        {cs.name, ConsoleTable::num(cs.report_period, 0) + " s",
         r.feasible ? ConsoleTable::num(r.area_factor * query.cell->area_cm2(), 1) + " cm^2"
                    : "infeasible",
         ConsoleTable::num(r.daily_harvest_j, 2) + " J",
         ConsoleTable::num(r.daily_load_j, 2) + " J",
         r.feasible ? ConsoleTable::num(r.storage_f_at_3v, 2) + " F @ 3 V" : "--"});
  }
  table.print(std::cout);

  std::printf(
      "\nReading: a single AM-1815 (25 cm^2) runs a 10-minute reporter on an office\n"
      "desk; tighter duty cycles scale the cell area and the ride-through storage.\n");
  return 0;
}
