// Example: circuit-level cold start from a completely dead system.
//
// Walks the Fig. 3 INIT path at 200 lux: the PV trickle-charges C1
// through D1, the threshold switch powers the MPPT rail, the astable
// fires its first PULSE and the first Voc measurement is taken --
// all simulated on the MNA circuit engine, not scripted.
//
//   ./build/examples/coldstart_demo [lux]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "circuit/transient.hpp"
#include "common/ascii_plot.hpp"
#include "core/netlists.hpp"
#include "pv/cell_library.hpp"

int main(int argc, char** argv) {
  using namespace focv;
  using namespace focv::circuit;

  const double lux = (argc > 1) ? std::atof(argv[1]) : 200.0;
  std::printf("cold-starting the Fig. 3 system at %.0f lux...\n", lux);

  Circuit ckt;
  pv::Conditions c;
  c.illuminance_lux = lux;
  const core::ColdStartNodes nodes =
      core::build_coldstart(ckt, pv::sanyo_am1815(), c, core::SystemSpec{});
  (void)nodes;

  TransientOptions opt;
  opt.t_stop = 10.0;
  opt.start_from_dc = false;  // truly dead: every capacitor empty
  opt.dt_initial = 1e-5;
  opt.dt_max = 0.05;
  opt.dv_step_max = 0.4;
  const Trace tr = transient_analyze(ckt, opt);

  std::vector<double> t, c1, rail, pulse;
  for (int i = 0; i <= 150; ++i) {
    const double ti = opt.t_stop * i / 150.0;
    t.push_back(ti);
    c1.push_back(tr.at("cs_c1", ti));
    rail.push_back(tr.at("cs_vdd", ti));
    pulse.push_back(tr.at("cs_ast_pulse", ti));
  }
  AsciiPlotOptions popt;
  popt.title = "Cold start at " + std::to_string(static_cast<int>(lux)) + " lux";
  popt.x_label = "time [s]";
  popt.y_label = "voltage [V]";
  ascii_plot(std::cout, {{t, c1, 'c', "C1 reservoir"},
                         {t, rail, 'r', "switched MPPT rail"},
                         {t, pulse, 'P', "PULSE"}},
             popt);

  const auto threshold = tr.crossing_times("cs_c1", 2.2, true);
  const auto first_pulse = tr.crossing_times("cs_ast_pulse", 1.0, true);
  if (!threshold.empty()) {
    std::printf("C1 reached the enable threshold at t = %.2f s\n", threshold[0]);
  } else {
    std::printf("C1 never reached the enable threshold (light level too low)\n");
  }
  if (!first_pulse.empty()) {
    std::printf("first PULSE (first Voc measurement) at t = %.2f s\n", first_pulse[0]);
  }
  return 0;
}
