// Example: drive the circuit engine from a SPICE-style text netlist.
//
// Reads a netlist (a file path as argv[1], or a built-in demo: the
// comparator relaxation oscillator at the heart of the paper's astable),
// runs a transient plus an AC sweep, and plots the results.
//
//   ./build/examples/netlist_playground [netlist.cir]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "circuit/ac_analysis.hpp"
#include "circuit/netlist_parser.hpp"
#include "circuit/transient.hpp"
#include "common/ascii_plot.hpp"

namespace {

// A fast (audio-rate) version of the paper's astable multivibrator.
constexpr const char* kDemoNetlist = R"(
* comparator relaxation oscillator (fast version of the paper's astable)
V1 vdd 0 DC 3.3
* hysteresis network: thresholds at Vcc/3 and 2*Vcc/3
Ra vdd ref 10k
Rb ref 0 10k
Rf out ref 10k
* timing RC
Rt out cap 10k
Ct cap 0 100n
* parasitics that make the regenerative flip solvable
Cref ref 0 10p
Cout out 0 22p
U1 ref cap out vdd 0 COMP GAIN=1e4 ROUT=1k
.end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace focv;
  using namespace focv::circuit;

  std::string text = kDemoNetlist;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file.good()) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << file.rdbuf();
    text = ss.str();
  }

  Circuit ckt;
  int devices = 0;
  try {
    devices = parse_netlist_string(text, ckt);
  } catch (const NetlistParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  std::printf("parsed %d devices, %d nodes\n", devices, ckt.node_count() - 1);

  // Transient.
  TransientOptions opt;
  opt.t_stop = 6e-3;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-8;
  opt.dv_step_max = 0.3;
  const Trace tr = transient_analyze(ckt, opt);
  std::printf("transient: %zu accepted steps to t = %.3g s\n", tr.size(), opt.t_stop);

  // Plot the first two node signals.
  std::vector<AsciiSeries> series;
  const char glyphs[] = {'*', '#', '+'};
  int plotted = 0;
  for (const auto& name : tr.signal_names()) {
    if (name.rfind("I(", 0) == 0 || name == "vdd") continue;
    std::vector<double> t_ms, v;
    for (int i = 0; i <= 140; ++i) {
      const double t = opt.t_stop * i / 140.0;
      t_ms.push_back(t * 1e3);
      v.push_back(tr.at(name, t));
    }
    series.push_back({t_ms, v, glyphs[plotted % 3], name});
    if (++plotted == 2) break;
  }
  AsciiPlotOptions popt;
  popt.title = "Transient";
  popt.x_label = "time [ms]";
  popt.y_label = "voltage [V]";
  ascii_plot(std::cout, series, popt);

  return 0;
}
