// Example: a whole WSN deployment, not a single desk.
//
// Builds a mixed fleet — window desks, corridor desks and an outdoor
// share, most nodes on the paper's S&H FOCV and the rest on the
// baseline techniques — and runs every node over the same day with
// per-node placement/tolerance/schedule heterogeneity. Prints the
// network-level energy report: energy-neutral fraction, per-policy
// tracking efficiency, downtime and the radio-burst coincidence the
// per-node phase jitter buys.
//
//   ./build/examples/fleet_demo [--nodes N] [--jobs J] [--hours H]
//                               [--seed S] [--json out.json]
//                               [--jsonl nodes.jsonl] [--timing]
//                               [--controller SPEC[:WEIGHT]]...
//                               [--trace/--metrics/--snapshot/--flight PATH]
//
// Repeat --controller to replace the default mixture with registry spec
// strings, e.g. `--controller "focv[k=0.55]:0.7" --controller graddesc`
// (weight defaults to 1; grammar and catalog: mppt/registry.hpp). The
// telemetry flags are the shared obs::CliTelemetry set — with them on,
// the fleet tier records chunk/axis-run spans, fleet.soa.* batch
// counters and per-node efficiency histograms.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "env/profiles.hpp"
#include "fleet/fleet.hpp"
#include "mppt/registry.hpp"
#include "obs/cli.hpp"
#include "pv/cell_library.hpp"

int main(int argc, char** argv) {
  using namespace focv;

  std::size_t nodes = 200;
  int jobs = 0;
  double hours = 24.0;
  std::uint64_t seed = 2024;
  std::string json_path;
  std::string jsonl_path;
  bool timing = false;
  std::vector<std::pair<std::string, double>> mixture;  // --controller SPEC[:WEIGHT]
  obs::CliTelemetry telemetry;
  for (int i = 1; i < argc; ++i) {
    if (telemetry.consume(argc, argv, i)) continue;
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") {
      nodes = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--jobs") {
      jobs = std::atoi(next());
    } else if (arg == "--hours") {
      hours = std::atof(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--jsonl") {
      jsonl_path = next();
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--controller") {
      // SPEC[:WEIGHT] — ':' cannot occur in the spec grammar, so the
      // last one (if any) separates the mixture weight.
      std::string token = next();
      double weight = 1.0;
      const std::size_t colon = token.rfind(':');
      if (colon != std::string::npos) {
        weight = std::atof(token.c_str() + colon + 1);
        if (weight <= 0.0) {
          std::fprintf(stderr, "bad weight in --controller %s\n", token.c_str());
          return 2;
        }
        token.resize(colon);
      }
      mixture.emplace_back(std::move(token), weight);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  // Shared environments: one office-day trace serves every indoor node
  // (per-node placement attenuation happens inside the node, not by
  // copying traces); the corridor is the same office with the daylight
  // channel mostly gone.
  env::OfficeDayParams office_params;
  office_params.duration = hours * 3600.0;
  const env::LightTrace office = env::office_desk_mixed(office_params);
  env::OutdoorDayParams outdoor_params;
  outdoor_params.duration = hours * 3600.0;

  fleet::FleetSpec spec;
  spec.node_count = nodes;
  spec.root_seed = seed;
  spec.use_cell(pv::sanyo_am1815());
  spec.add_environment("office_desk", office, 0.55);
  spec.add_environment("corridor", office.scaled(0.65, 0.1), 0.25);
  spec.add_environment("outdoor", env::outdoor_day(outdoor_params), 0.20);
  try {
    if (mixture.empty()) {
      spec.add_policy("focv", 0.60);
      spec.add_policy("fixed", 0.10);
      spec.add_policy("pilot", 0.10);
      spec.add_policy("pando", 0.10);
      spec.add_policy("direct", 0.10);
    } else {
      for (const auto& [controller_spec, weight] : mixture) {
        spec.add_policy(controller_spec, weight);
      }
    }
  } catch (const mppt::SpecError& e) {
    std::fprintf(stderr, "fleet_demo: %s\n", e.what());
    return 2;
  }
  spec.base.storage.initial_voltage = 2.5;
  spec.base.load.report_period = 120.0;

  fleet::FleetOptions options;
  options.jobs = jobs;
  options.jsonl_path = jsonl_path;

  telemetry.begin();
  const fleet::FleetReport report = fleet::run_fleet(spec, options);

  std::printf("fleet: %zu nodes, %.1f h, %d jobs, %.2f s wall (%.0f nodes/s)\n\n",
              report.node_count, report.duration_s / 3600.0, report.jobs_used,
              report.wall_seconds,
              static_cast<double>(report.node_count) / report.wall_seconds);

  ConsoleTable policies({"policy", "nodes", "neutral", "mean eff %", "min eff %",
                         "net J", "downtime h"});
  for (const fleet::PolicyAggregate& p : report.policies) {
    policies.add_row({p.policy, ConsoleTable::num(static_cast<double>(p.nodes), 0),
                      ConsoleTable::num(p.energy_neutral_fraction() * 100.0, 1) + " %",
                      ConsoleTable::num(p.mean_efficiency() * 100.0, 2),
                      ConsoleTable::num(p.efficiency_min * 100.0, 2),
                      ConsoleTable::num(p.net_j, 1),
                      ConsoleTable::num(p.downtime_s / 3600.0, 2)});
  }
  policies.print(std::cout);

  ConsoleTable network({"network totals", "value"});
  network.add_row({"energy-neutral fraction",
                   ConsoleTable::num(report.energy_neutral_fraction() * 100.0, 1) + " %"});
  network.add_row({"mean tracking efficiency",
                   ConsoleTable::num(report.mean_tracking_efficiency() * 100.0, 2) + " %"});
  network.add_row({"harvested", ConsoleTable::num(report.harvested_j, 1) + " J"});
  network.add_row({"MPPT overhead", ConsoleTable::num(report.overhead_j, 1) + " J"});
  network.add_row({"served to loads", ConsoleTable::num(report.load_served_j, 1) + " J"});
  network.add_row({"summed downtime", ConsoleTable::num(report.downtime_s / 3600.0, 1) + " h"});
  network.add_row({"failed nodes", ConsoleTable::num(static_cast<double>(report.nodes_failed), 0)});
  network.add_row({"peak concurrent tx",
                   ConsoleTable::num(static_cast<double>(report.load.peak_concurrent_tx), 0)});
  network.add_row({"peak aggregate load",
                   ConsoleTable::num(report.load.peak_load_w * 1e3, 1) + " mW"});
  network.add_row({"average aggregate load",
                   ConsoleTable::num(report.load.average_load_w * 1e3, 2) + " mW"});
  network.print(std::cout);

  if (!json_path.empty()) {
    report.write_json(json_path, timing);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (!jsonl_path.empty()) std::printf("wrote %s\n", jsonl_path.c_str());
  telemetry.finish();
  return 0;
}
