// Example: the same FOCV sample-and-hold harvesting from a body-worn
// thermoelectric generator (the paper's Section I generalisation).
//
// The divider is trimmed to k = 0.5 (a TEG's MPP is exactly Voc/2) and
// nothing else changes: same astable, same S&H, same 25 uW overhead.
//
//   ./build/examples/teg_wearable
#include <cstdio>
#include <iostream>

#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "teg/teg_harvest.hpp"

int main() {
  using namespace focv;

  const teg::TegModel& harvester = teg::body_worn_teg();
  auto controller = teg::make_teg_controller();

  std::printf("TEG: %s (S = %.2f V/K, R_int = %.0f Ohm)\n",
              harvester.params().name.c_str(), harvester.params().seebeck_v_per_k,
              harvester.params().internal_resistance);
  std::printf("controller: paper FOCV S&H, divider trimmed to k = %.2f\n\n",
              2.0 * controller.sample_hold().params().divider_ratio);

  const teg::ThermalTrace day = teg::body_worn_thermal_day();
  const teg::TegHarvestReport report = teg::harvest_teg(harvester, day, controller);

  ConsoleTable table({"24 h body-worn TEG", "value"});
  table.add_row({"matched-load (ideal) energy",
                 ConsoleTable::num(report.ideal_energy, 2) + " J"});
  table.add_row({"harvested", ConsoleTable::num(report.harvested_energy, 2) + " J"});
  table.add_row({"tracking efficiency",
                 ConsoleTable::num(report.tracking_efficiency() * 100.0, 1) + " %"});
  table.add_row({"metrology overhead", ConsoleTable::num(report.overhead_energy, 3) + " J"});
  table.add_row({"net", ConsoleTable::num(report.net_energy(), 2) + " J"});
  table.print(std::cout);

  // Harvest power across the day at the FOCV operating point.
  std::vector<double> hours, power_mw;
  auto ctl2 = teg::make_teg_controller();
  mppt::SensedInputs s;
  for (std::size_t i = 0; i + 1 < day.time.size(); i += 300) {
    teg::ThermalConditions c;
    c.delta_t = day.delta_t[i];
    s.time = day.time[i];
    s.dt = 300.0;
    s.voc = harvester.open_circuit_voltage(c);
    const double v = ctl2.step(s).pv_voltage;
    hours.push_back(day.time[i] / 3600.0);
    power_mw.push_back(harvester.power_at(v, c) * 1e3);
  }
  AsciiPlotOptions opt;
  opt.title = "Harvested power across the day";
  opt.x_label = "time of day [h]";
  opt.y_label = "power [mW]";
  opt.height = 12;
  ascii_plot(std::cout, {{hours, power_mw, '*', "P harvested"}}, opt);
  return 0;
}
