// Example: a wireless sensor node on an office desk for 24 hours.
//
// Reproduces the paper's motivating scenario: an indoor PV-powered node
// whose MPPT must not eat the ~100 uW harvest. Runs the full behavioural
// pipeline (light trace -> cell -> FOCV S&H -> converter -> supercap ->
// duty-cycled load) and prints an energy ledger plus the store voltage
// across the day.
//
//   ./build/examples/indoor_office_node
#include <cstdio>
#include <iostream>

#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "node/harvester_node.hpp"
#include "pv/cell_library.hpp"

int main() {
  using namespace focv;

  // A 24 h office-desk light profile (Fig. 2 conditions).
  const env::LightTrace day = env::office_desk_mixed();

  // Node: AM-1815 cell + the paper's controller + 0.4 F supercap +
  // a sensor reporting once every 2 minutes.
  node::NodeConfig cfg;
  cfg.use_cell(pv::sanyo_am1815());
  cfg.use_controller(core::make_paper_controller());
  cfg.storage.initial_voltage = 2.5;
  cfg.load.report_period = 120.0;
  cfg.record_traces = true;
  cfg.record_stride = 300;  // 5-minute resolution

  const node::NodeReport report = node::simulate_node(day, cfg);

  ConsoleTable ledger({"energy ledger (24 h)", "value"});
  ledger.add_row({"ideal MPP harvest", ConsoleTable::num(report.ideal_mpp_energy, 3) + " J"});
  ledger.add_row({"actually harvested", ConsoleTable::num(report.harvested_energy, 3) + " J"});
  ledger.add_row({"tracking efficiency",
                  ConsoleTable::num(report.tracking_efficiency() * 100.0, 2) + " %"});
  ledger.add_row({"delivered to store", ConsoleTable::num(report.delivered_energy, 3) + " J"});
  ledger.add_row({"MPPT overhead", ConsoleTable::num(report.overhead_energy, 3) + " J"});
  ledger.add_row({"served to the load",
                  ConsoleTable::num(report.load_energy_served, 3) + " J"});
  ledger.add_row({"final store voltage",
                  ConsoleTable::num(report.final_store_voltage, 2) + " V"});
  ledger.add_row({"brown-out steps", ConsoleTable::num(report.brownout_steps, 0)});
  ledger.print(std::cout);

  // Store voltage across the day.
  std::vector<double> hours(report.time.size());
  for (std::size_t i = 0; i < report.time.size(); ++i) hours[i] = report.time[i] / 3600.0;
  AsciiPlotOptions opt;
  opt.title = "Supercapacitor voltage across the office day";
  opt.x_label = "time of day [h]";
  opt.y_label = "store [V]";
  opt.height = 12;
  ascii_plot(std::cout, {{hours, report.store_voltage, '*', "Vstore"}}, opt);

  const bool energy_neutral = report.net_energy() > report.load_energy_served;
  std::printf("\nenergy-neutral operation: %s (net harvest %.3f J vs load %.3f J)\n",
              energy_neutral ? "YES" : "NO", report.net_energy(),
              report.load_energy_served);
  return 0;
}
