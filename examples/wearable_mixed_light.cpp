// Example: a body-worn sensor moving between indoor and outdoor light.
//
// The paper's headline use case: "sensors which may be exposed to
// different types of lighting (such as body-worn or mobile sensors)".
// Compares the proposed controller against a fixed-voltage design and a
// microcontroller hill climber across the semi-mobile day of Section
// II-B (lab morning, outdoor lunch, lab afternoon, home evening).
//
//   ./build/examples/wearable_mixed_light
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "mppt/baselines.hpp"
#include "node/harvester_node.hpp"
#include "pv/cell_library.hpp"

namespace {

focv::node::NodeReport run(const focv::mppt::MpptController& controller,
                           const focv::env::LightTrace& day) {
  focv::node::NodeConfig cfg;
  cfg.use_cell(focv::pv::sanyo_am1815());
  cfg.use_controller(controller);  // deep copy; `controller` stays pristine
  cfg.storage.initial_voltage = 2.5;
  cfg.load.report_period = 60.0;  // a wearable reports every minute
  return focv::node::simulate_node(day, cfg);
}

}  // namespace

int main() {
  using namespace focv;

  const env::LightTrace day = env::semi_mobile_day();

  auto proposed = core::make_paper_controller();
  mppt::FixedVoltageController fixed;
  mppt::HillClimbingController hill_climber;

  const node::NodeReport r_proposed = run(proposed, day);
  const node::NodeReport r_fixed = run(fixed, day);
  const node::NodeReport r_hill = run(hill_climber, day);

  ConsoleTable table({"controller", "overhead [uW]", "harvest [J]", "net [J]",
                      "track eff [%]", "runs indoors?"});
  auto row = [&](const std::string& name, const mppt::MpptController& c,
                 const node::NodeReport& r) {
    table.add_row({name, ConsoleTable::num(c.overhead_power() * 1e6, 1),
                   ConsoleTable::num(r.harvested_energy, 3),
                   ConsoleTable::num(r.net_energy(), 3),
                   ConsoleTable::num(r.tracking_efficiency() * 100.0, 1),
                   c.minimum_operating_lux() <= 200.0 ? "yes" : "no"});
  };
  row("proposed FOCV S&H", proposed, r_proposed);
  row("fixed voltage [8]", fixed, r_fixed);
  row("hill climbing [2]", hill_climber, r_hill);
  table.print(std::cout);

  std::printf(
      "\nThe hill climber only wakes up during the bright outdoor spell (its 1 mW\n"
      "microcontroller cannot run from indoor light), so it misses the whole office\n"
      "day; the proposed controller tracks everywhere for 25 uW.\n");

  // Portability: the same two fixed/FOCV controllers on a different module.
  // The config is re-entrant now: reuse it, swapping only the prototype.
  node::NodeConfig cfg;
  cfg.use_cell(pv::schott_asi_1116929());
  cfg.use_controller(core::make_paper_controller());
  cfg.storage.initial_voltage = 2.5;
  const double eff_focv = node::simulate_node(day, cfg).tracking_efficiency();
  cfg.use_controller(mppt::FixedVoltageController{});
  const double eff_fixed = node::simulate_node(day, cfg).tracking_efficiency();
  std::printf(
      "\nSwapping in the 8-junction Schott module without re-tuning:\n"
      "  FOCV tracking efficiency:          %.1f %%  (adapts via the cell's own Voc)\n"
      "  fixed 3.0 V tracking efficiency:   %.1f %%  (tuned for the other cell)\n",
      eff_focv * 100.0, eff_fixed * 100.0);
  return 0;
}
