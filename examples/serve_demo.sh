#!/usr/bin/env sh
# serve_demo: start a focv-serve daemon, run a handful of queries
# through the CLI client, show the server's own metrics, and shut it
# down gracefully — the 60-second tour of the serving tier.
#
#   ./examples/serve_demo.sh [BUILD_DIR]     (default: build)
#
# Everything runs on 127.0.0.1 with a kernel-assigned port, so the demo
# never collides with anything.
set -eu

BUILD_DIR="${1:-build}"
DAEMON="$BUILD_DIR/tools/focv_serve"
CLIENT="$BUILD_DIR/tools/serve_client"
for bin in "$DAEMON" "$CLIENT"; do
  if [ ! -x "$bin" ]; then
    echo "serve_demo: $bin not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

LOG="$(mktemp)"
SNAPSHOT="$(mktemp -u).json"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -f "$LOG" "$SNAPSHOT" "$SNAPSHOT.prom"' EXIT

# --allow-shutdown-op lets the demo stop the daemon over the socket;
# --metrics/--snapshot make it an observable server bundle.
"$DAEMON" --port 0 --allow-shutdown-op --metrics "$SNAPSHOT.metrics.jsonl" \
  --snapshot "$SNAPSHOT" > "$LOG" 2>&1 &
DAEMON_PID=$!

# The daemon prints "focv-serve listening on 127.0.0.1:PORT" once bound.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "serve_demo: daemon did not come up"; cat "$LOG"; exit 1; }
echo "== daemon on port $PORT"

echo "== ping"
"$CLIENT" --port "$PORT" ping

echo "== size a node for the office scenario (cold: builds the env once)"
"$CLIENT" --port "$PORT" sizing --env office

echo "== same query again (warm: answered from the response cache)"
"$CLIENT" --port "$PORT" sizing --env office

echo "== behavioural run, outdoor, paper controller"
"$CLIENT" --port "$PORT" sim --env outdoor --spec "focv"

echo "== a malformed spec maps to a structured error, not a dead worker"
"$CLIENT" --port "$PORT" sizing --env office --spec "focv[k=oops]" || true

echo "== 200-node fleet query on the resident traces"
"$CLIENT" --port "$PORT" fleet --nodes 200 --seed 7

echo "== server-side stats"
"$CLIENT" --port "$PORT" stats

echo "== graceful shutdown over the socket"
"$CLIENT" --port "$PORT" shutdown
wait "$DAEMON_PID" 2>/dev/null || true
echo "== daemon log tail"
tail -3 "$LOG"
