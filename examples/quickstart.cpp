// Quickstart: the library in a few screenfuls.
//
// Build a calibrated indoor PV cell, attach the paper's FOCV
// sample-and-hold MPPT, and watch it pick the operating point at office
// light levels.
//
//   ./build/examples/quickstart
//
// With telemetry flags the same binary exercises all three simulation
// tiers under the focv::obs layer and exports the artifacts:
//
//   ./build/examples/quickstart --trace trace.json --metrics metrics.jsonl
//
// trace.json is Chrome trace_event JSON (open in ui.perfetto.dev or
// chrome://tracing): wall-clock spans for the node run, the sweep fleet
// and the circuit transient window, plus the MPPT sample windows on the
// simulated-time track. metrics.jsonl is the focv-obs/v1 stream: domain
// events (sample_window_open/close, held_voltage_updated, step_rejected,
// sweep_complete) followed by every counter/gauge/histogram. --snapshot
// adds a focv-obs-snapshot/v1 JSON plus Prometheus text exposition at
// PATH.prom; --flight arms the focv-obs-flight/v1 anomaly recorder.
#include <cstdio>
#include <cstring>
#include <string>

#include "circuit/transient.hpp"
#include "core/focv_system.hpp"
#include "core/netlists.hpp"
#include "env/profiles.hpp"
#include "mppt/baselines.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "node/harvester_node.hpp"
#include "obs/cli.hpp"
#include "obs/obs.hpp"
#include "pv/cell_library.hpp"
#include "runtime/sweep.hpp"

namespace {

using namespace focv;

/// Exercise every instrumented tier once: a 24 h behavioural run (MPPT
/// sample windows, curve-cache stats, surrogate-vs-exact deviation), a
/// small controller sweep (per-job spans, pool stats) and a short
/// circuit transient (Newton histograms, step rejections).
void run_telemetry_tour() {
  node::NodeConfig cfg;
  cfg.use_cell(pv::sanyo_am1815());
  cfg.use_controller(core::make_paper_controller());
  cfg.storage.initial_voltage = 3.0;
  cfg.obs_compare_exact = true;
  const node::NodeReport day = node::simulate_node(env::office_desk_mixed(), cfg);
  std::printf("telemetry tour: 24 h office day, tracking efficiency %.2f%%\n",
              day.tracking_efficiency() * 100.0);

  runtime::SweepSpec spec;
  spec.add_cell("AM-1815", pv::sanyo_am1815());
  spec.add_controller("proposed", core::make_paper_controller());
  spec.add_controller("fixed", mppt::FixedVoltageController{});
  spec.add_scenario("lux500", env::constant_light(500.0, 0.0, 3600.0));
  spec.add_scenario("lux1000", env::constant_light(1000.0, 0.0, 3600.0));
  spec.base.storage.initial_voltage = 3.0;
  const runtime::SweepResult sweep = runtime::run_sweep(spec);
  std::printf("telemetry tour: sweep of %zu jobs on %d workers\n",
              sweep.records().size(), sweep.jobs_used());

  circuit::Circuit ckt;
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  core::build_fig3_system(ckt, pv::sanyo_am1815(), c, core::SystemSpec{});
  circuit::TransientOptions opt;
  opt.t_stop = 0.02;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-6;
  opt.dt_max = 0.25;
  opt.dv_step_max = 0.4;
  const circuit::Trace tr = circuit::transient_analyze(ckt, opt);
  std::printf("telemetry tour: 20 ms circuit transient, %zu trace points\n",
              tr.time().size());
}

}  // namespace

int main(int argc, char** argv) {
  obs::CliTelemetry telemetry;
  for (int i = 1; i < argc; ++i) {
    if (telemetry.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("quickstart %s\n", obs::CliTelemetry::usage());
      return 0;
    }
    std::fprintf(stderr, "quickstart: unknown flag '%s'\n", argv[i]);
    return 2;
  }
  telemetry.begin();

  // 1. The SANYO Amorton AM-1815 indoor a-Si cell, calibrated against
  //    the paper's Table I.
  const pv::MertenAsiModel& cell = pv::sanyo_am1815();
  pv::Conditions office;
  office.illuminance_lux = 1000.0;                  // desk under fluorescent light
  office.spectrum = pv::Spectrum::kFluorescent;

  const double voc = cell.open_circuit_voltage(office);
  const pv::MppResult mpp = cell.maximum_power_point(office);
  std::printf("AM-1815 at 1000 lux: Voc = %.3f V, MPP = %.3f V / %.1f uA (%.1f uW)\n",
              voc, mpp.voltage, mpp.current * 1e6, mpp.power * 1e6);

  // 2. The paper's controller: astable (39 ms / 69 s) + sample-and-hold.
  mppt::FocvSampleHoldController mppt = core::make_paper_controller();
  std::printf("controller overhead: %.2f uA at 3.3 V (paper: 7.6 uA)\n",
              mppt.average_current() * 1e6);

  // 3. One sampling operation: the controller reads Voc during the
  //    39 ms PULSE window and holds k*alpha*Voc for the next 69 s.
  mppt::SensedInputs sensed;
  sensed.time = 0.0;
  sensed.dt = 1.0;
  sensed.voc = voc;
  const mppt::ControlOutput out = mppt.step(sensed);

  std::printf("HELD_SAMPLE = %.3f V  ->  PV operated at %.3f V\n",
              mppt.held_sample(1.0), out.pv_voltage);
  std::printf("harvest at that point: %.1f uW (%.1f%% of the true MPP)\n",
              cell.power_at(out.pv_voltage, office) * 1e6,
              cell.tracking_efficiency(out.pv_voltage, office) * 100.0);

  if (telemetry.any()) {
    run_telemetry_tour();
    telemetry.finish();
  }
  return 0;
}
