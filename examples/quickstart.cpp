// Quickstart: the library in ~40 lines.
//
// Build a calibrated indoor PV cell, attach the paper's FOCV
// sample-and-hold MPPT, and watch it pick the operating point at office
// light levels.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/focv_system.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "pv/cell_library.hpp"

int main() {
  using namespace focv;

  // 1. The SANYO Amorton AM-1815 indoor a-Si cell, calibrated against
  //    the paper's Table I.
  const pv::MertenAsiModel& cell = pv::sanyo_am1815();
  pv::Conditions office;
  office.illuminance_lux = 1000.0;                  // desk under fluorescent light
  office.spectrum = pv::Spectrum::kFluorescent;

  const double voc = cell.open_circuit_voltage(office);
  const pv::MppResult mpp = cell.maximum_power_point(office);
  std::printf("AM-1815 at 1000 lux: Voc = %.3f V, MPP = %.3f V / %.1f uA (%.1f uW)\n",
              voc, mpp.voltage, mpp.current * 1e6, mpp.power * 1e6);

  // 2. The paper's controller: astable (39 ms / 69 s) + sample-and-hold.
  mppt::FocvSampleHoldController mppt = core::make_paper_controller();
  std::printf("controller overhead: %.2f uA at 3.3 V (paper: 7.6 uA)\n",
              mppt.average_current() * 1e6);

  // 3. One sampling operation: the controller reads Voc during the
  //    39 ms PULSE window and holds k*alpha*Voc for the next 69 s.
  mppt::SensedInputs sensed;
  sensed.time = 0.0;
  sensed.dt = 1.0;
  sensed.voc = voc;
  const mppt::ControlOutput out = mppt.step(sensed);

  std::printf("HELD_SAMPLE = %.3f V  ->  PV operated at %.3f V\n",
              mppt.held_sample(1.0), out.pv_voltage);
  std::printf("harvest at that point: %.1f uW (%.1f%% of the true MPP)\n",
              cell.power_at(out.pv_voltage, office) * 1e6,
              cell.tracking_efficiency(out.pv_voltage, office) * 100.0);
  return 0;
}
