// Calibration of cell-model parameters against published anchor points.
//
// The paper gives no cell model, but it publishes enough anchors to pin
// one down:
//  - Table I: mean Voc of the SANYO Amorton AM-1815 at 12 illuminance
//    levels, 200..5000 lux, under the test lamp;
//  - Section IV-A: the AM-1815 MPP at 200 lux (42 uA at 3.0 V);
//  - Section II-A: Vmpp ~ k * Voc with k in 0.6..0.8 for a-Si.
// calibrate_am1815() fits the MertenAsiModel free parameters to these
// anchors with Nelder-Mead. The fitted values are baked into
// cell_library.cpp; a unit test re-runs the fit and checks agreement, so
// the baked constants can never silently drift from the procedure.
#pragma once

#include <vector>

#include "pv/diode_models.hpp"

namespace focv::pv {

/// One (illuminance -> Voc) anchor.
struct VocAnchor {
  double lux = 0.0;
  double voc = 0.0;   ///< [V]
  double weight = 1.0;
};

/// One full MPP anchor.
struct MppAnchor {
  double lux = 0.0;
  double vmpp = 0.0;  ///< [V]
  double impp = 0.0;  ///< [A]
  double weight = 1.0;
};

/// The paper's Table I Voc column (fluorescent light, AM-1815).
[[nodiscard]] std::vector<VocAnchor> table1_voc_anchors();

/// The paper's Section IV-A MPP anchor (42 uA / 3.0 V at 200 lux).
[[nodiscard]] MppAnchor am1815_mpp_anchor();

/// Result of a calibration run.
struct CalibrationReport {
  MertenAsiModel::AsiParams params;   ///< fitted parameters
  double objective = 0.0;             ///< final weighted SSE
  double max_voc_error = 0.0;         ///< worst |Voc model - anchor| [V]
  double vmpp_error = 0.0;            ///< |Vmpp - anchor| at the MPP anchor [V]
  double impp_error = 0.0;            ///< |Impp - anchor| at the MPP anchor [A]
  int iterations = 0;
};

/// Free parameters of the AM-1815 fit (the rest are fixed by physics or
/// the datasheet; see implementation).
struct Am1815FitSeed {
  double photocurrent_per_lux = 0.30e-6;  ///< [A/lux]
  double saturation_current = 2.8e-13;    ///< [A]
  double ideality = 1.60;
  double recombination_chi = 1.2;         ///< [V]
  double photo_shunt_per_volt = 0.03;     ///< [1/V]
  double builtin_voltage = 7.5;           ///< [V]
};

/// Fit the AM-1815 model to the paper anchors.
[[nodiscard]] CalibrationReport calibrate_am1815(const Am1815FitSeed& seed = {});

/// Evaluate the calibration residuals of arbitrary a-Si parameters
/// against the paper anchors (used by tests and by the ablation bench
/// that contrasts single-diode vs Merten fits).
[[nodiscard]] double calibration_objective(const MertenAsiModel::AsiParams& params,
                                           const std::vector<VocAnchor>& voc_anchors,
                                           const MppAnchor& mpp_anchor);

}  // namespace focv::pv
