// Adapter placing a PV cell model into a circuit netlist.
#pragma once

#include "circuit/circuit.hpp"
#include "circuit/devices_sources.hpp"
#include "pv/cell_model.hpp"

namespace focv::pv {

/// Two-terminal circuit element driven by a CellModel.
///
/// The element injects the cell's terminal current out of its positive
/// node. Operating conditions (illuminance, spectrum, temperature) can be
/// changed between or during transient runs, modelling changing light.
class PvCellDevice : public focv::circuit::Device {
 public:
  PvCellDevice(std::string name, focv::circuit::NodeId positive, focv::circuit::NodeId negative,
               const CellModel& model, Conditions conditions);

  void stamp(focv::circuit::StampContext& ctx) override;

  /// Update the light/temperature conditions (takes effect immediately).
  void set_conditions(const Conditions& conditions) { conditions_ = conditions; }
  [[nodiscard]] const Conditions& conditions() const { return conditions_; }
  [[nodiscard]] const CellModel& model() const { return model_; }

 private:
  focv::circuit::NodeId positive_, negative_;
  const CellModel& model_;
  Conditions conditions_;
};

}  // namespace focv::pv
