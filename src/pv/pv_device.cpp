#include "pv/pv_device.hpp"

#include <algorithm>

namespace focv::pv {

using focv::circuit::StampContext;

PvCellDevice::PvCellDevice(std::string name, focv::circuit::NodeId positive,
                           focv::circuit::NodeId negative, const CellModel& model,
                           Conditions conditions)
    : Device(std::move(name)), positive_(positive), negative_(negative), model_(model),
      conditions_(conditions) {}

void PvCellDevice::stamp(StampContext& ctx) {
  // The solver can wander outside the physical range early in the Newton
  // iteration; clamp the evaluation point and keep the local slope.
  const double v_raw = ctx.v(positive_) - ctx.v(negative_);
  const double v_hi = model_.voltage_bound(conditions_) - 1e-6;
  const double vk = std::clamp(v_raw, -1.0, v_hi);
  const double i = model_.current(vk, conditions_) * ctx.source_scale;
  const double g = model_.current_derivative(vk, conditions_) * ctx.source_scale;

  // Same stamp as NonlinearCurrentSource: current I(v) driven out of the
  // positive terminal, Newton-linearised around vk.
  ctx.add_matrix_nodes(positive_, positive_, -g);
  ctx.add_matrix_nodes(positive_, negative_, g);
  ctx.add_matrix_nodes(negative_, positive_, g);
  ctx.add_matrix_nodes(negative_, negative_, -g);
  const double i0 = i - g * vk;
  ctx.add_current_into(positive_, i0);
  ctx.add_current_into(negative_, -i0);
}

}  // namespace focv::pv
