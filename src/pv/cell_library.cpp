#include "pv/cell_library.hpp"

namespace focv::pv {

namespace {

MertenAsiModel::AsiParams am1815_params() {
  // Baked output of calibrate_am1815(); tests/pv/calibration_test.cpp
  // re-runs the fit and asserts agreement with these constants.
  MertenAsiModel::AsiParams p;
  p.base.name = "SANYO Amorton AM-1815 (a-Si)";
  p.base.area_cm2 = 25.0;
  p.base.series_cells = 7;
  p.base.shunt_resistance = 50e6;
  p.base.series_resistance = 100.0;
  p.base.bandgap_ev = 1.7;
  p.base.iph_tempco = 0.0009;
  p.base.daylight_ratio = 0.55;
  p.builtin_voltage = 6.3;
  // --- fitted free parameters (baked from calibrate_am1815()) ---
  // Fit residuals: worst Table-I Voc error 32 mV, Impp error < 0.01 uA,
  // Vmpp 3.14 V vs the paper's 3.0 V (see EXPERIMENTS.md for why the
  // anchor set forces this compromise).
  p.base.photocurrent_per_lux = 4.1294450455e-07;
  p.base.saturation_current = 1.0223448722e-10;
  p.base.ideality = 2.2565380351;
  p.recombination_chi = 0.0;  // fit selects the photo-shunt basin
  p.photo_shunt_per_volt = 0.1551794549;
  return p;
}

}  // namespace

const MertenAsiModel& sanyo_am1815() {
  static const MertenAsiModel model(am1815_params());
  return model;
}

const MertenAsiModel& schott_asi_1116929() {
  static const MertenAsiModel model([] {
    MertenAsiModel::AsiParams p = am1815_params();
    p.base.name = "Schott Solar 1116929 (a-Si)";
    p.base.area_cm2 = 58.0;
    p.base.photocurrent_per_lux *= 58.0 / 25.0;  // scale with area
    // One more series junction than the AM-1815, same per-junction
    // physics: the module thermal slope and built-in potential grow by
    // 8/7 while the photo-shunt per volt (a per-junction loss expressed
    // against the module voltage) shrinks by 7/8.
    p.base.series_cells = 8;
    p.base.ideality *= 8.0 / 7.0;
    p.builtin_voltage = 7.2;
    p.photo_shunt_per_volt *= 7.0 / 8.0;
    return p;
  }());
  return model;
}

const SingleDiodeModel& crystalline_reference() {
  static const SingleDiodeModel model([] {
    SingleDiodeModel::Params p;
    p.name = "crystalline-Si reference";
    p.area_cm2 = 25.0;
    // Crystalline silicon: low ideality, much larger saturation current
    // per junction, and a weak response per lux under fluorescent light
    // (its spectral response peaks in the near infrared, which
    // tri-phosphor lamps barely emit).
    p.photocurrent_per_lux = 0.11e-6;
    p.daylight_ratio = 2.4;  // relative to its own fluorescent response
    p.saturation_current = 4e-9;
    p.series_cells = 8;
    p.ideality = 1.15;
    p.shunt_resistance = 2e6;
    p.series_resistance = 20.0;
    p.bandgap_ev = 1.12;
    p.iph_tempco = 0.0005;
    return p;
  }());
  return model;
}

const MertenAsiModel& pilot_cell() {
  static const MertenAsiModel model([] {
    MertenAsiModel::AsiParams p = am1815_params();
    p.base.name = "pilot cell (a-Si, 2 cm^2)";
    // Same technology at reduced area: every areal quantity scales, so
    // the current scales down while the voltage curve (and Voc) match
    // the main cell -- which is precisely why a pilot cell works.
    const double area_ratio = 2.0 / 25.0;
    p.base.area_cm2 = 2.0;
    p.base.photocurrent_per_lux *= area_ratio;
    p.base.saturation_current *= area_ratio;
    p.base.shunt_resistance /= area_ratio;
    return p;
  }());
  return model;
}

}  // namespace focv::pv
