// Calibrated cell instances used throughout the reproduction.
#pragma once

#include "pv/diode_models.hpp"

namespace focv::pv {

/// SANYO Amorton AM-1815 (25 cm^2 indoor a-Si): the cell the paper uses
/// for Table I, the cold-start tests and the power-budget comparison.
/// Parameters were produced by calibrate_am1815() (see calibration.hpp)
/// and are verified against that fit by a unit test.
[[nodiscard]] const MertenAsiModel& sanyo_am1815();

/// Schott Solar 1116929 a-Si module: the cell of Fig. 1 and Fig. 2.
/// No anchors are published beyond the figures, so this reuses the
/// AM-1815 junction parameters with a larger active area and one more
/// junction (documented substitution, DESIGN.md §2).
[[nodiscard]] const MertenAsiModel& schott_asi_1116929();

/// Crystalline-silicon reference module of comparable size. Included as
/// the contrast case (Section II-A: a-Si retains efficiency at low light
/// where crystalline cells do not).
[[nodiscard]] const SingleDiodeModel& crystalline_reference();

/// Small pilot cell of the kind used by the pilot-cell FOCV baseline [5]
/// (a scaled-down AM-1815).
[[nodiscard]] const MertenAsiModel& pilot_cell();

}  // namespace focv::pv
