#include "pv/cell_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/math.hpp"
#include "common/require.hpp"

namespace focv::pv {

double CellModel::current_derivative(double v, const Conditions& c) const {
  const double h = std::max(1e-6, 1e-7 * std::abs(v));
  return (current(v + h, c) - current(v - h, c)) / (2.0 * h);
}

double CellModel::open_circuit_voltage(const Conditions& c) const {
  const double hi = voltage_bound(c);
  const double i0 = current(0.0, c);
  require(i0 > 0.0, "open_circuit_voltage: cell produces no current at these conditions");
  return brent_root([&](double v) { return current(v, c); }, 0.0, hi,
                    SolverOptions{.x_tolerance = 1e-9, .f_tolerance = 1e-15});
}

double CellModel::short_circuit_current(const Conditions& c) const { return current(0.0, c); }

MppResult CellModel::maximum_power_point(const Conditions& c) const {
  return maximum_power_point(c, open_circuit_voltage(c));
}

MppResult CellModel::maximum_power_point(const Conditions& c, double voc) const {
  const double vmpp = golden_section_maximize(
      [&](double v) { return v * current(v, c); }, 0.0, voc,
      SolverOptions{.x_tolerance = 1e-8});
  MppResult r;
  r.voltage = vmpp;
  r.current = current(vmpp, c);
  r.power = r.voltage * r.current;
  return r;
}

double CellModel::k_factor(const Conditions& c) const {
  return maximum_power_point(c).voltage / open_circuit_voltage(c);
}

double CellModel::fill_factor(const Conditions& c) const {
  const double voc = open_circuit_voltage(c);
  const double isc = short_circuit_current(c);
  require(voc > 0.0 && isc > 0.0, "fill_factor: degenerate curve");
  return maximum_power_point(c).power / (voc * isc);
}

IVCurve CellModel::curve(const Conditions& c, int points) const {
  require(points >= 2, "curve: needs at least 2 points");
  const double voc = open_circuit_voltage(c);
  IVCurve out;
  out.voltage.reserve(static_cast<std::size_t>(points));
  out.current.reserve(static_cast<std::size_t>(points));
  out.power.reserve(static_cast<std::size_t>(points));
  for (int k = 0; k < points; ++k) {
    const double v = voc * static_cast<double>(k) / static_cast<double>(points - 1);
    const double i = current(v, c);
    out.voltage.push_back(v);
    out.current.push_back(i);
    out.power.push_back(v * i);
  }
  return out;
}

double CellModel::power_at(double v, const Conditions& c) const {
  if (v <= 0.0) return 0.0;
  const double i = current(v, c);
  return (i > 0.0) ? v * i : 0.0;
}

double CellModel::tracking_efficiency(double v, const Conditions& c) const {
  const double pmpp = maximum_power_point(c).power;
  if (pmpp <= 0.0) return 0.0;
  return std::clamp(power_at(v, c) / pmpp, 0.0, 1.0);
}

}  // namespace focv::pv
