#include "pv/diode_models.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/require.hpp"

namespace focv::pv {

namespace {

constexpr double kTRef = focv::constants::kNominalTemperature;

double safe_exp(double x, double cap = 120.0) {
  if (x <= cap) return std::exp(x);
  return std::exp(cap) * (1.0 + (x - cap));
}

double safe_exp_deriv(double x, double cap = 120.0) {
  return (x <= cap) ? std::exp(x) : std::exp(cap);
}

}  // namespace

SingleDiodeModel::SingleDiodeModel(Params params) : params_(std::move(params)) {
  require(params_.photocurrent_per_lux > 0.0, "SingleDiodeModel: photocurrent_per_lux must be > 0");
  require(params_.daylight_ratio > 0.0, "SingleDiodeModel: daylight_ratio must be > 0");
  require(params_.saturation_current > 0.0, "SingleDiodeModel: saturation_current must be > 0");
  require(params_.series_cells >= 1, "SingleDiodeModel: series_cells must be >= 1");
  require(params_.ideality > 0.0, "SingleDiodeModel: ideality must be > 0");
  require(params_.shunt_resistance > 0.0, "SingleDiodeModel: shunt_resistance must be > 0");
  require(params_.series_resistance >= 0.0, "SingleDiodeModel: series_resistance must be >= 0");
}

double SingleDiodeModel::photocurrent(const Conditions& c) const {
  require(c.illuminance_lux >= 0.0, "photocurrent: illuminance must be >= 0");
  const double per_lux = (c.spectrum == Spectrum::kFluorescent)
                             ? params_.photocurrent_per_lux
                             : params_.photocurrent_per_lux * params_.daylight_ratio;
  const double temp_factor = 1.0 + params_.iph_tempco * (c.temperature_k - kTRef);
  return per_lux * c.illuminance_lux * std::max(temp_factor, 0.0);
}

double SingleDiodeModel::thermal_slope(const Conditions& c) const {
  return static_cast<double>(params_.series_cells) * params_.ideality *
         focv::constants::thermal_voltage(c.temperature_k);
}

double SingleDiodeModel::saturation_current(const Conditions& c) const {
  const double t = c.temperature_k;
  const double ratio = t / kTRef;
  const double eg_term = params_.bandgap_ev * focv::constants::kElementaryCharge /
                         (params_.ideality * focv::constants::kBoltzmann);
  return params_.saturation_current * ratio * ratio * ratio *
         std::exp(eg_term * (1.0 / kTRef - 1.0 / t));
}

SingleDiodeModel::OpPoint SingleDiodeModel::op_point(const Conditions& c) const {
  OpPoint op;
  op.iph = photocurrent(c);
  op.slope = thermal_slope(c);
  op.i0 = saturation_current(c);
  return op;
}

double SingleDiodeModel::junction_current(double vj, const OpPoint& op) const {
  return op.iph - op.i0 * (safe_exp(vj / op.slope) - 1.0) - vj / params_.shunt_resistance;
}

double SingleDiodeModel::junction_derivative(double vj, const OpPoint& op) const {
  return -op.i0 * safe_exp_deriv(vj / op.slope) / op.slope - 1.0 / params_.shunt_resistance;
}

double SingleDiodeModel::solve_terminal_current(double v, const OpPoint& op) const {
  if (params_.series_resistance == 0.0) return junction_current(v, op);
  double i = junction_current(v, op);  // Rs = 0 seed
  for (int iter = 0; iter < 60; ++iter) {
    const double vj = v + i * params_.series_resistance;
    const double f = junction_current(vj, op) - i;
    const double df = junction_derivative(vj, op) * params_.series_resistance - 1.0;
    const double i_next = i - f / df;
    if (std::abs(i_next - i) < 1e-15 + 1e-10 * std::abs(i)) return i_next;
    i = i_next;
  }
  throw ConvergenceError("SingleDiodeModel: series-resistance iteration did not converge");
}

double SingleDiodeModel::current(double v, const Conditions& c) const {
  return solve_terminal_current(v, op_point(c));
}

double SingleDiodeModel::current_derivative(double v, const Conditions& c) const {
  const OpPoint op = op_point(c);
  const double i = solve_terminal_current(v, op);
  const double vj = v + i * params_.series_resistance;
  const double fp = junction_derivative(vj, op);
  return fp / (1.0 - fp * params_.series_resistance);
}

double SingleDiodeModel::voltage_bound(const Conditions& c) const {
  const double iph = std::max(photocurrent(c), 1e-15);
  const double a = thermal_slope(c);
  const double i0 = saturation_current(c);
  // Ideal-diode Voc plus headroom; the actual Voc is always below this.
  return a * std::log(iph / i0 + 1.0) + 1.0;
}

// -------------------------------------------------------- MertenAsiModel

MertenAsiModel::MertenAsiModel(AsiParams params)
    : SingleDiodeModel(params.base), asi_(std::move(params)) {
  require(asi_.builtin_voltage > 0.0, "MertenAsiModel: builtin_voltage must be > 0");
  require(asi_.recombination_chi >= 0.0, "MertenAsiModel: recombination_chi must be >= 0");
  require(asi_.recombination_chi < asi_.builtin_voltage,
          "MertenAsiModel: recombination_chi must be < builtin_voltage (else Isc <= 0)");
  require(asi_.photo_shunt_per_volt >= 0.0, "MertenAsiModel: photo_shunt_per_volt must be >= 0");
}

double MertenAsiModel::junction_current(double vj, const OpPoint& op) const {
  const double iph = op.iph;
  double base = SingleDiodeModel::junction_current(vj, op);
  // Recombination: Irec = Iph * chi / (Vbi - Vj), with a linear guard as
  // Vj approaches Vbi so the model stays smooth for the solvers.
  const double margin = 0.05 * asi_.builtin_voltage;
  const double vbi = asi_.builtin_voltage;
  double denom = vbi - vj;
  if (denom < margin) {
    // Linear extension of 1/(Vbi - Vj) beyond the guard point.
    const double f0 = 1.0 / margin;
    const double df = 1.0 / (margin * margin);
    base -= iph * asi_.recombination_chi * (f0 + df * (margin - denom));
  } else {
    base -= iph * asi_.recombination_chi / denom;
  }
  base -= iph * asi_.photo_shunt_per_volt * vj;
  return base;
}

double MertenAsiModel::junction_derivative(double vj, const OpPoint& op) const {
  const double iph = op.iph;
  double d = SingleDiodeModel::junction_derivative(vj, op);
  const double margin = 0.05 * asi_.builtin_voltage;
  const double vbi = asi_.builtin_voltage;
  const double denom = vbi - vj;
  if (denom < margin) {
    d -= iph * asi_.recombination_chi / (margin * margin);
  } else {
    d -= iph * asi_.recombination_chi / (denom * denom);
  }
  d -= iph * asi_.photo_shunt_per_volt;
  return d;
}

// Note: MertenAsiModel inherits SingleDiodeModel::voltage_bound. The
// recombination term is linearly extended past Vbi (see the guard in
// junction_current), so the junction current stays monotone decreasing
// for all voltages and the ideal-diode bound — where the diode term
// alone exceeds the photocurrent — always brackets Voc.

}  // namespace focv::pv
