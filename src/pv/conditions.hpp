// Operating conditions for photovoltaic cells.
#pragma once

#include "common/constants.hpp"

namespace focv::pv {

/// Light source spectrum. Amorphous silicon's spectral response peaks in
/// the visible band, so its photocurrent per lux is higher under
/// tri-phosphor fluorescent light than under broadband daylight.
enum class Spectrum {
  kFluorescent,  ///< office artificial lighting
  kDaylight,     ///< natural light through air/window
};

/// Environmental operating point of a PV cell.
struct Conditions {
  double illuminance_lux = 1000.0;
  Spectrum spectrum = Spectrum::kFluorescent;
  double temperature_k = focv::constants::kNominalTemperature;
};

}  // namespace focv::pv
