#include "pv/calibration.hpp"

#include <cmath>

#include "common/nelder_mead.hpp"
#include "common/require.hpp"

namespace focv::pv {

std::vector<VocAnchor> table1_voc_anchors() {
  // Table I of the paper: intensity [lux] -> mean Voc [V], AM-1815 under
  // the (fluorescent) test lamp.
  return {
      {200, 4.978, 1.0}, {300, 5.096, 1.0}, {400, 5.180, 1.0},  {500, 5.242, 1.0},
      {600, 5.292, 1.0}, {700, 5.333, 1.0}, {800, 5.369, 1.0},  {900, 5.410, 1.0},
      {1000, 5.440, 1.0}, {2000, 5.640, 1.0}, {3000, 5.750, 1.0}, {5000, 5.910, 1.0},
  };
}

MppAnchor am1815_mpp_anchor() {
  // Section IV-A: "the AM-1815 cell's MPP current and voltage of 42 uA
  // and 3.0 V" at 200 lux.
  return {200.0, 3.0, 42e-6, 6.0};
}

namespace {

MertenAsiModel::AsiParams am1815_fixed_params() {
  MertenAsiModel::AsiParams p;
  p.base.name = "SANYO Amorton AM-1815 (a-Si)";
  p.base.area_cm2 = 25.0;          // datasheet outline ~58x49 mm
  p.base.series_cells = 7;          // a-Si integrated series junctions
  p.base.shunt_resistance = 50e6;   // dark leakage
  p.base.series_resistance = 100.0; // interconnect; negligible at uA level
  p.base.bandgap_ev = 1.7;          // amorphous silicon
  p.base.iph_tempco = 0.0009;
  p.base.daylight_ratio = 0.55;     // a-Si lux response: daylight vs fluorescent
  p.builtin_voltage = 6.3;          // 7 junctions x ~0.9 V
  return p;
}

MertenAsiModel::AsiParams apply_free(const MertenAsiModel::AsiParams& fixed,
                                     const std::vector<double>& z) {
  // Free parameters are optimised in log space: they are positive and
  // span many decades (pA .. uA/lux).
  MertenAsiModel::AsiParams p = fixed;
  p.base.photocurrent_per_lux = std::exp(z[0]);
  p.base.saturation_current = std::exp(z[1]);
  p.base.ideality = std::exp(z[2]);
  p.recombination_chi = std::exp(z[3]);
  p.photo_shunt_per_volt = std::exp(z[4]);
  // Bounded transform for Vbi: a free Vbi lets the optimiser push
  // chi/(Vbi - V) into a degenerate linear shunt, so confine it to the
  // physically plausible 6.2..9.0 V for a 7-junction a-Si stack.
  p.builtin_voltage = 6.2 + 2.8 / (1.0 + std::exp(-z[5]));
  // The recombination zero-crossing Vbi - chi must stay above the highest
  // measured Voc (5.91 V at 5000 lux), else that anchor is unreachable.
  p.recombination_chi = std::min(p.recombination_chi, p.builtin_voltage - 6.05);
  return p;
}

/// Soft shaping anchors beyond the hard paper numbers: the paper's
/// Section II narrative requires k to stay near 0.6 across the whole
/// range (otherwise fixed-ratio FOCV could not track well), and the
/// AM-1815 datasheet puts Isc around 55 uA at 200 lux.
double shaping_objective(const MertenAsiModel::AsiParams& params) {
  try {
    const MertenAsiModel model(params);
    Conditions c;
    c.spectrum = Spectrum::kFluorescent;
    double sse = 0.0;
    const struct {
      double lux, k, weight;
    } k_targets[] = {{1000.0, 0.600, 3.0}, {5000.0, 0.600, 4.0}};
    for (const auto& t : k_targets) {
      c.illuminance_lux = t.lux;
      const double err = (model.k_factor(c) - t.k) / 0.01;
      sse += t.weight * err * err;
    }
    return sse;
  } catch (const std::exception&) {
    return 1e12;
  }
}

}  // namespace

double calibration_objective(const MertenAsiModel::AsiParams& params,
                             const std::vector<VocAnchor>& voc_anchors,
                             const MppAnchor& mpp_anchor) {
  try {
    const MertenAsiModel model(params);
    double sse = 0.0;
    Conditions c;
    c.spectrum = Spectrum::kFluorescent;
    for (const auto& anchor : voc_anchors) {
      c.illuminance_lux = anchor.lux;
      const double voc = model.open_circuit_voltage(c);
      const double err_mv = (voc - anchor.voc) / 1e-3;
      sse += anchor.weight * err_mv * err_mv;
    }
    c.illuminance_lux = mpp_anchor.lux;
    const MppResult mpp = model.maximum_power_point(c);
    const double verr = (mpp.voltage - mpp_anchor.vmpp) / 10e-3;   // 10 mV units
    const double ierr = (mpp.current - mpp_anchor.impp) / 0.5e-6;  // 0.5 uA units
    sse += mpp_anchor.weight * (verr * verr + ierr * ierr);
    return sse;
  } catch (const std::exception&) {
    return 1e12;  // infeasible parameter combination
  }
}

CalibrationReport calibrate_am1815(const Am1815FitSeed& seed) {
  const auto voc_anchors = table1_voc_anchors();
  const MppAnchor mpp_anchor = am1815_mpp_anchor();
  const MertenAsiModel::AsiParams fixed = am1815_fixed_params();

  const std::vector<double> z0 = {
      std::log(seed.photocurrent_per_lux), std::log(seed.saturation_current),
      std::log(seed.ideality), std::log(seed.recombination_chi),
      std::log(seed.photo_shunt_per_volt),
      // logit of (Vbi - 6.2) / 2.8, inverting the bounded transform.
      std::log((seed.builtin_voltage - 6.2) / (9.0 - seed.builtin_voltage)),
  };

  NelderMeadOptions options;
  options.max_iterations = 4000;
  options.initial_step = 0.15;
  options.restarts = 3;
  const auto objective = [&](const std::vector<double>& z) {
    const MertenAsiModel::AsiParams p = apply_free(fixed, z);
    return calibration_objective(p, voc_anchors, mpp_anchor) + shaping_objective(p);
  };
  // Nelder-Mead is local and this landscape has (at least) a photo-shunt
  // basin and a recombination basin; probe both and keep the best.
  std::vector<std::vector<double>> seeds = {z0};
  {
    std::vector<double> alt = z0;
    alt[3] = std::log(0.30);  // small recombination
    alt[4] = std::log(0.12);  // strong photo-shunt
    seeds.push_back(alt);
    alt = z0;
    alt[3] = std::log(2.5);    // strong recombination
    alt[4] = std::log(0.005);  // weak photo-shunt
    seeds.push_back(alt);
  }
  NelderMeadResult fit;
  fit.value = 1e300;
  for (const auto& seed_z : seeds) {
    const NelderMeadResult candidate = nelder_mead_minimize(objective, seed_z, options);
    if (candidate.value < fit.value) {
      const int iterations = fit.iterations + candidate.iterations;
      fit = candidate;
      fit.iterations = iterations;
    } else {
      fit.iterations += candidate.iterations;
    }
  }

  CalibrationReport report;
  report.params = apply_free(fixed, fit.x);
  report.objective = fit.value;
  report.iterations = fit.iterations;

  const MertenAsiModel model(report.params);
  Conditions c;
  c.spectrum = Spectrum::kFluorescent;
  for (const auto& anchor : voc_anchors) {
    c.illuminance_lux = anchor.lux;
    report.max_voc_error =
        std::max(report.max_voc_error, std::abs(model.open_circuit_voltage(c) - anchor.voc));
  }
  c.illuminance_lux = mpp_anchor.lux;
  const MppResult mpp = model.maximum_power_point(c);
  report.vmpp_error = std::abs(mpp.voltage - mpp_anchor.vmpp);
  report.impp_error = std::abs(mpp.current - mpp_anchor.impp);
  return report;
}

}  // namespace focv::pv
