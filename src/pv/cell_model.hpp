// Abstract photovoltaic cell model and derived curve quantities.
#pragma once

#include <string>
#include <vector>

#include "pv/conditions.hpp"

namespace focv::pv {

/// Maximum power point of a cell at given conditions.
struct MppResult {
  double voltage = 0.0;  ///< Vmpp [V]
  double current = 0.0;  ///< Impp [A]
  double power = 0.0;    ///< Pmpp [W]
};

/// Sampled I-V (and P-V) curve.
struct IVCurve {
  std::vector<double> voltage;
  std::vector<double> current;
  std::vector<double> power;
};

/// Interface of all PV cell models.
///
/// Convention: `current(v, c)` is the current the cell drives out of its
/// positive terminal when held at terminal voltage v >= 0; it is positive
/// below Voc and crosses zero at Voc.
class CellModel {
 public:
  virtual ~CellModel() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Active cell area [cm^2] (informational; current scales are absolute).
  [[nodiscard]] virtual double area_cm2() const = 0;

  /// Terminal current at terminal voltage v [A].
  [[nodiscard]] virtual double current(double v, const Conditions& c) const = 0;

  /// dI/dV at terminal voltage v [A/V]. Default: central difference.
  [[nodiscard]] virtual double current_derivative(double v, const Conditions& c) const;

  /// Upper bracket for voltage searches (e.g. built-in potential) [V].
  [[nodiscard]] virtual double voltage_bound(const Conditions& c) const = 0;

  /// Open-circuit voltage [V] (root of current()).
  [[nodiscard]] double open_circuit_voltage(const Conditions& c) const;

  /// Short-circuit current [A].
  [[nodiscard]] double short_circuit_current(const Conditions& c) const;

  /// Maximum power point via golden-section search over [0, Voc].
  [[nodiscard]] MppResult maximum_power_point(const Conditions& c) const;

  /// Same search with a caller-supplied Voc, skipping the root solve.
  /// `voc` must be this model's open_circuit_voltage(c): callers that
  /// already solved it (curve caches, sweep engines) avoid paying for it
  /// twice. Passing the identical value yields a bit-identical result.
  [[nodiscard]] MppResult maximum_power_point(const Conditions& c, double voc) const;

  /// Fractional open-circuit-voltage factor k = Vmpp / Voc.
  [[nodiscard]] double k_factor(const Conditions& c) const;

  /// Fill factor Pmpp / (Voc * Isc).
  [[nodiscard]] double fill_factor(const Conditions& c) const;

  /// Sampled curve from 0 to Voc (inclusive).
  [[nodiscard]] IVCurve curve(const Conditions& c, int points = 101) const;

  /// Power delivered when the cell is held at voltage v (0 outside the
  /// generating quadrant) [W].
  [[nodiscard]] double power_at(double v, const Conditions& c) const;

  /// Tracking efficiency of operating at voltage v instead of the MPP:
  /// power_at(v) / Pmpp, clamped to [0, 1].
  [[nodiscard]] double tracking_efficiency(double v, const Conditions& c) const;
};

}  // namespace focv::pv
