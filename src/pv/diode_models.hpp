// Concrete PV cell models.
//
// SingleDiodeModel: the classic five-parameter model (photocurrent,
// diode, shunt, series resistance). Good for crystalline cells, but it
// cannot simultaneously match an a-Si module's log-linear Voc(lux)
// characteristic and its low fill factor (k ~ 0.6): with constant Rsh,
// matching one anchor spoils the other (see DESIGN.md §5.2 and the
// ablation bench).
//
// MertenAsiModel: extends the single-diode model with the two loss terms
// that dominate amorphous silicon:
//  - a recombination current in the intrinsic layer,
//      Irec = Iph * chi / (Vbi - Vj)   (Merten et al.),
//  - a photocurrent-proportional shunt ("photo-shunt"),
//      Ish_photo = Iph * c * Vj,
// both of which scale with the photocurrent and therefore preserve the
// log-linear Voc(lux) relation while depressing the fill factor to the
// measured k ~ 0.6.
#pragma once

#include "pv/cell_model.hpp"

namespace focv::pv {

/// Classic 5-parameter single-diode model.
class SingleDiodeModel : public CellModel {
 public:
  struct Params {
    std::string name = "single-diode";
    double area_cm2 = 25.0;
    double photocurrent_per_lux = 0.4e-6;  ///< [A/lux] under fluorescent light
    double daylight_ratio = 0.55;          ///< daylight photocurrent per lux, relative
    double saturation_current = 1e-12;     ///< I0 at reference temperature [A]
    int series_cells = 7;                  ///< junctions in series
    double ideality = 1.6;                 ///< emission coefficient n
    double shunt_resistance = 20e6;        ///< [Ohm]
    double series_resistance = 100.0;      ///< [Ohm]
    double bandgap_ev = 1.7;               ///< for I0(T) scaling [eV]
    double iph_tempco = 0.0009;            ///< photocurrent tempco [1/K]
  };

  explicit SingleDiodeModel(Params params);

  [[nodiscard]] std::string name() const override { return params_.name; }
  [[nodiscard]] double area_cm2() const override { return params_.area_cm2; }
  [[nodiscard]] double current(double v, const Conditions& c) const override;
  [[nodiscard]] double current_derivative(double v, const Conditions& c) const override;
  [[nodiscard]] double voltage_bound(const Conditions& c) const override;

  [[nodiscard]] const Params& params() const { return params_; }

  /// Photocurrent at the given conditions [A].
  [[nodiscard]] double photocurrent(const Conditions& c) const;

 protected:
  /// The illuminance/temperature-dependent terms of the junction
  /// equation, hoisted out of the per-voltage evaluations: the implicit
  /// series-resistance solve calls junction_current/_derivative several
  /// times per terminal point, and each of these terms costs an exp() or
  /// a multiply chain that is invariant across the whole solve.
  struct OpPoint {
    double iph = 0.0;    ///< photocurrent [A]
    double slope = 0.0;  ///< thermal slope Ns * n * Vt(T) [V]
    double i0 = 0.0;     ///< temperature-scaled saturation current [A]
  };
  [[nodiscard]] OpPoint op_point(const Conditions& c) const;

  /// Junction current (before series resistance) and its dV derivative.
  [[nodiscard]] virtual double junction_current(double vj, const OpPoint& op) const;
  [[nodiscard]] virtual double junction_derivative(double vj, const OpPoint& op) const;

  /// Module thermal slope Ns * n * Vt(T) [V].
  [[nodiscard]] double thermal_slope(const Conditions& c) const;
  /// Temperature-scaled saturation current [A].
  [[nodiscard]] double saturation_current(const Conditions& c) const;

  /// Solve the implicit series-resistance equation I = f(V + I*Rs).
  [[nodiscard]] double solve_terminal_current(double v, const OpPoint& op) const;

  Params params_;
};

/// Amorphous-silicon model with recombination and photo-shunt losses.
class MertenAsiModel : public SingleDiodeModel {
 public:
  struct AsiParams {
    Params base;
    double builtin_voltage = 6.3;     ///< module built-in potential Vbi [V]
    double recombination_chi = 0.0;   ///< d^2/(mu*tau_eff) [V]
    double photo_shunt_per_volt = 0.0;///< c in Ish = Iph*c*Vj [1/V]
  };

  explicit MertenAsiModel(AsiParams params);

  [[nodiscard]] const AsiParams& asi_params() const { return asi_; }

 protected:
  [[nodiscard]] double junction_current(double vj, const OpPoint& op) const override;
  [[nodiscard]] double junction_derivative(double vj, const OpPoint& op) const override;

 private:
  AsiParams asi_;
};

}  // namespace focv::pv
