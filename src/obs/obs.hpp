// focv::obs — unified process-wide telemetry facade.
//
// One global switch, three global sinks:
//
//   if (obs::enabled()) {            // one relaxed atomic load
//     obs::metrics().add(id, 1.0);   // counters / gauges / histograms
//     obs::tracer().span(...);       // Chrome-trace spans
//     obs::events().emit(...);       // focv-obs/v1 JSONL domain events
//   }
//
// Telemetry is OFF by default: the compiled-in off path of every
// instrument site is the enabled() branch alone, so disabled overhead
// is one predictable-not-taken branch on an uncontended cache line
// (bench/micro case obs_overhead_* pins this below 2 % on the 24 h
// simulate_node run). Enabling telemetry only ever *observes* the
// simulation — instrument sites must not alter control flow, RNG draws
// or floating-point dataflow, which is what keeps exact-mode sweep
// exports byte-identical with tracing on or off (pinned by
// tests/obs/determinism_test.cpp).
//
// Instrument sites cache metric ids in function-local statics:
//
//   static const obs::CounterId id = obs::metrics().counter("node.steps");
//
// reset_all() clears recorded data but keeps registrations, so cached
// ids stay valid across runs.
#pragma once

#include <atomic>
#include <string>

#include "obs/event_log.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace focv::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Global telemetry switch (off by default).
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// Process-wide sinks. Construction is thread-safe and lazy; the
/// instances live until process exit.
[[nodiscard]] MetricsRegistry& metrics();
[[nodiscard]] Tracer& tracer();
[[nodiscard]] EventLog& events();

/// Clear all recorded telemetry (spans, events, metric values). Metric
/// registrations survive, so ids cached in static locals stay valid.
void reset_all();

/// Write the tracer's Chrome trace JSON to `path`.
void write_trace(const std::string& path);
/// Write the combined JSONL stream — every buffered event followed by
/// one line per metric — to `path` (schema focv-obs/v1 throughout).
void write_metrics_jsonl(const std::string& path);

/// Arm the process-wide flight recorder (obs/flight.hpp) and attach it
/// to the global event log: every event line rendered from now on is
/// retained in the recorder's fixed-size tail.
void arm_flight(FlightRecorder::Options options);
/// Detach from the event log and stop recording.
void disarm_flight();

/// Record an anomaly — a brown-out, a cold-start certification
/// failure, a Newton non-convergence. Emits `name` as a domain event,
/// bumps the `obs.anomalies` counter and, when the flight recorder is
/// armed, drains pending events into it and writes a
/// focv-obs-flight/v1 dump. No-op (one branch) while telemetry is off;
/// never alters simulation state.
void anomaly(std::string_view name, double sim_t,
             std::initializer_list<EventField> fields = {});

/// RAII enable/disable for tests and scoped captures.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : previous_(enabled()) { set_enabled(on); }
  ~ScopedEnable() { set_enabled(previous_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

}  // namespace focv::obs
