// focv::obs tracer: span-based tracing with monotonic timestamps and a
// Chrome trace_event JSON exporter (loadable in chrome://tracing and
// Perfetto).
//
// Two timelines share one file, separated by pid:
//   pid 1 ("wall clock")     — real execution time from a monotonic
//                              clock, microseconds since the tracer's
//                              origin; one tid per recording thread.
//   pid 2 ("simulated time") — domain events stamped in simulation
//                              seconds (exported as microseconds), e.g.
//                              the MPPT sample windows of a 24 h run.
//
// Hot path (obs v2): recording stages a compact complete ("ph":"X") or
// instant ("ph":"i") record into the calling thread's bounded ring
// (see obs/ring.hpp) — no lock, no allocation in steady state. The
// TraceEvent buffer is materialized when the tracer is read (events,
// event_count, to_chrome_json) or a full ring self-drains; reset()
// discards staged records outright. Export sorts by timestamp and
// prepends the process/thread metadata records.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/ring.hpp"

namespace focv::obs {

/// One key/value pair in a trace event's "args" object.
struct TraceArg {
  std::string name;
  bool is_number = true;
  double number = 0.0;
  std::string text;

  TraceArg(std::string n, double v) : name(std::move(n)), number(v) {}
  TraceArg(std::string n, std::string v)
      : name(std::move(n)), is_number(false), text(std::move(v)) {}
};

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';     ///< 'X' complete, 'i' instant
  int pid = 1;
  int tid = 0;
  double ts_us = 0.0;   ///< event start
  double dur_us = 0.0;  ///< complete events only
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  static constexpr int kWallPid = 1;  ///< wall-clock timeline
  static constexpr int kSimPid = 2;   ///< simulated-time timeline

  explicit Tracer(std::size_t ring_capacity = RingSink::kDefaultCapacity);

  /// Microseconds since the tracer's origin (monotonic).
  [[nodiscard]] double now_us() const;

  /// RAII span on the wall-clock timeline: starts at construction,
  /// records one complete event at destruction. Movable so it can live
  /// in std::optional at instrument sites that are conditionally on.
  class Span {
   public:
    Span(Tracer& tracer, std::string name, std::string category);
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    void arg(std::string name, double value);
    void arg(std::string name, std::string value);
    /// Record now instead of at destruction (idempotent).
    void finish();

   private:
    Tracer* tracer_;
    std::string name_;
    std::string category_;
    double start_us_ = 0.0;
    std::vector<TraceArg> args_;
  };

  [[nodiscard]] Span span(std::string name, std::string category) {
    return Span(*this, std::move(name), std::move(category));
  }

  /// Record a complete event with explicit timestamps. `pid` selects
  /// the timeline; sim-time events pass seconds * 1e6.
  void record_complete(std::string name, std::string category, double ts_us, double dur_us,
                       int pid, std::vector<TraceArg> args = {});
  /// Record an instant event.
  void record_instant(std::string name, std::string category, double ts_us, int pid,
                      std::vector<TraceArg> args = {});

  [[nodiscard]] std::size_t event_count() const;
  /// Events sorted by (pid, tid, ts); exposed for tests.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Full Chrome trace JSON ({"traceEvents": [...], ...}).
  [[nodiscard]] std::string to_chrome_json() const;
  void write_chrome_json(const std::string& path) const;

  /// Drop all recorded events and restart the clock origin. Staged
  /// records are discarded without materializing TraceEvents.
  void reset();

  /// The staging sink — exposed for overflow-policy control and the
  /// exact dropped-record counter.
  [[nodiscard]] RingSink& sink() const { return sink_; }

 private:
  void record(StagedRecord::Kind kind, std::string_view name, std::string_view category,
              double ts_us, double dur_us, int pid, const std::vector<TraceArg>& args);
  void consume(const StagedRecord& record);

  mutable std::mutex mutex_;  ///< events_ buffer
  std::vector<TraceEvent> events_;
  std::atomic<std::int64_t> origin_ns_;
  mutable RingSink sink_;  ///< after origin_ns_: consume() reads it
};

}  // namespace focv::obs
