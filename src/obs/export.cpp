#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

#include "common/require.hpp"

namespace focv::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip decimal (the byte-stable convention the fleet
/// and tournament exports use).
std::string fmt_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lg", &parsed);
  if (parsed == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char probe[40];
      std::snprintf(probe, sizeof probe, "%.*g", prec, v);
      std::sscanf(probe, "%lg", &parsed);
      if (parsed == v) return probe;
    }
  }
  return buf;
}

/// Prometheus sample value (exposition format allows +Inf/-Inf/NaN).
std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return fmt_number(v);
}

/// `node.curve.hits` -> `focv_node_curve_hits` (v0.0.4 name charset).
std::string prom_name(const std::string& name) {
  std::string out = "focv_";
  out.reserve(name.size() + out.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void append_kv_object(std::string& out, const char* key,
                      const std::vector<std::pair<std::string, double>>& kvs) {
  out += '"';
  out += key;
  out += "\":{";
  for (std::size_t i = 0; i < kvs.size(); ++i) {
    if (i) out += ',';
    out += '"' + json_escape(kvs[i].first) + "\":" + fmt_number(kvs[i].second);
  }
  out += '}';
}

}  // namespace

MetricsDelta diff_snapshots(const MetricsSnapshot& prev, const MetricsSnapshot& cur) {
  MetricsDelta delta;
  std::map<std::string, double> prev_counters(prev.counters.begin(), prev.counters.end());
  for (const auto& [name, value] : cur.counters) {
    const auto it = prev_counters.find(name);
    const double before = it == prev_counters.end() ? 0.0 : it->second;
    if (value != before) delta.counters.emplace_back(name, value - before);
  }
  std::map<std::string, double> prev_gauges(prev.gauges.begin(), prev.gauges.end());
  for (const auto& [name, value] : cur.gauges) {
    const auto it = prev_gauges.find(name);
    if (it == prev_gauges.end() || it->second != value) {
      delta.gauges.emplace_back(name, value);
    }
  }
  std::map<std::string, std::uint64_t> prev_obs;
  for (const HistogramSnapshot& h : prev.histograms) prev_obs[h.name] = h.count;
  for (const HistogramSnapshot& h : cur.histograms) {
    const auto it = prev_obs.find(h.name);
    const std::uint64_t before = it == prev_obs.end() ? 0 : it->second;
    if (h.count > before) delta.observations += h.count - before;
  }
  return delta;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = prom_name(name) + "_total";
    out += "# HELP " + p + " focv counter " + name + "\n";
    out += "# TYPE " + p + " counter\n";
    out += p + " " + prom_number(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string p = prom_name(name);
    out += "# HELP " + p + " focv gauge " + name + "\n";
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + prom_number(value) + "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string p = prom_name(h.name);
    out += "# HELP " + p + " focv histogram " + h.name + "\n";
    out += "# TYPE " + p + " histogram\n";
    // counts layout is [underflow, finite bins..., overflow]; the
    // cumulative le=edge series folds the underflow bucket into the
    // first edge (exact-edge observations land one bucket high, the
    // usual float-histogram approximation).
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i + 1 < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      out += p + "_bucket{le=\"" + prom_number(h.edges[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += p + "_sum " + prom_number(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string to_snapshot_json(const MetricsSnapshot& snapshot, std::uint64_t sequence,
                             const MetricsDelta* delta) {
  std::string out = "{\"schema\":\"focv-obs-snapshot/v1\",\"sequence\":" +
                    std::to_string(sequence) + ",";
  append_kv_object(out, "counters", snapshot.counters);
  out += ',';
  append_kv_object(out, "gauges", snapshot.gauges);
  out += ",\"histograms\":[";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    if (i) out += ',';
    out += "{\"name\":\"" + json_escape(h.name) +
           "\",\"count\":" + std::to_string(h.count) + ",\"sum\":" + fmt_number(h.sum) +
           ",\"mean\":" + fmt_number(h.mean()) + ",\"edges\":[";
    for (std::size_t k = 0; k < h.edges.size(); ++k) {
      if (k) out += ',';
      out += fmt_number(h.edges[k]);
    }
    out += "],\"counts\":[";
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      if (k) out += ',';
      out += std::to_string(h.counts[k]);
    }
    out += "]}";
  }
  out += ']';
  if (delta != nullptr) {
    out += ",\"delta\":{";
    append_kv_object(out, "counters", delta->counters);
    out += ',';
    append_kv_object(out, "gauges", delta->gauges);
    out += ",\"observations\":" + std::to_string(delta->observations) + '}';
  }
  out += "}\n";
  return out;
}

SnapshotPublisher::SnapshotPublisher(MetricsRegistry& registry, Options options)
    : registry_(registry), options_(std::move(options)) {}

bool SnapshotPublisher::maybe_publish() {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  if (sequence_ > 0 &&
      std::chrono::duration<double>(now - last_publish_).count() < options_.min_period_s) {
    return false;
  }
  const MetricsSnapshot cur = registry_.snapshot();
  if (sequence_ > 0 && diff_snapshots(last_, cur).empty()) return false;
  publish_locked();
  return true;
}

void SnapshotPublisher::publish() {
  std::lock_guard<std::mutex> lock(mutex_);
  publish_locked();
}

void SnapshotPublisher::publish_locked() {
  const MetricsSnapshot cur = registry_.snapshot();
  const MetricsDelta delta = diff_snapshots(last_, cur);
  ++sequence_;
  if (!options_.json_path.empty()) {
    std::ofstream f(options_.json_path, std::ios::binary);
    require(f.good(), "SnapshotPublisher: cannot open " + options_.json_path);
    f << to_snapshot_json(cur, sequence_, &delta);
    require(f.good(), "SnapshotPublisher: write failed for " + options_.json_path);
  }
  if (!options_.prometheus_path.empty()) {
    std::ofstream f(options_.prometheus_path, std::ios::binary);
    require(f.good(), "SnapshotPublisher: cannot open " + options_.prometheus_path);
    f << to_prometheus(cur);
    require(f.good(), "SnapshotPublisher: write failed for " + options_.prometheus_path);
  }
  if (options_.on_publish) options_.on_publish(cur, delta, sequence_);
  last_ = cur;
  last_publish_ = std::chrono::steady_clock::now();
}

std::uint64_t SnapshotPublisher::sequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sequence_;
}

MetricsSnapshot SnapshotPublisher::last() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_;
}

}  // namespace focv::obs
