#include "obs/event_log.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/require.hpp"

namespace focv::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

EventLog::EventLog() : origin_(std::chrono::steady_clock::now()) {}

void EventLog::emit(std::string_view event, double sim_t,
                    std::initializer_list<EventField> fields) {
  const double wall_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - origin_)
          .count();
  std::string line = "{\"schema\":\"focv-obs/v1\",\"kind\":\"event\",\"event\":\"" +
                     json_escape(event) + "\",\"sim_t\":" + json_number(sim_t) +
                     ",\"wall_us\":" + json_number(wall_us) + ",\"fields\":{";
  bool first = true;
  for (const EventField& f : fields) {
    if (!first) line += ',';
    first = false;
    line += '"' + json_escape(f.name) + "\":";
    if (f.is_number) {
      line += json_number(f.number);
    } else {
      line += '"' + json_escape(f.text) + '"';
    }
  }
  line += "}}";
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(std::move(line));
}

std::size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_.size();
}

std::string EventLog::to_jsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<std::string> EventLog::lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void EventLog::write_jsonl(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  require(f.good(), "EventLog: cannot open " + path);
  f << to_jsonl();
  require(f.good(), "EventLog: write failed for " + path);
}

void EventLog::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.clear();
  origin_ = std::chrono::steady_clock::now();
}

}  // namespace focv::obs
