#include "obs/event_log.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/require.hpp"

namespace focv::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

EventLog::EventLog(std::size_t ring_capacity)
    : origin_ns_(steady_now_ns()),
      sink_(ring_capacity, [this](const StagedRecord& r) { consume(r); }) {}

void EventLog::emit(std::string_view event, double sim_t,
                    std::initializer_list<EventField> fields) {
  require(fields.size() <= kMaxStagedFields, "EventLog: too many fields");
  const double wall_us =
      static_cast<double>(steady_now_ns() - origin_ns_.load(std::memory_order_relaxed)) *
      1e-3;
  RingSink::Slot slot = sink_.acquire();
  if (!slot) return;  // ring full under Overflow::kDrop — counted, not lost silently
  StagedRecord& r = *slot.record;
  r.kind = StagedRecord::Kind::kEvent;
  r.name = event;
  r.sim_t = sim_t;
  r.ts_us = wall_us;
  for (const EventField& f : fields) {
    StagedField& sf = r.fields[r.n_fields++];
    sf.name = f.name;
    sf.is_number = f.is_number;
    sf.number = f.number;
    sf.text = f.text;
  }
  sink_.publish(slot);
}

void EventLog::consume(const StagedRecord& r) {
  std::string line = "{\"schema\":\"focv-obs/v1\",\"kind\":\"event\",\"event\":\"" +
                     json_escape(r.name) + "\",\"sim_t\":" + json_number(r.sim_t) +
                     ",\"wall_us\":" + json_number(r.ts_us) + ",\"fields\":{";
  for (std::uint32_t i = 0; i < r.n_fields; ++i) {
    const StagedField& f = r.fields[i];
    if (i) line += ',';
    line += '"' + json_escape(f.name) + "\":";
    if (f.is_number) {
      line += json_number(f.number);
    } else {
      line += '"' + json_escape(f.text) + '"';
    }
  }
  line += "}}";
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(std::move(line));
  if (observer_) observer_(lines_.back());
}

std::size_t EventLog::size() const {
  sink_.drain();
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_.size();
}

std::string EventLog::to_jsonl() const {
  sink_.drain();
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<std::string> EventLog::lines() const {
  sink_.drain();
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void EventLog::write_jsonl(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  require(f.good(), "EventLog: cannot open " + path);
  f << to_jsonl();
  require(f.good(), "EventLog: write failed for " + path);
}

void EventLog::reset() {
  sink_.discard();
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.clear();
  origin_ns_.store(steady_now_ns(), std::memory_order_relaxed);
}

void EventLog::set_line_observer(std::function<void(const std::string&)> observer) {
  std::lock_guard<std::mutex> lock(mutex_);
  observer_ = std::move(observer);
}

}  // namespace focv::obs
