// focv::obs event log: structured domain events as JSONL (schema
// focv-obs/v1).
//
// Each emitted event becomes one line
//
//   {"schema":"focv-obs/v1","kind":"event","event":"<name>",
//    "sim_t":<seconds>,"wall_us":<microseconds>,"fields":{...}}
//
// `sim_t` is the simulation-time stamp the producing tier assigns (the
// MPPT controllers stamp sample windows, the transient engine stamps
// step rejections); `wall_us` is the monotonic wall-clock offset of the
// emit call, so the domain timeline can be correlated with the tracer's
// wall-clock spans. Lines are buffered in memory and written by
// write_jsonl()/to_jsonl(); the buffer is mutex-guarded and each line
// is rendered outside the lock.
#pragma once

#include <chrono>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace focv::obs {

/// One structured field of an event.
struct EventField {
  std::string name;
  bool is_number = true;
  double number = 0.0;
  std::string text;

  EventField(std::string n, double v) : name(std::move(n)), number(v) {}
  EventField(std::string n, int v) : name(std::move(n)), number(v) {}
  EventField(std::string n, std::uint64_t v)
      : name(std::move(n)), number(static_cast<double>(v)) {}
  EventField(std::string n, std::string v)
      : name(std::move(n)), is_number(false), text(std::move(v)) {}
  EventField(std::string n, const char* v)
      : name(std::move(n)), is_number(false), text(v) {}
};

class EventLog {
 public:
  EventLog();

  /// Emit one event stamped at simulation time `sim_t` [s].
  void emit(std::string_view event, double sim_t,
            std::initializer_list<EventField> fields = {});

  [[nodiscard]] std::size_t size() const;
  /// All buffered lines, emit order, newline-terminated.
  [[nodiscard]] std::string to_jsonl() const;
  void write_jsonl(const std::string& path) const;
  /// Buffered lines as separate strings (for tests).
  [[nodiscard]] std::vector<std::string> lines() const;

  /// Drop all buffered events and restart the wall clock origin.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace focv::obs
