// focv::obs event log: structured domain events as JSONL (schema
// focv-obs/v1).
//
// Each emitted event becomes one line
//
//   {"schema":"focv-obs/v1","kind":"event","event":"<name>",
//    "sim_t":<seconds>,"wall_us":<microseconds>,"fields":{...}}
//
// `sim_t` is the simulation-time stamp the producing tier assigns (the
// MPPT controllers stamp sample windows, the transient engine stamps
// step rejections); `wall_us` is the monotonic wall-clock offset of the
// emit call, so the domain timeline can be correlated with the tracer's
// wall-clock spans.
//
// Hot path (obs v2): emit() stages a compact record into the calling
// thread's bounded ring (see obs/ring.hpp) — no lock, no JSON
// rendering. Lines are rendered when the log is read (size, to_jsonl,
// write_jsonl, lines) or when a full ring self-drains; reset() discards
// staged records without rendering them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/ring.hpp"

namespace focv::obs {

/// One structured field of an event.
struct EventField {
  std::string name;
  bool is_number = true;
  double number = 0.0;
  std::string text;

  EventField(std::string n, double v) : name(std::move(n)), number(v) {}
  EventField(std::string n, int v) : name(std::move(n)), number(v) {}
  EventField(std::string n, std::uint64_t v)
      : name(std::move(n)), number(static_cast<double>(v)) {}
  EventField(std::string n, std::string v)
      : name(std::move(n)), is_number(false), text(std::move(v)) {}
  EventField(std::string n, const char* v)
      : name(std::move(n)), is_number(false), text(v) {}
};

class EventLog {
 public:
  explicit EventLog(std::size_t ring_capacity = RingSink::kDefaultCapacity);

  /// Emit one event stamped at simulation time `sim_t` [s].
  void emit(std::string_view event, double sim_t,
            std::initializer_list<EventField> fields = {});

  [[nodiscard]] std::size_t size() const;
  /// All buffered lines, emit order, newline-terminated.
  [[nodiscard]] std::string to_jsonl() const;
  void write_jsonl(const std::string& path) const;
  /// Buffered lines as separate strings (for tests).
  [[nodiscard]] std::vector<std::string> lines() const;

  /// Drop all buffered events and restart the wall clock origin.
  /// Staged-but-unrendered records are discarded without rendering.
  void reset();

  /// Observer invoked with each line as it is rendered at drain time —
  /// the flight recorder's feed. Pass nullptr to detach.
  void set_line_observer(std::function<void(const std::string&)> observer);

  /// The staging sink — exposed for overflow-policy control and the
  /// exact dropped-record counter (tests/obs/ring_test.cpp).
  [[nodiscard]] RingSink& sink() const { return sink_; }

 private:
  void consume(const StagedRecord& record);

  mutable std::mutex mutex_;  ///< lines_ + observer_
  std::vector<std::string> lines_;
  std::function<void(const std::string&)> observer_;
  std::atomic<std::int64_t> origin_ns_;
  mutable RingSink sink_;  ///< after origin_ns_: consume() reads it
};

}  // namespace focv::obs
