#include "obs/ring.hpp"

#include <algorithm>

namespace focv::obs {

namespace {

std::uint64_t next_sink_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

/// One thread's bounded SPSC buffer. The owning thread is the only
/// writer (head); the collector, serialized by RingSink::mutex_, is the
/// only reader (tail). Slots between tail and head are always fully
/// published: the producer acquires, fills and publishes sequentially.
struct RingSink::Ring {
  explicit Ring(std::size_t capacity) : slots(capacity) {}

  std::vector<StagedRecord> slots;
  std::atomic<std::uint64_t> head{0};  ///< next slot to publish
  std::atomic<std::uint64_t> tail{0};  ///< next slot to consume
  std::atomic<bool> retired{false};    ///< owning thread exited
  int tid = 0;                         ///< stable thread index
};

namespace {

/// TLS attachment: each (thread, sink) pair owns one ring. The holder
/// keeps the rings alive past sink teardown and flags them retired on
/// thread exit so the collector can reclaim them after a final drain.
struct TlsEntry {
  std::uint64_t uid = 0;
  std::shared_ptr<RingSink::Ring> ring;
};

struct TlsHolder {
  std::vector<TlsEntry> entries;
  ~TlsHolder() {
    for (TlsEntry& e : entries) e.ring->retired.store(true, std::memory_order_release);
  }
};

thread_local TlsHolder t_rings;
thread_local std::uint64_t t_fast_uid = 0;
thread_local RingSink::Ring* t_fast_ring = nullptr;

}  // namespace

RingSink::RingSink(std::size_t capacity, Consume consume)
    : uid_(next_sink_uid()),
      capacity_(capacity == 0 ? 1 : capacity),
      consume_(std::move(consume)) {}

RingSink::~RingSink() = default;

RingSink::Ring* RingSink::local_ring() {
  if (t_fast_uid == uid_) return t_fast_ring;
  for (const TlsEntry& e : t_rings.entries) {
    if (e.uid == uid_) {
      t_fast_uid = uid_;
      t_fast_ring = e.ring.get();
      return t_fast_ring;
    }
  }
  auto ring = std::make_shared<Ring>(capacity_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ring->tid = next_tid_++;
    rings_.push_back(ring);
  }
  t_rings.entries.push_back(TlsEntry{uid_, ring});
  t_fast_uid = uid_;
  t_fast_ring = ring.get();
  return t_fast_ring;
}

RingSink::Slot RingSink::acquire() {
  Ring* ring = local_ring();
  for (;;) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = ring->tail.load(std::memory_order_acquire);
    if (head - tail < capacity_) {
      StagedRecord& r = ring->slots[head % capacity_];
      r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
      r.tid = ring->tid;
      r.n_fields = 0;
      Slot slot;
      slot.record = &r;
      slot.ring = ring;
      return slot;
    }
    if (overflow_.load(std::memory_order_relaxed) == Overflow::kDrop) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return Slot{};
    }
    drain();  // self-drain: frees at least this thread's whole ring
  }
}

void RingSink::publish(Slot& slot) {
  auto* ring = static_cast<Ring*>(slot.ring);
  ring->head.store(ring->head.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  slot = Slot{};
}

std::size_t RingSink::sweep_locked(const Consume* consume) {
  // Snapshot each ring's published range, then replay across rings in
  // global sequence order (producers may keep publishing past the
  // snapshot; those records belong to the next epoch).
  struct Range {
    Ring* ring;
    std::uint64_t tail, head;
  };
  std::vector<Range> ranges;
  ranges.reserve(rings_.size());
  std::size_t total = 0;
  for (const std::shared_ptr<Ring>& ring : rings_) {
    const std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    ranges.push_back(Range{ring.get(), tail, head});
    total += static_cast<std::size_t>(head - tail);
  }
  if (total != 0 && consume != nullptr) {
    std::vector<const StagedRecord*> batch;
    batch.reserve(total);
    for (const Range& r : ranges) {
      for (std::uint64_t i = r.tail; i != r.head; ++i) {
        batch.push_back(&r.ring->slots[i % capacity_]);
      }
    }
    std::sort(batch.begin(), batch.end(),
              [](const StagedRecord* a, const StagedRecord* b) { return a->seq < b->seq; });
    for (const StagedRecord* record : batch) (*consume)(*record);
  }
  for (const Range& r : ranges) {
    r.ring->tail.store(r.head, std::memory_order_release);
  }
  // Reclaim rings whose thread exited and whose records are consumed.
  std::erase_if(rings_, [](const std::shared_ptr<Ring>& ring) {
    return ring->retired.load(std::memory_order_acquire) &&
           ring->tail.load(std::memory_order_relaxed) ==
               ring->head.load(std::memory_order_acquire);
  });
  return total;
}

std::size_t RingSink::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  return sweep_locked(&consume_);
}

std::size_t RingSink::discard() {
  std::lock_guard<std::mutex> lock(mutex_);
  return sweep_locked(nullptr);
}

std::size_t RingSink::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const std::shared_ptr<Ring>& ring : rings_) {
    total += static_cast<std::size_t>(ring->head.load(std::memory_order_acquire) -
                                      ring->tail.load(std::memory_order_relaxed));
  }
  return total;
}

std::size_t RingSink::ring_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rings_.size();
}

}  // namespace focv::obs
