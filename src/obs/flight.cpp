#include "obs/flight.hpp"

#include <fstream>

#include "common/require.hpp"

namespace focv::obs {

void FlightRecorder::arm(Options options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = std::move(options);
  if (options_.capacity == 0) options_.capacity = 1;
  armed_ = true;
  ring_.clear();
  ring_.reserve(options_.capacity);
  next_ = 0;
  noted_ = 0;
  evicted_ = 0;
  dumps_ = 0;
}

void FlightRecorder::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
}

bool FlightRecorder::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

void FlightRecorder::note(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_) return;
  ++noted_;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(line);
    return;
  }
  // Full: overwrite the oldest slot (next_ is the ring cursor).
  ring_[next_] = line;
  next_ = (next_ + 1) % options_.capacity;
  ++evicted_;
}

std::string FlightRecorder::to_json_locked(std::string_view reason,
                                           int dump_number) const {
  std::string out = "{\"schema\":\"focv-obs-flight/v1\",\"reason\":\"";
  out += reason;
  out += "\",\"dump\":" + std::to_string(dump_number) +
         ",\"events_seen\":" + std::to_string(noted_) +
         ",\"events_evicted\":" + std::to_string(evicted_) + ",\"events\":[\n";
  // Oldest first: the cursor points at the oldest slot once wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (i) out += ",\n";
    out += ring_[(next_ + i) % ring_.size()];
  }
  out += "\n]}\n";
  return out;
}

std::string FlightRecorder::to_json(std::string_view reason) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return to_json_locked(reason, dumps_);
}

std::string FlightRecorder::dump_path_locked(int dump_number) const {
  if (dump_number <= 1) return options_.path;
  const std::size_t dot = options_.path.rfind('.');
  const std::size_t slash = options_.path.rfind('/');
  std::string suffix = "-";
  suffix += std::to_string(dump_number);
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return options_.path + suffix;
  }
  return options_.path.substr(0, dot) + suffix + options_.path.substr(dot);
}

bool FlightRecorder::dump(std::string_view reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_ || options_.path.empty()) return false;
  if (dumps_ >= options_.max_dumps) return false;
  ++dumps_;
  const std::string path = dump_path_locked(dumps_);
  std::ofstream f(path, std::ios::binary);
  require(f.good(), "FlightRecorder: cannot open " + path);
  f << to_json_locked(reason, dumps_);
  require(f.good(), "FlightRecorder: write failed for " + path);
  return true;
}

int FlightRecorder::dumps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumps_;
}

std::uint64_t FlightRecorder::noted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return noted_;
}

std::uint64_t FlightRecorder::evicted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

FlightRecorder& flight() {
  static FlightRecorder* instance = new FlightRecorder();  // never destroyed
  return *instance;
}

}  // namespace focv::obs
