#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/require.hpp"

namespace focv::obs {

namespace {

std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t find_or_append(std::vector<std::string>& names, const std::string& name,
                             std::uint32_t capacity, const char* kind) {
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  require(names.size() < capacity,
          std::string("MetricsRegistry: ") + kind + " capacity exhausted at '" + name + "'");
  names.push_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  if (!std::isfinite(v)) return "null";
  return buf;
}

}  // namespace

MetricsRegistry::Shard::Shard()
    : hist_counts(static_cast<std::size_t>(kMaxHistograms) * (kMaxBins + 2)) {}

MetricsRegistry::MetricsRegistry() : uid_(next_registry_uid()) {}
MetricsRegistry::~MetricsRegistry() = default;

CounterId MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return CounterId{find_or_append(counter_names_, name, kMaxCounters, "counter")};
}

GaugeId MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return GaugeId{find_or_append(gauge_names_, name, kMaxGauges, "gauge")};
}

HistogramId MetricsRegistry::histogram(const std::string& name, const HistogramSpec& spec) {
  require(spec.lo > 0.0 && spec.hi > spec.lo,
          "MetricsRegistry: histogram '" + name + "' needs 0 < lo < hi");
  require(spec.bins >= 1 && spec.bins <= kMaxBins,
          "MetricsRegistry: histogram '" + name + "' bin count out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint32_t i = 0; i < histogram_names_.size(); ++i) {
    if (histogram_names_[i] != name) continue;
    const HistogramSpec& prior = hist_meta_[i].spec;
    require(prior.lo == spec.lo && prior.hi == spec.hi && prior.bins == spec.bins,
            "MetricsRegistry: histogram '" + name + "' re-registered with a different spec");
    return HistogramId{i};
  }
  require(histogram_names_.size() < kMaxHistograms,
          "MetricsRegistry: histogram capacity exhausted at '" + name + "'");
  const auto index = static_cast<std::uint32_t>(histogram_names_.size());
  HistMeta meta;
  meta.spec = spec;
  meta.log_lo = std::log(spec.lo);
  meta.inv_log_step = spec.bins / (std::log(spec.hi) - std::log(spec.lo));
  meta.slot = index * static_cast<std::uint32_t>(kMaxBins + 2);
  hist_meta_[index] = meta;
  histogram_names_.push_back(name);
  return HistogramId{index};
}

void MetricsRegistry::atomic_add(std::atomic<double>& slot, double delta) {
  // fetch_add on atomic<double> is C++20; spelled as a CAS loop for
  // toolchains whose libatomic lowers it the same way anyway.
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  struct TlsEntry {
    std::uint64_t uid = 0;
    Shard* shard = nullptr;
  };
  // One-entry fast cache plus a slow list for threads touching several
  // registries (tests, nested sweeps).
  thread_local TlsEntry fast;
  thread_local std::vector<TlsEntry> slow;
  if (fast.uid == uid_) return *fast.shard;
  for (const TlsEntry& e : slow) {
    if (e.uid == uid_) {
      fast = e;
      return *e.shard;
    }
  }
  Shard* shard = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    shard = shards_.back().get();
  }
  fast = TlsEntry{uid_, shard};
  slow.push_back(fast);
  return *shard;
}

void MetricsRegistry::add(CounterId id, double delta) {
  atomic_add(local_shard().counters[id.index], delta);
}

void MetricsRegistry::set(GaugeId id, double value) {
  gauges_[id.index].store(value, std::memory_order_relaxed);
}

int MetricsRegistry::bucket_index(const HistogramSpec& spec, double value) {
  if (!(value >= spec.lo)) return 0;  // underflow (also NaN)
  if (value >= spec.hi) return spec.bins + 1;
  const double pos = (std::log(value) - std::log(spec.lo)) *
                     (spec.bins / (std::log(spec.hi) - std::log(spec.lo)));
  const int bin = static_cast<int>(pos);
  return 1 + std::clamp(bin, 0, spec.bins - 1);
}

std::vector<double> MetricsRegistry::bin_edges(const HistogramSpec& spec) {
  std::vector<double> edges(static_cast<std::size_t>(spec.bins) + 1);
  const double ratio = std::log(spec.hi / spec.lo) / spec.bins;
  for (int i = 0; i <= spec.bins; ++i) {
    edges[static_cast<std::size_t>(i)] = spec.lo * std::exp(ratio * i);
  }
  edges.front() = spec.lo;
  edges.back() = spec.hi;
  return edges;
}

void MetricsRegistry::observe(HistogramId id, double value) {
  Shard& shard = local_shard();
  const HistMeta& meta = hist_meta_[id.index];
  int bin;
  if (!(value >= meta.spec.lo)) {
    bin = 0;
  } else if (value >= meta.spec.hi) {
    bin = meta.spec.bins + 1;
  } else {
    const int raw = static_cast<int>((std::log(value) - meta.log_lo) * meta.inv_log_step);
    bin = 1 + std::clamp(raw, 0, meta.spec.bins - 1);
  }
  shard.hist_counts[meta.slot + static_cast<std::uint32_t>(bin)].fetch_add(
      1, std::memory_order_relaxed);
  shard.hist_n[id.index].fetch_add(1, std::memory_order_relaxed);
  atomic_add(shard.hist_sum[id.index], value);
}

void MetricsRegistry::flush(HistogramId id, HistogramBatch& batch) {
  if (batch.n_ == 0) return;
  const HistMeta& meta = hist_meta_[id.index];
  require(meta.spec.lo == batch.spec_.lo && meta.spec.hi == batch.spec_.hi &&
              meta.spec.bins == batch.spec_.bins,
          "MetricsRegistry::flush: batch spec does not match the histogram");
  Shard& shard = local_shard();
  for (int b = 0; b < meta.spec.bins + 2; ++b) {
    const std::uint64_t c = batch.counts_[static_cast<std::size_t>(b)];
    if (c != 0) {
      shard.hist_counts[meta.slot + static_cast<std::uint32_t>(b)].fetch_add(
          c, std::memory_order_relaxed);
    }
  }
  shard.hist_n[id.index].fetch_add(batch.n_, std::memory_order_relaxed);
  atomic_add(shard.hist_sum[id.index], batch.sum_);
  batch.clear();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    double total = 0.0;
    for (const auto& shard : shards_) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(counter_names_[i], total);
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges.emplace_back(gauge_names_[i], gauges_[i].load(std::memory_order_relaxed));
  }
  snap.histograms.reserve(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    const HistMeta& meta = hist_meta_[i];
    HistogramSnapshot h;
    h.name = histogram_names_[i];
    h.spec = meta.spec;
    h.edges = bin_edges(meta.spec);
    h.counts.assign(static_cast<std::size_t>(meta.spec.bins) + 2, 0);
    for (const auto& shard : shards_) {
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        h.counts[b] += shard->hist_counts[meta.slot + b].load(std::memory_order_relaxed);
      }
      h.count += shard->hist_n[i].load(std::memory_order_relaxed);
      h.sum += shard->hist_sum[i].load(std::memory_order_relaxed);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

double MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] != name) continue;
    double total = 0.0;
    for (const auto& shard : shards_) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    return total;
  }
  return 0.0;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0.0, std::memory_order_relaxed);
    for (auto& c : shard->hist_counts) c.store(0, std::memory_order_relaxed);
    for (auto& s : shard->hist_sum) s.store(0.0, std::memory_order_relaxed);
    for (auto& n : shard->hist_n) n.store(0, std::memory_order_relaxed);
  }
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
}

void MetricsRegistry::append_jsonl(std::string& out) const {
  const MetricsSnapshot snap = snapshot();
  for (const auto& [name, value] : snap.counters) {
    out += "{\"schema\":\"focv-obs/v1\",\"kind\":\"counter\",\"name\":\"" + name +
           "\",\"value\":" + json_number(value) + "}\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "{\"schema\":\"focv-obs/v1\",\"kind\":\"gauge\",\"name\":\"" + name +
           "\",\"value\":" + json_number(value) + "}\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    out += "{\"schema\":\"focv-obs/v1\",\"kind\":\"histogram\",\"name\":\"" + h.name +
           "\",\"count\":" + std::to_string(h.count) + ",\"sum\":" + json_number(h.sum) +
           ",\"edges\":[";
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      if (i) out += ',';
      out += json_number(h.edges[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "]}\n";
  }
}

}  // namespace focv::obs
