// focv::obs metrics export: Prometheus text exposition, snapshot JSON,
// and a diff-based periodic publisher.
//
// This is the surface a long-lived focv::serve daemon mounts: take a
// MetricsSnapshot at a quiescent point (or periodically), render it as
//
//   * Prometheus text exposition format v0.0.4 — counters exported
//     with a `_total` suffix, gauges verbatim, histograms as cumulative
//     `_bucket{le="..."}` series plus `_sum`/`_count`; metric names are
//     sanitized (`node.steps` -> `focv_node_steps_total`), and
//   * `focv-obs-snapshot/v1` JSON — the full merged state plus a
//     `delta` object naming exactly what changed since the previous
//     snapshot, so pollers can skip unchanged publishes.
//
// SnapshotPublisher owns the previous-snapshot state: publish() writes
// both renderings unconditionally, maybe_publish() rate-limits to
// `min_period_s` and skips entirely when the diff is empty.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace focv::obs {

/// What changed between two MetricsSnapshots.
struct MetricsDelta {
  /// Counters whose merged value moved: (name, new - old).
  std::vector<std::pair<std::string, double>> counters;
  /// Gauges whose value changed: (name, new value).
  std::vector<std::pair<std::string, double>> gauges;
  /// New histogram observations across all histograms.
  std::uint64_t observations = 0;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && observations == 0;
  }
};

/// Diff `cur` against `prev` (metrics absent from `prev` count from 0).
[[nodiscard]] MetricsDelta diff_snapshots(const MetricsSnapshot& prev,
                                          const MetricsSnapshot& cur);

/// Prometheus text exposition format v0.0.4.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// focv-obs-snapshot/v1 JSON. `delta` may be null (first snapshot).
[[nodiscard]] std::string to_snapshot_json(const MetricsSnapshot& snapshot,
                                           std::uint64_t sequence,
                                           const MetricsDelta* delta = nullptr);

class SnapshotPublisher {
 public:
  struct Options {
    /// maybe_publish() publishes at most once per period.
    double min_period_s = 1.0;
    /// focv-obs-snapshot/v1 JSON, rewritten on each publish ("" = skip).
    std::string json_path;
    /// Prometheus text exposition, rewritten on each publish ("" = skip).
    std::string prometheus_path;
    /// Hook invoked per publish (serve's in-memory mount point).
    std::function<void(const MetricsSnapshot&, const MetricsDelta&, std::uint64_t sequence)>
        on_publish;
  };

  SnapshotPublisher(MetricsRegistry& registry, Options options);

  /// Periodic tick: publish when `min_period_s` has elapsed AND the
  /// diff against the last published snapshot is non-empty. Returns
  /// whether a publish happened.
  bool maybe_publish();
  /// Publish unconditionally (end-of-run flush).
  void publish();

  /// Snapshots published so far.
  [[nodiscard]] std::uint64_t sequence() const;
  /// The last published snapshot (empty before the first publish).
  [[nodiscard]] MetricsSnapshot last() const;

 private:
  void publish_locked();

  MetricsRegistry& registry_;
  const Options options_;

  mutable std::mutex mutex_;
  MetricsSnapshot last_;
  std::uint64_t sequence_ = 0;
  std::chrono::steady_clock::time_point last_publish_{};
};

}  // namespace focv::obs
