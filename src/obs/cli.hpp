// focv::obs CLI plumbing: one struct every driver binary shares for the
// telemetry flags, so `--trace/--metrics/--snapshot/--flight` behave
// identically across quickstart, sizing_tool, comparison_sota,
// fleet_demo, fleet_scale and tournament.
//
//   obs::CliTelemetry telemetry;
//   for (int i = 1; i < argc; ++i) {
//     if (telemetry.consume(argc, argv, i)) continue;
//     ...binary-specific flags...
//   }
//   telemetry.begin();     // enables obs / arms the flight recorder
//   ...workload...
//   telemetry.finish();    // writes every requested artifact
//
// Artifacts:
//   --trace PATH     Chrome trace_event JSON (wall + simulated time)
//   --metrics PATH   focv-obs/v1 JSONL (events, counters, histograms)
//   --snapshot PATH  focv-obs-snapshot/v1 JSON + Prometheus text
//                    exposition at PATH.prom
//   --flight PATH    focv-obs-flight/v1 anomaly dumps; if no anomaly
//                    fired, finish() writes one "shutdown" dump so the
//                    tail is never silently lost
#pragma once

#include <string>

namespace focv::obs {

struct CliTelemetry {
  std::string trace_path;
  std::string metrics_path;
  std::string snapshot_path;
  std::string flight_path;

  /// Consume argv[i] (and its value) when it is a telemetry flag;
  /// advances `i` past the value. Exits with an error message on a
  /// telemetry flag with a missing value.
  bool consume(int argc, char** argv, int& i);

  /// Any artifact requested?
  [[nodiscard]] bool any() const {
    return !trace_path.empty() || !metrics_path.empty() || !snapshot_path.empty() ||
           !flight_path.empty();
  }

  /// Enable telemetry and arm the flight recorder (no-op when !any()).
  void begin() const;
  /// Write every requested artifact, one summary line each (stdout).
  void finish() const;

  /// One-line flag summary for --help text.
  [[nodiscard]] static const char* usage() {
    return "[--trace trace.json] [--metrics metrics.jsonl] "
           "[--snapshot snapshot.json] [--flight flight.json]";
  }
};

}  // namespace focv::obs
