#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/require.hpp"

namespace focv::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void append_args(std::string& out, const std::vector<TraceArg>& args) {
  out += "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ',';
    out += '"' + json_escape(args[i].name) + "\":";
    if (args[i].is_number) {
      out += json_number(args[i].number);
    } else {
      out += '"' + json_escape(args[i].text) + '"';
    }
  }
  out += '}';
}

}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : origin_ns_(steady_now_ns()),
      sink_(ring_capacity, [this](const StagedRecord& r) { consume(r); }) {}

double Tracer::now_us() const {
  return static_cast<double>(steady_now_ns() -
                             origin_ns_.load(std::memory_order_relaxed)) *
         1e-3;
}

void Tracer::record(StagedRecord::Kind kind, std::string_view name,
                    std::string_view category, double ts_us, double dur_us, int pid,
                    const std::vector<TraceArg>& args) {
  require(args.size() <= kMaxStagedFields, "Tracer: too many args");
  RingSink::Slot slot = sink_.acquire();
  if (!slot) return;  // ring full under Overflow::kDrop — counted
  StagedRecord& r = *slot.record;
  r.kind = kind;
  r.name = name;
  r.category = category;
  r.ts_us = ts_us;
  r.dur_us = dur_us;
  r.pid = pid;
  for (const TraceArg& a : args) {
    StagedField& sf = r.fields[r.n_fields++];
    sf.name = a.name;
    sf.is_number = a.is_number;
    sf.number = a.number;
    sf.text = a.text;
  }
  sink_.publish(slot);
}

void Tracer::record_complete(std::string name, std::string category, double ts_us,
                             double dur_us, int pid, std::vector<TraceArg> args) {
  record(StagedRecord::Kind::kComplete, name, category, ts_us, dur_us, pid, args);
}

void Tracer::record_instant(std::string name, std::string category, double ts_us, int pid,
                            std::vector<TraceArg> args) {
  record(StagedRecord::Kind::kInstant, name, category, ts_us, 0.0, pid, args);
}

void Tracer::consume(const StagedRecord& r) {
  TraceEvent e;
  e.name = r.name;
  e.category = r.category;
  e.phase = r.kind == StagedRecord::Kind::kInstant ? 'i' : 'X';
  e.pid = r.pid;
  e.tid = r.tid;
  e.ts_us = r.ts_us;
  e.dur_us = r.dur_us;
  e.args.reserve(r.n_fields);
  for (std::uint32_t i = 0; i < r.n_fields; ++i) {
    const StagedField& f = r.fields[i];
    if (f.is_number) {
      e.args.emplace_back(f.name, f.number);
    } else {
      e.args.emplace_back(f.name, f.text);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(e));
}

std::size_t Tracer::event_count() const {
  sink_.drain();
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  sink_.drain();
  std::vector<TraceEvent> copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = events_;
  }
  std::stable_sort(copy.begin(), copy.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.pid != b.pid) return a.pid < b.pid;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.ts_us < b.ts_us;
  });
  return copy;
}

std::string Tracer::to_chrome_json() const {
  const std::vector<TraceEvent> sorted = events();
  std::string out = "{\"traceEvents\":[\n";
  // Metadata first: name the two timelines so Perfetto labels them.
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"focv wall clock\"}},\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"focv simulated time\"}}";
  for (const TraceEvent& e : sorted) {
    out += ",\n{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
           json_escape(e.category) + "\",\"ph\":\"" + e.phase + "\",\"pid\":" +
           std::to_string(e.pid) + ",\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + json_number(e.ts_us);
    if (e.phase == 'X') out += ",\"dur\":" + json_number(e.dur_us);
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    out += ',';
    append_args(out, e.args);
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"focv-obs/v1\"}}\n";
  return out;
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  require(f.good(), "Tracer: cannot open " + path);
  f << to_chrome_json();
  require(f.good(), "Tracer: write failed for " + path);
}

void Tracer::reset() {
  sink_.discard();
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  origin_ns_.store(steady_now_ns(), std::memory_order_relaxed);
}

// ----------------------------------------------------------------- Span

Tracer::Span::Span(Tracer& tracer, std::string name, std::string category)
    : tracer_(&tracer),
      name_(std::move(name)),
      category_(std::move(category)),
      start_us_(tracer.now_us()) {}

Tracer::Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      start_us_(other.start_us_),
      args_(std::move(other.args_)) {
  other.tracer_ = nullptr;
}

void Tracer::Span::arg(std::string name, double value) {
  args_.emplace_back(std::move(name), value);
}

void Tracer::Span::arg(std::string name, std::string value) {
  args_.emplace_back(std::move(name), std::move(value));
}

void Tracer::Span::finish() {
  if (tracer_ == nullptr) return;
  const double end_us = tracer_->now_us();
  tracer_->record(StagedRecord::Kind::kComplete, name_, category_, start_us_,
                  end_us - start_us_, kWallPid, args_);
  tracer_ = nullptr;
}

Tracer::Span::~Span() { finish(); }

}  // namespace focv::obs
