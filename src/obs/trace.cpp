#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/require.hpp"

namespace focv::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void append_args(std::string& out, const std::vector<TraceArg>& args) {
  out += "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ',';
    out += '"' + json_escape(args[i].name) + "\":";
    if (args[i].is_number) {
      out += json_number(args[i].number);
    } else {
      out += '"' + json_escape(args[i].text) + '"';
    }
  }
  out += '}';
}

}  // namespace

Tracer::Tracer() : origin_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - origin_)
      .count();
}

int Tracer::tid_for_current_thread_locked() {
  const auto id = std::this_thread::get_id();
  const auto it = thread_ids_.find(id);
  if (it != thread_ids_.end()) return it->second;
  const int tid = static_cast<int>(thread_ids_.size());
  thread_ids_.emplace(id, tid);
  return tid;
}

void Tracer::record_complete(std::string name, std::string category, double ts_us,
                             double dur_us, int pid, std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'X';
  e.pid = pid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mutex_);
  e.tid = tid_for_current_thread_locked();
  events_.push_back(std::move(e));
}

void Tracer::record_instant(std::string name, std::string category, double ts_us, int pid,
                            std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'i';
  e.pid = pid;
  e.ts_us = ts_us;
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mutex_);
  e.tid = tid_for_current_thread_locked();
  events_.push_back(std::move(e));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = events_;
  }
  std::stable_sort(copy.begin(), copy.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.pid != b.pid) return a.pid < b.pid;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.ts_us < b.ts_us;
  });
  return copy;
}

std::string Tracer::to_chrome_json() const {
  const std::vector<TraceEvent> sorted = events();
  std::string out = "{\"traceEvents\":[\n";
  // Metadata first: name the two timelines so Perfetto labels them.
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"focv wall clock\"}},\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"focv simulated time\"}}";
  for (const TraceEvent& e : sorted) {
    out += ",\n{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
           json_escape(e.category) + "\",\"ph\":\"" + e.phase + "\",\"pid\":" +
           std::to_string(e.pid) + ",\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + json_number(e.ts_us);
    if (e.phase == 'X') out += ",\"dur\":" + json_number(e.dur_us);
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    out += ',';
    append_args(out, e.args);
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"focv-obs/v1\"}}\n";
  return out;
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  require(f.good(), "Tracer: cannot open " + path);
  f << to_chrome_json();
  require(f.good(), "Tracer: write failed for " + path);
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  thread_ids_.clear();
  origin_ = std::chrono::steady_clock::now();
}

// ----------------------------------------------------------------- Span

Tracer::Span::Span(Tracer& tracer, std::string name, std::string category)
    : tracer_(&tracer),
      name_(std::move(name)),
      category_(std::move(category)),
      start_us_(tracer.now_us()) {}

Tracer::Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      start_us_(other.start_us_),
      args_(std::move(other.args_)) {
  other.tracer_ = nullptr;
}

void Tracer::Span::arg(std::string name, double value) {
  args_.emplace_back(std::move(name), value);
}

void Tracer::Span::arg(std::string name, std::string value) {
  args_.emplace_back(std::move(name), std::move(value));
}

void Tracer::Span::finish() {
  if (tracer_ == nullptr) return;
  const double end_us = tracer_->now_us();
  tracer_->record_complete(std::move(name_), std::move(category_), start_us_,
                           end_us - start_us_, kWallPid, std::move(args_));
  tracer_ = nullptr;
}

Tracer::Span::~Span() { finish(); }

}  // namespace focv::obs
