#include "obs/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/export.hpp"
#include "obs/obs.hpp"

namespace focv::obs {

bool CliTelemetry::consume(int argc, char** argv, int& i) {
  const auto take = [&](const char* flag, std::string& out) {
    if (std::strcmp(argv[i], flag) != 0) return false;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a path\n", flag);
      std::exit(2);
    }
    out = argv[++i];
    return true;
  };
  return take("--trace", trace_path) || take("--metrics", metrics_path) ||
         take("--snapshot", snapshot_path) || take("--flight", flight_path);
}

void CliTelemetry::begin() const {
  if (!any()) return;
  set_enabled(true);
  if (!flight_path.empty()) {
    FlightRecorder::Options options;
    options.path = flight_path;
    arm_flight(options);
  }
}

void CliTelemetry::finish() const {
  if (!any()) return;
  if (!trace_path.empty()) {
    write_trace(trace_path);
    std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                tracer().event_count());
  }
  if (!metrics_path.empty()) {
    write_metrics_jsonl(metrics_path);
    std::printf("wrote %s (%zu domain events + metrics)\n", metrics_path.c_str(),
                events().size());
  }
  if (!snapshot_path.empty()) {
    SnapshotPublisher::Options options;
    options.json_path = snapshot_path;
    options.prometheus_path = snapshot_path + ".prom";
    SnapshotPublisher publisher(metrics(), options);
    publisher.publish();
    std::printf("wrote %s + %s.prom (snapshot %llu)\n", snapshot_path.c_str(),
                snapshot_path.c_str(),
                static_cast<unsigned long long>(publisher.sequence()));
  }
  if (!flight_path.empty()) {
    events().sink().drain();  // flush the tail into the recorder
    if (flight().dumps() == 0) flight().dump("shutdown");
    std::printf("wrote %s (%d flight dump%s, %llu events seen)\n", flight_path.c_str(),
                flight().dumps(), flight().dumps() == 1 ? "" : "s",
                static_cast<unsigned long long>(flight().noted()));
  }
}

}  // namespace focv::obs
