// focv::obs metrics: counters, gauges and log-binned histograms with
// lock-free per-thread shards.
//
// Write path: an instrument site registers a metric once (idempotent,
// by name) and then records through the returned id. Records land in a
// per-thread shard — plain relaxed atomic adds on cache lines owned by
// the writing thread, no locks, no allocation after the shard exists —
// so instrumentation can sit on simulation hot paths. The registration
// mutex is only taken to create metrics, attach a new thread's shard,
// or take a snapshot.
//
// Read path: snapshot() merges every shard into plain structs. Values
// observed concurrently with writers are momentarily torn-free per slot
// (each slot is a single atomic) but not cross-slot consistent; the
// intended use is snapshotting at quiescent points (end of a run / end
// of a sweep), where the merge is exact.
//
// Capacity is fixed at compile time (kMaxCounters / kMaxGauges /
// kMaxHistograms / kMaxBins) so shards never reallocate under writers;
// exceeding a capacity throws at registration time, never on the hot
// path. Lifetime: the registry must outlive every thread that records
// into it (true for the process-wide registry in obs.hpp and for
// scoped per-job registries, which are only written by their own job).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace focv::obs {

/// Log-spaced histogram layout: `bins` finite buckets spanning
/// [lo, hi) geometrically, plus an underflow and an overflow bucket.
struct HistogramSpec {
  double lo = 1.0;   ///< lower edge of the first finite bin (> 0)
  double hi = 1e6;   ///< upper edge of the last finite bin (> lo)
  int bins = 24;     ///< finite bin count (1 .. kMaxBins)
};

/// Typed metric handles. Values are indices into the owning registry;
/// handles from one registry must not be used with another.
struct CounterId { std::uint32_t index = 0; };
struct GaugeId { std::uint32_t index = 0; };
struct HistogramId { std::uint32_t index = 0; };

/// Merged, plain-data view of a registry (see snapshot()).
struct HistogramSnapshot {
  std::string name;
  HistogramSpec spec;
  std::vector<double> edges;         ///< bins+1 finite bin edges
  std::vector<std::uint64_t> counts; ///< bins+2: [underflow, bins..., overflow]
  std::uint64_t count = 0;           ///< total observations
  double sum = 0.0;                  ///< sum of observed values
  [[nodiscard]] double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class HistogramBatch;  // below

class MetricsRegistry {
 public:
  static constexpr std::uint32_t kMaxCounters = 160;
  static constexpr std::uint32_t kMaxGauges = 32;
  static constexpr std::uint32_t kMaxHistograms = 32;
  static constexpr int kMaxBins = 64;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or look up) a metric by name. Idempotent: the same name
  /// always yields the same id, so instrument sites can cache the
  /// result in a static local. Throws PreconditionError on capacity
  /// overflow or (histograms) on a spec mismatch with a prior
  /// registration.
  CounterId counter(const std::string& name);
  GaugeId gauge(const std::string& name);
  HistogramId histogram(const std::string& name, const HistogramSpec& spec);

  /// Record. Lock-free; safe from any thread.
  void add(CounterId id, double delta = 1.0);
  void set(GaugeId id, double value);
  void observe(HistogramId id, double value);
  /// Merge a HistogramBatch into `id` (one atomic RMW per touched
  /// bucket, instead of three per observation) and clear the batch.
  /// Throws PreconditionError when the batch's spec does not match the
  /// histogram's. No-op on an empty batch.
  void flush(HistogramId id, HistogramBatch& batch);

  /// Merged view across all shards.
  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Merged value of one counter (0.0 when the name is unregistered).
  [[nodiscard]] double counter_value(const std::string& name) const;

  /// Zero every recorded value; registrations (names, ids) survive.
  void reset();

  /// Bucket index (0 = underflow .. bins+1 = overflow) for a value —
  /// exposed so tests can pin the bin-edge contract.
  [[nodiscard]] static int bucket_index(const HistogramSpec& spec, double value);
  /// The bins+1 finite bin edges of a spec.
  [[nodiscard]] static std::vector<double> bin_edges(const HistogramSpec& spec);

  /// Append one JSONL line per metric (schema focv-obs/v1) to `out`.
  void append_jsonl(std::string& out) const;

 private:
  struct HistMeta {
    HistogramSpec spec;
    double log_lo = 0.0;
    double inv_log_step = 0.0;  ///< bins / log(hi/lo)
    std::uint32_t slot = 0;     ///< first bucket slot in Shard::hist_counts
  };

  struct Shard {
    std::array<std::atomic<double>, kMaxCounters> counters{};
    /// Flattened histogram buckets: kMaxHistograms * (kMaxBins + 2).
    std::vector<std::atomic<std::uint64_t>> hist_counts;
    std::array<std::atomic<double>, kMaxHistograms> hist_sum{};
    std::array<std::atomic<std::uint64_t>, kMaxHistograms> hist_n{};
    Shard();
  };

  Shard& local_shard();
  static void atomic_add(std::atomic<double>& slot, double delta);

  const std::uint64_t uid_;  ///< process-unique registry identity

  mutable std::mutex mutex_;  ///< registration, shard list, snapshot
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::array<HistMeta, kMaxHistograms> hist_meta_{};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::array<std::atomic<double>, kMaxGauges> gauges_{};  ///< global (last-write-wins)
};

/// Single-thread accumulation buffer for one histogram: bucket counts,
/// sum and count collected with plain (non-atomic) arithmetic, merged
/// into a registry by MetricsRegistry::flush(). Loops that observe a
/// value every iteration — the behavioural tier records one tracking-
/// efficiency sample per simulation step — batch through this instead
/// of paying a TLS shard lookup plus three atomic RMWs per observation.
/// Bucketing matches MetricsRegistry::observe() bit for bit.
class HistogramBatch {
 public:
  explicit HistogramBatch(const HistogramSpec& spec)
      : spec_(spec),
        log_lo_(std::log(spec.lo)),
        inv_log_step_(spec.bins / (std::log(spec.hi) - std::log(spec.lo))) {}

  void observe(double value) {
    int bin;
    if (!(value >= spec_.lo)) {
      bin = 0;
    } else if (value >= spec_.hi) {
      bin = spec_.bins + 1;
    } else {
      const int raw = static_cast<int>((std::log(value) - log_lo_) * inv_log_step_);
      bin = 1 + std::clamp(raw, 0, spec_.bins - 1);
    }
    ++counts_[static_cast<std::size_t>(bin)];
    sum_ += value;
    ++n_;
  }

  /// Observations accumulated since the last flush()/clear().
  [[nodiscard]] std::uint64_t pending() const { return n_; }
  [[nodiscard]] const HistogramSpec& spec() const { return spec_; }

  void clear() {
    counts_.fill(0);
    sum_ = 0.0;
    n_ = 0;
  }

 private:
  friend class MetricsRegistry;

  HistogramSpec spec_;
  double log_lo_;
  double inv_log_step_;
  std::array<std::uint64_t, static_cast<std::size_t>(MetricsRegistry::kMaxBins) + 2> counts_{};
  double sum_ = 0.0;
  std::uint64_t n_ = 0;
};

}  // namespace focv::obs
