#include "obs/obs.hpp"

#include <fstream>

#include "common/require.hpp"

namespace focv::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

MetricsRegistry& metrics() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

Tracer& tracer() {
  static Tracer* instance = new Tracer();  // never destroyed
  return *instance;
}

EventLog& events() {
  static EventLog* instance = new EventLog();  // never destroyed
  return *instance;
}

void reset_all() {
  metrics().reset();
  tracer().reset();
  events().reset();
}

void write_trace(const std::string& path) { tracer().write_chrome_json(path); }

void write_metrics_jsonl(const std::string& path) {
  std::string out = events().to_jsonl();
  metrics().append_jsonl(out);
  std::ofstream f(path, std::ios::binary);
  require(f.good(), "obs: cannot open " + path);
  f << out;
  require(f.good(), "obs: write failed for " + path);
}

void arm_flight(FlightRecorder::Options options) {
  flight().arm(std::move(options));
  events().set_line_observer([](const std::string& line) { flight().note(line); });
}

void disarm_flight() {
  events().set_line_observer(nullptr);
  flight().disarm();
}

void anomaly(std::string_view name, double sim_t,
             std::initializer_list<EventField> fields) {
  if (!enabled()) return;
  events().emit(name, sim_t, fields);
  static const CounterId anomalies_id = metrics().counter("obs.anomalies");
  metrics().add(anomalies_id);
  if (flight().armed()) {
    events().sink().drain();  // feed the recorder through the line observer
    flight().dump(name);
  }
}

}  // namespace focv::obs
