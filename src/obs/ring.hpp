// focv::obs ring sinks: per-thread bounded SPSC rings of staged
// telemetry records, drained by an epoch-based collector.
//
// This is the obs v2 hot path shared by EventLog and Tracer. Producers
// stage compact records into a ring owned by their thread — no lock, no
// JSON rendering, and no steady-state allocation (slot strings keep
// their capacity across ring laps) — and a global sequence counter
// stamps each record so the collector can restore cross-thread emit
// order. Draining (export, size queries, overflow) takes the collector
// mutex, snapshots every ring, replays the published records in
// sequence order through the owner's consume callback (which is where
// rendering happens), then releases the consumed slots back to their
// producers. reset paths discard() instead, so clearing telemetry never
// pays for rendering.
//
// Overflow policy when a ring is full:
//   kDrainInline (default) — the staging thread drains the collector
//     itself, so records are never lost; the hot path pays one drain
//     per `capacity` records in the worst case.
//   kDrop — the record is discarded and counted; dropped() is exact
//     (pinned by tests/obs/ring_test.cpp).
//
// Thread exit: the thread's rings are flagged retired but stay alive
// (shared ownership), so a later drain still consumes their remaining
// records before unlinking them — telemetry from short-lived worker
// threads is never lost.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace focv::obs {

/// Fields/args staged per record. The widest current site is the
/// sweep_job span (9 args); staging require()s the bound.
inline constexpr std::size_t kMaxStagedFields = 12;

/// One staged key/value pair (event field or trace arg).
struct StagedField {
  std::string name;
  bool is_number = true;
  double number = 0.0;
  std::string text;

  void set(std::string_view n, double v) {
    name = n;
    is_number = true;
    number = v;
    text.clear();
  }
  void set(std::string_view n, std::string_view v) {
    name = n;
    is_number = false;
    number = 0.0;
    text = v;
  }
};

/// One staged telemetry record. A single layout serves both sinks:
/// EventLog uses {name, sim_t, ts_us, fields}; Tracer uses
/// {name, category, ts_us, dur_us, pid, tid, fields}.
struct StagedRecord {
  enum class Kind : unsigned char { kEvent, kComplete, kInstant };

  Kind kind = Kind::kEvent;
  std::uint64_t seq = 0;  ///< global staging order (set by acquire())
  std::string name;
  std::string category;
  double sim_t = 0.0;
  double ts_us = 0.0;   ///< EventLog: wall offset of emit; Tracer: start
  double dur_us = 0.0;  ///< Tracer complete records only
  int pid = 0;
  int tid = 0;  ///< ring's thread index (set by acquire())
  std::uint32_t n_fields = 0;
  std::array<StagedField, kMaxStagedFields> fields;
};

class RingSink {
 public:
  enum class Overflow { kDrainInline, kDrop };
  /// Rendering/merge callback, invoked per record under the collector
  /// mutex in sequence order.
  using Consume = std::function<void(const StagedRecord&)>;

  /// Sized so a telemetry-on 24 h node run (≈3.8k events, ≈1.3k trace
  /// records) stages without a single inline drain.
  static constexpr std::size_t kDefaultCapacity = 4096;

  RingSink(std::size_t capacity, Consume consume);
  ~RingSink();
  RingSink(const RingSink&) = delete;
  RingSink& operator=(const RingSink&) = delete;

  struct Ring;  // one thread's SPSC buffer (defined in ring.cpp)

  struct Slot {
    StagedRecord* record = nullptr;
    explicit operator bool() const { return record != nullptr; }

   private:
    friend class RingSink;
    void* ring = nullptr;
  };

  /// Claim the next slot of the calling thread's ring. The returned
  /// record has seq/tid assigned and n_fields zeroed; fill it and
  /// publish(). Null record means the ring was full under kDrop.
  [[nodiscard]] Slot acquire();
  /// Make a filled slot visible to the collector (release-store).
  void publish(Slot& slot);

  /// Replay every published record through the consume callback in
  /// sequence order and free the slots. Returns records consumed.
  std::size_t drain();
  /// Free every published record without consuming it (reset path).
  std::size_t discard();

  /// Records successfully staged so far (monotonic).
  [[nodiscard]] std::uint64_t staged() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }
  /// Records rejected under Overflow::kDrop (monotonic, exact).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Published records not yet drained/discarded.
  [[nodiscard]] std::size_t pending() const;
  /// Live rings (retired rings unlink on the drain that empties them).
  [[nodiscard]] std::size_t ring_count() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void set_overflow(Overflow policy) noexcept {
    overflow_.store(policy, std::memory_order_relaxed);
  }
  [[nodiscard]] Overflow overflow() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }

 private:
  Ring* local_ring();
  std::size_t sweep_locked(const Consume* consume);

  const std::uint64_t uid_;  ///< process-unique sink identity (TLS key)
  const std::size_t capacity_;
  const Consume consume_;
  std::atomic<Overflow> overflow_{Overflow::kDrainInline};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex mutex_;  ///< collector: ring list, drains
  std::vector<std::shared_ptr<Ring>> rings_;
  int next_tid_ = 0;
};

}  // namespace focv::obs
