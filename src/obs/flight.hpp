// focv::obs flight recorder: a fixed-size ring of the most recent
// domain-event lines, dumped automatically when an anomaly fires.
//
// The point is post-mortems at fleet scale: a 1M-node run cannot keep a
// full trace on, but a 256-event tail costs nothing, and when a
// brown-out / cold-start certification failure / Newton non-convergence
// anomaly fires (obs::anomaly() in obs.hpp), the recorder writes a
// `focv-obs-flight/v1` JSON dump of that tail:
//
//   {"schema":"focv-obs-flight/v1","reason":"<anomaly>","dump":N,
//    "events_seen":<total fed>,"events_evicted":<overwritten>,
//    "events":[ <focv-obs/v1 event objects, oldest first> ]}
//
// The recorder is fed by the EventLog's drain-time line observer (wired
// by obs::arm_flight()), so feeding costs nothing on the staging hot
// path. Dumps are rate-limited (max_dumps) so an anomaly storm cannot
// flood the filesystem; dump k > 1 writes `<stem>-k<ext>`.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace focv::obs {

class FlightRecorder {
 public:
  struct Options {
    std::size_t capacity = 256;  ///< events retained (oldest overwritten)
    std::string path;            ///< dump file; "" records but never writes
    int max_dumps = 8;           ///< rate limit for anomaly storms
  };

  /// Start recording (clears any previous tail).
  void arm(Options options);
  void disarm();
  [[nodiscard]] bool armed() const;

  /// Feed one rendered focv-obs/v1 event line (the EventLog observer).
  /// No-op when disarmed.
  void note(const std::string& line);

  /// Render the current tail as focv-obs-flight/v1 JSON.
  [[nodiscard]] std::string to_json(std::string_view reason) const;

  /// Write one dump (rate-limited). Returns whether a file was written.
  bool dump(std::string_view reason);

  [[nodiscard]] int dumps() const;
  /// Total events fed since arm().
  [[nodiscard]] std::uint64_t noted() const;
  /// Events overwritten by newer ones (exact).
  [[nodiscard]] std::uint64_t evicted() const;

 private:
  [[nodiscard]] std::string to_json_locked(std::string_view reason, int dump_number) const;
  [[nodiscard]] std::string dump_path_locked(int dump_number) const;

  mutable std::mutex mutex_;
  Options options_;
  bool armed_ = false;
  std::vector<std::string> ring_;  ///< capacity slots, oldest at next_
  std::size_t next_ = 0;
  std::uint64_t noted_ = 0;
  std::uint64_t evicted_ = 0;
  int dumps_ = 0;
};

/// Process-wide flight recorder (see obs::arm_flight in obs.hpp for the
/// EventLog wiring).
[[nodiscard]] FlightRecorder& flight();

}  // namespace focv::obs
