// Terminal line plots, used by benches to render the paper's figures
// (Fig. 1 I-V curve, Fig. 2 24-hour Voc log, Fig. 4 sampling transient)
// directly in the benchmark output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace focv {

/// Configuration for an ASCII plot.
struct AsciiPlotOptions {
  int width = 96;           ///< plot area width in characters
  int height = 20;          ///< plot area height in characters
  std::string title;        ///< printed above the plot
  std::string x_label;      ///< printed below the x axis
  std::string y_label;      ///< printed beside the y axis
  bool connect = true;      ///< draw connecting segments between samples
};

/// A named data series.
struct AsciiSeries {
  std::vector<double> x;
  std::vector<double> y;
  char glyph = '*';
  std::string name;
};

/// Render one or more series into a character grid and stream it out.
/// Axes are auto-scaled to the union of all series ranges.
void ascii_plot(std::ostream& os, const std::vector<AsciiSeries>& series,
                const AsciiPlotOptions& options = {});

}  // namespace focv
