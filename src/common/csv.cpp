#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/require.hpp"

namespace focv {

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  throw PreconditionError("CsvTable: no column named '" + name + "'");
}

std::vector<double> CsvTable::column(const std::string& name) const {
  const std::size_t idx = column_index(name);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    require(idx < row.size(), "CsvTable: ragged row");
    out.push_back(row[idx]);
  }
  return out;
}

void write_csv(const std::string& path, const CsvTable& table) {
  std::ofstream file(path);
  require(file.good(), "write_csv: cannot open '" + path + "'");
  for (std::size_t i = 0; i < table.columns.size(); ++i) {
    file << (i ? "," : "") << table.columns[i];
  }
  file << '\n';
  file.precision(12);
  for (const auto& row : table.rows) {
    require(row.size() == table.columns.size(), "write_csv: ragged row");
    for (std::size_t i = 0; i < row.size(); ++i) {
      file << (i ? "," : "") << row[i];
    }
    file << '\n';
  }
  require(file.good(), "write_csv: write failure on '" + path + "'");
}

CsvTable read_csv(const std::string& path) {
  std::ifstream file(path);
  require(file.good(), "read_csv: cannot open '" + path + "'");
  CsvTable table;
  std::string line;
  require(static_cast<bool>(std::getline(file, line)), "read_csv: empty file '" + path + "'");
  {
    std::stringstream header(line);
    std::string cell;
    while (std::getline(header, cell, ',')) table.columns.push_back(cell);
  }
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    std::vector<double> row;
    while (std::getline(ss, cell, ',')) {
      try {
        row.push_back(std::stod(cell));
      } catch (const std::exception&) {
        throw PreconditionError("read_csv: non-numeric cell '" + cell + "' in '" + path + "'");
      }
    }
    require(row.size() == table.columns.size(), "read_csv: ragged row in '" + path + "'");
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace focv
