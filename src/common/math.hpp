// Scalar numerical routines: root finding, 1-D maximisation, interpolation.
#pragma once

#include <functional>
#include <vector>

namespace focv {

/// Options controlling the scalar solvers.
struct SolverOptions {
  double x_tolerance = 1e-12;   ///< absolute tolerance on the argument
  double f_tolerance = 1e-14;   ///< absolute tolerance on the residual
  int max_iterations = 200;     ///< iteration cap before ConvergenceError
};

/// Find a root of `f` in [lo, hi] using Brent's method.
///
/// Preconditions: lo < hi and f(lo), f(hi) bracket a root (opposite signs
/// or one endpoint already within f_tolerance of zero).
/// Throws ConvergenceError if the iteration cap is reached and
/// PreconditionError if the root is not bracketed.
[[nodiscard]] double brent_root(const std::function<double(double)>& f, double lo, double hi,
                                const SolverOptions& options = {});

/// Find a root of `f` using Newton's method with numeric fallback.
///
/// `df` is the analytic derivative. Falls back to bisection safeguarding
/// within [lo, hi] whenever a Newton step leaves the bracket, so it is as
/// robust as bisection but converges quadratically near the root.
[[nodiscard]] double newton_root(const std::function<double(double)>& f,
                                 const std::function<double(double)>& df, double x0, double lo,
                                 double hi, const SolverOptions& options = {});

/// Maximise a unimodal function on [lo, hi] by golden-section search.
/// Returns the argmax; the maximum value is f(result).
[[nodiscard]] double golden_section_maximize(const std::function<double(double)>& f, double lo,
                                             double hi, const SolverOptions& options = {});

/// Piecewise-linear interpolation over sorted sample points.
///
/// Outside the sample range the boundary value is held (clamped
/// extrapolation), matching how datasheet curves are normally read.
class LinearInterpolator {
 public:
  LinearInterpolator() = default;

  /// Build from x (strictly increasing) and y samples of equal length >= 1.
  LinearInterpolator(std::vector<double> x, std::vector<double> y);

  [[nodiscard]] double operator()(double x) const;
  [[nodiscard]] bool empty() const { return x_.empty(); }
  [[nodiscard]] double min_x() const;
  [[nodiscard]] double max_x() const;

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// Numerical integration of samples (t, v) by the trapezoid rule.
[[nodiscard]] double trapezoid_integral(const std::vector<double>& t, const std::vector<double>& v);

/// Clamp helper mirroring std::clamp but tolerant of lo > hi by swapping.
[[nodiscard]] double clamp_sorted(double x, double a, double b);

}  // namespace focv
