#include "common/table.hpp"

#include <iomanip>
#include <sstream>

#include "common/require.hpp"

namespace focv {

ConsoleTable::ConsoleTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "ConsoleTable: needs at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "ConsoleTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::num(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

void ConsoleTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << '\n';
  };
  rule();
  print_row(headers_);
  rule();
  for (const auto& row : rows_) print_row(row);
  rule();
}

}  // namespace focv
