#include "common/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/require.hpp"

namespace focv {

namespace {

struct Vertex {
  std::vector<double> x;
  double f = 0.0;
};

double simplex_diameter(const std::vector<Vertex>& simplex) {
  double diameter = 0.0;
  for (std::size_t i = 1; i < simplex.size(); ++i) {
    double dist = 0.0;
    for (std::size_t k = 0; k < simplex[0].x.size(); ++k) {
      dist = std::max(dist, std::abs(simplex[i].x[k] - simplex[0].x[k]));
    }
    diameter = std::max(diameter, dist);
  }
  return diameter;
}

NelderMeadResult run_once(const std::function<double(const std::vector<double>&)>& objective,
                          const std::vector<double>& x0, const NelderMeadOptions& options,
                          int iteration_budget) {
  const std::size_t n = x0.size();
  std::vector<Vertex> simplex(n + 1);
  simplex[0] = {x0, objective(x0)};
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x = x0;
    const double step = (x[i] != 0.0) ? options.initial_step * std::abs(x[i])
                                      : options.initial_step;
    x[i] += step;
    simplex[i + 1] = {x, objective(x)};
  }

  constexpr double kAlpha = 1.0;   // reflection
  constexpr double kGamma = 2.0;   // expansion
  constexpr double kRho = 0.5;     // contraction
  constexpr double kSigma = 0.5;   // shrink

  NelderMeadResult result;
  int iter = 0;
  for (; iter < iteration_budget; ++iter) {
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });

    if (simplex_diameter(simplex) < options.x_tolerance ||
        std::abs(simplex.back().f - simplex.front().f) < options.f_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) centroid[k] += simplex[i].x[k];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    const Vertex& worst = simplex.back();
    auto blend = [&](double coeff) {
      std::vector<double> x(n);
      for (std::size_t k = 0; k < n; ++k) x[k] = centroid[k] + coeff * (centroid[k] - worst.x[k]);
      return x;
    };

    const std::vector<double> xr = blend(kAlpha);
    const double fr = objective(xr);

    if (fr < simplex[0].f) {
      const std::vector<double> xe = blend(kGamma);
      const double fe = objective(xe);
      simplex.back() = (fe < fr) ? Vertex{xe, fe} : Vertex{xr, fr};
    } else if (fr < simplex[n - 1].f) {
      simplex.back() = {xr, fr};
    } else {
      const std::vector<double> xc = blend(-kRho);
      const double fc = objective(xc);
      if (fc < worst.f) {
        simplex.back() = {xc, fc};
      } else {
        // Shrink towards the best vertex.
        for (std::size_t i = 1; i <= n; ++i) {
          for (std::size_t k = 0; k < n; ++k) {
            simplex[i].x[k] = simplex[0].x[k] + kSigma * (simplex[i].x[k] - simplex[0].x[k]);
          }
          simplex[i].f = objective(simplex[i].x);
        }
      }
    }
  }

  std::sort(simplex.begin(), simplex.end(),
            [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
  result.x = simplex[0].x;
  result.value = simplex[0].f;
  result.iterations = iter;
  return result;
}

}  // namespace

NelderMeadResult nelder_mead_minimize(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& x0, const NelderMeadOptions& options) {
  require(!x0.empty(), "nelder_mead_minimize: x0 must be non-empty");
  require(options.max_iterations > 0, "nelder_mead_minimize: max_iterations must be > 0");

  NelderMeadResult best = run_once(objective, x0, options, options.max_iterations);
  // Restarting around the incumbent escapes degenerate simplices, which
  // matters for the poorly-scaled PV parameter space (pA .. MOhm).
  for (int r = 0; r < options.restarts; ++r) {
    NelderMeadResult next = run_once(objective, best.x, options, options.max_iterations);
    next.iterations += best.iterations;
    if (next.value < best.value) {
      best = next;
    } else {
      best.iterations = next.iterations;
      break;
    }
  }
  return best;
}

}  // namespace focv
