// Console table rendering for benchmark / example output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace focv {

/// Builds and prints an aligned, boxed text table similar to the tables
/// in the paper, e.g. Table I "Test of tracking accuracy".
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  /// Append a row of already-formatted cells (must match header count).
  void add_row(std::vector<std::string> cells);

  /// Format a double with `precision` digits after the decimal point.
  [[nodiscard]] static std::string num(double value, int precision = 3);

  /// Render with Unicode-free ASCII box drawing.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace focv
