// Deterministic pseudo-random number generation.
//
// Every stochastic element of the library (illuminance noise, occupancy
// events, component tolerance sampling) draws from an explicitly seeded
// Rng so that traces, tests and benchmarks are reproducible bit-for-bit
// across runs and platforms. The core generator is xoshiro256**, seeded
// via splitmix64 as its authors recommend.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/require.hpp"

namespace focv {

/// One splitmix64 mixing step: a high-quality 64-bit finalizer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Seed of the `index`-th independent sub-stream of `root_seed`.
///
/// Each (root, index) pair maps to a statistically independent Rng
/// stream, so parallel jobs seeded this way produce results that are
/// bit-identical regardless of thread count or execution schedule.
[[nodiscard]] constexpr std::uint64_t derive_stream_seed(std::uint64_t root_seed,
                                                         std::uint64_t index) {
  return splitmix64(splitmix64(root_seed) ^ splitmix64(index * 0xA24BAED4963EE407ull + 1));
}

class Rng;

/// Private RNG stream of the `index`-th job/node/unit under `root_seed`.
///
/// This is the one blessed way to seed a per-work-item generator: every
/// parallel engine in the repo (the scenario sweep, the tolerance
/// Monte-Carlo, the fleet stepper) derives its streams through this
/// helper, so their stream layouts cannot drift apart and results stay
/// bit-identical for any worker count.
[[nodiscard]] Rng make_stream_rng(std::uint64_t root_seed, std::uint64_t index);

/// Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  /// Seed the generator; identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
    has_cached_gaussian_ = false;
  }

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    require(lo <= hi, "Rng::uniform: lo must be <= hi");
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal deviate (Marsaglia polar method).
  double gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    has_cached_gaussian_ = true;
    return u * factor;
  }

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    require(stddev >= 0.0, "Rng::gaussian: stddev must be >= 0");
    return mean + stddev * gaussian();
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool bernoulli(double p) {
    require(p >= 0.0 && p <= 1.0, "Rng::bernoulli: p must be in [0,1]");
    return uniform() < p;
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    require(n > 0, "Rng::below: n must be > 0");
    return next_u64() % n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

inline Rng make_stream_rng(std::uint64_t root_seed, std::uint64_t index) {
  return Rng(derive_stream_seed(root_seed, index));
}

}  // namespace focv
