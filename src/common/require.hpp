// Precondition / invariant checking helpers (Core Guidelines I.6 / E.12).
#pragma once

#include <stdexcept>
#include <string>

namespace focv {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a library bug or a numerical
/// breakdown the caller cannot fix by changing arguments).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an iterative numerical method fails to converge.
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Check a documented precondition on function arguments.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw PreconditionError(message);
}

/// Check an internal invariant.
inline void ensure(bool condition, const std::string& message) {
  if (!condition) throw InvariantError(message);
}

}  // namespace focv
