// Derivative-free multidimensional minimisation (Nelder-Mead simplex).
//
// Used by the PV calibration fitter to match model parameters to the
// anchor points published in the paper (Table I Voc column, AM-1815
// datasheet operating point). Deliberately simple and deterministic.
#pragma once

#include <functional>
#include <vector>

namespace focv {

/// Result of a Nelder-Mead run.
struct NelderMeadResult {
  std::vector<double> x;      ///< best parameter vector found
  double value = 0.0;         ///< objective at x
  int iterations = 0;         ///< iterations performed
  bool converged = false;     ///< simplex size fell below tolerance
};

/// Options for nelder_mead_minimize.
struct NelderMeadOptions {
  int max_iterations = 2000;
  double x_tolerance = 1e-10;      ///< simplex diameter tolerance
  double f_tolerance = 1e-14;      ///< objective spread tolerance
  double initial_step = 0.1;       ///< relative perturbation building the simplex
  int restarts = 2;                ///< re-initialise the simplex around the best point
};

/// Minimise `objective` starting from `x0`.
///
/// The objective must be defined for every vector the simplex can reach;
/// return a large finite penalty (not NaN/inf) for infeasible regions.
[[nodiscard]] NelderMeadResult nelder_mead_minimize(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& x0, const NelderMeadOptions& options = {});

}  // namespace focv
