#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/require.hpp"

namespace focv {

namespace {

std::string format_tick(double v) {
  std::ostringstream ss;
  if (std::abs(v) >= 1e5 || (std::abs(v) < 1e-3 && v != 0.0)) {
    ss << std::scientific << std::setprecision(2) << v;
  } else {
    ss << std::fixed << std::setprecision(3) << v;
  }
  return ss.str();
}

}  // namespace

void ascii_plot(std::ostream& os, const std::vector<AsciiSeries>& series,
                const AsciiPlotOptions& options) {
  require(options.width >= 16 && options.height >= 4, "ascii_plot: plot area too small");
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : series) {
    require(s.x.size() == s.y.size(), "ascii_plot: series length mismatch");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      x_min = std::min(x_min, s.x[i]);
      x_max = std::max(x_max, s.x[i]);
      y_min = std::min(y_min, s.y[i]);
      y_max = std::max(y_max, s.y[i]);
      any = true;
    }
  }
  if (!any) {
    os << "(empty plot)\n";
    return;
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;
  // A little headroom so extrema are not drawn on the frame.
  const double y_pad = 0.05 * (y_max - y_min);
  y_min -= y_pad;
  y_max += y_pad;

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));

  auto to_col = [&](double x) {
    return static_cast<int>(std::lround((x - x_min) / (x_max - x_min) * (w - 1)));
  };
  auto to_row = [&](double y) {
    return (h - 1) - static_cast<int>(std::lround((y - y_min) / (y_max - y_min) * (h - 1)));
  };
  auto put = [&](int col, int row, char glyph) {
    if (col >= 0 && col < w && row >= 0 && row < h) {
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = glyph;
    }
  };

  for (const auto& s : series) {
    int prev_col = 0, prev_row = 0;
    bool have_prev = false;
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const int col = to_col(s.x[i]);
      const int row = to_row(s.y[i]);
      if (options.connect && have_prev) {
        // Bresenham-ish interpolation between consecutive samples.
        const int steps = std::max(std::abs(col - prev_col), std::abs(row - prev_row));
        for (int k = 1; k < steps; ++k) {
          const int c = prev_col + (col - prev_col) * k / steps;
          const int r = prev_row + (row - prev_row) * k / steps;
          put(c, r, s.glyph == '*' ? '.' : s.glyph);
        }
      }
      put(col, row, s.glyph);
      prev_col = col;
      prev_row = row;
      have_prev = true;
    }
  }

  if (!options.title.empty()) os << options.title << '\n';
  if (!options.y_label.empty()) os << options.y_label << '\n';
  const std::string top_tick = format_tick(y_max);
  const std::string bot_tick = format_tick(y_min);
  for (int r = 0; r < h; ++r) {
    std::string margin(10, ' ');
    if (r == 0) {
      margin = top_tick + std::string(top_tick.size() < 10 ? 10 - top_tick.size() : 0, ' ');
    } else if (r == h - 1) {
      margin = bot_tick + std::string(bot_tick.size() < 10 ? 10 - bot_tick.size() : 0, ' ');
    }
    os << margin << '|' << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(10, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-') << '\n';
  os << std::string(10, ' ') << format_tick(x_min);
  const std::string xmax = format_tick(x_max);
  const int gap = w - static_cast<int>(format_tick(x_min).size() + xmax.size());
  os << std::string(static_cast<std::size_t>(std::max(1, gap)), ' ') << xmax << '\n';
  if (!options.x_label.empty()) os << std::string(10, ' ') << options.x_label << '\n';
  for (const auto& s : series) {
    if (!s.name.empty()) os << "  [" << s.glyph << "] " << s.name << '\n';
  }
}

}  // namespace focv
