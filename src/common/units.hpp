// SI unit literals and small value types shared across the library.
//
// The library represents all physical quantities as double in base SI
// units (volts, amperes, ohms, farads, seconds, watts, joules, lux).
// The user-defined literals below make magnitudes self-documenting at
// call sites, e.g. `astable.set_on_period(39.0_ms)`.
#pragma once

namespace focv {
inline namespace literals {

// --- time ---
constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_s(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_ms(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_us(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ns(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_min(long double v) { return static_cast<double>(v) * 60.0; }
constexpr double operator""_min(unsigned long long v) { return static_cast<double>(v) * 60.0; }
constexpr double operator""_hours(long double v) { return static_cast<double>(v) * 3600.0; }
constexpr double operator""_hours(unsigned long long v) { return static_cast<double>(v) * 3600.0; }

// --- voltage ---
constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_V(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mV(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uV(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uV(unsigned long long v) { return static_cast<double>(v) * 1e-6; }

// --- current ---
constexpr double operator""_A(long double v) { return static_cast<double>(v); }
constexpr double operator""_A(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mA(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mA(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uA(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uA(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nA(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_nA(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pA(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_pA(unsigned long long v) { return static_cast<double>(v) * 1e-12; }

// --- resistance ---
constexpr double operator""_Ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_Ohm(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_kOhm(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_kOhm(unsigned long long v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MOhm(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_MOhm(unsigned long long v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_GOhm(long double v) { return static_cast<double>(v) * 1e9; }
constexpr double operator""_GOhm(unsigned long long v) { return static_cast<double>(v) * 1e9; }

// --- capacitance / inductance ---
constexpr double operator""_F(long double v) { return static_cast<double>(v); }
constexpr double operator""_F(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mF(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mF(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uF(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uF(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nF(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_nF(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_pF(unsigned long long v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_uH(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uH(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_mH(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mH(unsigned long long v) { return static_cast<double>(v) * 1e-3; }

// --- power / energy ---
constexpr double operator""_W(long double v) { return static_cast<double>(v); }
constexpr double operator""_W(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mW(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mW(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uW(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uW(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_J(long double v) { return static_cast<double>(v); }
constexpr double operator""_J(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mJ(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mJ(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uJ(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uJ(unsigned long long v) { return static_cast<double>(v) * 1e-6; }

// --- illuminance / temperature ---
constexpr double operator""_lux(long double v) { return static_cast<double>(v); }
constexpr double operator""_lux(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_degC(long double v) { return static_cast<double>(v) + 273.15; }
constexpr double operator""_degC(unsigned long long v) { return static_cast<double>(v) + 273.15; }
constexpr double operator""_K(long double v) { return static_cast<double>(v); }
constexpr double operator""_K(unsigned long long v) { return static_cast<double>(v); }

// --- percentages ---
constexpr double operator""_pct(long double v) { return static_cast<double>(v) * 1e-2; }
constexpr double operator""_pct(unsigned long long v) { return static_cast<double>(v) * 1e-2; }

}  // namespace literals

/// A single current/voltage operating point of a two-terminal device.
struct IVPoint {
  double voltage = 0.0;  ///< terminal voltage [V]
  double current = 0.0;  ///< terminal current [A], source convention (out of + terminal)

  [[nodiscard]] constexpr double power() const { return voltage * current; }
};

/// One time-stamped sample of a scalar signal.
struct TimedSample {
  double time = 0.0;   ///< [s]
  double value = 0.0;  ///< signal units
};

}  // namespace focv
