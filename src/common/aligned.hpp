// Cache-line-aligned flat buffers for the hot struct-of-arrays paths.
//
// std::vector<double> guarantees only alignof(double); the lane-batched
// fleet kernels (fleet/soa_lanes.cpp) stream per-field state arrays with
// width-W vector loads and want every array to start on a cache-line
// boundary so a W=8 block never straddles an extra line. AlignedBuffer
// is the minimal owning array for that: fixed alignment, fixed size
// after assign(), no growth amortisation, value-initialised elements.
// It deliberately supports only what the kernels use — sizing once and
// streaming — so it cannot be misused as a general container.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

namespace focv {

/// Owning, over-aligned, fixed-size array of trivial T.
template <typename T, std::size_t Align = 64>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                "AlignedBuffer: T must be trivial (the buffer never runs constructors)");
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "AlignedBuffer: alignment must be a power of two >= alignof(T)");

 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n) { assign(n); }
  AlignedBuffer(const AlignedBuffer& other) { *this = other; }
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this == &other) return *this;
    assign(other.size_);
    for (std::size_t i = 0; i < size_; ++i) data_[i] = other.data_[i];
    return *this;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this == &other) return *this;
    release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    return *this;
  }
  ~AlignedBuffer() { release(); }

  /// Resize to exactly n value-initialised elements (old contents gone).
  void assign(std::size_t n) {
    release();
    if (n == 0) return;
    // Round the byte size up to a whole alignment block so a vector load
    // of the last partial lane block stays inside the allocation.
    const std::size_t bytes = (n * sizeof(T) + Align - 1) / Align * Align;
    data_ = static_cast<T*>(::operator new(bytes, std::align_val_t{Align}));
    size_ = n;
    const std::size_t padded = bytes / sizeof(T);
    for (std::size_t i = 0; i < padded; ++i) data_[i] = T{};
  }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

 private:
  void release() {
    if (data_ != nullptr) ::operator delete(data_, std::align_val_t{Align});
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace focv
