#include "common/math.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"

namespace focv {

double brent_root(const std::function<double(double)>& f, double lo, double hi,
                  const SolverOptions& options) {
  require(lo < hi, "brent_root: lo must be < hi");
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (std::abs(fa) <= options.f_tolerance) return a;
  if (std::abs(fb) <= options.f_tolerance) return b;
  require(fa * fb < 0.0, "brent_root: root not bracketed by [lo, hi]");

  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() * std::abs(b) +
                       0.5 * options.x_tolerance;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || std::abs(fb) <= options.f_tolerance) return b;

    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic interpolation / secant.
      const double s = fb / fa;
      double p = 0.0, q = 0.0;
      if (a == c) {
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        const double qa = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qa * (qa - r) - (b - a) * (r - 1.0));
        q = (qa - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) {
        q = -q;
      } else {
        p = -p;
      }
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  throw ConvergenceError("brent_root: iteration cap reached");
}

double newton_root(const std::function<double(double)>& f, const std::function<double(double)>& df,
                   double x0, double lo, double hi, const SolverOptions& options) {
  require(lo < hi, "newton_root: lo must be < hi");
  require(x0 >= lo && x0 <= hi, "newton_root: x0 must lie in [lo, hi]");

  double a = lo, b = hi;
  double fa = f(a);
  double fb = f(b);
  if (std::abs(fa) <= options.f_tolerance) return a;
  if (std::abs(fb) <= options.f_tolerance) return b;
  require(fa * fb < 0.0, "newton_root: root not bracketed by [lo, hi]");

  double x = x0;
  double fx = f(x);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (std::abs(fx) <= options.f_tolerance) return x;
    // Maintain the bracket.
    if ((fx > 0.0) == (fa > 0.0)) {
      a = x;
      fa = fx;
    } else {
      b = x;
      fb = fx;
    }
    const double dfx = df(x);
    double x_next = 0.0;
    if (dfx != 0.0) {
      x_next = x - fx / dfx;
    }
    if (dfx == 0.0 || x_next <= a || x_next >= b) {
      x_next = 0.5 * (a + b);  // bisection safeguard
    }
    if (std::abs(x_next - x) <= options.x_tolerance) return x_next;
    x = x_next;
    fx = f(x);
  }
  throw ConvergenceError("newton_root: iteration cap reached");
}

double golden_section_maximize(const std::function<double(double)>& f, double lo, double hi,
                               const SolverOptions& options) {
  require(lo < hi, "golden_section_maximize: lo must be < hi");
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  for (int iter = 0; iter < options.max_iterations && (b - a) > options.x_tolerance; ++iter) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    }
  }
  return 0.5 * (a + b);
}

LinearInterpolator::LinearInterpolator(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  require(x_.size() == y_.size(), "LinearInterpolator: x and y must have equal length");
  require(!x_.empty(), "LinearInterpolator: needs at least one sample");
  for (std::size_t i = 1; i < x_.size(); ++i) {
    require(x_[i] > x_[i - 1], "LinearInterpolator: x must be strictly increasing");
  }
}

double LinearInterpolator::operator()(double x) const {
  require(!x_.empty(), "LinearInterpolator: empty interpolator");
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - x_.begin());
  const double t = (x - x_[i - 1]) / (x_[i] - x_[i - 1]);
  return y_[i - 1] + t * (y_[i] - y_[i - 1]);
}

double LinearInterpolator::min_x() const {
  require(!x_.empty(), "LinearInterpolator: empty interpolator");
  return x_.front();
}

double LinearInterpolator::max_x() const {
  require(!x_.empty(), "LinearInterpolator: empty interpolator");
  return x_.back();
}

double trapezoid_integral(const std::vector<double>& t, const std::vector<double>& v) {
  require(t.size() == v.size(), "trapezoid_integral: mismatched lengths");
  double sum = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    sum += 0.5 * (v[i] + v[i - 1]) * (t[i] - t[i - 1]);
  }
  return sum;
}

double clamp_sorted(double x, double a, double b) {
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  return std::clamp(x, lo, hi);
}

}  // namespace focv
