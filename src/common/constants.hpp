// Physical constants used by the device and PV models.
#pragma once

namespace focv::constants {

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Standard reference temperature for device models [K] (27 degC, SPICE default).
inline constexpr double kNominalTemperature = 300.15;

/// Absolute zero offset [K].
inline constexpr double kZeroCelsius = 273.15;

/// Thermal voltage kT/q at temperature `temperature_k` [V].
[[nodiscard]] constexpr double thermal_voltage(double temperature_k = kNominalTemperature) {
  return kBoltzmann * temperature_k / kElementaryCharge;
}

/// Luminous efficacy used to convert daylight illuminance to irradiance
/// [lux per W/m^2]. ~110 lm/W for the standard AM1.5 solar spectrum.
inline constexpr double kDaylightLuxPerWm2 = 110.0;

/// Luminous efficacy for tri-phosphor fluorescent office lighting
/// [lux per W/m^2]. Artificial sources concentrate power in the visible
/// band, so one W/m^2 of lamp light carries more lux than sunlight.
inline constexpr double kFluorescentLuxPerWm2 = 340.0;

}  // namespace focv::constants
