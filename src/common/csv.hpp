// Minimal CSV reading/writing for traces and benchmark outputs.
#pragma once

#include <string>
#include <vector>

namespace focv {

/// An in-memory rectangular table of doubles with named columns.
struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;  ///< each row has columns.size() entries

  /// Index of a named column; throws PreconditionError when absent.
  [[nodiscard]] std::size_t column_index(const std::string& name) const;

  /// Extract one column as a vector.
  [[nodiscard]] std::vector<double> column(const std::string& name) const;
};

/// Write a table to `path` with a header row. Throws on I/O failure.
void write_csv(const std::string& path, const CsvTable& table);

/// Read a CSV of doubles with a header row. Throws on I/O or parse failure.
[[nodiscard]] CsvTable read_csv(const std::string& path);

}  // namespace focv
