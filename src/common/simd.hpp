// Portable width-W double lanes for the batched fleet kernels.
//
// The lane-batched SoA sweep (fleet/soa_lanes.cpp) advances W nodes per
// vector op. This header wraps the GNU/Clang vector extensions behind a
// tiny fixed surface — broadcast/load/store, IEEE arithmetic, ordered
// comparisons producing bit masks, and bitwise select — and falls back
// to plain per-lane loops on compilers without the extension (or with
// -DFOCV_SIMD_PORTABLE=1), so every build compiles and every build
// computes the SAME bits.
//
// Byte-determinism contract: each lane of every operation here is the
// scalar IEEE-754 double operation, in the order written. There are no
// horizontal reductions, no FMA helpers, and no approximate math; a
// translation unit that pins -ffp-contract=off therefore produces
// bit-identical lane results to the equivalent scalar code. select() is
// a pure bit blend, so masked-off lanes can hold NaN/Inf garbage
// without perturbing live lanes.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

/// Lanes per vector. 8 doubles = one AVX-512 register or two AVX2
/// registers per op on x86-64; baseline builds lower to SSE2 pairs and
/// the portable fallback to unrolled scalar loops.
#ifndef FOCV_SIMD_LANES
#define FOCV_SIMD_LANES 8
#endif

#if defined(__GNUC__) && !defined(FOCV_SIMD_PORTABLE)
#define FOCV_SIMD_VECTOR_EXT 1
#endif

// Hardware-assisted lane ops (vgatherdpd, vroundpd, vmovmskpd) when the
// TU is compiled for AVX2 at width 4 — the fleet lane kernel's
// configuration. Each intrinsic used below computes bit-identical
// results to the per-lane scalar op it replaces: gathers are plain
// loads, vroundpd rounds toward -inf exactly like std::floor, and
// movemask only reads sign bits for control flow.
#if FOCV_SIMD_VECTOR_EXT && defined(__AVX2__) && FOCV_SIMD_LANES == 4
#define FOCV_SIMD_X86_GATHER 1
#include <immintrin.h>
#endif

namespace focv::simd {

/// Every function here must inline into its caller: an out-of-line
/// copy compiled for the baseline ISA returns/passes W-wide vectors
/// with a different ABI than an AVX2-targeted caller assumes (memory
/// sret vs register), which scrambles arguments at the call boundary.
/// always_inline makes the helpers vanish into the kernel that uses
/// them, whatever target attribute that kernel carries.
#define FOCV_SIMD_INLINE __attribute__((always_inline)) inline

inline constexpr int kLanes = FOCV_SIMD_LANES;

#if FOCV_SIMD_VECTOR_EXT

namespace detail {
typedef double dnative __attribute__((vector_size(FOCV_SIMD_LANES * 8), aligned(8)));
typedef std::int64_t mnative __attribute__((vector_size(FOCV_SIMD_LANES * 8), aligned(8)));
typedef std::int32_t inative __attribute__((vector_size(FOCV_SIMD_LANES * 4), aligned(4)));
}  // namespace detail

/// W doubles. Arithmetic operators apply the scalar IEEE op per lane.
struct DVec {
  detail::dnative v;
  double operator[](int l) const { return v[l]; }
};
/// W 64-bit lane masks (all-ones = true, all-zeros = false per lane).
struct MVec {
  detail::mnative m;
  [[nodiscard]] bool lane(int l) const { return m[l] != 0; }
};
/// W 32-bit integers — lane indices on their way to a gather.
struct IVec {
  detail::inative i;
  std::int32_t operator[](int l) const { return i[l]; }
};

FOCV_SIMD_INLINE DVec broadcast(double x) { return {x - detail::dnative{}}; }
FOCV_SIMD_INLINE DVec load(const double* p) {
  DVec r;
  std::memcpy(&r.v, p, sizeof(r.v));
  return r;
}
FOCV_SIMD_INLINE void store(double* p, DVec a) { std::memcpy(p, &a.v, sizeof(a.v)); }
FOCV_SIMD_INLINE void store(std::int32_t* p, IVec a) { std::memcpy(p, &a.i, sizeof(a.i)); }

/// static_cast<std::int32_t> per lane (truncation toward zero). The
/// caller must keep every lane in int32 range, exactly like the scalar
/// cast it replaces.
FOCV_SIMD_INLINE IVec to_int(DVec a) { return {__builtin_convertvector(a.v, detail::inative)}; }
/// static_cast<double> per lane — exact for the table-sized ints here.
FOCV_SIMD_INLINE DVec to_double(IVec a) { return {__builtin_convertvector(a.i, detail::dnative)}; }

FOCV_SIMD_INLINE IVec broadcast_i(std::int32_t x) { return {x - detail::inative{}}; }
FOCV_SIMD_INLINE IVec operator+(IVec a, IVec b) { return {a.i + b.i}; }
FOCV_SIMD_INLINE IVec operator*(IVec a, IVec b) { return {a.i * b.i}; }

/// base[idx[l]] per lane. One vgatherdpd/vpgatherdd where the hardware
/// has it; otherwise register-inserted scalar loads. Either way each
/// lane is the identical memory read — a gather cannot change a bit.
#if FOCV_SIMD_X86_GATHER
FOCV_SIMD_INLINE DVec gather(const double* base, IVec idx) {
  return {(detail::dnative)_mm256_i32gather_pd(base, (__m128i)idx.i, 8)};
}
FOCV_SIMD_INLINE IVec gather(const std::int32_t* base, IVec idx) {
  return {(detail::inative)_mm_i32gather_epi32(base, (__m128i)idx.i, 4)};
}
#else
FOCV_SIMD_INLINE DVec gather(const double* base, IVec idx);  // defined after from_lanes
FOCV_SIMD_INLINE IVec gather(const std::int32_t* base, IVec idx) {
  IVec r{};
  for (int l = 0; l < kLanes; ++l) r.i[l] = base[idx[l]];
  return r;
}
#endif

/// Build a vector as {f(0), f(1), ..., f(W-1)} — lanes assembled by
/// register insertion, never through a stack array. Table gathers MUST
/// use this: a scalar-store/vector-load round-trip defeats store
/// forwarding and stalls the whole gather (~12 cycles each, dozens per
/// interval in the fleet kernel). Braced init evaluates left to right,
/// so f runs in lane order.
template <typename F>
FOCV_SIMD_INLINE DVec from_lanes(F&& f) {
  if constexpr (kLanes == 4) {
    return {detail::dnative{f(0), f(1), f(2), f(3)}};
  } else if constexpr (kLanes == 8) {
    return {detail::dnative{f(0), f(1), f(2), f(3), f(4), f(5), f(6), f(7)}};
  } else {
    DVec r{};
    for (int l = 0; l < kLanes; ++l) r.v[l] = f(l);
    return r;
  }
}

#if !FOCV_SIMD_X86_GATHER
FOCV_SIMD_INLINE DVec gather(const double* base, IVec idx) {
  return from_lanes([&](int l) { return base[idx[l]]; });
}
#endif

FOCV_SIMD_INLINE DVec operator+(DVec a, DVec b) { return {a.v + b.v}; }
FOCV_SIMD_INLINE DVec operator-(DVec a, DVec b) { return {a.v - b.v}; }
FOCV_SIMD_INLINE DVec operator*(DVec a, DVec b) { return {a.v * b.v}; }
FOCV_SIMD_INLINE DVec operator/(DVec a, DVec b) { return {a.v / b.v}; }

FOCV_SIMD_INLINE MVec operator<(DVec a, DVec b) { return {a.v < b.v}; }
FOCV_SIMD_INLINE MVec operator<=(DVec a, DVec b) { return {a.v <= b.v}; }
FOCV_SIMD_INLINE MVec operator>(DVec a, DVec b) { return {a.v > b.v}; }
FOCV_SIMD_INLINE MVec operator>=(DVec a, DVec b) { return {a.v >= b.v}; }
FOCV_SIMD_INLINE MVec operator==(DVec a, DVec b) { return {a.v == b.v}; }
FOCV_SIMD_INLINE MVec operator!=(DVec a, DVec b) { return {a.v != b.v}; }

FOCV_SIMD_INLINE MVec operator&(MVec a, MVec b) { return {a.m & b.m}; }
FOCV_SIMD_INLINE MVec operator|(MVec a, MVec b) { return {a.m | b.m}; }
FOCV_SIMD_INLINE MVec operator~(MVec a) { return {~a.m}; }

/// Bit blend: lane l takes a where mask lane l is true, else b.
FOCV_SIMD_INLINE DVec select(MVec c, DVec a, DVec b) {
  detail::mnative ab;
  detail::mnative bb;
  std::memcpy(&ab, &a.v, sizeof(ab));
  std::memcpy(&bb, &b.v, sizeof(bb));
  const detail::mnative r = (ab & c.m) | (bb & ~c.m);
  DVec out;
  std::memcpy(&out.v, &r, sizeof(out.v));
  return out;
}

/// any/all reduce by shuffle-folding halves — a handful of vector ops
/// and one lane read instead of kLanes sequential extractions. Control
/// flow only; never on the arithmetic state path.
#if FOCV_SIMD_X86_GATHER
FOCV_SIMD_INLINE bool any(MVec c) { return _mm256_movemask_pd((__m256d)c.m) != 0; }
FOCV_SIMD_INLINE bool all(MVec c) { return _mm256_movemask_pd((__m256d)c.m) == 0xF; }
#elif FOCV_SIMD_LANES == 4
FOCV_SIMD_INLINE bool any(MVec c) {
  const detail::mnative s = c.m | __builtin_shuffle(c.m, detail::mnative{2, 3, 0, 1});
  return (s[0] | s[1]) != 0;
}
FOCV_SIMD_INLINE bool all(MVec c) {
  const detail::mnative s = c.m & __builtin_shuffle(c.m, detail::mnative{2, 3, 0, 1});
  return (s[0] & s[1]) != 0;
}
#elif FOCV_SIMD_LANES == 8
FOCV_SIMD_INLINE bool any(MVec c) {
  detail::mnative s = c.m | __builtin_shuffle(c.m, detail::mnative{4, 5, 6, 7, 0, 1, 2, 3});
  s = s | __builtin_shuffle(s, detail::mnative{2, 3, 0, 1, 6, 7, 4, 5});
  return (s[0] | s[1]) != 0;
}
FOCV_SIMD_INLINE bool all(MVec c) {
  detail::mnative s = c.m & __builtin_shuffle(c.m, detail::mnative{4, 5, 6, 7, 0, 1, 2, 3});
  s = s & __builtin_shuffle(s, detail::mnative{2, 3, 0, 1, 6, 7, 4, 5});
  return (s[0] & s[1]) != 0;
}
#else
FOCV_SIMD_INLINE bool any(MVec c) {
  std::int64_t acc = 0;
  for (int l = 0; l < kLanes; ++l) acc |= c.m[l];
  return acc != 0;
}
FOCV_SIMD_INLINE bool all(MVec c) {
  std::int64_t acc = -1;
  for (int l = 0; l < kLanes; ++l) acc &= c.m[l];
  return acc != 0;
}
#endif

#else  // portable fallback: identical surface, per-lane loops

struct DVec {
  double v[kLanes];
  double operator[](int l) const { return v[l]; }
};
struct MVec {
  std::int64_t m[kLanes];
  [[nodiscard]] bool lane(int l) const { return m[l] != 0; }
};
struct IVec {
  std::int32_t i[kLanes];
  std::int32_t operator[](int l) const { return i[l]; }
};

FOCV_SIMD_INLINE DVec broadcast(double x) {
  DVec r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = x;
  return r;
}
FOCV_SIMD_INLINE DVec load(const double* p) {
  DVec r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = p[l];
  return r;
}
FOCV_SIMD_INLINE void store(double* p, DVec a) {
  for (int l = 0; l < kLanes; ++l) p[l] = a.v[l];
}
FOCV_SIMD_INLINE void store(std::int32_t* p, IVec a) {
  for (int l = 0; l < kLanes; ++l) p[l] = a.i[l];
}

FOCV_SIMD_INLINE IVec to_int(DVec a) {
  IVec r;
  for (int l = 0; l < kLanes; ++l) r.i[l] = static_cast<std::int32_t>(a.v[l]);
  return r;
}
FOCV_SIMD_INLINE DVec to_double(IVec a) {
  DVec r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = static_cast<double>(a.i[l]);
  return r;
}

FOCV_SIMD_INLINE IVec broadcast_i(std::int32_t x) {
  IVec r;
  for (int l = 0; l < kLanes; ++l) r.i[l] = x;
  return r;
}
FOCV_SIMD_INLINE IVec operator+(IVec a, IVec b) {
  IVec r;
  for (int l = 0; l < kLanes; ++l) r.i[l] = a.i[l] + b.i[l];
  return r;
}
FOCV_SIMD_INLINE IVec operator*(IVec a, IVec b) {
  IVec r;
  for (int l = 0; l < kLanes; ++l) r.i[l] = a.i[l] * b.i[l];
  return r;
}

FOCV_SIMD_INLINE DVec gather(const double* base, IVec idx) {
  DVec r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = base[idx.i[l]];
  return r;
}
FOCV_SIMD_INLINE IVec gather(const std::int32_t* base, IVec idx) {
  IVec r;
  for (int l = 0; l < kLanes; ++l) r.i[l] = base[idx.i[l]];
  return r;
}

template <typename F>
FOCV_SIMD_INLINE DVec from_lanes(F&& f) {
  DVec r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = f(l);
  return r;
}

#define FOCV_SIMD_ARITH(op)                                   \
  inline DVec operator op(DVec a, DVec b) {                   \
    DVec r;                                                   \
    for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] op b.v[l]; \
    return r;                                                 \
  }
FOCV_SIMD_ARITH(+)
FOCV_SIMD_ARITH(-)
FOCV_SIMD_ARITH(*)
FOCV_SIMD_ARITH(/)
#undef FOCV_SIMD_ARITH

#define FOCV_SIMD_CMP(op)                                                \
  inline MVec operator op(DVec a, DVec b) {                              \
    MVec r;                                                              \
    for (int l = 0; l < kLanes; ++l) r.m[l] = (a.v[l] op b.v[l]) ? -1 : 0; \
    return r;                                                            \
  }
FOCV_SIMD_CMP(<)
FOCV_SIMD_CMP(<=)
FOCV_SIMD_CMP(>)
FOCV_SIMD_CMP(>=)
FOCV_SIMD_CMP(==)
FOCV_SIMD_CMP(!=)
#undef FOCV_SIMD_CMP

FOCV_SIMD_INLINE MVec operator&(MVec a, MVec b) {
  MVec r;
  for (int l = 0; l < kLanes; ++l) r.m[l] = a.m[l] & b.m[l];
  return r;
}
FOCV_SIMD_INLINE MVec operator|(MVec a, MVec b) {
  MVec r;
  for (int l = 0; l < kLanes; ++l) r.m[l] = a.m[l] | b.m[l];
  return r;
}
FOCV_SIMD_INLINE MVec operator~(MVec a) {
  MVec r;
  for (int l = 0; l < kLanes; ++l) r.m[l] = ~a.m[l];
  return r;
}

FOCV_SIMD_INLINE DVec select(MVec c, DVec a, DVec b) {
  DVec r;
  for (int l = 0; l < kLanes; ++l) {
    std::int64_t ab;
    std::int64_t bb;
    std::memcpy(&ab, &a.v[l], 8);
    std::memcpy(&bb, &b.v[l], 8);
    const std::int64_t bits = (ab & c.m[l]) | (bb & ~c.m[l]);
    std::memcpy(&r.v[l], &bits, 8);
  }
  return r;
}

FOCV_SIMD_INLINE bool any(MVec c) {
  std::int64_t acc = 0;
  for (int l = 0; l < kLanes; ++l) acc |= c.m[l];
  return acc != 0;
}
FOCV_SIMD_INLINE bool all(MVec c) {
  std::int64_t acc = -1;
  for (int l = 0; l < kLanes; ++l) acc &= c.m[l];
  return acc != 0;
}

#endif  // FOCV_SIMD_VECTOR_EXT

/// std::clamp(x, lo, hi) per lane: the same comparison order, so the
/// -0.0 / +0.0 edge behaves exactly like the scalar call.
FOCV_SIMD_INLINE DVec clamp(DVec x, DVec lo, DVec hi) {
  return select(x < lo, lo, select(hi < x, hi, x));
}

/// std::floor per lane.
#if FOCV_SIMD_X86_GATHER
FOCV_SIMD_INLINE DVec floor(DVec x) {
  return {(detail::dnative)_mm256_floor_pd((__m256d)x.v)};
}
#elif FOCV_SIMD_VECTOR_EXT
FOCV_SIMD_INLINE DVec floor(DVec x) {
  return from_lanes([&](int l) { return std::floor(x[l]); });
}
#else
FOCV_SIMD_INLINE DVec floor(DVec x) {
  double tmp[kLanes];
  store(tmp, x);
  for (int l = 0; l < kLanes; ++l) tmp[l] = std::floor(tmp[l]);
  return load(tmp);
}
#endif

#undef FOCV_SIMD_INLINE

}  // namespace focv::simd
