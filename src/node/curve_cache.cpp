#include "node/curve_cache.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/require.hpp"

namespace focv::node {

CurveCache::CurveCache(const pv::SingleDiodeModel& cell, double temperature_k, Options options)
    : cell_(cell), options_(options) {
  require(options_.surrogate_points >= 8, "CurveCache: surrogate_points must be >= 8");
  conditions_.spectrum = pv::Spectrum::kFluorescent;
  conditions_.temperature_k = temperature_k;
}

pv::Conditions CurveCache::conditions_at(double equivalent_lux) const {
  pv::Conditions c = conditions_;
  c.illuminance_lux = equivalent_lux;
  return c;
}

void CurveCache::prepare(const std::vector<double>& eq_lux) {
  if (options_.model == PowerModel::kExact) {
    // Exact entries are keyed by the first illuminance that landed in
    // each bucket *of the previous series*; reusing them would change
    // the trajectory, so re-preparation starts from a fresh table.
    entries_.clear();
    step_slot_.clear();
    prepare_exact(eq_lux);
  } else {
    prepare_surrogate(eq_lux);
  }
}

void CurveCache::build_exact_entry(Entry& e, double lux) {
  if (lux >= kDarkLux) {
    const pv::Conditions c = conditions_at(lux);
    e.voc = cell_.open_circuit_voltage(c);
    const pv::MppResult mpp = cell_.maximum_power_point(c, e.voc);
    e.pmpp = mpp.power;
    e.vmpp = mpp.voltage;
    model_evals_ += 2;
  }
  e.built = true;
  ++entries_built_;
}

void CurveCache::prepare_exact(const std::vector<double>& eq_lux) {
  // The historical memoisation: a 0.1 % log-illuminance bucket, keyed by
  // the first illuminance that lands in it, in step order. Keeping the
  // first-encounter representative (rather than the bucket centre) is
  // what makes this mode reproduce the pre-surrogate trajectory bit for
  // bit.
  eq_lux_ = &eq_lux;
  step_slot_.resize(eq_lux.size());
  std::unordered_map<long, std::uint32_t> slot_of_key;
  for (std::size_t i = 0; i < eq_lux.size(); ++i) {
    const double lux = eq_lux[i];
    const long key = std::lround(1000.0 * std::log(std::max(lux, 1e-3)));
    const auto [it, inserted] =
        slot_of_key.emplace(key, static_cast<std::uint32_t>(entries_.size()));
    if (inserted) {
      entries_.emplace_back();
      build_exact_entry(entries_.back(), lux);
    }
    step_slot_[i] = it->second;
  }
}

void CurveCache::build_surrogate_entry(Entry& e, long grid_index) {
  const double lux = std::exp(static_cast<double>(grid_index) / kGridNodesPerLogLux);
  const pv::Conditions c = conditions_at(lux);
  e.voc = cell_.open_circuit_voltage(c);
  const pv::MppResult mpp = cell_.maximum_power_point(c, e.voc);
  e.pmpp = mpp.power;
  e.vmpp = mpp.voltage;
  const int n = options_.surrogate_points;
  e.power.resize(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    const double v = e.voc * static_cast<double>(m) / static_cast<double>(n - 1);
    e.power[static_cast<std::size_t>(m)] = cell_.power_at(v, c);
  }
  model_evals_ += 2 + static_cast<std::uint64_t>(n);
  e.built = true;
  ++entries_built_;
}

void CurveCache::prepare_surrogate(const std::vector<double>& eq_lux) {
  step_slot_.assign(eq_lux.size(), kDarkStep);
  step_frac_.assign(eq_lux.size(), 0.0f);

  // Pass 1: the grid span actually touched by lit steps.
  long jmin = 0, jmax = -1;
  bool any_lit = false;
  for (const double lux : eq_lux) {
    if (lux < kDarkLux) continue;
    const long j = static_cast<long>(std::floor(kGridNodesPerLogLux * std::log(lux)));
    if (!any_lit) {
      any_lit = true;
      jmin = jmax = j;
    } else {
      jmin = std::min(jmin, j);
      jmax = std::max(jmax, j);
    }
  }
  if (!any_lit) return;  // all-dark series: entries from earlier runs stay valid

  if (entries_.empty()) {
    grid_base_ = jmin;
    entries_.resize(static_cast<std::size_t>(jmax - jmin + 2));  // +1 for the j+1 neighbour
  } else {
    // Re-preparation: entries built for earlier series sit at fixed grid
    // nodes, so they stay valid — grow the dense table to the union span
    // and keep them (their values depend only on the grid index).
    const long old_lo = grid_base_;
    const long old_hi = grid_base_ + static_cast<long>(entries_.size()) - 1;
    const long new_lo = std::min(old_lo, jmin);
    const long new_hi = std::max(old_hi, jmax + 1);
    if (new_lo != old_lo || new_hi != old_hi) {
      std::vector<Entry> grown(static_cast<std::size_t>(new_hi - new_lo + 1));
      for (std::size_t s = 0; s < entries_.size(); ++s) {
        grown[static_cast<std::size_t>(old_lo - new_lo) + s] = std::move(entries_[s]);
      }
      entries_ = std::move(grown);
      grid_base_ = new_lo;
    }
  }

  // Pass 2: per-step slots and weights; entries built on first touch.
  for (std::size_t i = 0; i < eq_lux.size(); ++i) {
    const double lux = eq_lux[i];
    if (lux < kDarkLux) {
      step_slot_[i] = kDarkStep;
      step_frac_[i] = 0.0f;
      continue;
    }
    const double x = kGridNodesPerLogLux * std::log(lux);
    const long j = static_cast<long>(std::floor(x));
    const std::size_t slot = static_cast<std::size_t>(j - grid_base_);
    step_slot_[i] = static_cast<std::uint32_t>(slot);
    step_frac_[i] = static_cast<float>(x - static_cast<double>(j));
    if (!entries_[slot].built) build_surrogate_entry(entries_[slot], j);
    if (!entries_[slot + 1].built) build_surrogate_entry(entries_[slot + 1], j + 1);
  }
}

CurveCache::StepCurve CurveCache::at_step(std::size_t i) const {
  ++queries_;
  const std::uint32_t slot = step_slot_[i];
  StepCurve out;
  if (slot == kDarkStep) return out;
  const Entry& e0 = entries_[slot];
  if (options_.model == PowerModel::kExact) {
    out.voc = e0.voc;
    out.pmpp = e0.pmpp;
    out.vmpp = e0.vmpp;
    return out;
  }
  const Entry& e1 = entries_[slot + 1];
  const double f = static_cast<double>(step_frac_[i]);
  out.voc = e0.voc + f * (e1.voc - e0.voc);
  out.pmpp = e0.pmpp + f * (e1.pmpp - e0.pmpp);
  out.vmpp = e0.vmpp + f * (e1.vmpp - e0.vmpp);
  return out;
}

double CurveCache::table_power(const Entry& e, double v) const {
  if (v >= e.voc) return 0.0;
  const int n = options_.surrogate_points;
  const double pos = v / e.voc * static_cast<double>(n - 1);
  const int k = std::min(static_cast<int>(pos), n - 2);
  const double t = pos - static_cast<double>(k);
  const std::size_t idx = static_cast<std::size_t>(k);
  return e.power[idx] + t * (e.power[idx + 1] - e.power[idx]);
}

std::uint32_t CurveCache::ensure_lux_slot(double equivalent_lux, double& frac) {
  // Hot path: require() would build its message string per call.
  if (options_.model != PowerModel::kSurrogate) [[unlikely]] {
    throw PreconditionError("CurveCache: at_lux/power_at_lux need the surrogate model");
  }
  frac = 0.0;
  if (!(equivalent_lux >= kDarkLux)) return kDarkStep;
  const double x = kGridNodesPerLogLux * std::log(equivalent_lux);
  const long j = static_cast<long>(std::floor(x));
  if (entries_.empty()) {
    grid_base_ = j;
    entries_.resize(2);
  } else {
    const long old_lo = grid_base_;
    const long old_hi = grid_base_ + static_cast<long>(entries_.size()) - 1;
    const long new_lo = std::min(old_lo, j);
    const long new_hi = std::max(old_hi, j + 1);
    if (new_lo != old_lo || new_hi != old_hi) {
      std::vector<Entry> grown(static_cast<std::size_t>(new_hi - new_lo + 1));
      for (std::size_t s = 0; s < entries_.size(); ++s) {
        grown[static_cast<std::size_t>(old_lo - new_lo) + s] = std::move(entries_[s]);
      }
      entries_ = std::move(grown);
      grid_base_ = new_lo;
    }
  }
  const std::size_t slot = static_cast<std::size_t>(j - grid_base_);
  if (!entries_[slot].built) build_surrogate_entry(entries_[slot], j);
  if (!entries_[slot + 1].built) build_surrogate_entry(entries_[slot + 1], j + 1);
  frac = x - static_cast<double>(j);
  return static_cast<std::uint32_t>(slot);
}

void CurveCache::warm_range(double lux_min, double lux_max) {
  require(options_.model == PowerModel::kSurrogate,
          "CurveCache::warm_range: surrogate mode only");
  lux_min = std::max(lux_min, kDarkLux);
  if (!(lux_max >= lux_min)) return;
  const long jmin = static_cast<long>(std::floor(kGridNodesPerLogLux * std::log(lux_min)));
  const long jmax = static_cast<long>(std::floor(kGridNodesPerLogLux * std::log(lux_max)));
  double frac = 0.0;
  for (long j = jmin; j <= jmax; ++j) {
    // A lux at the node-interval midpoint makes ensure_lux_slot build
    // grid nodes j and j+1.
    (void)ensure_lux_slot(std::exp((static_cast<double>(j) + 0.5) / kGridNodesPerLogLux),
                          frac);
  }
}

CurveCache::DenseExport CurveCache::export_range(double lux_min, double lux_max) {
  require(options_.model == PowerModel::kSurrogate,
          "CurveCache::export_range: surrogate mode only");
  lux_min = std::max(lux_min, kDarkLux);
  require(lux_max >= lux_min, "CurveCache::export_range: empty illuminance range");
  warm_range(lux_min, lux_max);
  const long jmin = static_cast<long>(std::floor(kGridNodesPerLogLux * std::log(lux_min)));
  const long jmax =
      static_cast<long>(std::floor(kGridNodesPerLogLux * std::log(lux_max))) + 1;
  DenseExport out;
  out.grid_lo = jmin;
  out.points = options_.surrogate_points;
  const std::size_t slots = static_cast<std::size_t>(jmax - jmin + 1);
  out.voc.resize(slots);
  out.pmpp.resize(slots);
  out.vmpp.resize(slots);
  out.power.resize(slots * static_cast<std::size_t>(out.points));
  for (std::size_t i = 0; i < slots; ++i) {
    const std::size_t slot = static_cast<std::size_t>(jmin - grid_base_) + i;
    const Entry& e = entries_[slot];
    require(e.built, "CurveCache::export_range: entry missed by warm_range");
    out.voc[i] = e.voc;
    out.pmpp[i] = e.pmpp;
    out.vmpp[i] = e.vmpp;
    std::copy(e.power.begin(), e.power.end(),
              out.power.begin() + static_cast<std::ptrdiff_t>(i * static_cast<std::size_t>(out.points)));
  }
  return out;
}

void CurveCache::seed_entries(const CurveCache& other) {
  require(options_.model == PowerModel::kSurrogate &&
              other.options_.model == PowerModel::kSurrogate,
          "CurveCache::seed_entries: surrogate mode only");
  require(&other.cell_ == &cell_ &&
              other.conditions_.temperature_k == conditions_.temperature_k &&
              other.options_.surrogate_points == options_.surrogate_points,
          "CurveCache::seed_entries: cache identity mismatch");
  if (other.entries_.empty()) return;
  // Grow the dense table to the union span (same scheme as re-prepare).
  const long src_lo = other.grid_base_;
  const long src_hi = other.grid_base_ + static_cast<long>(other.entries_.size()) - 1;
  if (entries_.empty()) {
    grid_base_ = src_lo;
    entries_.resize(other.entries_.size());
  } else {
    const long old_lo = grid_base_;
    const long old_hi = grid_base_ + static_cast<long>(entries_.size()) - 1;
    const long new_lo = std::min(old_lo, src_lo);
    const long new_hi = std::max(old_hi, src_hi);
    if (new_lo != old_lo || new_hi != old_hi) {
      std::vector<Entry> grown(static_cast<std::size_t>(new_hi - new_lo + 1));
      for (std::size_t s = 0; s < entries_.size(); ++s) {
        grown[static_cast<std::size_t>(old_lo - new_lo) + s] = std::move(entries_[s]);
      }
      entries_ = std::move(grown);
      grid_base_ = new_lo;
    }
  }
  for (std::size_t s = 0; s < other.entries_.size(); ++s) {
    const Entry& src = other.entries_[s];
    if (!src.built) continue;
    Entry& dst = entries_[static_cast<std::size_t>(src_lo - grid_base_) + s];
    if (!dst.built) dst = src;
  }
}

CurveCache::StepCurve CurveCache::at_lux(double equivalent_lux) {
  ++queries_;
  double f = 0.0;
  const std::uint32_t slot = ensure_lux_slot(equivalent_lux, f);
  StepCurve out;
  if (slot == kDarkStep) return out;
  const Entry& e0 = entries_[slot];
  const Entry& e1 = entries_[slot + 1];
  out.voc = e0.voc + f * (e1.voc - e0.voc);
  out.pmpp = e0.pmpp + f * (e1.pmpp - e0.pmpp);
  out.vmpp = e0.vmpp + f * (e1.vmpp - e0.vmpp);
  return out;
}

double CurveCache::power_at_lux(double equivalent_lux, double v) {
  ++queries_;
  if (v <= 0.0) return 0.0;
  double f = 0.0;
  const std::uint32_t slot = ensure_lux_slot(equivalent_lux, f);
  if (slot == kDarkStep) return 0.0;
  const double p0 = table_power(entries_[slot], v);
  const double p1 = table_power(entries_[slot + 1], v);
  return p0 + f * (p1 - p0);
}

double CurveCache::power_at_step(std::size_t i, double v) {
  ++queries_;
  if (v <= 0.0) return 0.0;
  if (options_.model == PowerModel::kExact) {
    const double lux = (*eq_lux_)[i];
    if (lux < kDarkLux) return 0.0;
    ++model_evals_;
    return cell_.power_at(v, conditions_at(lux));
  }
  const std::uint32_t slot = step_slot_[i];
  if (slot == kDarkStep) return 0.0;
  const double p0 = table_power(entries_[slot], v);
  const double p1 = table_power(entries_[slot + 1], v);
  return p0 + static_cast<double>(step_frac_[i]) * (p1 - p0);
}

}  // namespace focv::node
