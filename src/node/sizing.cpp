#include "node/sizing.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace focv::node {

namespace {

/// Exact area scaling of a cell: every areal current (photo, diode,
/// shunt) scales together while series resistance scales inversely, so
/// I_scaled(V) = factor * I_reference(V) at every voltage.
class ScaledCell : public pv::CellModel {
 public:
  ScaledCell(const pv::SingleDiodeModel& inner, double factor)
      : inner_(inner), factor_(factor) {}

  [[nodiscard]] std::string name() const override {
    return inner_.name() + " x" + std::to_string(factor_);
  }
  [[nodiscard]] double area_cm2() const override { return inner_.area_cm2() * factor_; }
  [[nodiscard]] double current(double v, const pv::Conditions& c) const override {
    return factor_ * inner_.current(v, c);
  }
  [[nodiscard]] double current_derivative(double v, const pv::Conditions& c) const override {
    return factor_ * inner_.current_derivative(v, c);
  }
  [[nodiscard]] double voltage_bound(const pv::Conditions& c) const override {
    return inner_.voltage_bound(c);
  }

 private:
  const pv::SingleDiodeModel& inner_;
  double factor_;
};

struct DayRun {
  double harvest_j = 0.0;       ///< delivered minus overhead [J]
  double load_j = 0.0;
  double worst_deficit_j = 0.0; ///< deepest cumulative (load+overhead-delivered) dip [J]
};

DayRun run_day(const SizingQuery& query, const pv::SingleDiodeModel& reference_cell,
               const env::LightTrace& trace, mppt::MpptController& controller,
               double factor, const std::vector<double>* shared_eq_lux) {
  const ScaledCell cell(reference_cell, factor);
  controller.reset();
  const power::WsnLoad load(query.load);
  const double load_power = load.average_power();

  // The spectral conversion depends only on (trace, cell); a caller
  // sizing many factors (or many queries) against one scenario shares
  // it through a SizingContext instead of redoing it per probe.
  std::vector<double> owned_eq_lux;
  if (shared_eq_lux == nullptr) {
    owned_eq_lux = trace.equivalent_lux(reference_cell);
  }
  const std::vector<double>& eq_lux = shared_eq_lux ? *shared_eq_lux : owned_eq_lux;
  const std::vector<double>& t = trace.time();

  DayRun result;
  double balance = 0.0;
  double prev_power = 0.0, prev_voltage = 0.0;
  mppt::SensedInputs sensed;
  pv::Conditions c;
  c.temperature_k = query.temperature_k;

  // Memoised Voc on a coarse lux grid (Voc is area-invariant).
  std::vector<std::pair<long, double>> voc_cache;
  auto voc_at = [&](double lux) {
    const long key = std::lround(200.0 * std::log(std::max(lux, 1e-3)));
    for (const auto& [k, v] : voc_cache) {
      if (k == key) return v;
    }
    c.illuminance_lux = lux;
    const double v = (lux >= 0.05) ? cell.open_circuit_voltage(c) : 0.0;
    voc_cache.emplace_back(key, v);
    return v;
  };

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    const double dt = t[i + 1] - t[i];
    const double lux = eq_lux[i];
    c.illuminance_lux = lux;

    double delivered = 0.0;
    double overhead = 0.0;
    if (lux >= controller.minimum_operating_lux() && lux >= 0.05) {
      sensed.time = t[i];
      sensed.dt = dt;
      sensed.voc = voc_at(lux);
      sensed.pilot_voc = sensed.voc;
      sensed.illuminance_estimate = lux;
      sensed.prev_power = prev_power;
      sensed.prev_voltage = prev_voltage;
      const mppt::ControlOutput out = controller.step(sensed);
      const double pv_power = cell.power_at(out.pv_voltage, c) *
                              (1.0 - std::min(1.0, out.disconnect_fraction));
      prev_power = pv_power;
      prev_voltage = out.pv_voltage;
      delivered = query.converter.output_power(pv_power, out.pv_voltage);
      overhead = controller.overhead_power();
    }
    result.harvest_j += (delivered - overhead) * dt;
    result.load_j += load_power * dt;
    balance += (delivered - overhead - load_power) * dt;
    result.worst_deficit_j = std::min(result.worst_deficit_j, balance);
  }
  return result;
}

}  // namespace

namespace {

SizingResult size_impl(const SizingQuery& query, double min_factor, double max_factor,
                       const std::vector<double>* shared_eq_lux) {
  require(query.cell_model != nullptr, "size_for_energy_neutrality: cell is required");
  require(query.scenario_trace != nullptr, "size_for_energy_neutrality: scenario is required");
  require(query.controller_prototype != nullptr,
          "size_for_energy_neutrality: controller is required");
  require(min_factor > 0.0 && max_factor > min_factor,
          "size_for_energy_neutrality: bad factor range");

  // Each run gets a freshly cloned controller so a shared query can be
  // sized from several threads at once.
  const std::unique_ptr<mppt::MpptController> owned = query.controller_prototype->clone();
  mppt::MpptController& controller = *owned;
  const auto day_at = [&](double factor) {
    return run_day(query, *query.cell_model, *query.scenario_trace, controller, factor,
                   shared_eq_lux);
  };

  SizingResult result;
  const DayRun at_max = day_at(max_factor);
  result.daily_load_j = at_max.load_j;
  if (at_max.harvest_j < at_max.load_j) {
    // Even the largest allowed cell cannot reach neutrality.
    result.area_factor = max_factor;
    result.daily_harvest_j = at_max.harvest_j;
    result.feasible = false;
    return result;
  }

  double lo = min_factor, hi = max_factor;
  const DayRun at_min = day_at(min_factor);
  if (at_min.harvest_j >= at_min.load_j) {
    hi = min_factor;  // already neutral at the smallest size
  }
  for (int iter = 0; iter < 24 && hi > lo * 1.02; ++iter) {
    const double mid = std::sqrt(lo * hi);
    const DayRun run = day_at(mid);
    if (run.harvest_j >= run.load_j) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.area_factor = hi;
  const DayRun final_run = day_at(hi);
  result.daily_harvest_j = final_run.harvest_j;
  result.storage_j = -final_run.worst_deficit_j * 1.25;  // 25% engineering margin
  // Supercap sized for full energy swing at a 3 V working voltage.
  result.storage_f_at_3v = 2.0 * result.storage_j / (3.0 * 3.0);
  result.feasible = true;
  return result;
}

}  // namespace

SizingResult size_for_energy_neutrality(const SizingQuery& query, double min_factor,
                                        double max_factor) {
  return size_impl(query, min_factor, max_factor, nullptr);
}

SizingResult size_for_energy_neutrality(const SizingQuery& query, const SizingContext& context,
                                        double min_factor, double max_factor) {
  require(query.scenario_trace != nullptr, "size_for_energy_neutrality: scenario is required");
  require(query.cell_model != nullptr, "size_for_energy_neutrality: cell is required");
  require(&context.trace() == query.scenario_trace.get(),
          "size_for_energy_neutrality: context was built for a different trace");
  require(&context.cell() == query.cell_model.get(),
          "size_for_energy_neutrality: context was built for a different cell");
  return size_impl(query, min_factor, max_factor, &context.eq_lux());
}

}  // namespace focv::node
