// Energy-neutral design sizing.
//
// The question a deployment engineer asks of this system: given a light
// scenario and a duty-cycled load, how large must the cell and the store
// be for the node to run forever? This utility answers it with the same
// models the simulator uses.
#pragma once

#include <memory>
#include <vector>

#include "env/light_trace.hpp"
#include "mppt/controller.hpp"
#include "mppt/registry.hpp"
#include "power/converter.hpp"
#include "power/load.hpp"
#include "pv/diode_models.hpp"

namespace focv::node {

/// Inputs to the sizing query.
///
/// Like NodeConfig, a query holds its controller as an immutable
/// prototype that each sizing run clones, so concurrent
/// size_for_energy_neutrality calls sharing one query are safe.
struct SizingQuery {
  /// Reference cell, scaled by the area factor. Set with use_cell().
  std::shared_ptr<const pv::SingleDiodeModel> cell_model;
  /// Representative day. Set with use_scenario().
  std::shared_ptr<const env::LightTrace> scenario_trace;
  /// Tracking technique (cloned per run). Set with use_controller().
  std::shared_ptr<const mppt::MpptController> controller_prototype;

  void use_cell(const pv::SingleDiodeModel& cell_ref) {
    cell_model = std::shared_ptr<const pv::SingleDiodeModel>(
        std::shared_ptr<const pv::SingleDiodeModel>(), &cell_ref);
  }
  void use_scenario(const env::LightTrace& trace_ref) {
    scenario_trace = std::shared_ptr<const env::LightTrace>(
        std::shared_ptr<const env::LightTrace>(), &trace_ref);
  }
  void use_scenario(env::LightTrace&& trace_value) {
    scenario_trace = std::make_shared<const env::LightTrace>(std::move(trace_value));
  }
  void use_controller(const mppt::MpptController& prototype) {
    controller_prototype = prototype.clone();
  }
  void use_controller(std::unique_ptr<mppt::MpptController> prototype) {
    controller_prototype = std::move(prototype);
  }
  /// Build the controller from a registry spec string (grammar and
  /// catalog: mppt/registry.hpp). Throws mppt::SpecError on a bad spec.
  void use_controller(const std::string& spec) {
    controller_prototype = mppt::Registry::instance().make(spec);
  }

  power::BuckBoostConverter converter;
  power::WsnLoad::Params load;
  double temperature_k = 300.15;
};

/// Result of a sizing run.
struct SizingResult {
  double area_factor = 0.0;        ///< multiple of the reference cell's area
  double daily_harvest_j = 0.0;    ///< net harvest with that area over the scenario [J]
  double daily_load_j = 0.0;       ///< load demand over the scenario [J]
  double storage_j = 0.0;          ///< store energy needed to ride through deficits [J]
  double storage_f_at_3v = 0.0;    ///< equivalent supercap size at 3 V swing-to-empty [F]
  bool feasible = false;           ///< a finite area achieves energy neutrality
};

/// Precomputed per-(scenario, cell) state shared by many sizing runs.
///
/// A sizing run probes ~25 area factors, and each probe used to redo
/// the O(trace) spectral conversion LightTrace::equivalent_lux before
/// its day loop. The conversion depends only on the trace and the
/// reference cell — never on the probed area — so a resident server
/// (focv::serve) builds one context per environment and every sizing
/// query against that environment skips the conversion entirely.
/// Immutable after construction; safe to share across threads. The
/// trace and cell must outlive the context (held by reference).
class SizingContext {
 public:
  SizingContext(const env::LightTrace& trace, const pv::SingleDiodeModel& cell)
      : trace_(&trace), cell_(&cell), eq_lux_(trace.equivalent_lux(cell)) {}

  [[nodiscard]] const env::LightTrace& trace() const { return *trace_; }
  [[nodiscard]] const pv::SingleDiodeModel& cell() const { return *cell_; }
  /// Equivalent fluorescent illuminance per trace sample.
  [[nodiscard]] const std::vector<double>& eq_lux() const { return eq_lux_; }

 private:
  const env::LightTrace* trace_;
  const pv::SingleDiodeModel* cell_;
  std::vector<double> eq_lux_;
};

/// Find the smallest cell-area multiple (within [min_factor, max_factor])
/// for which net daily harvest covers the load, then compute the storage
/// needed to cover the worst cumulative deficit across the scenario.
[[nodiscard]] SizingResult size_for_energy_neutrality(const SizingQuery& query,
                                                      double min_factor = 0.1,
                                                      double max_factor = 64.0);

/// As above, reusing a caller-owned SizingContext built for exactly this
/// query's scenario trace and reference cell (throws PreconditionError
/// on a mismatch). Byte-identical to the context-free overload — the
/// context only precomputes values the run would derive itself.
[[nodiscard]] SizingResult size_for_energy_neutrality(const SizingQuery& query,
                                                      const SizingContext& context,
                                                      double min_factor = 0.1,
                                                      double max_factor = 64.0);

}  // namespace focv::node
