// End-to-end energy-harvesting node simulation:
//   light trace -> PV cell -> MPPT controller -> converter -> store -> load.
//
// This is the fast behavioural tier used for 24-hour scenarios and the
// state-of-the-art comparison bench; waveform-level behaviour is covered
// by the circuit netlists in focv::core.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "env/light_trace.hpp"
#include "mppt/controller.hpp"
#include "power/battery.hpp"
#include "power/coldstart.hpp"
#include "power/converter.hpp"
#include "power/load.hpp"
#include "power/storage.hpp"
#include "pv/diode_models.hpp"

namespace focv::node {

/// Static configuration of a simulated node.
///
/// A config owns (shares) its cell model and holds the controller only
/// as an immutable *prototype*: `simulate_node` clones the prototype
/// for each run, so the same `NodeConfig` value can drive many runs
/// concurrently from different threads (this is what the sweep engine
/// in focv::runtime relies on).
struct NodeConfig {
  /// Cell model (required). Set with use_cell().
  std::shared_ptr<const pv::SingleDiodeModel> cell_model;
  /// Controller prototype (required): cloned once per run, never
  /// mutated. Set with use_controller().
  std::shared_ptr<const mppt::MpptController> controller_prototype;

  /// Point at a long-lived cell (e.g. a pv::cell_library singleton)
  /// without taking ownership.
  void use_cell(const pv::SingleDiodeModel& cell_ref) {
    cell_model = std::shared_ptr<const pv::SingleDiodeModel>(
        std::shared_ptr<const pv::SingleDiodeModel>(), &cell_ref);
  }
  /// Share ownership of a heap-allocated cell model.
  void use_cell(std::shared_ptr<const pv::SingleDiodeModel> cell_ptr) {
    cell_model = std::move(cell_ptr);
  }
  /// Store a deep copy of `prototype` as this config's controller.
  void use_controller(const mppt::MpptController& prototype) {
    controller_prototype = prototype.clone();
  }
  /// Take ownership of an already-built controller prototype.
  void use_controller(std::unique_ptr<mppt::MpptController> prototype) {
    controller_prototype = std::move(prototype);
  }

  // --- DEPRECATED borrowed-pointer shims (one-PR grace period) -------
  // When set they take effect only if the owning members above are
  // empty. The raw-controller path mutates the pointee (the historical
  // behaviour) and is NOT re-entrant; migrate to use_controller().
  const pv::SingleDiodeModel* cell = nullptr;       ///< DEPRECATED: use use_cell()
  mppt::MpptController* controller = nullptr;       ///< DEPRECATED: use use_controller()

  power::BuckBoostConverter converter;
  power::Supercapacitor::Params storage;
  /// When set, a battery replaces the supercapacitor as the store.
  std::optional<power::Battery::Params> battery;
  power::WsnLoad::Params load;
  std::optional<power::ColdStartCircuit::Params> coldstart;  ///< engaged when set
  double temperature_k = 300.15;
  bool record_traces = false;   ///< keep per-step waveforms in the report
  int record_stride = 60;       ///< record every k-th step
};

/// Results of one simulation run.
struct NodeReport {
  double duration = 0.0;             ///< [s]
  double harvested_energy = 0.0;     ///< PV output energy (after disconnects) [J]
  double delivered_energy = 0.0;     ///< converter output into the store [J]
  double overhead_energy = 0.0;      ///< tracking-circuitry consumption [J]
  double load_energy_served = 0.0;   ///< load demand met from the store [J]
  double ideal_mpp_energy = 0.0;     ///< energy of a perfect tracker [J]
  double coldstart_time = -1.0;      ///< first time the controller ran [s]; -1 = never
  int brownout_steps = 0;            ///< steps where the store could not feed the load
  double final_store_voltage = 0.0;  ///< [V]

  /// harvested / ideal over lit periods (1.0 = perfect tracking).
  [[nodiscard]] double tracking_efficiency() const {
    return (ideal_mpp_energy > 0.0) ? harvested_energy / ideal_mpp_energy : 0.0;
  }
  /// delivered minus overhead: what actually accumulates [J].
  [[nodiscard]] double net_energy() const { return delivered_energy - overhead_energy; }

  // Optional recorded traces (when NodeConfig::record_traces).
  std::vector<double> time;
  std::vector<double> pv_voltage;
  std::vector<double> pv_power;
  std::vector<double> store_voltage;
};

/// Run the node across a light trace. The step size is the trace's
/// sample spacing. Throws PreconditionError on a missing cell or
/// controller.
///
/// Re-entrancy: when the config uses the owning members
/// (cell_model/controller_prototype) this function never mutates shared
/// state — the prototype is cloned and reset per run — so concurrent
/// calls with the same config are safe and deterministic. The
/// deprecated raw `controller` shim keeps the old mutate-in-place
/// behaviour.
[[nodiscard]] NodeReport simulate_node(const env::LightTrace& trace, const NodeConfig& config);

}  // namespace focv::node
