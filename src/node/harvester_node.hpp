// End-to-end energy-harvesting node simulation:
//   light trace -> PV cell -> MPPT controller -> converter -> store -> load.
//
// This is the fast behavioural tier used for 24-hour scenarios and the
// state-of-the-art comparison bench; waveform-level behaviour is covered
// by the circuit netlists in focv::core.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "env/light_trace.hpp"
#include "mppt/controller.hpp"
#include "mppt/registry.hpp"
#include "node/curve_cache.hpp"
#include "power/battery.hpp"
#include "power/coldstart.hpp"
#include "power/converter.hpp"
#include "power/load.hpp"
#include "power/storage.hpp"
#include "pv/diode_models.hpp"
#include "sched/options.hpp"

namespace focv::sched {
class PreparedTrace;  // sched/prepared_trace.hpp
}

namespace focv::node {

/// Time-advancement strategy of simulate_node.
enum class Stepper {
  /// Integrate every trace step (the bit-identical reference path).
  kFixed,
  /// Event-driven macro-stepping (focv::sched): advance from event to
  /// event — MPPT sample/hold boundaries, light-trace segments, storage
  /// threshold crossings, report points — integrating analytically in
  /// between. Energy/efficiency outputs agree with kFixed to within
  /// 0.1 % (enforced by tests/sched/) at 1-2 orders of magnitude fewer
  /// steps. Configurations the engine cannot macro-step (exact power
  /// model, per-step-only controllers such as P&O, the
  /// obs_compare_exact shadow) transparently run the fixed path.
  kEvent,
};

/// Static configuration of a simulated node.
///
/// A config owns (shares) its cell model and holds the controller only
/// as an immutable *prototype*: `simulate_node` clones the prototype
/// for each run, so the same `NodeConfig` value can drive many runs
/// concurrently from different threads (this is what the sweep engine
/// in focv::runtime relies on).
struct NodeConfig {
  /// Cell model (required). Set with use_cell().
  std::shared_ptr<const pv::SingleDiodeModel> cell_model;
  /// Controller prototype (required): cloned once per run, never
  /// mutated. Set with use_controller().
  std::shared_ptr<const mppt::MpptController> controller_prototype;

  /// Point at a long-lived cell (e.g. a pv::cell_library singleton)
  /// without taking ownership.
  void use_cell(const pv::SingleDiodeModel& cell_ref) {
    cell_model = std::shared_ptr<const pv::SingleDiodeModel>(
        std::shared_ptr<const pv::SingleDiodeModel>(), &cell_ref);
  }
  /// Share ownership of a heap-allocated cell model.
  void use_cell(std::shared_ptr<const pv::SingleDiodeModel> cell_ptr) {
    cell_model = std::move(cell_ptr);
  }
  /// Store a deep copy of `prototype` as this config's controller.
  void use_controller(const mppt::MpptController& prototype) {
    controller_prototype = prototype.clone();
  }
  /// Take ownership of an already-built controller prototype.
  void use_controller(std::unique_ptr<mppt::MpptController> prototype) {
    controller_prototype = std::move(prototype);
  }
  /// Build the controller from a registry spec string, e.g.
  /// `"focv[k=0.6,hold=69s]"` or `"graddesc[lr=0.05]"` (grammar and
  /// catalog: mppt/registry.hpp). Throws mppt::SpecError on an unknown
  /// name or a malformed/out-of-range parameter — never silently falls
  /// back to a default-constructed controller.
  void use_controller(const std::string& spec) {
    controller_prototype = mppt::Registry::instance().make(spec);
  }

  /// PV curve evaluation strategy (see node/curve_cache.hpp). The
  /// surrogate is several times faster and agrees with exact solves to
  /// well under 0.1 % tracking efficiency; kExact reproduces the
  /// pre-surrogate per-step solve trajectory bit for bit.
  PowerModel power_model = PowerModel::kSurrogate;
  /// Voltage-grid points per surrogate P(V) table entry.
  int surrogate_points = 128;

  /// Multiplier applied to the light trace before it reaches the cell
  /// (both spectral channels). Fleet nodes use this for placement-derived
  /// attenuation and photocurrent tolerance over one shared trace, so a
  /// 10,000-node deployment never materialises per-node trace copies.
  /// 1.0 (default) reproduces the unscaled trace bit for bit.
  double lux_scale = 1.0;

  /// Time-advancement strategy (see Stepper). kFixed is the reference.
  Stepper stepper = Stepper::kFixed;
  /// Tuning of the event engine; ignored under kFixed.
  sched::EventOptions events;

  power::BuckBoostConverter converter;
  power::Supercapacitor::Params storage;
  /// When set, a battery replaces the supercapacitor as the store.
  std::optional<power::Battery::Params> battery;
  power::WsnLoad::Params load;
  std::optional<power::ColdStartCircuit::Params> coldstart;  ///< engaged when set
  double temperature_k = 300.15;
  bool record_traces = false;   ///< keep per-step waveforms in the report
  int record_stride = 60;       ///< record every k-th step

  /// Telemetry-only: when focv::obs is enabled and the surrogate power
  /// model is active, additionally run an exact CurveCache alongside it
  /// and record the per-step surrogate-vs-exact power deviation into
  /// the `node.surrogate.deviation_rel` histogram. Never alters the
  /// simulated trajectory; costs extra exact solves, so off by default.
  bool obs_compare_exact = false;
};

/// Results of one simulation run.
struct NodeReport {
  double duration = 0.0;             ///< [s]
  double harvested_energy = 0.0;     ///< PV output energy (after disconnects) [J]
  double delivered_energy = 0.0;     ///< converter output into the store [J]
  double overhead_energy = 0.0;      ///< tracking-circuitry consumption [J]
  double load_energy_served = 0.0;   ///< load demand met from the store [J]
  double ideal_mpp_energy = 0.0;     ///< energy of a perfect tracker [J]
  double coldstart_time = -1.0;      ///< first time the controller ran [s]; -1 = never
  int brownout_steps = 0;            ///< steps where the store could not feed the load
  double brownout_time = 0.0;        ///< time the store could not feed the load [s]
  double final_store_voltage = 0.0;  ///< [V]

  // Observability counters (deterministic for a given config + trace).
  std::uint64_t steps = 0;           ///< simulation steps executed
  std::uint64_t model_evals = 0;     ///< exact cell-model solves issued by the curve cache
  std::uint64_t curve_entries = 0;   ///< unique illuminance buckets solved
  /// Event-engine boundaries processed (segment starts, controller
  /// sample/decay events, storage threshold flips, report points).
  /// 0 under the fixed stepper; deterministic for a config + trace, so
  /// jobs=1 and jobs=N fleet runs must agree (tested).
  std::uint64_t events = 0;

  /// harvested / ideal over lit periods (1.0 = perfect tracking).
  [[nodiscard]] double tracking_efficiency() const {
    return (ideal_mpp_energy > 0.0) ? harvested_energy / ideal_mpp_energy : 0.0;
  }
  /// delivered minus overhead: what actually accumulates [J].
  [[nodiscard]] double net_energy() const { return delivered_energy - overhead_energy; }

  // Optional recorded traces (when NodeConfig::record_traces).
  std::vector<double> time;
  std::vector<double> pv_voltage;
  std::vector<double> pv_power;
  std::vector<double> store_voltage;
};

/// Run the node across a light trace. The step size is the trace's
/// sample spacing. Throws PreconditionError on a missing cell or
/// controller.
///
/// Re-entrancy: this function never mutates shared state — the
/// controller prototype is cloned and reset per run — so concurrent
/// calls with the same config are safe and deterministic.
[[nodiscard]] NodeReport simulate_node(const env::LightTrace& trace, const NodeConfig& config);

/// As above, but evaluating PV curves through a caller-owned cache.
///
/// `shared_curves` must have been built for the same cell model,
/// temperature and power-model options as `config`; it is re-prepared
/// for this run's illuminance series (see CurveCache::prepare). In
/// surrogate mode the entry table carries over between runs, so
/// simulating many nodes that share a cell model through one cache —
/// what the fleet chunk stepper does — only pays exact solves for grid
/// nodes no earlier run touched, while every run's trajectory stays
/// bit-identical to a fresh-cache run. The report's model_evals /
/// curve_entries counters are this run's increments only. Passing
/// nullptr falls back to an internal per-run cache.
///
/// NOT re-entrant with respect to `shared_curves`: concurrent runs must
/// not share one cache (the fleet engine shares per worker chunk, which
/// is sequential).
[[nodiscard]] NodeReport simulate_node(const env::LightTrace& trace, const NodeConfig& config,
                                       CurveCache* shared_curves);

/// As above, additionally reusing a caller-owned PreparedTrace (the
/// event engine's O(trace) preprocessing — see sched/prepared_trace.hpp)
/// built for exactly this trace and cell. The fleet engine builds one
/// per environment so event-stepped nodes share the preprocessing.
/// Ignored (may be nullptr) when the run takes the fixed path.
[[nodiscard]] NodeReport simulate_node(const env::LightTrace& trace, const NodeConfig& config,
                                       CurveCache* shared_curves,
                                       const sched::PreparedTrace* prepared);

}  // namespace focv::node
