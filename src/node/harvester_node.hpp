// End-to-end energy-harvesting node simulation:
//   light trace -> PV cell -> MPPT controller -> converter -> store -> load.
//
// This is the fast behavioural tier used for 24-hour scenarios and the
// state-of-the-art comparison bench; waveform-level behaviour is covered
// by the circuit netlists in focv::core.
#pragma once

#include <optional>
#include <vector>

#include "env/light_trace.hpp"
#include "mppt/controller.hpp"
#include "power/battery.hpp"
#include "power/coldstart.hpp"
#include "power/converter.hpp"
#include "power/load.hpp"
#include "power/storage.hpp"
#include "pv/diode_models.hpp"

namespace focv::node {

/// Static configuration of a simulated node.
struct NodeConfig {
  const pv::SingleDiodeModel* cell = nullptr;       ///< required
  mppt::MpptController* controller = nullptr;       ///< required
  power::BuckBoostConverter converter;
  power::Supercapacitor::Params storage;
  /// When set, a battery replaces the supercapacitor as the store.
  std::optional<power::Battery::Params> battery;
  power::WsnLoad::Params load;
  std::optional<power::ColdStartCircuit::Params> coldstart;  ///< engaged when set
  double temperature_k = 300.15;
  bool record_traces = false;   ///< keep per-step waveforms in the report
  int record_stride = 60;       ///< record every k-th step
};

/// Results of one simulation run.
struct NodeReport {
  double duration = 0.0;             ///< [s]
  double harvested_energy = 0.0;     ///< PV output energy (after disconnects) [J]
  double delivered_energy = 0.0;     ///< converter output into the store [J]
  double overhead_energy = 0.0;      ///< tracking-circuitry consumption [J]
  double load_energy_served = 0.0;   ///< load demand met from the store [J]
  double ideal_mpp_energy = 0.0;     ///< energy of a perfect tracker [J]
  double coldstart_time = -1.0;      ///< first time the controller ran [s]; -1 = never
  int brownout_steps = 0;            ///< steps where the store could not feed the load
  double final_store_voltage = 0.0;  ///< [V]

  /// harvested / ideal over lit periods (1.0 = perfect tracking).
  [[nodiscard]] double tracking_efficiency() const {
    return (ideal_mpp_energy > 0.0) ? harvested_energy / ideal_mpp_energy : 0.0;
  }
  /// delivered minus overhead: what actually accumulates [J].
  [[nodiscard]] double net_energy() const { return delivered_energy - overhead_energy; }

  // Optional recorded traces (when NodeConfig::record_traces).
  std::vector<double> time;
  std::vector<double> pv_voltage;
  std::vector<double> pv_power;
  std::vector<double> store_voltage;
};

/// Run the node across a light trace. The step size is the trace's
/// sample spacing. Throws PreconditionError on null cell/controller.
[[nodiscard]] NodeReport simulate_node(const env::LightTrace& trace, const NodeConfig& config);

}  // namespace focv::node
