// Per-run cache of PV curve quantities for the behavioural simulation
// tier.
//
// simulate_node asks three questions of the cell model every step: the
// curve summary (Voc, Pmpp, Vmpp) at the step's illuminance, and the
// power P(V) at the controller's commanded voltage. Answering them with
// implicit series-resistance solves per step is what makes a 24 h run
// solver-bound. This cache offers two strategies:
//
//  - PowerModel::kSurrogate (default): curve entries live on a coarse
//    grid uniform in log-illuminance (kGridNodesPerLogLux nodes per
//    e-fold, ~3% spacing). Each entry carries the exact Voc/Pmpp/Vmpp
//    plus an N-point P(V) table sampled on [0, Voc]; per-step answers
//    are linear interpolations in voltage and in log-illuminance. All
//    table points are exact solves, and linear interpolation of a
//    function through its exact samples never exceeds the entry's own
//    Pmpp, so tracking efficiency stays <= 1 by construction. The
//    combined interpolation error is bounded well below 0.1 % of Pmpp
//    at the default resolution (validated by tests/node/
//    curve_cache_test.cpp).
//
//  - PowerModel::kExact: the historical behaviour, bit for bit — Voc
//    and the MPP are memoised on a fine 0.1 % log-illuminance grid
//    (keyed by the first illuminance that lands in each bucket, in step
//    order) and P(V) is solved exactly per step at the step's own
//    illuminance.
//
// Either way, the per-step lookups are array indexations prepared once
// by prepare(): no hashing, no log(), no binary search in the hot loop.
#pragma once

#include <cstdint>
#include <vector>

#include "pv/conditions.hpp"
#include "pv/diode_models.hpp"

namespace focv::node {

/// How the behavioural tier evaluates PV curves (see file comment).
enum class PowerModel {
  kSurrogate,  ///< interpolated curve tables (several times faster)
  kExact,      ///< per-step implicit solves (pre-surrogate trajectory)
};

class CurveCache {
 public:
  struct Options {
    PowerModel model = PowerModel::kSurrogate;
    /// Voltage-grid points per surrogate P(V) table (>= 8).
    int surrogate_points = 128;
  };

  CurveCache(const pv::SingleDiodeModel& cell, double temperature_k, Options options);
  CurveCache(const pv::SingleDiodeModel& cell, double temperature_k)
      : CurveCache(cell, temperature_k, Options{}) {}

  /// Curve summary at one step's illuminance.
  struct StepCurve {
    double voc = 0.0;   ///< open-circuit voltage [V]
    double pmpp = 0.0;  ///< maximum power [W]
    double vmpp = 0.0;  ///< maximum-power voltage [V]
  };

  /// Precompute the per-step lookup arrays for a run over `eq_lux`
  /// (equivalent fluorescent illuminance per sample). Must be called
  /// before the per-step queries; `eq_lux` must outlive the cache in
  /// exact mode (the per-step solves read it back).
  ///
  /// prepare() may be called again for a new series. In surrogate mode
  /// the entry table survives re-preparation: entries live at fixed
  /// log-illuminance grid nodes whose values depend only on the cell
  /// and the options, so a cache can serve many runs (the fleet engine
  /// re-prepares one cache across every node of a chunk) and only pays
  /// exact solves for grid nodes no earlier series touched — without
  /// changing any run's trajectory. In exact mode the entry table is
  /// keyed by first-encountered illuminance in step order, so
  /// re-preparation resets it (fresh-cache semantics, bit-identical to
  /// a new cache); only the instrumentation counters accumulate.
  void prepare(const std::vector<double>& eq_lux);

  /// Curve summary for step i.
  [[nodiscard]] StepCurve at_step(std::size_t i) const;

  /// Cell power when held at voltage v during step i [W].
  [[nodiscard]] double power_at_step(std::size_t i, double v);

  /// On-demand surrogate queries at an arbitrary equivalent illuminance,
  /// usable without (or alongside) a prepare() pass. The event-driven
  /// macro-stepper visits a few thousand quadrature points per simulated
  /// day instead of every trace sample, so it skips the O(trace) prepare
  /// and asks here directly. Entries are built lazily at the same fixed
  /// log-illuminance grid nodes prepare() uses — values depend only on
  /// the grid index, so a cache shared across fixed and event runs
  /// answers both consistently. Surrogate mode only.
  [[nodiscard]] StepCurve at_lux(double equivalent_lux);
  /// Cell power at voltage v under `equivalent_lux`, same grid [W].
  [[nodiscard]] double power_at_lux(double equivalent_lux, double v);

  /// Build every surrogate grid entry whose node lies in
  /// [lux_min, lux_max] (plus the interpolation neighbour above), so a
  /// cache can be warmed once and then shared or copied. Surrogate mode
  /// only. Entry values depend only on the grid index, so warming never
  /// changes what any later query returns — it only front-loads solves.
  void warm_range(double lux_min, double lux_max);

  /// Copy every built surrogate entry of `other` (which must answer for
  /// the same cell, temperature and options) that this cache has not
  /// built itself. Instrumentation counters are left untouched: seeded
  /// entries are not work this cache performed, so per-run
  /// model_evals/entries_built diffs still measure the run. The fleet
  /// engine warms one cache per run and seeds each chunk's cache from
  /// it instead of letting every chunk re-solve the same grid nodes
  /// cold. Surrogate mode only.
  void seed_entries(const CurveCache& other);

  /// Self-contained copy of the surrogate grid entries covering
  /// [lux_min, lux_max] (plus the interpolation neighbour above), laid
  /// out densely for external flat-array interpolation. The fleet SoA
  /// engine exports one table per environment and answers every node's
  /// curve queries from it without touching the cache again — the values
  /// are the exact entry values at_lux() interpolates, so a flat-table
  /// lookup reproduces at_lux()/power_at_lux() arithmetic bit for bit.
  /// Warms the range first; surrogate mode only.
  struct DenseExport {
    long grid_lo = 0;  ///< grid index of slot 0 (lux = exp(grid_lo / kGridNodesPerLogLux))
    int points = 0;    ///< P(V) samples per entry
    std::vector<double> voc;    ///< [slots]
    std::vector<double> pmpp;   ///< [slots]
    std::vector<double> vmpp;   ///< [slots]
    std::vector<double> power;  ///< [slot * points + m]
  };
  [[nodiscard]] DenseExport export_range(double lux_min, double lux_max);

  /// Conditions object at the given illuminance (for components that
  /// still need direct model access, e.g. the cold-start circuit).
  [[nodiscard]] pv::Conditions conditions_at(double equivalent_lux) const;

  // --- instrumentation ------------------------------------------------
  /// Exact cell-model evaluations issued so far (Voc root solves, MPP
  /// searches, and P(V) terminal solves each count 1).
  [[nodiscard]] std::uint64_t model_evals() const { return model_evals_; }
  /// Unique illuminance buckets / grid nodes solved so far.
  [[nodiscard]] std::uint64_t entries_built() const { return entries_built_; }
  /// Per-step lookups served (at_step + power_at_step calls). Together
  /// with model_evals() this yields the cache hit ratio:
  /// hits = queries - model_evals issued after prepare().
  [[nodiscard]] std::uint64_t queries() const { return queries_; }
  [[nodiscard]] PowerModel model() const { return options_.model; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// The cell model and temperature this cache answers for (used by
  /// simulate_node to validate an externally shared cache).
  [[nodiscard]] const pv::SingleDiodeModel& cell() const { return cell_; }
  [[nodiscard]] double temperature_k() const { return conditions_.temperature_k; }

  /// Grid density of the surrogate: nodes per e-fold of illuminance.
  static constexpr double kGridNodesPerLogLux = 32.0;
  /// Below this equivalent illuminance the cell is treated as dark.
  static constexpr double kDarkLux = 0.05;

 private:
  struct Entry {
    double voc = 0.0;
    double pmpp = 0.0;
    double vmpp = 0.0;
    std::vector<double> power;  ///< surrogate P(V) on [0, voc], empty in exact mode
    bool built = false;
  };

  void prepare_exact(const std::vector<double>& eq_lux);
  void prepare_surrogate(const std::vector<double>& eq_lux);
  void build_exact_entry(Entry& e, double lux);
  void build_surrogate_entry(Entry& e, long grid_index);
  [[nodiscard]] double table_power(const Entry& e, double v) const;
  /// Grow/build so entries for grid nodes j and j+1 exist; returns the
  /// dense slot of j and writes the interpolation weight. kDarkStep when
  /// the illuminance is below kDarkLux.
  std::uint32_t ensure_lux_slot(double equivalent_lux, double& frac);

  const pv::SingleDiodeModel& cell_;
  pv::Conditions conditions_;
  Options options_;

  // Per-step lookup arrays (filled by prepare).
  static constexpr std::uint32_t kDarkStep = 0xffffffffu;
  std::vector<std::uint32_t> step_slot_;  ///< dense entry index, or kDarkStep
  std::vector<float> step_frac_;          ///< surrogate log-lux interpolation weight
  std::vector<Entry> entries_;
  long grid_base_ = 0;                    ///< surrogate: grid index of entries_[0]
  const std::vector<double>* eq_lux_ = nullptr;  ///< exact mode: per-step lux

  std::uint64_t model_evals_ = 0;
  std::uint64_t entries_built_ = 0;
  mutable std::uint64_t queries_ = 0;  ///< per-step lookups (at_step is const)
};

}  // namespace focv::node
