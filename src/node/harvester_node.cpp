#include "node/harvester_node.hpp"

#include <cmath>
#include <unordered_map>

#include "common/require.hpp"

namespace focv::node {

namespace {

/// Memoises Voc and MPP lookups on a fine log-illuminance grid: a 24 h
/// trace triggers ~100k curve solves otherwise. Quantisation at 0.1% in
/// lux is far below every other model uncertainty.
class CurveCache {
 public:
  CurveCache(const pv::SingleDiodeModel& cell, double temperature_k)
      : cell_(cell) {
    conditions_.spectrum = pv::Spectrum::kFluorescent;
    conditions_.temperature_k = temperature_k;
  }

  struct Entry {
    double voc = 0.0;
    double pmpp = 0.0;
    double vmpp = 0.0;
  };

  const Entry& at(double equivalent_lux) {
    const long key = std::lround(1000.0 * std::log(std::max(equivalent_lux, 1e-3)));
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    conditions_.illuminance_lux = equivalent_lux;
    Entry e;
    if (equivalent_lux >= 0.05) {
      e.voc = cell_.open_circuit_voltage(conditions_);
      const pv::MppResult mpp = cell_.maximum_power_point(conditions_);
      e.pmpp = mpp.power;
      e.vmpp = mpp.voltage;
    }
    return cache_.emplace(key, e).first->second;
  }

  /// Cell power when held at voltage v [W].
  double power_at(double v, double equivalent_lux) {
    if (equivalent_lux < 0.05 || v <= 0.0) return 0.0;
    conditions_.illuminance_lux = equivalent_lux;
    return cell_.power_at(v, conditions_);
  }

  pv::Conditions conditions_at(double equivalent_lux) {
    pv::Conditions c = conditions_;
    c.illuminance_lux = equivalent_lux;
    return c;
  }

 private:
  const pv::SingleDiodeModel& cell_;
  pv::Conditions conditions_;
  std::unordered_map<long, Entry> cache_;
};

}  // namespace

NodeReport simulate_node(const env::LightTrace& trace, const NodeConfig& config) {
  const pv::SingleDiodeModel* cell_ptr =
      config.cell_model ? config.cell_model.get() : config.cell;
  require(cell_ptr != nullptr, "simulate_node: cell is required");
  require(config.controller_prototype != nullptr || config.controller != nullptr,
          "simulate_node: controller is required");
  require(trace.size() >= 2, "simulate_node: trace needs at least 2 samples");

  // Preferred path: clone the immutable prototype so this run owns its
  // controller state outright (re-entrant). Legacy path: mutate the
  // borrowed controller in place, as the pre-runtime API did.
  std::unique_ptr<mppt::MpptController> owned_controller;
  if (config.controller_prototype) owned_controller = config.controller_prototype->clone();

  const pv::SingleDiodeModel& cell = *cell_ptr;
  mppt::MpptController& controller =
      owned_controller ? *owned_controller : *config.controller;
  controller.reset();

  power::Supercapacitor supercap(config.storage);
  std::optional<power::Battery> battery;
  if (config.battery) battery.emplace(*config.battery);
  // Uniform view over whichever store is configured.
  const auto store_voltage = [&] {
    return battery ? battery->open_circuit_voltage() : supercap.voltage();
  };
  const auto store_usable = [&] { return battery ? battery->usable() : supercap.usable(); };
  const auto store_apply = [&](double power, double dt) {
    return battery ? battery->apply_power(power, dt) : supercap.apply_power(power, dt);
  };
  power::WsnLoad load(config.load);
  std::optional<power::ColdStartCircuit> coldstart;
  if (config.coldstart) coldstart.emplace(*config.coldstart);

  CurveCache curves(cell, config.temperature_k);
  const std::vector<double> eq_lux = trace.equivalent_lux(cell);
  const std::vector<double>& t = trace.time();

  NodeReport report;
  report.duration = trace.duration();

  mppt::SensedInputs sensed;
  double prev_power = 0.0;
  double prev_voltage = 0.0;
  const double controller_current =
      controller.overhead_power() / 3.3;  // for the cold-start load model
  int steps_since_record = config.record_stride;  // record the first step

  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    const double dt = t[i + 1] - t[i];
    const double lux = eq_lux[i];
    const CurveCache::Entry& curve = curves.at(lux);
    report.ideal_mpp_energy += curve.pmpp * dt;

    // Cold-start gate: while the supervisor has not fired, the MPPT is
    // unpowered and the PV charges C1 instead of harvesting.
    bool running = true;
    if (coldstart) {
      const pv::Conditions c = curves.conditions_at(lux);
      coldstart->advance(cell, c, dt, controller_current);
      running = coldstart->started();
    }
    // Supply floor: below its minimum illuminance the tracking circuitry
    // cannot run at all.
    if (lux < controller.minimum_operating_lux()) running = false;

    double pv_power = 0.0;
    double pv_voltage = 0.0;
    if (running) {
      if (report.coldstart_time < 0.0) report.coldstart_time = t[i];
      sensed.time = t[i];
      sensed.dt = dt;
      sensed.voc = curve.voc;
      sensed.pilot_voc = curve.voc;  // matched pilot; controller applies its own mismatch
      sensed.illuminance_estimate = trace.at(t[i]).total_lux();
      sensed.prev_power = prev_power;
      sensed.prev_voltage = prev_voltage;
      sensed.store_voltage = store_voltage();
      const mppt::ControlOutput out = controller.step(sensed);
      pv_voltage = out.pv_voltage;
      pv_power = curves.power_at(out.pv_voltage, lux) *
                 (1.0 - std::min(1.0, out.disconnect_fraction));
      report.overhead_energy += controller.overhead_power() * dt;
    }
    prev_power = pv_power;
    prev_voltage = pv_voltage;
    report.harvested_energy += pv_power * dt;

    const double delivered = config.converter.output_power(pv_power, pv_voltage);
    report.delivered_energy += delivered * dt;

    // Store bookkeeping: harvest in, overhead and load out.
    const double load_power = load.average_power();
    double drain = running ? controller.overhead_power() : 0.0;
    const bool load_runs = store_usable();
    if (load_runs) {
      drain += load_power;
      report.load_energy_served += load_power * dt;
    } else {
      ++report.brownout_steps;
    }
    store_apply(delivered - drain, dt);

    if (config.record_traces && ++steps_since_record >= config.record_stride) {
      steps_since_record = 0;
      report.time.push_back(t[i]);
      report.pv_voltage.push_back(pv_voltage);
      report.pv_power.push_back(pv_power);
      report.store_voltage.push_back(store_voltage());
    }
  }
  report.final_store_voltage = store_voltage();
  return report;
}

}  // namespace focv::node
