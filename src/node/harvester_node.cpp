#include "node/harvester_node.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/require.hpp"
#include "node/curve_cache.hpp"
#include "obs/obs.hpp"
#include "sched/macro_stepper.hpp"

namespace focv::node {

NodeReport simulate_node(const env::LightTrace& trace, const NodeConfig& config) {
  return simulate_node(trace, config, nullptr, nullptr);
}

NodeReport simulate_node(const env::LightTrace& trace, const NodeConfig& config,
                         CurveCache* shared_curves) {
  return simulate_node(trace, config, shared_curves, nullptr);
}

NodeReport simulate_node(const env::LightTrace& trace, const NodeConfig& config,
                         CurveCache* shared_curves, const sched::PreparedTrace* prepared) {
  // Event-driven macro-stepping when requested and the config is one
  // the engine can handle; anything else transparently takes the fixed
  // reference path below.
  if (config.stepper == Stepper::kEvent && sched::event_supported(config)) {
    return sched::simulate_node_events(trace, config, shared_curves, prepared);
  }
  require(config.cell_model != nullptr, "simulate_node: cell is required (use_cell)");
  require(config.controller_prototype != nullptr,
          "simulate_node: controller is required (use_controller)");
  require(trace.size() >= 2, "simulate_node: trace needs at least 2 samples");
  require(config.lux_scale > 0.0, "simulate_node: lux_scale must be > 0");

  // Clone the immutable prototype so this run owns its controller state
  // outright (re-entrant).
  const pv::SingleDiodeModel& cell = *config.cell_model;
  std::unique_ptr<mppt::MpptController> owned_controller = config.controller_prototype->clone();
  mppt::MpptController& controller = *owned_controller;
  controller.reset();

  power::Supercapacitor supercap(config.storage);
  std::optional<power::Battery> battery;
  if (config.battery) battery.emplace(*config.battery);
  // Uniform view over whichever store is configured.
  const auto store_voltage = [&] {
    return battery ? battery->open_circuit_voltage() : supercap.voltage();
  };
  const auto store_usable = [&] { return battery ? battery->usable() : supercap.usable(); };
  const auto store_apply = [&](double power, double dt) {
    return battery ? battery->apply_power(power, dt) : supercap.apply_power(power, dt);
  };
  power::WsnLoad load(config.load);
  std::optional<power::ColdStartCircuit> coldstart;
  if (config.coldstart) coldstart.emplace(*config.coldstart);

  // All per-step curve queries go through the cache; the per-step lookup
  // arrays (illuminance series, bucket slots) are precomputed here so
  // the hot loop below does no hashing, log() or binary searches. A
  // caller-owned cache (fleet chunks) must answer for exactly this
  // run's cell/temperature/options, or its entries would be wrong.
  std::optional<CurveCache> owned_curves;
  if (shared_curves != nullptr) {
    require(&shared_curves->cell() == &cell,
            "simulate_node: shared curve cache was built for a different cell model");
    require(shared_curves->temperature_k() == config.temperature_k,
            "simulate_node: shared curve cache temperature mismatch");
    require(shared_curves->model() == config.power_model &&
                shared_curves->options().surrogate_points == config.surrogate_points,
            "simulate_node: shared curve cache options mismatch");
  } else {
    owned_curves.emplace(cell, config.temperature_k,
                         CurveCache::Options{config.power_model, config.surrogate_points});
  }
  CurveCache& curves = shared_curves ? *shared_curves : *owned_curves;
  std::vector<double> eq_lux = trace.equivalent_lux(cell);
  std::vector<double> total_lux = trace.total_lux();
  if (config.lux_scale != 1.0) {
    for (double& v : eq_lux) v *= config.lux_scale;
    for (double& v : total_lux) v *= config.lux_scale;
  }
  const std::vector<double>& t = trace.time();
  // A shared cache carries counters (and in surrogate mode, entries)
  // from earlier runs; the report's counters are this run's increments.
  const std::uint64_t evals_before = curves.model_evals();
  const std::uint64_t entries_before = curves.entries_built();
  const std::uint64_t queries_before = curves.queries();
  curves.prepare(eq_lux);

  // Telemetry: one enabled() check per run; the hot loop below only
  // tests the hoisted bool. Everything recorded is derived from values
  // the simulation computes anyway (observation-only, see obs.hpp).
  const bool obs_on = obs::enabled();
  std::optional<obs::Tracer::Span> run_span;
  std::optional<CurveCache> exact_shadow;  ///< surrogate-vs-exact comparison
  if (obs_on) {
    run_span.emplace(obs::tracer().span("simulate_node", "node"));
    run_span->arg("controller", controller.name());
    run_span->arg("power_model",
                  config.power_model == PowerModel::kSurrogate ? "surrogate" : "exact");
    if (config.obs_compare_exact && config.power_model == PowerModel::kSurrogate) {
      exact_shadow.emplace(cell, config.temperature_k,
                           CurveCache::Options{PowerModel::kExact, config.surrogate_points});
      exact_shadow->prepare(eq_lux);
    }
  }
  static const obs::HistogramId step_eff_id = obs::metrics().histogram(
      "node.step_tracking_efficiency", {1e-3, 1.0 + 1e-9, 48});
  static const obs::HistogramId deviation_id = obs::metrics().histogram(
      "node.surrogate.deviation_rel", {1e-9, 1.0, 48});
  // Per-step efficiency samples batch locally (plain adds) and merge
  // into the registry every 64 steps: the shard lookup + three atomic
  // RMWs per step were most of the enabled-mode telemetry tax on this
  // loop. Only touched when obs_on, so the disabled path is unchanged.
  obs::HistogramBatch eff_batch({1e-3, 1.0 + 1e-9, 48});

  NodeReport report;
  report.duration = trace.duration();

  mppt::SensedInputs sensed;
  double prev_power = 0.0;
  double prev_voltage = 0.0;
  // Loop-invariant controller properties, hoisted out of the hot loop.
  const double overhead_power = controller.overhead_power();
  const double min_operating_lux = controller.minimum_operating_lux();
  const double load_power = load.average_power();
  const double controller_current = overhead_power / 3.3;  // for the cold-start load model
  int steps_since_record = config.record_stride;  // record the first step
  bool in_brownout = false;  // edge detector for the brown-out anomaly

  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    const double dt = t[i + 1] - t[i];
    const double lux = eq_lux[i];
    const CurveCache::StepCurve curve = curves.at_step(i);
    report.ideal_mpp_energy += curve.pmpp * dt;

    // Cold-start gate: while the supervisor has not fired, the MPPT is
    // unpowered and the PV charges C1 instead of harvesting.
    bool running = true;
    if (coldstart) {
      const pv::Conditions c = curves.conditions_at(lux);
      coldstart->advance(cell, c, dt, controller_current);
      running = coldstart->started();
    }
    // Supply floor: below its minimum illuminance the tracking circuitry
    // cannot run at all.
    if (lux < min_operating_lux) running = false;

    double pv_power = 0.0;
    double pv_voltage = 0.0;
    if (running) {
      if (report.coldstart_time < 0.0) report.coldstart_time = t[i];
      sensed.time = t[i];
      sensed.dt = dt;
      sensed.voc = curve.voc;
      sensed.pilot_voc = curve.voc;  // matched pilot; controller applies its own mismatch
      sensed.illuminance_estimate = total_lux[i];
      sensed.prev_power = prev_power;
      sensed.prev_voltage = prev_voltage;
      sensed.store_voltage = store_voltage();
      const mppt::ControlOutput out = controller.step(sensed);
      pv_voltage = out.pv_voltage;
      pv_power = curves.power_at_step(i, out.pv_voltage) *
                 (1.0 - std::min(1.0, out.disconnect_fraction));
      report.overhead_energy += overhead_power * dt;
      if (obs_on) {
        if (curve.pmpp > 0.0) {
          eff_batch.observe(pv_power / curve.pmpp);
          if (eff_batch.pending() >= 64) obs::metrics().flush(step_eff_id, eff_batch);
        }
        if (exact_shadow && pv_voltage > 0.0 && curve.pmpp > 0.0) {
          const double exact_power = exact_shadow->power_at_step(i, pv_voltage);
          obs::metrics().observe(
              deviation_id,
              std::abs(curves.power_at_step(i, pv_voltage) - exact_power) / curve.pmpp);
        }
      }
    }
    prev_power = pv_power;
    prev_voltage = pv_voltage;
    report.harvested_energy += pv_power * dt;

    const double delivered = config.converter.output_power(pv_power, pv_voltage);
    report.delivered_energy += delivered * dt;

    // Store bookkeeping: harvest in, overhead and load out.
    double drain = running ? overhead_power : 0.0;
    const bool load_runs = store_usable();
    if (load_runs) {
      drain += load_power;
      report.load_energy_served += load_power * dt;
      in_brownout = false;
    } else {
      ++report.brownout_steps;
      report.brownout_time += dt;
      if (obs_on && !in_brownout) {
        obs::anomaly("brownout", t[i],
                     {{"store_voltage", store_voltage()},
                      {"lux", lux},
                      {"step", static_cast<double>(i)}});
      }
      in_brownout = true;
    }
    store_apply(delivered - drain, dt);

    if (config.record_traces && ++steps_since_record >= config.record_stride) {
      steps_since_record = 0;
      report.time.push_back(t[i]);
      report.pv_voltage.push_back(pv_voltage);
      report.pv_power.push_back(pv_power);
      report.store_voltage.push_back(store_voltage());
    }
  }
  report.final_store_voltage = store_voltage();
  report.steps = trace.size() - 1;
  report.model_evals = curves.model_evals() - evals_before;
  report.curve_entries = curves.entries_built() - entries_before;

  if (obs_on) {
    obs::metrics().flush(step_eff_id, eff_batch);
    static const obs::CounterId steps_id = obs::metrics().counter("node.steps");
    static const obs::CounterId evals_id = obs::metrics().counter("node.model_evals");
    static const obs::CounterId hits_id = obs::metrics().counter("node.curve.hits");
    static const obs::CounterId misses_id = obs::metrics().counter("node.curve.misses");
    static const obs::HistogramId builds_id =
        obs::metrics().histogram("node.curve.entries_built", {1.0, 1e5, 40});
    static const obs::HistogramId run_evals_id =
        obs::metrics().histogram("node.curve.model_evals", {1.0, 1e7, 56});
    // Hit/miss: a per-step lookup that needed no exact solve is a hit;
    // in exact mode every power_at_step solve is a miss, in surrogate
    // mode all per-step lookups hit the interpolated tables.
    const std::uint64_t queries = curves.queries() - queries_before;
    const std::uint64_t misses = std::min(queries, report.model_evals);
    obs::metrics().add(steps_id, static_cast<double>(report.steps));
    obs::metrics().add(evals_id, static_cast<double>(report.model_evals));
    obs::metrics().add(hits_id, static_cast<double>(queries - misses));
    obs::metrics().add(misses_id, static_cast<double>(misses));
    obs::metrics().observe(builds_id, static_cast<double>(report.curve_entries));
    obs::metrics().observe(run_evals_id, static_cast<double>(report.model_evals));
    obs::events().emit("node_run_complete", report.duration,
                       {{"steps", report.steps},
                        {"tracking_efficiency", report.tracking_efficiency()},
                        {"net_j", report.net_energy()},
                        {"curve_entries", report.curve_entries}});
    run_span->arg("steps", static_cast<double>(report.steps));
    run_span->arg("model_evals", static_cast<double>(report.model_evals));
    run_span->arg("curve_entries", static_cast<double>(report.curve_entries));
    run_span->arg("tracking_efficiency", report.tracking_efficiency());
  }
  return report;
}

}  // namespace focv::node
