#include "analysis/sampling_error.hpp"

#include <algorithm>
#include <deque>

#include "common/require.hpp"

namespace focv::analysis {

double worst_case_mean_error(const std::vector<double>& x, std::size_t period_samples) {
  require(period_samples >= 1, "worst_case_mean_error: period must be >= 1 sample");
  require(period_samples <= x.size(), "worst_case_mean_error: period exceeds trace length");
  const std::size_t q = x.size();
  const std::size_t p = period_samples;

  // Monotonic deques of indices for the sliding max and min.
  std::deque<std::size_t> max_dq;
  std::deque<std::size_t> min_dq;
  double sum = 0.0;
  for (std::size_t i = 0; i < q; ++i) {
    while (!max_dq.empty() && x[max_dq.back()] <= x[i]) max_dq.pop_back();
    max_dq.push_back(i);
    while (!min_dq.empty() && x[min_dq.back()] >= x[i]) min_dq.pop_back();
    min_dq.push_back(i);
    if (i + 1 >= p) {
      const std::size_t window_start = i + 1 - p;
      while (max_dq.front() < window_start) max_dq.pop_front();
      while (min_dq.front() < window_start) min_dq.pop_front();
      sum += x[max_dq.front()] - x[min_dq.front()];
    }
  }
  return sum / static_cast<double>(q - p + 1);
}

std::vector<PeriodError> error_vs_period(const std::vector<double>& x, double sample_period,
                                         const std::vector<double>& periods) {
  require(sample_period > 0.0, "error_vs_period: sample_period must be > 0");
  std::vector<PeriodError> out;
  out.reserve(periods.size());
  for (const double period : periods) {
    const auto samples = static_cast<std::size_t>(std::max(1.0, period / sample_period + 0.5));
    out.push_back({period, worst_case_mean_error(x, std::min(samples, x.size()))});
  }
  return out;
}

double efficiency_loss_at_offset(const pv::CellModel& model, const pv::Conditions& conditions,
                                 double dv) {
  const pv::MppResult mpp = model.maximum_power_point(conditions);
  if (mpp.power <= 0.0) return 0.0;
  const double p_hi = model.power_at(mpp.voltage + dv, conditions);
  const double p_lo = model.power_at(mpp.voltage - dv, conditions);
  return 1.0 - std::min(p_hi, p_lo) / mpp.power;
}

}  // namespace focv::analysis
