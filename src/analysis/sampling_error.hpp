// The paper's Eq. (2) worst-case mean sampling error and its mapping to
// MPP-voltage error and harvesting-efficiency loss (Section II-B).
#pragma once

#include <cstddef>
#include <vector>

#include "pv/cell_model.hpp"

namespace focv::analysis {

/// Eq. (2): the mean over all length-p windows of (max - min) within the
/// window:
///   E = sum_{n=0}^{q-p} [ max(x_n..x_{n+p-1}) - min(x_n..x_{n+p-1}) ] / (q - p + 1)
/// where p is the hold period in samples and q the trace length. This is
/// the worst-case mean error of a sample-and-hold that samples once per
/// period: whatever phase the sampler has, the held value differs from
/// the true signal by at most the window range.
///
/// O(n) via monotonic deques. Requires 1 <= period_samples <= x.size().
[[nodiscard]] double worst_case_mean_error(const std::vector<double>& x,
                                           std::size_t period_samples);

/// Evaluate Eq. (2) for several hold periods [s] over a uniformly
/// sampled trace with spacing sample_period [s].
struct PeriodError {
  double period = 0.0;  ///< hold period [s]
  double error = 0.0;   ///< E [same units as x]
};
[[nodiscard]] std::vector<PeriodError> error_vs_period(const std::vector<double>& x,
                                                       double sample_period,
                                                       const std::vector<double>& periods);

/// Map a Voc estimation error to an MPP-voltage error through the FOCV
/// relation Vmpp = k * Voc.
[[nodiscard]] inline double mpp_voltage_error(double voc_error, double k) {
  return k * voc_error;
}

/// Harvesting-efficiency loss of operating `dv` volts away from the MPP
/// (the worse of +dv / -dv), at the given conditions:
///   loss = 1 - min(P(Vmpp+dv), P(Vmpp-dv)) / Pmpp.
[[nodiscard]] double efficiency_loss_at_offset(const pv::CellModel& model,
                                               const pv::Conditions& conditions, double dv);

}  // namespace focv::analysis
