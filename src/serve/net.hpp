// Minimal blocking TCP + frame I/O helpers shared by the focv-serve
// server, its client library and the load generator. Loopback-oriented:
// the daemon binds 127.0.0.1 only — focv-serve/v1 has no authentication
// and is meant to sit behind one machine's loopback, not on a network
// edge.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace focv::serve::net {

/// Bind + listen on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port). Returns the listening fd, or -1 with `error` filled.
[[nodiscard]] int listen_tcp(std::uint16_t port, std::string& error);

/// The local port an fd is bound to (0 on failure).
[[nodiscard]] std::uint16_t bound_port(int fd);

/// Blocking connect to 127.0.0.1:`port`. Returns fd or -1 with `error`.
[[nodiscard]] int connect_tcp(std::uint16_t port, std::string& error);

/// Write exactly `size` bytes (retrying partial writes; EPIPE-safe —
/// never raises SIGPIPE). False on any error.
bool write_all(int fd, const void* data, std::size_t size);

/// Read exactly `size` bytes. False on EOF or error.
bool read_exact(int fd, void* data, std::size_t size);

/// Frame `payload` (4-byte big-endian length prefix) and write it.
bool write_frame(int fd, std::string_view payload);

/// Read one frame into `payload`. Returns 1 on success, 0 on clean EOF
/// (connection closed between frames), -1 on I/O error, truncated
/// frame, or a payload longer than `max_payload`.
int read_frame(int fd, std::uint32_t max_payload, std::string& payload);

/// Shut down both directions (unblocks a reader parked in read_frame).
void shutdown_fd(int fd);
/// Close the descriptor.
void close_fd(int fd);

}  // namespace focv::serve::net
