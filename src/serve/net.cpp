#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/protocol.hpp"

namespace focv::serve::net {

namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

int listen_tcp(std::uint16_t port, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error = std::string("bind 127.0.0.1:") + std::to_string(port) + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 512) != 0) {
    error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  return ntohs(addr.sin_port);
}

int connect_tcp(std::uint16_t port, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr = loopback(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error = std::string("connect 127.0.0.1:") + std::to_string(port) + ": " +
            std::strerror(errno);
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-read
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame(int fd, std::string_view payload) {
  unsigned char header[4];
  encode_frame_header(static_cast<std::uint32_t>(payload.size()), header);
  // One buffered write per frame so concurrent writers (which hold a
  // per-connection lock around this call) emit contiguous frames.
  std::string wire;
  wire.reserve(payload.size() + 4);
  wire.append(reinterpret_cast<const char*>(header), 4);
  wire.append(payload);
  return write_all(fd, wire.data(), wire.size());
}

int read_frame(int fd, std::uint32_t max_payload, std::string& payload) {
  unsigned char header[4];
  // Distinguish a clean close (EOF before any header byte) from a
  // truncated frame.
  ssize_t n;
  do {
    n = ::recv(fd, header, 1, 0);
  } while (n < 0 && errno == EINTR);
  if (n == 0) return 0;
  if (n < 0) return -1;
  if (!read_exact(fd, header + 1, 3)) return -1;
  const std::uint32_t size = decode_frame_header(header);
  if (size > max_payload) return -1;
  payload.resize(size);
  if (size > 0 && !read_exact(fd, payload.data(), size)) return -1;
  return 1;
}

void shutdown_fd(int fd) { ::shutdown(fd, SHUT_RDWR); }

void close_fd(int fd) { ::close(fd); }

}  // namespace focv::serve::net
