// Minimal JSON value for the focv-serve/v1 wire protocol.
//
// The serve tier needs both directions — parse request bodies arriving
// over the socket and render responses — under one hard constraint: the
// rendering must be byte-deterministic, because the protocol contract
// (tests/serve/) says identical request JSON yields byte-identical
// response JSON no matter how the server scheduled or batched the work.
// So the writer has no configuration: object keys keep insertion order,
// doubles print with the same %.17g round-trip format the fleet/sweep
// exports use, and there is exactly one spacing convention.
//
// kRaw lets a response embed an already-rendered byte-stable JSON
// document (e.g. FleetReport::to_json()) without a parse/re-print trip
// that could perturb its bytes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace focv::serve {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject, kRaw };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();
  /// Pre-rendered JSON embedded verbatim by dump(). The caller promises
  /// `text` is itself valid, byte-stable JSON.
  static Json raw(std::string text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<Json>& items() const { return array_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }

  /// Object member by key; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Convenience typed lookups with fallbacks.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key, std::string fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

  /// Append to an array value.
  void push_back(Json v);
  /// Append a member to an object value (insertion order preserved; no
  /// duplicate check — the writer side controls its own keys).
  void set(std::string key, Json v);

  /// Render. Deterministic: same value tree -> same bytes.
  [[nodiscard]] std::string dump() const;
  void dump_to(std::string& out) const;

  /// Parse `text`. Returns false (and fills *error, when given) on
  /// malformed input or trailing garbage.
  static bool parse(const std::string& text, Json& out, std::string* error = nullptr);

  /// The %.17g round-trip double rendering every byte-stable exporter in
  /// this repo shares (fleet/sweep reports); exposed for response code
  /// that formats numbers outside a Json tree.
  [[nodiscard]] static std::string format_number(double v);
  /// JSON string escaping (quotes not included).
  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  ///< kString payload, or kRaw pre-rendered text
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace focv::serve
