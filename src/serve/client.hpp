// focv-serve client: blocking request/response plus explicit pipelining
// (send N frames, then collect N responses) for the load generator and
// the CLI helper. One Client = one connection; not thread-safe — share
// nothing, open one Client per thread.
#pragma once

#include <cstdint>
#include <string>

#include "serve/json.hpp"

namespace focv::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to a focv-serve daemon on 127.0.0.1:`port`.
  bool connect(std::uint16_t port, std::string& error);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Fire one frame without waiting (pipelining). False on I/O error.
  bool send(const std::string& request_json);
  /// Collect the next response frame. False on EOF / I/O error.
  bool recv(std::string& response_json);
  /// send + recv. Valid only when no earlier sends are outstanding.
  bool request(const std::string& request_json, std::string& response_json);

  /// request() + parse; false when the transport fails, the response is
  /// not valid JSON, or (ok_required) the server answered ok:false.
  bool call(const std::string& request_json, Json& response, std::string& error,
            bool ok_required = true);

 private:
  int fd_ = -1;
};

}  // namespace focv::serve
