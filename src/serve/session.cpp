#include "serve/session.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/require.hpp"
#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "env/segments.hpp"
#include "fleet/fleet.hpp"
#include "mppt/registry.hpp"
#include "node/harvester_node.hpp"
#include "obs/obs.hpp"
#include "pv/cell_library.hpp"
#include "sched/options.hpp"

namespace focv::serve {

namespace {

/// Non-owning shared_ptr onto a library singleton (the aliasing-ctor
/// idiom NodeConfig::use_cell uses).
std::shared_ptr<const pv::SingleDiodeModel> borrow_cell(const pv::SingleDiodeModel& cell) {
  return {std::shared_ptr<const pv::SingleDiodeModel>(), &cell};
}

ComputeResult bad_request(std::string message) {
  ComputeResult fail;
  fail.code = errc::kBadRequest;
  fail.message = std::move(message);
  return fail;
}

/// Fetch an optional finite number field; false (and a filled `fail`)
/// on a present-but-wrong-type or non-finite value.
bool read_number(const Json& body, const char* key, double& value, ComputeResult& fail) {
  const Json* member = body.find(key);
  if (member == nullptr) return true;
  if (!member->is_number() || !std::isfinite(member->as_number())) {
    fail = bad_request(std::string("\"") + key + "\" must be a finite number");
    fail.token = key;
    return false;
  }
  value = member->as_number();
  return true;
}

void append_number_field(std::string& key, const char* name, double value) {
  key += '|';
  key += name;
  key += '=';
  key += Json::format_number(value);
}

}  // namespace

std::string ComputeResult::render(const std::string& id_json) const {
  if (ok) return ok_response(id_json, result_json);
  return error_response(id_json, code, message, token, hint);
}

// --- parsed parameter bags -------------------------------------------

struct SessionState::SimParams {
  EnvState* env = nullptr;
  std::string spec;  ///< canonical controller spec
};

struct SessionState::SizingParams {
  EnvState* env = nullptr;
  std::string spec;
  double report_period_s = 60.0;
  double min_factor = 0.1;
  double max_factor = 64.0;
};

struct SessionState::SweepParams {
  EnvState* env = nullptr;
  std::vector<std::string> specs;
  double report_period_s = 60.0;
  double min_factor = 0.1;
  double max_factor = 64.0;
};

struct SessionState::FleetParams {
  std::size_t nodes = 100;
  std::uint64_t seed = 2024;
  /// (environment, weight); defaults to every resident environment at
  /// weight 1 when the request lists none.
  std::vector<std::pair<EnvState*, double>> environments;
  /// (canonical spec, weight); defaults to the paper controller.
  std::vector<std::pair<std::string, double>> policies;
};

// --- construction ----------------------------------------------------

SessionState::SessionState(Options options)
    : options_(std::move(options)), cell_(borrow_cell(pv::sanyo_am1815())) {
  core::register_paper_controller();  // independent of static pull-in order
  const auto add_env = [this](std::string name, env::LightTrace trace) {
    auto state = std::make_unique<EnvState>();
    state->name = std::move(name);
    state->trace = std::make_shared<const env::LightTrace>(std::move(trace));
    environments_.push_back(std::move(state));
  };
  // The paper's measurement campaigns (env/profiles.hpp), built once:
  // every query refers to these by name instead of shipping a trace.
  add_env("office", env::office_desk_mixed());
  add_env("office_sunday", env::desk_sunday_blinds_closed());
  add_env("semi_mobile", env::semi_mobile_day());
  add_env("outdoor", env::outdoor_day({}));
}

std::vector<std::string> SessionState::environment_names() const {
  std::vector<std::string> names;
  names.reserve(environments_.size());
  for (const auto& env : environments_) names.push_back(env->name);
  return names;
}

SessionState::EnvState* SessionState::find_env(const std::string& name) const {
  for (const auto& env : environments_) {
    if (env->name == name) return env.get();
  }
  return nullptr;
}

// --- single-flight environment warm-up -------------------------------

void SessionState::warm(EnvState& env) {
  std::unique_lock lock(env.mutex);
  while (env.state == EnvState::Warm::kBuilding) env.warmed.wait(lock);
  if (env.state == EnvState::Warm::kReady) return;
  // This thread becomes the builder; concurrent arrivals wait above.
  env.state = EnvState::Warm::kBuilding;
  lock.unlock();
  try {
    // Segmentation matching what simulate_node_events derives for
    // default EventOptions, so the prepared trace is accepted there.
    env::SegmentationOptions seg;
    seg.ratio_band = sched::EventOptions{}.lux_ratio_band;
    seg.floor = node::CurveCache::kDarkLux;
    auto prepared = std::make_unique<sched::PreparedTrace>(*env.trace, *cell_, seg);
    auto sizing = std::make_unique<node::SizingContext>(*env.trace, *cell_);

    node::CurveCache::Options cache_options;
    cache_options.surrogate_points = options_.surrogate_points;
    auto master =
        std::make_unique<node::CurveCache>(*cell_, options_.temperature_k, cache_options);
    double lux_lo = 0.0, lux_hi = 0.0;
    for (const double lux : prepared->eq_lux()) {
      if (lux < node::CurveCache::kDarkLux) continue;
      if (lux_hi == 0.0) lux_lo = lux_hi = lux;
      lux_lo = std::min(lux_lo, lux);
      lux_hi = std::max(lux_hi, lux);
    }
    // Warming only front-loads exact solves — entry values depend on
    // the grid index alone (node/curve_cache.hpp), never on who asked.
    if (lux_hi > 0.0) master->warm_range(lux_lo, lux_hi);

    lock.lock();
    env.prepared = std::move(prepared);
    env.sizing = std::move(sizing);
    env.master = std::move(master);
    env.state = EnvState::Warm::kReady;
    lock.unlock();
    warm_builds_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      static const obs::CounterId id = obs::metrics().counter("serve.env_warmups");
      obs::metrics().add(id, 1.0);
    }
  } catch (...) {
    lock.lock();
    env.state = EnvState::Warm::kCold;
    lock.unlock();
    env.warmed.notify_all();
    throw;
  }
  env.warmed.notify_all();
}

SessionState::CacheLease::CacheLease(SessionState& session, EnvState& env) : env_(env) {
  {
    std::lock_guard guard(env.pool_mutex);
    if (!env.cache_pool.empty()) {
      cache_ = std::move(env.cache_pool.back());
      env.cache_pool.pop_back();
    }
  }
  if (cache_ == nullptr) {
    node::CurveCache::Options cache_options;
    cache_options.surrogate_points = session.options_.surrogate_points;
    cache_ = std::make_unique<node::CurveCache>(*session.cell_, session.options_.temperature_k,
                                                cache_options);
    // `master` is read-only once the env is warm, so seeding needs no
    // lock. Seeded entries make a fresh lease as warm as the master.
    cache_->seed_entries(*env.master);
  }
}

SessionState::CacheLease::~CacheLease() {
  std::lock_guard guard(env_.pool_mutex);
  env_.cache_pool.push_back(std::move(cache_));
}

// --- parse helpers ---------------------------------------------------

bool SessionState::parse_sim(const Request& request, SimParams& out, ComputeResult& fail) const {
  const std::string env_name = request.body.string_or("env", "");
  out.env = find_env(env_name);
  if (out.env == nullptr) {
    fail = bad_request("unknown environment \"" + env_name + "\"");
    fail.code = errc::kUnknownEnv;
    fail.token = env_name;
    fail.hint = "environments:";
    for (const auto& env : environments_) {
      fail.hint += ' ';
      fail.hint += env->name;
    }
    return false;
  }
  try {
    out.spec = mppt::Registry::instance().canonical(request.body.string_or("spec", "focv"));
  } catch (const mppt::SpecError& error) {
    fail.code = errc::kBadSpec;
    fail.message = error.what();
    fail.token = offending_token(fail.message);
    fail.hint = spec_catalog_hint();
    return false;
  }
  return true;
}

bool SessionState::parse_sizing(const Request& request, SizingParams& out,
                                ComputeResult& fail) const {
  SimParams sim;
  if (!parse_sim(request, sim, fail)) return false;
  out.env = sim.env;
  out.spec = std::move(sim.spec);
  if (!read_number(request.body, "report_period_s", out.report_period_s, fail) ||
      !read_number(request.body, "min_factor", out.min_factor, fail) ||
      !read_number(request.body, "max_factor", out.max_factor, fail)) {
    return false;
  }
  if (out.report_period_s < 1.0 || out.report_period_s > 86400.0) {
    fail = bad_request("\"report_period_s\" must be in [1, 86400]");
    return false;
  }
  if (out.min_factor <= 0.0 || out.max_factor <= out.min_factor) {
    fail = bad_request("factor range needs 0 < min_factor < max_factor");
    return false;
  }
  return true;
}

bool SessionState::parse_sweep(const Request& request, SweepParams& out,
                               ComputeResult& fail) const {
  SizingParams sizing;
  if (!parse_sizing(request, sizing, fail)) return false;
  out.env = sizing.env;
  out.report_period_s = sizing.report_period_s;
  out.min_factor = sizing.min_factor;
  out.max_factor = sizing.max_factor;
  const Json* specs = request.body.find("specs");
  if (specs == nullptr || !specs->is_array() || specs->items().empty()) {
    fail = bad_request("\"specs\" must be a non-empty array of controller spec strings");
    return false;
  }
  if (specs->items().size() > 32) {
    fail = bad_request("\"specs\" is limited to 32 controllers per sweep");
    return false;
  }
  for (const Json& item : specs->items()) {
    if (!item.is_string()) {
      fail = bad_request("\"specs\" must contain only strings");
      return false;
    }
    try {
      out.specs.push_back(mppt::Registry::instance().canonical(item.as_string()));
    } catch (const mppt::SpecError& error) {
      fail.code = errc::kBadSpec;
      fail.message = error.what();
      fail.token = offending_token(fail.message);
      fail.hint = spec_catalog_hint();
      return false;
    }
  }
  return true;
}

bool SessionState::parse_fleet(const Request& request, FleetParams& out,
                               ComputeResult& fail) const {
  double nodes = 100.0;
  double seed = 2024.0;
  if (!read_number(request.body, "nodes", nodes, fail) ||
      !read_number(request.body, "seed", seed, fail)) {
    return false;
  }
  if (nodes < 1.0 || nodes > static_cast<double>(options_.max_fleet_nodes) ||
      nodes != std::floor(nodes)) {
    fail = bad_request("\"nodes\" must be an integer in [1, " +
                       std::to_string(options_.max_fleet_nodes) + "]");
    return false;
  }
  if (seed < 0.0 || seed != std::floor(seed)) {
    fail = bad_request("\"seed\" must be a non-negative integer");
    return false;
  }
  out.nodes = static_cast<std::size_t>(nodes);
  out.seed = static_cast<std::uint64_t>(seed);

  if (const Json* envs = request.body.find("environments")) {
    if (!envs->is_array() || envs->items().empty()) {
      fail = bad_request("\"environments\" must be a non-empty array of {name, weight}");
      return false;
    }
    for (const Json& item : envs->items()) {
      const std::string name = item.string_or("name", "");
      EnvState* env = item.is_object() ? find_env(name) : nullptr;
      if (env == nullptr) {
        fail = bad_request("unknown environment \"" + name + "\" in \"environments\"");
        fail.code = errc::kUnknownEnv;
        fail.token = name;
        return false;
      }
      const double weight = item.number_or("weight", 1.0);
      if (!(weight > 0.0) || !std::isfinite(weight)) {
        fail = bad_request("environment weights must be finite and > 0");
        return false;
      }
      out.environments.emplace_back(env, weight);
    }
  } else {
    for (const auto& env : environments_) out.environments.emplace_back(env.get(), 1.0);
  }

  if (const Json* policies = request.body.find("policies")) {
    if (!policies->is_array() || policies->items().empty()) {
      fail = bad_request("\"policies\" must be a non-empty array of {spec, weight}");
      return false;
    }
    for (const Json& item : policies->items()) {
      if (!item.is_object()) {
        fail = bad_request("\"policies\" entries must be {spec, weight} objects");
        return false;
      }
      const double weight = item.number_or("weight", 1.0);
      if (!(weight > 0.0) || !std::isfinite(weight)) {
        fail = bad_request("policy weights must be finite and > 0");
        return false;
      }
      try {
        out.policies.emplace_back(
            mppt::Registry::instance().canonical(item.string_or("spec", "")), weight);
      } catch (const mppt::SpecError& error) {
        fail.code = errc::kBadSpec;
        fail.message = error.what();
        fail.token = offending_token(fail.message);
        fail.hint = spec_catalog_hint();
        return false;
      }
    }
  } else {
    out.policies.emplace_back("focv", 1.0);
  }
  return true;
}

bool SessionState::parse_burn(const Request& request, double& ms, ComputeResult& fail) const {
  if (!options_.enable_test_ops) {
    fail = bad_request("the burn op is disabled (start the server with --enable-test-ops)");
    return false;
  }
  ms = 1.0;
  if (!read_number(request.body, "ms", ms, fail)) return false;
  if (ms < 0.0 || ms > 10000.0) {
    fail = bad_request("\"ms\" must be in [0, 10000]");
    return false;
  }
  return true;
}

// --- canonical identity ----------------------------------------------

bool SessionState::canonicalize(const Request& request, CanonicalRequest& out,
                                std::string& error) const {
  out = CanonicalRequest{};
  ComputeResult fail;
  if (request.op == "ping" || request.op == "catalog") {
    out.key = request.op;
    return true;
  }
  if (request.op == "stats") return true;  // uncacheable, always executes
  if (request.op == "burn") {
    double ms = 0.0;
    if (!parse_burn(request, ms, fail)) {
      error = fail.render(request.id_json);
      return false;
    }
    return true;  // uncacheable by design (it exists to generate load)
  }
  if (request.op == "sim") {
    SimParams params;
    if (!parse_sim(request, params, fail)) {
      error = fail.render(request.id_json);
      return false;
    }
    out.key = "sim|env=" + params.env->name + "|ctl=" + params.spec;
    out.batch_group = "sim|" + params.env->name;
    return true;
  }
  if (request.op == "sizing") {
    SizingParams params;
    if (!parse_sizing(request, params, fail)) {
      error = fail.render(request.id_json);
      return false;
    }
    out.key = "sizing|env=" + params.env->name + "|ctl=" + params.spec;
    append_number_field(out.key, "period", params.report_period_s);
    append_number_field(out.key, "min", params.min_factor);
    append_number_field(out.key, "max", params.max_factor);
    out.batch_group = "sizing|" + params.env->name;
    return true;
  }
  if (request.op == "sweep") {
    SweepParams params;
    if (!parse_sweep(request, params, fail)) {
      error = fail.render(request.id_json);
      return false;
    }
    out.key = "sweep|env=" + params.env->name;
    append_number_field(out.key, "period", params.report_period_s);
    append_number_field(out.key, "min", params.min_factor);
    append_number_field(out.key, "max", params.max_factor);
    out.key += "|ctl=";
    for (std::size_t i = 0; i < params.specs.size(); ++i) {
      if (i > 0) out.key += ';';
      out.key += params.specs[i];
    }
    out.batch_group = "sweep|" + params.env->name;
    return true;
  }
  if (request.op == "fleet") {
    FleetParams params;
    if (!parse_fleet(request, params, fail)) {
      error = fail.render(request.id_json);
      return false;
    }
    out.key = "fleet|nodes=" + std::to_string(params.nodes) +
              "|seed=" + std::to_string(params.seed) + "|envs=";
    for (std::size_t i = 0; i < params.environments.size(); ++i) {
      if (i > 0) out.key += ',';
      out.key += params.environments[i].first->name;
      out.key += ':';
      out.key += Json::format_number(params.environments[i].second);
    }
    out.key += "|policies=";
    for (std::size_t i = 0; i < params.policies.size(); ++i) {
      if (i > 0) out.key += ',';
      out.key += params.policies[i].first;
      out.key += ':';
      out.key += Json::format_number(params.policies[i].second);
    }
    out.batch_group = "fleet";
    return true;
  }
  fail.code = errc::kUnknownOp;
  fail.message = "unknown op \"" + request.op + "\"";
  fail.token = request.op;
  fail.hint = "ops: ping catalog sim sizing sweep fleet stats burn";
  error = fail.render(request.id_json);
  return false;
}

// --- response cache --------------------------------------------------

bool SessionState::cache_lookup(const std::string& key, std::string& result_json) {
  std::lock_guard guard(cache_mutex_);
  const auto it = response_cache_.find(key);
  if (it == response_cache_.end()) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  result_json = it->second;
  return true;
}

void SessionState::cache_insert(const std::string& key, const std::string& result_json) {
  std::lock_guard guard(cache_mutex_);
  if (response_cache_.size() >= options_.response_cache_capacity) return;
  response_cache_.emplace(key, result_json);
}

// --- op execution ----------------------------------------------------

ComputeResult SessionState::compute(const Request& request) {
  try {
    if (request.op == "ping") return compute_ping();
    if (request.op == "catalog") return compute_catalog();
    if (request.op == "sim") return compute_sim(request);
    if (request.op == "sizing") return compute_sizing(request);
    if (request.op == "sweep") return compute_sweep(request);
    if (request.op == "fleet") return compute_fleet(request);
    if (request.op == "stats") return compute_stats();
    if (request.op == "burn") return compute_burn(request);
    ComputeResult fail;
    fail.code = errc::kUnknownOp;
    fail.message = "unknown op \"" + request.op + "\"";
    fail.token = request.op;
    fail.hint = "ops: ping catalog sim sizing sweep fleet stats burn";
    return fail;
  } catch (const mppt::SpecError& error) {
    ComputeResult fail;
    fail.code = errc::kBadSpec;
    fail.message = error.what();
    fail.token = offending_token(fail.message);
    fail.hint = spec_catalog_hint();
    return fail;
  } catch (const PreconditionError& error) {
    ComputeResult fail;
    fail.code = errc::kBadRequest;
    fail.message = error.what();
    return fail;
  } catch (const std::exception& error) {
    ComputeResult fail;
    fail.code = errc::kInternal;
    fail.message = error.what();
    return fail;
  }
}

ComputeResult SessionState::compute_ping() const {
  ComputeResult result;
  result.ok = true;
  result.result_json = "{\"pong\":true}";
  return result;
}

ComputeResult SessionState::compute_catalog() const {
  Json environments = Json::array();
  for (const auto& env : environments_) {
    Json entry = Json::object();
    entry.set("name", Json::string(env->name));
    entry.set("samples", Json::number(static_cast<double>(env->trace->size())));
    entry.set("duration_s", Json::number(env->trace->duration()));
    environments.push_back(std::move(entry));
  }
  Json controllers = Json::array();
  const mppt::Registry& registry = mppt::Registry::instance();
  for (const std::string& name : registry.names()) {
    const mppt::Registry::Entry& entry = registry.entry(name);
    Json controller = Json::object();
    controller.set("name", Json::string(entry.name));
    controller.set("summary", Json::string(entry.summary));
    Json params = Json::array();
    for (const mppt::ParamDesc& param : entry.params) {
      Json desc = Json::object();
      desc.set("key", Json::string(param.key));
      desc.set("default", Json::number(param.default_value));
      desc.set("min", Json::number(param.min_value));
      desc.set("max", Json::number(param.max_value));
      desc.set("help", Json::string(param.help));
      params.push_back(std::move(desc));
    }
    controller.set("params", std::move(params));
    controllers.push_back(std::move(controller));
  }
  Json ops = Json::array();
  for (const char* op : {"ping", "catalog", "sim", "sizing", "sweep", "fleet", "stats", "burn"}) {
    ops.push_back(Json::string(op));
  }
  Json body = Json::object();
  body.set("environments", std::move(environments));
  body.set("controllers", std::move(controllers));
  body.set("ops", std::move(ops));

  ComputeResult result;
  result.ok = true;
  result.result_json = body.dump();
  return result;
}

ComputeResult SessionState::compute_sim(const Request& request) {
  SimParams params;
  ComputeResult fail;
  if (!parse_sim(request, params, fail)) return fail;
  EnvState& env = *params.env;
  warm(env);

  node::NodeConfig config;
  config.use_cell(cell_);
  config.use_controller(params.spec);
  config.stepper = node::Stepper::kEvent;
  config.surrogate_points = options_.surrogate_points;
  config.temperature_k = options_.temperature_k;

  const CacheLease lease(*this, env);
  const node::NodeReport report =
      node::simulate_node(*env.trace, config, lease.get(), env.prepared.get());

  // NOTE: model_evals / curve_entries are cache-state dependent (a warm
  // lease skips solves a cold one pays) and are deliberately excluded —
  // everything below is deterministic for (env, spec).
  Json body = Json::object();
  body.set("env", Json::string(env.name));
  body.set("spec", Json::string(params.spec));
  body.set("duration_s", Json::number(report.duration));
  body.set("harvested_j", Json::number(report.harvested_energy));
  body.set("delivered_j", Json::number(report.delivered_energy));
  body.set("overhead_j", Json::number(report.overhead_energy));
  body.set("load_served_j", Json::number(report.load_energy_served));
  body.set("ideal_mpp_j", Json::number(report.ideal_mpp_energy));
  body.set("net_j", Json::number(report.net_energy()));
  body.set("tracking_efficiency", Json::number(report.tracking_efficiency()));
  body.set("coldstart_time_s", Json::number(report.coldstart_time));
  body.set("brownout_time_s", Json::number(report.brownout_time));
  body.set("brownout_steps", Json::number(static_cast<double>(report.brownout_steps)));
  body.set("final_store_voltage", Json::number(report.final_store_voltage));
  body.set("steps", Json::number(static_cast<double>(report.steps)));
  body.set("events", Json::number(static_cast<double>(report.events)));

  ComputeResult result;
  result.ok = true;
  result.result_json = body.dump();
  return result;
}

namespace {

Json sizing_result_json(const node::SizingResult& sizing, double cell_area_cm2) {
  Json body = Json::object();
  body.set("feasible", Json::boolean(sizing.feasible));
  body.set("area_factor", Json::number(sizing.area_factor));
  body.set("cell_area_cm2", Json::number(sizing.area_factor * cell_area_cm2));
  body.set("daily_harvest_j", Json::number(sizing.daily_harvest_j));
  body.set("daily_load_j", Json::number(sizing.daily_load_j));
  body.set("storage_j", Json::number(sizing.storage_j));
  body.set("storage_f_at_3v", Json::number(sizing.storage_f_at_3v));
  return body;
}

}  // namespace

ComputeResult SessionState::compute_sizing(const Request& request) {
  SizingParams params;
  ComputeResult fail;
  if (!parse_sizing(request, params, fail)) return fail;
  EnvState& env = *params.env;
  warm(env);

  node::SizingQuery query;
  query.cell_model = cell_;
  query.scenario_trace = env.trace;
  query.use_controller(params.spec);
  query.load.report_period = params.report_period_s;
  query.temperature_k = options_.temperature_k;
  const node::SizingResult sizing = node::size_for_energy_neutrality(
      query, *env.sizing, params.min_factor, params.max_factor);

  Json body = sizing_result_json(sizing, cell_->area_cm2());
  body.set("env", Json::string(env.name));
  body.set("spec", Json::string(params.spec));

  ComputeResult result;
  result.ok = true;
  result.result_json = body.dump();
  return result;
}

ComputeResult SessionState::compute_sweep(const Request& request) {
  SweepParams params;
  ComputeResult fail;
  if (!parse_sweep(request, params, fail)) return fail;
  EnvState& env = *params.env;
  warm(env);

  // Items run sequentially inside this one computation: a compute() is
  // already a pool task, and waiting on nested pool work from inside a
  // task would deadlock a jobs=1 server. Cross-request parallelism
  // comes from the dispatcher, not from within one sweep.
  Json items = Json::array();
  for (const std::string& spec : params.specs) {
    node::SizingQuery query;
    query.cell_model = cell_;
    query.scenario_trace = env.trace;
    query.use_controller(spec);
    query.load.report_period = params.report_period_s;
    query.temperature_k = options_.temperature_k;
    const node::SizingResult sizing = node::size_for_energy_neutrality(
        query, *env.sizing, params.min_factor, params.max_factor);
    Json item = Json::object();
    item.set("spec", Json::string(spec));
    item.set("sizing", sizing_result_json(sizing, cell_->area_cm2()));
    items.push_back(std::move(item));
  }

  Json body = Json::object();
  body.set("env", Json::string(env.name));
  body.set("items", std::move(items));

  ComputeResult result;
  result.ok = true;
  result.result_json = body.dump();
  return result;
}

ComputeResult SessionState::compute_fleet(const Request& request) {
  FleetParams params;
  ComputeResult fail;
  if (!parse_fleet(request, params, fail)) return fail;

  fleet::FleetSpec spec;
  spec.node_count = params.nodes;
  spec.root_seed = params.seed;
  spec.use_cell(cell_);
  for (const auto& [env, weight] : params.environments) {
    spec.add_environment(env->name, env->trace, weight);
  }
  for (const auto& [policy, weight] : params.policies) spec.add_policy(policy, weight);
  spec.base.stepper = node::Stepper::kEvent;
  spec.base.surrogate_points = options_.surrogate_points;
  spec.base.temperature_k = options_.temperature_k;
  spec.engine = fleet::FleetEngine::kSoa;

  fleet::FleetOptions run_options;
  run_options.jobs = options_.fleet_jobs;
  const fleet::FleetReport report = fleet::run_fleet(spec, run_options);

  ComputeResult result;
  result.ok = true;
  // to_json(false) is byte-stable across runs and worker counts, so the
  // report embeds verbatim without a parse/re-print trip.
  result.result_json = report.to_json(false);
  return result;
}

ComputeResult SessionState::compute_stats() const {
  Json environments = Json::array();
  for (const auto& env : environments_) {
    Json entry = Json::object();
    entry.set("name", Json::string(env->name));
    bool ready = false;
    std::size_t pooled = 0;
    {
      std::lock_guard guard(env->mutex);
      ready = env->state == EnvState::Warm::kReady;
    }
    {
      std::lock_guard guard(env->pool_mutex);
      pooled = env->cache_pool.size();
    }
    entry.set("warm", Json::boolean(ready));
    entry.set("pooled_caches", Json::number(static_cast<double>(pooled)));
    environments.push_back(std::move(entry));
  }
  std::size_t cached = 0;
  {
    std::lock_guard guard(cache_mutex_);
    cached = response_cache_.size();
  }
  Json body = Json::object();
  body.set("cache_hits", Json::number(static_cast<double>(cache_hits_.load())));
  body.set("cache_misses", Json::number(static_cast<double>(cache_misses_.load())));
  body.set("cached_responses", Json::number(static_cast<double>(cached)));
  body.set("warm_builds", Json::number(static_cast<double>(warm_builds_.load())));
  body.set("obs_enabled", Json::boolean(obs::enabled()));
  body.set("environments", std::move(environments));

  ComputeResult result;
  result.ok = true;
  result.result_json = body.dump();
  return result;
}

ComputeResult SessionState::compute_burn(const Request& request) const {
  double ms = 0.0;
  ComputeResult fail;
  if (!parse_burn(request, ms, fail)) return fail;
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::duration<double, std::milli>(ms);
  volatile double sink = 0.0;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 1024; ++i) sink = sink + 1.0;
  }
  Json body = Json::object();
  body.set("burned_ms", Json::number(ms));
  ComputeResult result;
  result.ok = true;
  result.result_json = body.dump();
  return result;
}

}  // namespace focv::serve
