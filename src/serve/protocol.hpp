// focv-serve/v1: the wire protocol of the long-lived simulation query
// server.
//
// Transport: length-prefixed frames over a byte stream (TCP). Each
// frame is a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON. Requests and responses are single JSON objects;
// a connection may pipeline any number of requests and the server may
// answer them out of order — the echoed `id` correlates them.
//
// Request:  {"op":"sizing","id":7,"deadline_ms":250,...op fields...}
// Response: {"schema":"focv-serve/v1","id":7,"ok":true,"result":{...}}
//      or:  {"schema":"focv-serve/v1","id":7,"ok":false,
//            "error":{"code":"bad_spec","message":"...","token":"...",
//                     "hint":"..."}}
//
// Determinism contract: for every query op, identical request JSON
// (ignoring `deadline_ms`) produces byte-identical response JSON no
// matter the server's worker count, batching mode or cache state
// (enforced by tests/serve/server_test.cpp). Load-dependent outcomes —
// `overloaded`, `deadline_exceeded` — and the `stats` op are explicitly
// outside that contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "mppt/spec.hpp"
#include "serve/json.hpp"

namespace focv::serve {

inline constexpr const char* kSchema = "focv-serve/v1";
/// Largest accepted request frame (responses may be larger).
inline constexpr std::uint32_t kMaxRequestFrame = 1u << 20;

/// Machine-readable error codes of the `error.code` field.
namespace errc {
inline constexpr const char* kBadFrame = "bad_frame";
inline constexpr const char* kBadJson = "bad_json";
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kUnknownOp = "unknown_op";
inline constexpr const char* kUnknownEnv = "unknown_env";
inline constexpr const char* kBadSpec = "bad_spec";
inline constexpr const char* kOverloaded = "overloaded";
inline constexpr const char* kDeadlineExceeded = "deadline_exceeded";
inline constexpr const char* kShuttingDown = "shutting_down";
inline constexpr const char* kInternal = "internal";
}  // namespace errc

/// One parsed request envelope. `body` holds the full object; `id_json`
/// is the canonical rendering of the client's `id` member ("null" when
/// absent) so the response echo is byte-stable.
struct Request {
  std::string op;
  std::string id_json = "null";
  double deadline_ms = 0.0;  ///< 0 = no deadline
  Json body;
};

/// Parse a request payload. On failure returns false and fills `error`
/// with a complete error-response payload (the caller just frames it).
bool parse_request(const std::string& payload, Request& out, std::string& error);

/// Render the success envelope around an already-rendered result
/// payload. `result_json` must be valid JSON (typically Json::dump()).
[[nodiscard]] std::string ok_response(const std::string& id_json,
                                      const std::string& result_json);

/// Render an error envelope. `token` / `hint` are omitted when empty.
[[nodiscard]] std::string error_response(const std::string& id_json, const char* code,
                                         const std::string& message,
                                         const std::string& token = "",
                                         const std::string& hint = "");

/// Map a controller-spec failure onto the structured error surface:
/// code `bad_spec`, the exception message, the offending token
/// extracted from it, and a catalog hint naming the registered
/// controllers. A malformed spec arriving over the wire must produce
/// this response, never terminate a worker (tests/serve/).
[[nodiscard]] std::string error_from_spec(const std::string& id_json,
                                          const mppt::SpecError& error);

/// The quoted token a SpecError message points at (best effort: the
/// second "..."-quoted substring — the first is the whole spec — else
/// the first). Exposed for tests.
[[nodiscard]] std::string offending_token(const std::string& message);

/// The `hint` text of a bad_spec error: the registered controller names
/// plus a pointer at the catalog op.
[[nodiscard]] std::string spec_catalog_hint();

// --- frame codec -----------------------------------------------------

/// 4-byte big-endian length header.
void encode_frame_header(std::uint32_t payload_size, unsigned char out[4]);
[[nodiscard]] std::uint32_t decode_frame_header(const unsigned char in[4]);

/// `payload` wrapped in its frame header, ready to write.
[[nodiscard]] std::string encode_frame(std::string_view payload);

}  // namespace focv::serve
