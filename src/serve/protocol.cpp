#include "serve/protocol.hpp"

#include "mppt/registry.hpp"

namespace focv::serve {

bool parse_request(const std::string& payload, Request& out, std::string& error) {
  std::string parse_error;
  Json body;
  if (!Json::parse(payload, body, &parse_error)) {
    error = error_response("null", errc::kBadJson, "request is not valid JSON: " + parse_error);
    return false;
  }
  if (!body.is_object()) {
    error = error_response("null", errc::kBadRequest, "request must be a JSON object");
    return false;
  }
  out.id_json = "null";
  if (const Json* id = body.find("id")) {
    if (!id->is_number() && !id->is_string() && !id->is_null()) {
      error = error_response("null", errc::kBadRequest, "\"id\" must be a number or a string");
      return false;
    }
    out.id_json = id->dump();
  }
  const Json* op = body.find("op");
  if (op == nullptr || !op->is_string() || op->as_string().empty()) {
    error = error_response(out.id_json, errc::kBadRequest,
                           "request is missing the \"op\" string field");
    return false;
  }
  out.op = op->as_string();
  out.deadline_ms = body.number_or("deadline_ms", 0.0);
  if (out.deadline_ms < 0.0) {
    error = error_response(out.id_json, errc::kBadRequest, "\"deadline_ms\" must be >= 0");
    return false;
  }
  out.body = std::move(body);
  return true;
}

std::string ok_response(const std::string& id_json, const std::string& result_json) {
  std::string out = "{\"schema\":\"";
  out += kSchema;
  out += "\",\"id\":";
  out += id_json;
  out += ",\"ok\":true,\"result\":";
  out += result_json;
  out += '}';
  return out;
}

std::string error_response(const std::string& id_json, const char* code,
                           const std::string& message, const std::string& token,
                           const std::string& hint) {
  std::string out = "{\"schema\":\"";
  out += kSchema;
  out += "\",\"id\":";
  out += id_json;
  out += ",\"ok\":false,\"error\":{\"code\":\"";
  out += code;
  out += "\",\"message\":\"";
  out += Json::escape(message);
  out += '"';
  if (!token.empty()) {
    out += ",\"token\":\"";
    out += Json::escape(token);
    out += '"';
  }
  if (!hint.empty()) {
    out += ",\"hint\":\"";
    out += Json::escape(hint);
    out += '"';
  }
  out += "}}";
  return out;
}

std::string offending_token(const std::string& message) {
  // SpecError messages lead with the whole quoted spec and then quote
  // the token the parser tripped on (`mppt spec "focv[k=oops]": value
  // "oops" ...`, `... unknown parameter "bogus" for "focv"; ...`): the
  // SECOND quoted substring is the offender; with only one pair (e.g. a
  // framing error quoting just the spec) that pair is the best we have.
  std::string first;
  std::size_t pos = 0;
  while (true) {
    const std::size_t open = message.find('"', pos);
    if (open == std::string::npos) break;
    const std::size_t close = message.find('"', open + 1);
    if (close == std::string::npos) break;
    const std::string token = message.substr(open + 1, close - open - 1);
    if (first.empty()) {
      first = token;
    } else {
      return token;
    }
    pos = close + 1;
  }
  return first;
}

std::string spec_catalog_hint() {
  std::string hint = "registered controllers:";
  for (const std::string& name : mppt::Registry::instance().names()) {
    hint += ' ';
    hint += name;
  }
  hint += "; see the catalog op for parameters";
  return hint;
}

std::string error_from_spec(const std::string& id_json, const mppt::SpecError& error) {
  return error_response(id_json, errc::kBadSpec, error.what(), offending_token(error.what()),
                        spec_catalog_hint());
}

void encode_frame_header(std::uint32_t payload_size, unsigned char out[4]) {
  out[0] = static_cast<unsigned char>((payload_size >> 24) & 0xff);
  out[1] = static_cast<unsigned char>((payload_size >> 16) & 0xff);
  out[2] = static_cast<unsigned char>((payload_size >> 8) & 0xff);
  out[3] = static_cast<unsigned char>(payload_size & 0xff);
}

std::uint32_t decode_frame_header(const unsigned char in[4]) {
  return (static_cast<std::uint32_t>(in[0]) << 24) | (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) | static_cast<std::uint32_t>(in[3]);
}

std::string encode_frame(std::string_view payload) {
  unsigned char header[4];
  encode_frame_header(static_cast<std::uint32_t>(payload.size()), header);
  std::string out;
  out.reserve(payload.size() + 4);
  out.append(reinterpret_cast<const char*>(header), 4);
  out.append(payload);
  return out;
}

}  // namespace focv::serve
