// focv::serve resident session state: everything a long-lived query
// server keeps hot so that answering a sizing / sim / sweep / fleet
// query costs compute, not setup.
//
// Per named environment (office, office_sunday, semi_mobile, outdoor)
// the session holds the shared LightTrace (built once at startup), and
// — built lazily, exactly once, on first use (single-flight; concurrent
// cold queries wait instead of duplicating the work) —
//   * a sched::PreparedTrace (the event engine's O(trace) preprocessing),
//   * a warm master node::CurveCache covering the trace's illuminance
//     range, from which per-worker caches are seeded (CurveCache is not
//     re-entrant, so concurrent runs lease a cache from a pool instead
//     of sharing one), and
//   * a node::SizingContext (the sizing tier's O(trace) spectral
//     conversion).
//
// On top sits a bounded response cache keyed by the canonical request
// key: query ops are deterministic by contract, so identical requests
// can be answered from memory byte-for-byte. compute() never throws —
// every failure (malformed controller spec, bad parameters, internal
// errors) maps onto the structured error surface of protocol.hpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "env/light_trace.hpp"
#include "node/curve_cache.hpp"
#include "node/sizing.hpp"
#include "pv/diode_models.hpp"
#include "sched/prepared_trace.hpp"
#include "serve/protocol.hpp"

namespace focv::serve {

/// How a request participates in caching and batching. Produced by
/// SessionState::canonicalize without executing anything.
struct CanonicalRequest {
  /// Cache / coalescing identity: two requests with equal keys have
  /// byte-identical result payloads. Empty for uncacheable ops (stats,
  /// burn) — those always execute.
  std::string key;
  /// Admission-batch grouping: compatible queries (same op + env) the
  /// dispatcher may coalesce into one pool dispatch. Empty = ungrouped.
  std::string batch_group;
  [[nodiscard]] bool cacheable() const { return !key.empty(); }
};

/// Outcome of one computed request, before the response envelope. The
/// per-request envelope (which echoes the request id) is rendered by
/// the caller, so one computation can answer many coalesced requests.
struct ComputeResult {
  bool ok = false;
  std::string result_json;  ///< when ok: the `result` payload
  const char* code = errc::kInternal;  ///< when !ok
  std::string message;
  std::string token;
  std::string hint;

  /// Render the full response for one request id.
  [[nodiscard]] std::string render(const std::string& id_json) const;
};

class SessionState {
 public:
  struct Options {
    double temperature_k = 300.15;
    int surrogate_points = 128;
    /// Bounded response cache: inserts stop (misses keep computing)
    /// once this many distinct keys are resident.
    std::size_t response_cache_capacity = 1 << 16;
    /// Worker count handed to run_fleet for `fleet` ops (0 = hardware).
    int fleet_jobs = 1;
    /// Admission guard for `fleet` ops.
    std::size_t max_fleet_nodes = 100000;
    /// Enable the `burn` test op (deterministic busy-wait; load tests).
    bool enable_test_ops = false;
  };

  SessionState() : SessionState(Options{}) {}
  explicit SessionState(Options options);
  SessionState(const SessionState&) = delete;
  SessionState& operator=(const SessionState&) = delete;

  /// Known environment names, catalog order.
  [[nodiscard]] std::vector<std::string> environment_names() const;

  /// Validate `request` and derive its cache/batch identity. Returns
  /// false and fills `error` with a complete response payload when the
  /// request can never execute (unknown op/env, malformed spec, bad
  /// fields).
  bool canonicalize(const Request& request, CanonicalRequest& out, std::string& error) const;

  /// Execute one request. Never throws; every failure is a structured
  /// error ComputeResult.
  [[nodiscard]] ComputeResult compute(const Request& request);

  /// Response cache (thread-safe). Keys come from canonicalize().
  bool cache_lookup(const std::string& key, std::string& result_json);
  void cache_insert(const std::string& key, const std::string& result_json);
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_.load(); }
  [[nodiscard]] std::uint64_t cache_misses() const { return cache_misses_.load(); }

  /// Environment warm-ups performed (one per env when single-flight
  /// holds — asserted by the concurrent warm-up stress test).
  [[nodiscard]] std::uint64_t warm_builds() const { return warm_builds_.load(); }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct EnvState {
    std::string name;
    std::shared_ptr<const env::LightTrace> trace;

    // Lazily built resident state, single-flight guarded.
    std::mutex mutex;
    std::condition_variable warmed;
    enum class Warm { kCold, kBuilding, kReady } state = Warm::kCold;
    std::unique_ptr<sched::PreparedTrace> prepared;
    std::unique_ptr<node::SizingContext> sizing;
    std::unique_ptr<node::CurveCache> master;  ///< warm; read-only after build

    // Leasable per-worker caches seeded from `master` (CurveCache is
    // not re-entrant; see node/curve_cache.hpp).
    std::mutex pool_mutex;
    std::vector<std::unique_ptr<node::CurveCache>> cache_pool;
  };

  /// RAII lease of one per-worker CurveCache.
  class CacheLease {
   public:
    CacheLease(SessionState& session, EnvState& env);
    ~CacheLease();
    CacheLease(const CacheLease&) = delete;
    CacheLease& operator=(const CacheLease&) = delete;
    [[nodiscard]] node::CurveCache* get() const { return cache_.get(); }

   private:
    EnvState& env_;
    std::unique_ptr<node::CurveCache> cache_;
  };

  [[nodiscard]] EnvState* find_env(const std::string& name) const;
  /// Ensure the env's resident state is built (single-flight; blocks
  /// while another thread builds).
  void warm(EnvState& env);

  // Per-op parsed parameter bags (defined in session.cpp) and the parse
  // helpers shared by canonicalize() (key building) and compute()
  // (execution), so the two can never disagree on validation.
  struct SimParams;
  struct SizingParams;
  struct SweepParams;
  struct FleetParams;
  bool parse_sim(const Request& request, SimParams& out, ComputeResult& fail) const;
  bool parse_sizing(const Request& request, SizingParams& out, ComputeResult& fail) const;
  bool parse_sweep(const Request& request, SweepParams& out, ComputeResult& fail) const;
  bool parse_fleet(const Request& request, FleetParams& out, ComputeResult& fail) const;
  bool parse_burn(const Request& request, double& ms, ComputeResult& fail) const;

  ComputeResult compute_ping() const;
  ComputeResult compute_catalog() const;
  ComputeResult compute_sim(const Request& request);
  ComputeResult compute_sizing(const Request& request);
  ComputeResult compute_sweep(const Request& request);
  ComputeResult compute_fleet(const Request& request);
  ComputeResult compute_stats() const;
  ComputeResult compute_burn(const Request& request) const;

  Options options_;
  std::shared_ptr<const pv::SingleDiodeModel> cell_;
  std::vector<std::unique_ptr<EnvState>> environments_;

  std::atomic<std::uint64_t> warm_builds_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};

  mutable std::mutex cache_mutex_;
  std::unordered_map<std::string, std::string> response_cache_;
};

}  // namespace focv::serve
