// focv-serve: the long-lived simulation query server.
//
// Request lifecycle:
//
//   reader thread (one per connection)
//     read frame -> parse -> canonicalize
//       parse/validation error ............ answered inline
//       response-cache hit ................ answered inline (warm path:
//                                           the p50 the bench measures)
//       otherwise ......................... bounded admission (at most
//                                           queue_depth unanswered
//                                           requests in the system), or
//                                           an `overloaded` error
//   dispatcher thread
//     drains the queue, drops deadline-expired requests
//     (`deadline_exceeded`; a storm of them fires the
//     serve.deadline_storm anomaly), coalesces identical in-flight
//     requests onto one computation (single-flight) and groups
//     compatible queries (same op + environment) into one pool
//     dispatch
//   ThreadPool workers
//     execute SessionState::compute once per distinct request, insert
//     the response cache, render one envelope per coalesced waiter
//
// Shutdown (stop(), typically from SIGINT/SIGTERM): stop accepting,
// answer new requests with `shutting_down`, drain the admission queue
// and in-flight work, then flush telemetry. Every response path goes
// through a per-connection write lock, so pipelined clients see whole
// frames in any interleaving.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/export.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/session.hpp"

namespace focv::serve {

struct ServerOptions {
  /// Listening port on 127.0.0.1; 0 = kernel-assigned (see port()).
  std::uint16_t port = 0;
  /// Worker threads computing queries (<= 0: hardware concurrency).
  int jobs = 0;
  /// Admission bound on requests in the system — admitted but not yet
  /// answered, whether still queued, coalesced or executing. Beyond it
  /// new work is shed with an `overloaded` error instead of growing an
  /// unbounded backlog that would blow every deadline.
  std::size_t queue_depth = 1024;
  /// Deadline applied to requests that carry none (0 = unbounded).
  double default_deadline_ms = 0.0;
  /// Coalesce compatible queries into one pool dispatch.
  bool batching = true;
  /// Distinct requests per pool dispatch when batching.
  std::size_t max_batch = 16;
  /// serve.deadline_storm anomaly: at least this many deadline-expired
  /// requests within `storm_window_s` (edge-triggered; re-arms once the
  /// window drains below half the threshold).
  std::size_t storm_threshold = 16;
  double storm_window_s = 1.0;
  /// Honour the `shutdown` op (loopback trust — used by the demo and
  /// the CI smoke job to stop the daemon without a signal).
  bool allow_shutdown_op = false;
  /// Rewrite focv-obs-snapshot/v1 JSON (and .prom next to it) at this
  /// path while serving ("" = disabled).
  std::string snapshot_path;
  double snapshot_period_s = 1.0;
  SessionState::Options session;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spawn the accept/dispatcher threads. False (with
  /// `error` filled) when the port cannot be bound.
  bool start(std::string& error);

  /// Graceful shutdown: drain, flush, join. Idempotent.
  void stop();

  /// Ask for stop() without blocking (signal handlers set a flag and
  /// the daemon loop calls this; the `shutdown` op lands here too).
  void request_stop();
  [[nodiscard]] bool stop_requested() const {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  /// The bound port (resolves port=0 to the kernel's choice).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] SessionState& session() { return session_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
  };

  /// One admitted request waiting for the dispatcher.
  struct Pending {
    std::shared_ptr<Connection> conn;
    Request request;
    CanonicalRequest canon;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
  };

  /// One response destination of a (possibly coalesced) computation.
  struct Waiter {
    std::shared_ptr<Connection> conn;
    std::string id_json;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One distinct computation the pool executes.
  struct WorkItem {
    Request request;
    std::string key;    ///< empty: uncacheable, single waiter
    std::string group;  ///< batching affinity (op + environment)
    std::vector<Waiter> waiters;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void dispatcher_loop();
  void process_drained(std::vector<Pending>& drained);
  void execute_item(WorkItem& item);
  void respond(Connection& conn, const std::string& payload);
  void observe_latency(std::chrono::steady_clock::time_point enqueued);
  void note_deadline_expired();
  void housekeeping();

  ServerOptions options_;
  SessionState session_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::unique_ptr<runtime::ThreadPool> pool_;
  std::unique_ptr<obs::SnapshotPublisher> publisher_;

  std::thread accept_thread_;
  std::thread dispatcher_thread_;
  std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> reader_threads_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool dispatcher_stop_ = false;

  /// Single-flight table: canonical key -> waiters of the in-flight
  /// computation. Guarded by inflight_mutex_.
  std::mutex inflight_mutex_;
  std::unordered_map<std::string, std::vector<Waiter>> inflight_;
  std::atomic<std::size_t> inflight_count_{0};

  /// Requests admitted and not yet answered (the queue_depth bound).
  /// Incremented at admission; decremented once per response, on every
  /// exit path (deadline drop, cache re-check, computed waiter).
  std::atomic<std::size_t> admitted_{0};

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> stop_requested_{false};

  // Deadline-storm window (dispatcher thread only).
  std::deque<std::chrono::steady_clock::time_point> deadline_events_;
  bool storm_active_ = false;
};

}  // namespace focv::serve
