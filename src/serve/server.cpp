#include "serve/server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <iterator>
#include <utility>

#include "obs/obs.hpp"
#include "serve/net.hpp"

namespace focv::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), session_(options_.session) {}

Server::~Server() { stop(); }

bool Server::start(std::string& error) {
  listen_fd_ = net::listen_tcp(options_.port, error);
  if (listen_fd_ < 0) return false;
  port_ = net::bound_port(listen_fd_);

  pool_ = std::make_unique<runtime::ThreadPool>(options_.jobs);
  if (!options_.snapshot_path.empty()) {
    obs::SnapshotPublisher::Options pub;
    pub.min_period_s = options_.snapshot_period_s;
    pub.json_path = options_.snapshot_path;
    pub.prometheus_path = options_.snapshot_path + ".prom";
    publisher_ = std::make_unique<obs::SnapshotPublisher>(obs::metrics(), std::move(pub));
  }

  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatcher_thread_ = std::thread([this] { dispatcher_loop(); });
  return true;
}

void Server::request_stop() {
  stop_requested_.store(true);
  queue_cv_.notify_all();
}

void Server::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;

  // 1. Refuse new work: readers answer `shutting_down` from here on.
  shutting_down_.store(true);
  net::shutdown_fd(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  net::close_fd(listen_fd_);
  listen_fd_ = -1;

  // 2. Drain: the dispatcher exits once the admission queue and the
  // in-flight table are both empty.
  {
    std::lock_guard guard(queue_mutex_);
    dispatcher_stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();
  pool_->wait_idle();

  // 3. Tear down connections (unblocks parked readers), join readers.
  {
    std::lock_guard guard(conn_mutex_);
    for (const auto& conn : connections_) {
      conn->open.store(false);
      net::shutdown_fd(conn->fd);
    }
  }
  for (std::thread& reader : reader_threads_) {
    if (reader.joinable()) reader.join();
  }
  {
    std::lock_guard guard(conn_mutex_);
    for (const auto& conn : connections_) net::close_fd(conn->fd);
    connections_.clear();
    reader_threads_.clear();
  }

  // 4. Flush telemetry so the final request counts are on disk.
  if (publisher_ != nullptr) publisher_->publish();
}

void Server::accept_loop() {
  while (!shutting_down_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (shutting_down_.load()) break;
      continue;  // transient (EINTR / client vanished mid-handshake)
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    if (obs::enabled()) {
      static const obs::CounterId id = obs::metrics().counter("serve.connections");
      obs::metrics().add(id, 1.0);
    }
    std::lock_guard guard(conn_mutex_);
    connections_.push_back(conn);
    reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void Server::respond(Connection& conn, const std::string& payload) {
  std::lock_guard guard(conn.write_mutex);
  if (!conn.open.load()) return;
  if (!net::write_frame(conn.fd, payload)) conn.open.store(false);
}

void Server::observe_latency(Clock::time_point enqueued) {
  if (!obs::enabled()) return;
  static const obs::HistogramId id =
      obs::metrics().histogram("serve.latency_ms", {1e-3, 1e5, 32});
  obs::metrics().observe(id, ms_since(enqueued));
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string payload;
  while (conn->open.load()) {
    const int got = net::read_frame(conn->fd, kMaxRequestFrame, payload);
    if (got == 0) break;  // client closed cleanly
    if (got < 0) {
      // Oversize or truncated frame: the stream is unsynchronized, so
      // answer (best effort) and drop the connection.
      if (conn->open.load()) {
        respond(*conn, error_response("null", errc::kBadFrame,
                                      "unreadable frame (oversize or truncated)"));
      }
      break;
    }
    const Clock::time_point received = Clock::now();
    if (obs::enabled()) {
      static const obs::CounterId id = obs::metrics().counter("serve.requests");
      obs::metrics().add(id, 1.0);
    }

    Request request;
    std::string error;
    if (!parse_request(payload, request, error)) {
      respond(*conn, error);
      continue;
    }
    if (request.op == "shutdown") {
      if (options_.allow_shutdown_op) {
        respond(*conn, ok_response(request.id_json, "{\"stopping\":true}"));
        request_stop();
      } else {
        respond(*conn, error_response(request.id_json, errc::kBadRequest,
                                      "the shutdown op is disabled"));
      }
      continue;
    }

    CanonicalRequest canon;
    if (!session_.canonicalize(request, canon, error)) {
      respond(*conn, error);
      continue;
    }

    // Warm path: answered from the response cache on the reader thread,
    // no queue, no pool hop. This is the p50 the serve_load bench pins.
    if (canon.cacheable()) {
      std::string cached;
      if (session_.cache_lookup(canon.key, cached)) {
        respond(*conn, ok_response(request.id_json, cached));
        observe_latency(received);
        continue;
      }
    }

    if (shutting_down_.load()) {
      respond(*conn, error_response(request.id_json, errc::kShuttingDown,
                                    "server is shutting down"));
      continue;
    }

    Pending pending;
    pending.conn = conn;
    pending.canon = std::move(canon);
    pending.enqueued = received;
    double deadline_ms = request.deadline_ms;
    if (deadline_ms <= 0.0) deadline_ms = options_.default_deadline_ms;
    if (deadline_ms > 0.0) {
      pending.has_deadline = true;
      pending.deadline = received + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double, std::milli>(deadline_ms));
    }
    pending.request = std::move(request);

    // The bound covers everything admitted and unanswered — queued,
    // coalesced or executing — not just the queue, which the dispatcher
    // drains continuously; a queue-only bound would let the worker
    // backlog grow without limit.
    bool admitted = false;
    if (admitted_.load() < options_.queue_depth) {
      admitted_.fetch_add(1);
      {
        std::lock_guard guard(queue_mutex_);
        queue_.push_back(std::move(pending));
      }
      admitted = true;
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      // Explicit load shedding: a bounded backlog plus an `overloaded`
      // reply beats an unbounded one that blows every deadline.
      if (obs::enabled()) {
        static const obs::CounterId id = obs::metrics().counter("serve.overloaded");
        obs::metrics().add(id, 1.0);
      }
      respond(*conn, error_response(pending.request.id_json, errc::kOverloaded,
                                    "server at capacity (queue_depth=" +
                                        std::to_string(options_.queue_depth) +
                                        " admitted requests)"));
    }
  }
  conn->open.store(false);
}

void Server::dispatcher_loop() {
  std::vector<Pending> drained;
  while (true) {
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait_for(lock, std::chrono::milliseconds(50),
                         [&] { return !queue_.empty() || dispatcher_stop_; });
      if (dispatcher_stop_ && queue_.empty() && inflight_count_.load() == 0) break;
      drained.assign(std::make_move_iterator(queue_.begin()),
                     std::make_move_iterator(queue_.end()));
      queue_.clear();
    }
    housekeeping();
    if (!drained.empty()) process_drained(drained);
    drained.clear();
  }
  housekeeping();
}

void Server::note_deadline_expired() {
  if (obs::enabled()) {
    static const obs::CounterId id = obs::metrics().counter("serve.deadline_exceeded");
    obs::metrics().add(id, 1.0);
  }
  const Clock::time_point now = Clock::now();
  deadline_events_.push_back(now);
  const auto window =
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(
          options_.storm_window_s));
  while (!deadline_events_.empty() && deadline_events_.front() < now - window) {
    deadline_events_.pop_front();
  }
  // Edge-triggered: one anomaly (and so one flight-recorder dump) per
  // storm, re-armed once the window drains to half the threshold.
  if (!storm_active_ && deadline_events_.size() >= options_.storm_threshold) {
    storm_active_ = true;
    obs::anomaly("serve.deadline_storm", 0.0,
                 {{"expired_in_window", static_cast<double>(deadline_events_.size())},
                  {"window_s", options_.storm_window_s},
                  {"queue_depth", static_cast<double>(options_.queue_depth)}});
  } else if (storm_active_ && deadline_events_.size() < options_.storm_threshold / 2) {
    storm_active_ = false;
  }
}

void Server::process_drained(std::vector<Pending>& drained) {
  // New distinct computations, grouped for batching by (op, env).
  std::vector<WorkItem> items;
  const Clock::time_point now = Clock::now();

  for (Pending& pending : drained) {
    if (pending.has_deadline && now > pending.deadline) {
      note_deadline_expired();
      respond(*pending.conn,
              error_response(pending.request.id_json, errc::kDeadlineExceeded,
                             "deadline expired before execution"));
      admitted_.fetch_sub(1);
      continue;
    }
    Waiter waiter{std::move(pending.conn), pending.request.id_json, pending.enqueued};
    if (pending.canon.cacheable()) {
      // A computation for this key may have completed between admission
      // and here — the cache answer is byte-identical by contract.
      std::string cached;
      if (session_.cache_lookup(pending.canon.key, cached)) {
        respond(*waiter.conn, ok_response(waiter.id_json, cached));
        observe_latency(waiter.enqueued);
        admitted_.fetch_sub(1);
        continue;
      }
      std::lock_guard guard(inflight_mutex_);
      auto [it, inserted] = inflight_.try_emplace(pending.canon.key);
      it->second.push_back(std::move(waiter));
      if (!inserted) {
        // Single-flight: coalesced onto the in-flight computation.
        if (obs::enabled()) {
          static const obs::CounterId id = obs::metrics().counter("serve.coalesced");
          obs::metrics().add(id, 1.0);
        }
        continue;
      }
    }
    WorkItem item;
    item.request = std::move(pending.request);
    item.key = std::move(pending.canon.key);
    item.group = std::move(pending.canon.batch_group);
    if (item.key.empty()) item.waiters.push_back(std::move(waiter));
    items.push_back(std::move(item));
  }
  if (items.empty()) return;

  // Group compatible work (same op + environment) into one pool
  // dispatch: one task warms the environment once and runs its batch
  // back to back instead of bouncing N tasks across workers.
  std::stable_sort(items.begin(), items.end(),
                   [](const WorkItem& a, const WorkItem& b) { return a.group < b.group; });

  std::size_t i = 0;
  while (i < items.size()) {
    const std::string group = items[i].group;
    std::size_t j = i + 1;
    if (options_.batching && !group.empty()) {
      while (j < items.size() && j - i < options_.max_batch && items[j].group == group) {
        ++j;
      }
    }
    auto batch = std::make_shared<std::vector<WorkItem>>(
        std::make_move_iterator(items.begin() + static_cast<std::ptrdiff_t>(i)),
        std::make_move_iterator(items.begin() + static_cast<std::ptrdiff_t>(j)));
    inflight_count_.fetch_add(1);
    if (obs::enabled()) {
      static const obs::CounterId batches = obs::metrics().counter("serve.batches");
      static const obs::HistogramId size =
          obs::metrics().histogram("serve.batch_size", {1.0, 1024.0, 16});
      obs::metrics().add(batches, 1.0);
      obs::metrics().observe(size, static_cast<double>(batch->size()));
    }
    pool_->submit([this, batch] {
      for (WorkItem& item : *batch) execute_item(item);
      inflight_count_.fetch_sub(1);
      queue_cv_.notify_all();  // the draining dispatcher may be waiting
    });
    i = j;
  }
}

void Server::execute_item(WorkItem& item) {
  const ComputeResult result = session_.compute(item.request);
  if (result.ok && !item.key.empty()) session_.cache_insert(item.key, result.result_json);

  std::vector<Waiter> waiters;
  if (item.key.empty()) {
    waiters = std::move(item.waiters);
  } else {
    // Cache first, then retire the single-flight entry: a request
    // arriving in between hits the cache, so no computation is lost.
    std::lock_guard guard(inflight_mutex_);
    const auto it = inflight_.find(item.key);
    if (it != inflight_.end()) {
      waiters = std::move(it->second);
      inflight_.erase(it);
    }
  }
  if (obs::enabled()) {
    static const obs::CounterId ok = obs::metrics().counter("serve.responses_ok");
    static const obs::CounterId err = obs::metrics().counter("serve.responses_error");
    obs::metrics().add(result.ok ? ok : err, static_cast<double>(waiters.size()));
  }
  for (const Waiter& waiter : waiters) {
    respond(*waiter.conn, result.render(waiter.id_json));
    observe_latency(waiter.enqueued);
  }
  admitted_.fetch_sub(waiters.size());
}

void Server::housekeeping() {
  if (obs::enabled()) {
    static const obs::GaugeId depth = obs::metrics().gauge("serve.queue_depth");
    static const obs::GaugeId inflight = obs::metrics().gauge("serve.inflight");
    std::size_t queued = 0;
    {
      std::lock_guard guard(queue_mutex_);
      queued = queue_.size();
    }
    obs::metrics().set(depth, static_cast<double>(queued));
    obs::metrics().set(inflight, static_cast<double>(inflight_count_.load()));
  }
  if (publisher_ != nullptr) publisher_->maybe_publish();
}

}  // namespace focv::serve
