#include "serve/client.hpp"

#include <utility>

#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace focv::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

bool Client::connect(std::uint16_t port, std::string& error) {
  close();
  fd_ = net::connect_tcp(port, error);
  return fd_ >= 0;
}

void Client::close() {
  if (fd_ >= 0) {
    net::close_fd(fd_);
    fd_ = -1;
  }
}

bool Client::send(const std::string& request_json) {
  return fd_ >= 0 && net::write_frame(fd_, request_json);
}

bool Client::recv(std::string& response_json) {
  // Responses (fleet reports, catalogs) may exceed the request bound.
  return fd_ >= 0 && net::read_frame(fd_, 64u << 20, response_json) == 1;
}

bool Client::request(const std::string& request_json, std::string& response_json) {
  return send(request_json) && recv(response_json);
}

bool Client::call(const std::string& request_json, Json& response, std::string& error,
                  bool ok_required) {
  std::string payload;
  if (!request(request_json, payload)) {
    error = "transport error (server gone?)";
    return false;
  }
  if (!Json::parse(payload, response, &error)) return false;
  if (ok_required && !response.bool_or("ok", false)) {
    error = "server error";
    if (const Json* err = response.find("error")) {
      error = err->string_or("code", "error") + ": " + err->string_or("message", "");
    }
    return false;
  }
  return true;
}

}  // namespace focv::serve
