#include "serve/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace focv::serve {

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::raw(std::string text) {
  Json j;
  j.type_ = Type::kRaw;
  j.string_ = std::move(text);
  return j;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number_ : fallback;
}

std::string Json::string_or(const std::string& key, std::string fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_string()) ? v->string_ : std::move(fallback);
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_ : fallback;
}

void Json::push_back(Json v) {
  type_ = Type::kArray;
  array_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
  type_ = Type::kObject;
  object_.emplace_back(std::move(key), std::move(v));
}

std::string Json::format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: out += format_number(number_); return;
    case Type::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      return;
    case Type::kRaw: out += string_; return;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        array_[i].dump_to(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += escape(object_[i].first);
        out += "\":";
        object_[i].second.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

// Recursive-descent parser over the request bytes. Depth-bounded so a
// hostile frame of nested '[' cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(Json& out, std::string* error) {
    error_ = error;
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters after JSON value");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 48;

  bool fail(const char* message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(message) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool literal(const char* word, std::size_t n) {
    if (s_.compare(pos_, n, word) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return object(out, depth);
    if (c == '[') return array(out, depth);
    if (c == '"') {
      std::string s;
      if (!string(s)) return false;
      out = Json::string(std::move(s));
      return true;
    }
    if (c == 't') {
      out = Json::boolean(true);
      return literal("true", 4);
    }
    if (c == 'f') {
      out = Json::boolean(false);
      return literal("false", 5);
    }
    if (c == 'n') {
      out = Json();
      return literal("null", 4);
    }
    return number(out);
  }

  bool number(Json& out) {
    char* end = nullptr;
    const double v = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return fail("expected a JSON value");
    out = Json::number(v);
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    return true;
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by this protocol's ASCII-leaning payloads).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool array(Json& out, int depth) {
    out = Json::array();
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json element;
      if (!value(element, depth + 1)) return false;
      out.push_back(std::move(element));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool object(Json& out, int depth) {
    out = Json::object();
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected object key");
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':' after key");
      ++pos_;
      Json val;
      if (!value(val, depth + 1)) return false;
      out.set(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string* error_ = nullptr;
};

}  // namespace

bool Json::parse(const std::string& text, Json& out, std::string* error) {
  if (error != nullptr) error->clear();
  Parser parser(text);
  return parser.parse(out, error);
}

}  // namespace focv::serve
