// Cold-start supervisor (Fig. 3: C1 charged from the PV module through
// D1; once a threshold voltage is reached the MPPT circuit switches on).
#pragma once

#include "pv/cell_model.hpp"

namespace focv::power {

/// Behavioural model of the cold-start path.
class ColdStartCircuit {
 public:
  struct Params {
    double capacitance = 10e-6;       ///< C1 [F]
    double diode_drop = 0.25;         ///< Schottky D1 [V]
    double threshold = 2.2;           ///< MPPT enable threshold [V]
    double hysteresis = 0.3;          ///< disable below threshold - hysteresis [V]
    double standby_leakage = 0.2e-6;  ///< leakage across C1 while charging [A]
  };

  explicit ColdStartCircuit(Params params);
  ColdStartCircuit() : ColdStartCircuit(Params{}) {}

  /// Advance the supervisor by dt with the cell at the given conditions.
  /// While the MPPT is off, the PV cell charges C1 (operating at
  /// v_c1 + diode_drop); once the threshold is crossed `started()`
  /// becomes true. `mppt_load` is the current the running MPPT circuitry
  /// draws from C1 [A].
  void advance(const pv::CellModel& cell, const pv::Conditions& conditions, double dt,
               double mppt_load = 0.0);

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] double capacitor_voltage() const { return v_c1_; }

  /// Closed-form estimate of the time from empty to threshold at
  /// constant conditions (integrates C dv/i(v)). Returns infinity when
  /// the cell cannot reach the threshold at these conditions.
  [[nodiscard]] double time_to_start(const pv::CellModel& cell,
                                     const pv::Conditions& conditions) const;

  [[nodiscard]] const Params& params() const { return params_; }
  void reset();

 private:
  Params params_;
  double v_c1_ = 0.0;
  bool started_ = false;
};

}  // namespace focv::power
