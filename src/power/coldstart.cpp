#include "power/coldstart.hpp"

#include <cmath>
#include <limits>

#include "common/require.hpp"

namespace focv::power {

ColdStartCircuit::ColdStartCircuit(Params params) : params_(params) {
  require(params_.capacitance > 0.0, "ColdStartCircuit: capacitance must be > 0");
  require(params_.threshold > 0.0, "ColdStartCircuit: threshold must be > 0");
  require(params_.hysteresis >= 0.0 && params_.hysteresis < params_.threshold,
          "ColdStartCircuit: bad hysteresis");
}

void ColdStartCircuit::advance(const pv::CellModel& cell, const pv::Conditions& conditions,
                               double dt, double mppt_load) {
  require(dt > 0.0, "ColdStartCircuit::advance: dt must be > 0");
  // Sub-step so a coarse dt cannot overshoot the exponential-ish charge.
  const int substeps = std::max(1, static_cast<int>(dt / 0.5));
  const double h = dt / substeps;
  for (int s = 0; s < substeps; ++s) {
    const double v_pv = v_c1_ + params_.diode_drop;
    double i_pv = cell.current(v_pv, conditions);
    if (i_pv < 0.0) i_pv = 0.0;  // D1 blocks reverse flow
    const double i_net = i_pv - params_.standby_leakage - (started_ ? mppt_load : 0.0);
    v_c1_ += i_net * h / params_.capacitance;
    if (v_c1_ < 0.0) v_c1_ = 0.0;
    if (!started_ && v_c1_ >= params_.threshold) started_ = true;
    if (started_ && v_c1_ < params_.threshold - params_.hysteresis) started_ = false;
  }
}

double ColdStartCircuit::time_to_start(const pv::CellModel& cell,
                                       const pv::Conditions& conditions) const {
  // t = C * integral_0^Vth dv / i_net(v), trapezoid over a fine grid.
  const int n = 400;
  double t = 0.0;
  double prev_inv = 0.0;
  for (int k = 0; k <= n; ++k) {
    const double v = params_.threshold * static_cast<double>(k) / n;
    double i = cell.current(v + params_.diode_drop, conditions) - params_.standby_leakage;
    if (i <= 0.0) return std::numeric_limits<double>::infinity();
    const double inv = 1.0 / i;
    if (k > 0) t += 0.5 * (inv + prev_inv) * (params_.threshold / n);
    prev_inv = inv;
  }
  return params_.capacitance * t;
}

void ColdStartCircuit::reset() {
  v_c1_ = 0.0;
  started_ = false;
}

}  // namespace focv::power
