#include "power/storage.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace focv::power {

double Supercapacitor::apply_power(double power, double dt) {
  require(dt > 0.0, "Supercapacitor::apply_power: dt must be > 0");
  // Self discharge first (energy domain, exact for the RC decay).
  if (params_.self_discharge_resistance > 0.0 && voltage_ > 0.0) {
    const double tau = params_.self_discharge_resistance * params_.capacitance;
    voltage_ *= std::exp(-dt / tau);
  }
  const double e_before = stored_energy();
  double e_after = e_before + power * dt;
  const double e_max = 0.5 * params_.capacitance * params_.max_voltage * params_.max_voltage;
  e_after = std::clamp(e_after, 0.0, e_max);
  voltage_ = std::sqrt(2.0 * e_after / params_.capacitance);
  return e_after - e_before;
}

double Supercapacitor::advance_constant_power(double power, double dt) {
  require(dt > 0.0, "Supercapacitor::advance_constant_power: dt must be > 0");
  const double e_before = stored_energy();
  double e_after;
  if (params_.self_discharge_resistance > 0.0) {
    const double tau = params_.self_discharge_resistance * params_.capacitance;
    const double e_inf = 0.5 * power * tau;
    e_after = e_inf + (e_before - e_inf) * std::exp(-2.0 * dt / tau);
  } else {
    e_after = e_before + power * dt;
  }
  e_after = std::clamp(e_after, 0.0, max_energy());
  voltage_ = std::sqrt(2.0 * e_after / params_.capacitance);
  return e_after - e_before;
}

double Supercapacitor::time_to_energy(double power, double target_j) const {
  constexpr double kNever = std::numeric_limits<double>::infinity();
  const double e0 = stored_energy();
  if (params_.self_discharge_resistance <= 0.0) {
    if (power == 0.0) return e0 == target_j ? 0.0 : kNever;
    const double t = (target_j - e0) / power;
    return t >= 0.0 ? t : kNever;
  }
  const double tau = params_.self_discharge_resistance * params_.capacitance;
  const double e_inf = 0.5 * power * tau;
  // E(t) = e_inf + (e0 - e_inf) exp(-2t/tau): the target is reached iff
  // it lies between e0 (inclusive: "already there" is t = 0, so a store
  // sitting exactly on a threshold still reports the crossing) and the
  // asymptote (exclusive).
  const double denom = e0 - e_inf;
  if (denom == 0.0) return e0 == target_j ? 0.0 : kNever;
  const double r = (target_j - e_inf) / denom;
  if (!(r > 0.0) || r > 1.0) return kNever;
  return -0.5 * tau * std::log(r);
}

}  // namespace focv::power
