#include "power/storage.hpp"

#include <algorithm>
#include <cmath>

namespace focv::power {

double Supercapacitor::apply_power(double power, double dt) {
  require(dt > 0.0, "Supercapacitor::apply_power: dt must be > 0");
  // Self discharge first (energy domain, exact for the RC decay).
  if (params_.self_discharge_resistance > 0.0 && voltage_ > 0.0) {
    const double tau = params_.self_discharge_resistance * params_.capacitance;
    voltage_ *= std::exp(-dt / tau);
  }
  const double e_before = stored_energy();
  double e_after = e_before + power * dt;
  const double e_max = 0.5 * params_.capacitance * params_.max_voltage * params_.max_voltage;
  e_after = std::clamp(e_after, 0.0, e_max);
  voltage_ = std::sqrt(2.0 * e_after / params_.capacitance);
  return e_after - e_before;
}

}  // namespace focv::power
