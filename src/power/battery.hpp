// Rechargeable battery model (the alternative energy store to the
// supercapacitor; thin-film / LiPo class cells are the usual choice for
// indoor harvesters when day-scale autonomy is needed).
#pragma once

#include "common/require.hpp"

namespace focv::power {

/// Simple open-circuit-voltage + internal-resistance battery with
/// charge-acceptance limits and coulombic efficiency.
class Battery {
 public:
  struct Params {
    double capacity_j = 1500.0;         ///< usable energy capacity [J] (~0.1 mAh class)
    double nominal_voltage = 3.0;       ///< [V]
    double voltage_swing = 0.4;         ///< OCV rises this much from empty to full [V]
    double internal_resistance = 40.0;  ///< [Ohm]
    double coulombic_efficiency = 0.95; ///< charge accepted / charge delivered
    double max_charge_power = 20e-3;    ///< acceptance limit [W]
    double self_discharge_per_day = 0.002;  ///< fraction of capacity per day
    double initial_soc = 0.5;           ///< state of charge 0..1
  };

  explicit Battery(Params params) : params_(params), soc_(params.initial_soc) {
    require(params_.capacity_j > 0.0, "Battery: capacity must be > 0");
    require(params_.coulombic_efficiency > 0.0 && params_.coulombic_efficiency <= 1.0,
            "Battery: coulombic_efficiency in (0, 1]");
    require(params_.initial_soc >= 0.0 && params_.initial_soc <= 1.0,
            "Battery: initial_soc in [0, 1]");
  }
  Battery() : Battery(Params{}) {}

  /// Apply `power` for `dt` seconds (positive charges). Returns the
  /// energy change actually realised in the cell [J].
  double apply_power(double power, double dt);

  /// State of charge in [0, 1].
  [[nodiscard]] double soc() const { return soc_; }

  /// Open-circuit voltage at the current state of charge [V].
  [[nodiscard]] double open_circuit_voltage() const {
    return params_.nominal_voltage + params_.voltage_swing * (soc_ - 0.5);
  }

  /// Terminal voltage while sourcing/sinking `current` [V].
  [[nodiscard]] double terminal_voltage(double current) const {
    return open_circuit_voltage() - current * params_.internal_resistance;
  }

  [[nodiscard]] double stored_energy() const { return soc_ * params_.capacity_j; }
  [[nodiscard]] bool usable() const { return soc_ > 0.02; }
  [[nodiscard]] bool full() const { return soc_ >= 1.0 - 1e-12; }
  [[nodiscard]] const Params& params() const { return params_; }

  void set_soc(double soc) {
    require(soc >= 0.0 && soc <= 1.0, "Battery: soc in [0, 1]");
    soc_ = soc;
  }

 private:
  Params params_;
  double soc_;
};

}  // namespace focv::power
