// Energy storage models: supercapacitor and a simple battery.
#pragma once

#include "common/require.hpp"

namespace focv::power {

/// Ideal supercapacitor with voltage limits and self-discharge.
class Supercapacitor {
 public:
  struct Params {
    double capacitance = 0.4;       ///< [F]
    double max_voltage = 5.0;       ///< [V]
    double min_useful_voltage = 1.8;///< below this the load browns out [V]
    double initial_voltage = 0.0;   ///< cold start: empty [V]
    double self_discharge_resistance = 5e6;  ///< [Ohm]
  };

  explicit Supercapacitor(Params params) : params_(params), voltage_(params.initial_voltage) {
    require(params_.capacitance > 0.0, "Supercapacitor: capacitance must be > 0");
    require(params_.max_voltage > params_.min_useful_voltage,
            "Supercapacitor: max_voltage must exceed min_useful_voltage");
  }
  Supercapacitor() : Supercapacitor(Params{}) {}

  /// Apply a net power for dt seconds (positive charges, negative
  /// discharges). Returns the energy actually absorbed/delivered [J]
  /// (clipped at the voltage limits and at empty).
  double apply_power(double power, double dt);

  [[nodiscard]] double voltage() const { return voltage_; }
  [[nodiscard]] double stored_energy() const {
    return 0.5 * params_.capacitance * voltage_ * voltage_;
  }
  [[nodiscard]] bool usable() const { return voltage_ >= params_.min_useful_voltage; }
  [[nodiscard]] bool full() const { return voltage_ >= params_.max_voltage - 1e-9; }
  [[nodiscard]] const Params& params() const { return params_; }

  void set_voltage(double v) {
    require(v >= 0.0 && v <= params_.max_voltage, "Supercapacitor: voltage out of range");
    voltage_ = v;
  }

 private:
  Params params_;
  double voltage_;
};

}  // namespace focv::power
