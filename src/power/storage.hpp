// Energy storage models: supercapacitor and a simple battery.
#pragma once

#include "common/require.hpp"

namespace focv::power {

/// Ideal supercapacitor with voltage limits and self-discharge.
class Supercapacitor {
 public:
  struct Params {
    double capacitance = 0.4;       ///< [F]
    double max_voltage = 5.0;       ///< [V]
    double min_useful_voltage = 1.8;///< below this the load browns out [V]
    double initial_voltage = 0.0;   ///< cold start: empty [V]
    double self_discharge_resistance = 5e6;  ///< [Ohm]
  };

  explicit Supercapacitor(Params params) : params_(params), voltage_(params.initial_voltage) {
    require(params_.capacitance > 0.0, "Supercapacitor: capacitance must be > 0");
    require(params_.max_voltage > params_.min_useful_voltage,
            "Supercapacitor: max_voltage must exceed min_useful_voltage");
  }
  Supercapacitor() : Supercapacitor(Params{}) {}

  /// Apply a net power for dt seconds (positive charges, negative
  /// discharges). Returns the energy actually absorbed/delivered [J]
  /// (clipped at the voltage limits and at empty).
  double apply_power(double power, double dt);

  /// Advance by dt under a constant net power using the closed form of
  /// the continuous dynamics dE/dt = P - 2E/tau (tau = R_self * C).
  /// apply_power() composes the same dynamics one decay-then-integrate
  /// step at a time; the two agree to O(dt_step / tau) per step, which
  /// for the default parameters (tau = 2e6 s, 1 s steps) is ~5e-7
  /// relative. The trajectory is monotone toward its asymptote, so
  /// clamping the endpoint at [0, max] is exact. Used by the event-driven
  /// macro-stepper to jump across hold periods in one call. Returns the
  /// energy change [J].
  double advance_constant_power(double power, double dt);

  /// Time until the stored energy first reaches `target_j` under a
  /// constant net power from the current state (voltage clamps ignored).
  /// +infinity when the trajectory never gets there — wrong direction or
  /// asymptote short of the target; 0 when already exactly at it. This is the
  /// closed-form root-solve behind storage threshold events (cold-start,
  /// energy-neutral, depletion crossings).
  [[nodiscard]] double time_to_energy(double power, double target_j) const;

  [[nodiscard]] double voltage() const { return voltage_; }
  [[nodiscard]] double stored_energy() const {
    return 0.5 * params_.capacitance * voltage_ * voltage_;
  }
  /// Energy at max_voltage [J].
  [[nodiscard]] double max_energy() const {
    return 0.5 * params_.capacitance * params_.max_voltage * params_.max_voltage;
  }
  /// Energy at min_useful_voltage — the usable()/brown-out threshold [J].
  [[nodiscard]] double min_useful_energy() const {
    return 0.5 * params_.capacitance * params_.min_useful_voltage * params_.min_useful_voltage;
  }
  [[nodiscard]] bool usable() const { return voltage_ >= params_.min_useful_voltage; }
  [[nodiscard]] bool full() const { return voltage_ >= params_.max_voltage - 1e-9; }
  [[nodiscard]] const Params& params() const { return params_; }

  void set_voltage(double v) {
    require(v >= 0.0 && v <= params_.max_voltage, "Supercapacitor: voltage out of range");
    voltage_ = v;
  }

 private:
  Params params_;
  double voltage_;
};

}  // namespace focv::power
