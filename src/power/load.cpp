#include "power/load.hpp"

#include <cmath>

namespace focv::power {

double WsnLoad::phase() const {
  double p = std::fmod(params_.burst_phase, params_.report_period);
  if (p < 0.0) p += params_.report_period;
  return p;
}

double WsnLoad::power_at(double t) const {
  double local = std::fmod(t - phase(), params_.report_period);
  if (local < 0.0) local += params_.report_period;
  if (local < params_.sense_duration) return params_.sense_power + params_.sleep_power;
  if (local < params_.sense_duration + params_.tx_duration) {
    return params_.tx_power + params_.sleep_power;
  }
  return params_.sleep_power;
}

}  // namespace focv::power
