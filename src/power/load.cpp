#include "power/load.hpp"

#include <cmath>

namespace focv::power {

double WsnLoad::phase() const {
  double p = std::fmod(params_.burst_phase, params_.report_period);
  if (p < 0.0) p += params_.report_period;
  return p;
}

double WsnLoad::power_at(double t) const {
  double local = std::fmod(t - phase(), params_.report_period);
  if (local < 0.0) local += params_.report_period;
  if (local < params_.sense_duration) return params_.sense_power + params_.sleep_power;
  if (local < params_.sense_duration + params_.tx_duration) {
    return params_.tx_power + params_.sleep_power;
  }
  return params_.sleep_power;
}

double WsnLoad::next_burst_edge(double t) const {
  const double period = params_.report_period;
  double local = std::fmod(t - phase(), period);
  if (local < 0.0) local += period;
  const double sense_end = params_.sense_duration;
  const double tx_end = params_.sense_duration + params_.tx_duration;
  double next_local;
  if (local < sense_end) {
    next_local = sense_end;
  } else if (local < tx_end) {
    next_local = tx_end;
  } else {
    next_local = period;  // next burst start
  }
  double edge = t + (next_local - local);
  // Guard against fmod rounding leaving edge == t.
  if (!(edge > t)) edge = t + period;
  return edge;
}

}  // namespace focv::power
