#include "power/load.hpp"

#include <cmath>

namespace focv::power {

double WsnLoad::power_at(double t) const {
  const double local = std::fmod(t, params_.report_period);
  if (local < params_.sense_duration) return params_.sense_power + params_.sleep_power;
  if (local < params_.sense_duration + params_.tx_duration) {
    return params_.tx_power + params_.sleep_power;
  }
  return params_.sleep_power;
}

}  // namespace focv::power
