#include "power/battery.hpp"

#include <algorithm>
#include <cmath>

namespace focv::power {

double Battery::apply_power(double power, double dt) {
  require(dt > 0.0, "Battery::apply_power: dt must be > 0");
  // Self discharge first.
  const double leak = params_.self_discharge_per_day * dt / 86400.0;
  soc_ = std::max(0.0, soc_ - leak);

  const double e_before = soc_ * params_.capacity_j;
  double delta = 0.0;
  if (power >= 0.0) {
    const double accepted = std::min(power, params_.max_charge_power);
    delta = accepted * params_.coulombic_efficiency * dt;
  } else {
    delta = power * dt;  // discharge is counted at full value
  }
  const double e_after = std::clamp(e_before + delta, 0.0, params_.capacity_j);
  soc_ = e_after / params_.capacity_j;
  return e_after - e_before;
}

}  // namespace focv::power
