// Averaged model of the modified buck-boost switching converter (Fig. 3,
// based on the circuit of [8]).
//
// In normal operation the converter holds its input at the voltage
// commanded by HELD_SAMPLE and moves the harvested energy into the
// store. For multi-hour simulations a switch-level model is infeasible
// (tens of kHz switching); the standard practice is an averaged
// efficiency model, which is what this is. The switch-level behaviour is
// exercised separately by the circuit-level netlists in focv::core.
#pragma once

#include "common/require.hpp"

namespace focv::power {

/// Averaged buck-boost converter.
class BuckBoostConverter {
 public:
  struct Params {
    double efficiency_peak = 0.82;      ///< mid-load efficiency
    double fixed_loss = 2e-6;           ///< gate-drive/control floor [W]
    double input_power_knee = 20e-6;    ///< below this, efficiency rolls off [W]
    double min_input_voltage = 0.8;     ///< cannot convert below this [V]
    double max_input_voltage = 12.0;    ///< absolute rating [V]
  };

  explicit BuckBoostConverter(Params params) : params_(params) {
    require(params_.efficiency_peak > 0.0 && params_.efficiency_peak <= 1.0,
            "BuckBoostConverter: efficiency_peak in (0,1]");
    require(params_.fixed_loss >= 0.0, "BuckBoostConverter: fixed_loss must be >= 0");
  }
  BuckBoostConverter() : BuckBoostConverter(Params{}) {}

  /// Power delivered to the store for the given input power and voltage.
  [[nodiscard]] double output_power(double input_power, double input_voltage) const {
    if (input_power <= 0.0) return 0.0;
    if (input_voltage < params_.min_input_voltage ||
        input_voltage > params_.max_input_voltage) {
      return 0.0;
    }
    // Efficiency rolls off at very light load (switching losses dominate)
    // through a soft knee, then the fixed control loss comes off the top.
    const double knee = input_power / (input_power + params_.input_power_knee);
    const double converted = input_power * params_.efficiency_peak * knee;
    return (converted > params_.fixed_loss) ? converted - params_.fixed_loss : 0.0;
  }

  /// Converter efficiency at the given operating point.
  [[nodiscard]] double efficiency(double input_power, double input_voltage) const {
    if (input_power <= 0.0) return 0.0;
    return output_power(input_power, input_voltage) / input_power;
  }

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace focv::power
