// Wireless sensor node load profiles.
#pragma once

#include <string>

#include "common/require.hpp"

namespace focv::power {

/// Duty-cycled WSN load: deep sleep with periodic sense+transmit bursts.
class WsnLoad {
 public:
  struct Params {
    double sleep_power = 6.6e-6;      ///< ~2 uA at 3.3 V [W]
    double sense_power = 3.3e-3;      ///< sensor + ADC burst [W]
    double sense_duration = 10e-3;    ///< [s]
    double tx_power = 66e-3;          ///< radio burst [W]
    double tx_duration = 4e-3;        ///< [s]
    double report_period = 60.0;      ///< one sense+tx per period [s]
    /// Offset of the sense+tx burst within each period [s], wrapped into
    /// [0, report_period). The default 0 keeps the historical behaviour
    /// (burst at the start of every period); fleets assign each node its
    /// own phase so thousands of nodes do not transmit in lockstep.
    double burst_phase = 0.0;
  };

  explicit WsnLoad(Params params) : params_(params) {
    require(params_.report_period > 0.0, "WsnLoad: report_period must be > 0");
    require(params_.sense_duration + params_.tx_duration < params_.report_period,
            "WsnLoad: burst longer than the period");
  }
  WsnLoad() : WsnLoad(Params{}) {}

  /// Average power over a report period [W].
  [[nodiscard]] double average_power() const {
    const double burst_energy = params_.sense_power * params_.sense_duration +
                                params_.tx_power * params_.tx_duration;
    return params_.sleep_power + burst_energy / params_.report_period;
  }

  /// Instantaneous power at time t [W] (burst placed `burst_phase`
  /// seconds into each period).
  [[nodiscard]] double power_at(double t) const;

  /// Earliest time > t at which power_at() changes value: the next burst
  /// start, sense->tx transition, or burst end (phase-aware). Lets the
  /// event-driven macro-stepper treat the load as piecewise-constant
  /// between edges instead of sampling it.
  [[nodiscard]] double next_burst_edge(double t) const;

  /// `burst_phase` wrapped into [0, report_period).
  [[nodiscard]] double phase() const;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace focv::power
