// Circuit-level (SPICE-tier) netlists of the Fig. 3 system.
//
// These builders place real components — comparators, op-amp buffers,
// analog switches, the diode-split RC timing network, the PV cell — into
// the focv::circuit MNA engine, so waveform-level behaviour (Fig. 4,
// astable timing, cold start) is *simulated*, not scripted. A test
// cross-checks these netlists against the behavioural tier.
#pragma once

#include "circuit/circuit.hpp"
#include "circuit/devices_active.hpp"
#include "core/focv_system.hpp"
#include "pv/pv_device.hpp"

namespace focv::core {

/// Node handles of a built astable multivibrator.
struct AstableNodes {
  circuit::NodeId pulse;  ///< comparator output (the PULSE line)
  circuit::NodeId cap;    ///< timing capacitor
  circuit::NodeId ref;    ///< hysteresis reference
};

/// Comparator relaxation oscillator with a diode-split charge path
/// (independent on/off periods, Section III-B). `vdd` is the supply
/// node the comparator and the hysteresis network run from.
AstableNodes build_astable(circuit::Circuit& ckt, circuit::NodeId vdd, const SystemSpec& spec,
                           const std::string& prefix = "ast");

/// Node handles of the sample-and-hold chain.
struct SampleHoldNodes {
  circuit::NodeId divider;   ///< R1/R2 tap (k*alpha * Vpv while sampling)
  circuit::NodeId hold;      ///< hold capacitor
  circuit::NodeId held;      ///< HELD_SAMPLE after the R3/C3 filter
  circuit::NodeId active;    ///< ACTIVE comparator output
};

/// Divider -> U2 buffer -> analog switch -> C_hold -> U4 buffer -> R3/C3,
/// plus the U5 ACTIVE comparator. `pv` is the PV terminal sampled,
/// `pulse` closes the sampling switch, `vdd` powers the buffers.
SampleHoldNodes build_sample_hold(circuit::Circuit& ckt, circuit::NodeId pv,
                                  circuit::NodeId pulse, circuit::NodeId vdd,
                                  const SystemSpec& spec, const std::string& prefix = "sh");

/// Node handles of the complete Fig. 3 system.
struct Fig3Nodes {
  circuit::NodeId pv;       ///< PV module terminal (PV_IN)
  circuit::NodeId sw_in;    ///< converter side of the M1 disconnect switch (SW_IN)
  circuit::NodeId pulse;    ///< PULSE
  circuit::NodeId held;     ///< HELD_SAMPLE
  circuit::NodeId active;   ///< ACTIVE
  circuit::NodeId pv_sense; ///< converter input-voltage sense (IN+, pulled by M8)
  pv::PvCellDevice* cell;   ///< to change illuminance mid-run
};

/// The full metrology + converter-regulation loop:
///  - PV cell device,
///  - M1 disconnect switch (opens while PULSE samples),
///  - astable + sample-and-hold + ACTIVE,
///  - converter input stage emulated as an error amplifier driving a
///    MOSFET current sink that regulates the PV at HELD/alpha (the
///    paper's modified buck-boost holds its input voltage the same way),
///  - M8 pulling the sense input down during sampling.
/// The 3.3 V metrology rail is an ideal source named `prefix + "_vdd"`
/// (branch current "I(<prefix>_vdd)" gives the circuit's supply draw).
Fig3Nodes build_fig3_system(circuit::Circuit& ckt, const pv::CellModel& cell,
                            const pv::Conditions& conditions, const SystemSpec& spec,
                            const std::string& prefix = "sys");

/// Node handles of the switch-level converter.
struct SwitchingConverterNodes {
  circuit::NodeId pv;      ///< input (PV) terminal
  circuit::NodeId sw;      ///< switch/inductor node
  circuit::NodeId out;     ///< output (store) terminal
  circuit::NodeId gate;    ///< hysteretic comparator output
  pv::PvCellDevice* cell;
};

/// Switch-level buck converter with hysteretic *input-voltage* control —
/// the operating principle of the paper's modified buck-boost ("during
/// normal operation, this circuit acts to maintain a constant voltage
/// across its input terminals", Section III-A):
///  - input capacitor on the PV node,
///  - series switch -> inductor -> output capacitor,
///  - freewheel diode,
///  - comparator: closes the switch while the divided input exceeds the
///    `held` reference, so the loop self-oscillates and the PV input
///    ripples tightly around held/alpha... * 1/alpha.
/// `held_reference` is driven by an ideal source here (the S&H output
/// impedance is low); bench/ext_converter_switching uses this netlist to
/// validate the averaged BuckBoostConverter model.
SwitchingConverterNodes build_switching_converter(circuit::Circuit& ckt,
                                                  const pv::CellModel& cell,
                                                  const pv::Conditions& conditions,
                                                  double held_reference,
                                                  double initial_output_voltage,
                                                  const std::string& prefix = "conv");

/// Cold-start netlist: PV -> D1 -> C1, threshold switch powering the
/// astable from C1 (Fig. 3 INIT path).
struct ColdStartNodes {
  circuit::NodeId pv;
  circuit::NodeId c1;        ///< cold-start capacitor
  circuit::NodeId mppt_vdd;  ///< switched rail feeding the MPPT circuitry
  circuit::NodeId pulse;     ///< astable output once powered
  pv::PvCellDevice* cell;
};
ColdStartNodes build_coldstart(circuit::Circuit& ckt, const pv::CellModel& cell,
                               const pv::Conditions& conditions, const SystemSpec& spec,
                               const std::string& prefix = "cs");

}  // namespace focv::core
