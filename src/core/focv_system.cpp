#include "core/focv_system.hpp"

namespace focv::core {

analog::AstableMultivibrator::Params astable_params_from_spec(const SystemSpec& spec) {
  analog::AstableMultivibrator::Params p;
  // The behavioural tier uses the measured timing directly; the netlist
  // tier reproduces it from the tuned RC components (cross-checked by a
  // test, so the two cannot drift apart).
  p.on_period = spec.astable_on_period;
  p.off_period = spec.astable_off_period;
  p.comparator_iq = spec.comparator_iq;
  // Average network draw: the three-resistor hysteresis network sits
  // across the rail permanently; the timing RC's average drain is the
  // discharge-phase current through r_discharge.
  const double feedback_current = spec.supply_voltage / (1.5 * spec.astable_feedback_r);
  const double timing_current = 0.5 * spec.supply_voltage / spec.astable_r_discharge;
  p.network_current = feedback_current + timing_current;
  return p;
}

mppt::FocvSampleHoldController::Params paper_controller_params(const SystemSpec& spec) {
  mppt::FocvSampleHoldController::Params p;
  p.astable = astable_params_from_spec(spec);
  p.sample_hold.divider_ratio = spec.divider_ratio;
  p.sample_hold.hold_capacitance = spec.hold_capacitance;
  p.sample_hold.leakage_current = spec.hold_leakage;
  p.sample_hold.charge_injection = spec.charge_injection;
  p.sample_hold.input_buffer_offset = spec.buffer_offset;
  p.sample_hold.output_buffer_offset = spec.buffer_offset;
  p.sample_hold.buffer_iq = 2.0 * spec.buffer_iq_each;
  // Divider draw while sampling: Voc across the full divider string.
  const double divider_total = spec.divider_r_top / (1.0 - spec.divider_ratio);
  p.sample_hold.divider_current_peak = 5.4 / divider_total;  // ~Voc at 1 klux
  // The switch must settle the hold cap within the 39 ms window.
  p.sample_hold.acquisition_time = 5.0 * spec.switch_on_resistance * spec.hold_capacitance +
                                   2e-3;
  p.supply_voltage = spec.supply_voltage;
  p.alpha = spec.alpha;
  p.active_threshold = spec.active_threshold;
  p.comparator_iq = spec.comparator_iq;
  p.misc_leakage = spec.misc_leakage;
  return p;
}

mppt::FocvSampleHoldController make_paper_controller(const SystemSpec& spec) {
  return mppt::FocvSampleHoldController(paper_controller_params(spec));
}

mppt::FocvSampleHoldController make_paper_controller_from_spec(
    const mppt::ResolvedSpec& resolved, SystemSpec base,
    std::optional<double> divider_ratio_override) {
  require(resolved.name == "focv", "make_paper_controller_from_spec: spec \"" +
                                       resolved.spec() + "\" is not \"focv\"");
  // Only explicitly-set parameters touch the base spec: an unset `k`
  // must leave base.divider_ratio bit-for-bit untouched (k -> k*alpha
  // would not round-trip in binary floating point).
  if (resolved.is_set("k")) base.divider_ratio = resolved.value("k") * base.alpha;
  if (divider_ratio_override) base.divider_ratio = *divider_ratio_override;
  if (resolved.is_set("hold")) base.astable_off_period = resolved.value("hold");
  if (resolved.is_set("pulse")) base.astable_on_period = resolved.value("pulse");
  mppt::FocvSampleHoldController::Params p = paper_controller_params(base);
  if (resolved.is_set("min_lux")) p.min_lux = resolved.value("min_lux");
  return mppt::FocvSampleHoldController(p);
}

void register_paper_controller() {
  mppt::Registry& registry = mppt::Registry::instance();
  if (registry.contains("focv")) return;
  mppt::Registry::Entry e;
  e.name = "focv";
  e.summary =
      "the paper's S&H FOCV: astable-gated sample-and-hold, ~7.6 uA, no uC";
  // Defaults mirror SystemSpec{}: k = divider_ratio / alpha = 0.298 / 0.5.
  e.params = {
      {"k", mppt::Unit::kNone, 0.596, 0.05, 0.95, "FOCV fraction (divider trim)"},
      {"hold", mppt::Unit::kTime, 69.0, 0.1, 3600.0, "astable low (hold) period"},
      {"pulse", mppt::Unit::kTime, 39e-3, 1e-3, 10.0, "astable high (sample) window"},
      {"min_lux", mppt::Unit::kLux, 180.0, 0.0, 200e3, "self-sustain floor"},
  };
  e.ops_per_decision = 0.0;  // fully analog metrology
  e.period_key = "hold";
  e.factory = [](const mppt::ResolvedSpec& s) -> std::unique_ptr<mppt::MpptController> {
    return std::make_unique<mppt::FocvSampleHoldController>(
        make_paper_controller_from_spec(s));
  };
  registry.add(std::move(e));
}

namespace {
// Static registrar: installs "focv" in any binary that pulls this
// translation unit in (every focv_core user does — make_paper_controller
// and paper_power_budget live here).
const bool focv_entry_registered = [] {
  register_paper_controller();
  return true;
}();
}  // namespace

analog::PowerBudget paper_power_budget(const SystemSpec& spec) {
  const analog::AstableMultivibrator astable(astable_params_from_spec(spec));
  analog::PowerBudget budget;
  budget.add("U1 astable comparator (LMC7215)", spec.comparator_iq, "datasheet typ.");
  budget.add("astable timing + hysteresis network",
             astable.params().network_current, "3x10M feedback + RC mean");
  budget.add("U2 input unity-gain buffer", spec.buffer_iq_each, "micropower op-amp");
  budget.add("U4 output unity-gain buffer", spec.buffer_iq_each, "micropower op-amp");
  budget.add("U5 ACTIVE comparator (LMC7215)", spec.comparator_iq, "datasheet typ.");
  const double divider_total = spec.divider_r_top / (1.0 - spec.divider_ratio);
  budget.add("Voc divider (duty-cycled)", (5.4 / divider_total) * astable.duty_cycle(),
             "conducts only while PULSE is high");
  budget.add("switches, M8 gate network, leakage", spec.misc_leakage, "aggregate");
  return budget;
}

}  // namespace focv::core
