// The paper's system, behavioural tier: configured controller factory,
// itemised power budget, and the component-level spec shared with the
// circuit netlists.
#pragma once

#include <optional>

#include "analog/power_budget.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "mppt/registry.hpp"

namespace focv::core {

/// Component choices of the prototype (Section III/IV), shared between
/// the behavioural controller and the netlist builders so the two tiers
/// cannot drift apart.
struct SystemSpec {
  // Astable multivibrator (LMC7215 relaxation oscillator, diode-split RC).
  // The resistor values are tuned so the *simulated circuit* (with its
  // diode drop, comparator output resistance and threshold loading)
  // produces the prototype's measured 39 ms / 69 s — the same tuning the
  // authors did on the bench. tools-level calibration; verified by
  // tests/core/netlist_astable_test.cpp.
  double astable_on_period = 39e-3;       ///< measured PULSE high time [s]
  double astable_off_period = 69.0;       ///< measured PULSE low time [s]
  double astable_r_charge = 43.72e3;      ///< [Ohm]
  double astable_r_discharge = 109.04e6;  ///< [Ohm]
  double astable_capacitance = 1e-6;      ///< low-leakage polyester [F]
  double astable_feedback_r = 10e6;       ///< the three hysteresis resistors [Ohm]
  double comparator_iq = 0.7e-6;          ///< LMC7215 quiescent [A]

  // Sample-and-hold.
  double divider_r_top = 6.8e6;           ///< R1 [Ohm]
  double divider_ratio = 0.298;           ///< k * alpha (R2 trimmed; Table I mean)
  double hold_capacitance = 100e-9;       ///< [F]
  double hold_leakage = 50e-12;           ///< [A]
  double buffer_iq_each = 2.2e-6;         ///< U2 / U4 micropower op-amps [A]
  double buffer_offset = 0.5e-3;          ///< [V]
  double switch_on_resistance = 500.0;    ///< analog switch [Ohm]
  double charge_injection = 5e-12;        ///< [C]

  // Ripple filter R3/C3 (Fig. 4 discussion).
  double r3 = 100e3;                      ///< [Ohm]
  double c3 = 100e-9;                     ///< [F]

  // System.
  double supply_voltage = 3.3;            ///< metrology rail [V]
  double alpha = 0.5;                     ///< Eq. (3) representation divider
  double active_threshold = 0.9;          ///< U5 sanity threshold [V]
  double misc_leakage = 1.55e-6;          ///< switches, gate networks, board [A]

  // Cold start (C1 / D1 of Fig. 3).
  double coldstart_capacitance = 10e-6;   ///< C1 [F]
  double coldstart_threshold = 2.2;       ///< [V]
  double coldstart_diode_drop = 0.25;     ///< D1 [V]
};

/// Controller parameter bag derived from the component-level spec (the
/// mapping make_paper_controller applies; exposed so spec-string
/// construction can patch fields the SystemSpec does not carry).
[[nodiscard]] mppt::FocvSampleHoldController::Params paper_controller_params(
    const SystemSpec& spec);

/// Behavioural controller configured exactly per the spec.
[[nodiscard]] mppt::FocvSampleHoldController make_paper_controller(
    const SystemSpec& spec = {});

/// Behavioural controller from a resolved registry spec
/// (`focv[k=...,hold=...,pulse=...,min_lux=...]`) layered on top of a
/// component-level base. Parameters the spec does not set keep the
/// base's values bit-for-bit (no k -> divider -> k round trip), which is
/// what keeps registry-built "focv" byte-identical to
/// make_paper_controller(base). `divider_ratio_override`, when given,
/// wins over both the base and the spec's `k` — the fleet engine uses it
/// to fold per-node divider-tolerance draws into the axis nominal.
[[nodiscard]] mppt::FocvSampleHoldController make_paper_controller_from_spec(
    const mppt::ResolvedSpec& resolved, SystemSpec base = {},
    std::optional<double> divider_ratio_override = std::nullopt);

/// Install the "focv" entry (the paper's S&H FOCV metrology) into
/// mppt::Registry::instance(). Idempotent. focv_system.cpp also calls
/// this from a static registrar, so any binary that links focv_core and
/// references this translation unit gets the entry automatically;
/// spec-consuming CLIs call it explicitly to be independent of static
/// archive pull-in order.
void register_paper_controller();

/// Itemised current budget of astable + S&H + ACTIVE comparator,
/// reproducing the measured 7.6 uA average (Section IV-A).
[[nodiscard]] analog::PowerBudget paper_power_budget(const SystemSpec& spec = {});

/// Astable timing derived from the spec's RC components (the behavioural
/// and netlist tiers both use this).
[[nodiscard]] analog::AstableMultivibrator::Params astable_params_from_spec(
    const SystemSpec& spec);

}  // namespace focv::core
