// Monte-Carlo component-tolerance analysis of the metrology circuit.
//
// The paper trims R2 with a potentiometer because fixed resistors would
// scatter the k setting from unit to unit. This module quantifies that:
// it draws production units with realistic component tolerances,
// evaluates each unit's effective k, astable timing and supply current,
// and reports the distributions — with and without the trim step.
#pragma once

#include <cstdint>
#include <vector>

#include "core/focv_system.hpp"

namespace focv::core {

/// Component tolerance assumptions (1-sigma unless noted).
struct ToleranceSpec {
  double resistor_tolerance = 0.01 / 3.0;       ///< 1% parts, 3-sigma
  double capacitor_tolerance = 0.10 / 3.0;      ///< 10% parts, 3-sigma
  double comparator_iq_spread = 0.25;           ///< quiescent spread
  double buffer_offset_sigma = 1.5e-3;          ///< absolute [V]
  double charge_injection_spread = 0.4;
  double leakage_spread = 0.8;                  ///< log-normal-ish sigma
  bool trimmed = false;                         ///< simulate the R2 trim step
};

/// One production unit.
struct ToleranceSample {
  double effective_k = 0.0;       ///< 2*HELD/Voc at 1000 lux
  double on_period = 0.0;         ///< astable on [s]
  double off_period = 0.0;        ///< astable off [s]
  double average_current = 0.0;   ///< metrology draw [A]
};

/// Monte-Carlo result with summary statistics.
class ToleranceReport {
 public:
  explicit ToleranceReport(std::vector<ToleranceSample> samples);

  [[nodiscard]] const std::vector<ToleranceSample>& samples() const { return samples_; }

  struct Stats {
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Stats k_stats() const;
  [[nodiscard]] Stats on_period_stats() const;
  [[nodiscard]] Stats off_period_stats() const;
  [[nodiscard]] Stats current_stats() const;

  /// Fraction of units whose effective k lies within [lo, hi].
  [[nodiscard]] double k_yield(double lo, double hi) const;

 private:
  std::vector<ToleranceSample> samples_;
};

/// Draw `n` units around the nominal spec and evaluate each.
///
/// Each unit draws from its own RNG stream derived from `seed` and the
/// unit index (common/rng.hpp derive_stream_seed), so the report is
/// bit-identical for any `jobs` value: `jobs == 1` evaluates the units
/// serially on the calling thread, `jobs > 1` fans them out across that
/// many worker threads, and `jobs == 0` uses one worker per hardware
/// thread.
[[nodiscard]] ToleranceReport run_tolerance_monte_carlo(const SystemSpec& nominal,
                                                        const ToleranceSpec& tolerances,
                                                        int n, std::uint64_t seed = 2024,
                                                        int jobs = 1);

}  // namespace focv::core
