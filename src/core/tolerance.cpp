#include "core/tolerance.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "pv/cell_library.hpp"
#include "runtime/thread_pool.hpp"

namespace focv::core {

namespace {

ToleranceReport::Stats stats_of(const std::vector<ToleranceSample>& samples,
                                double ToleranceSample::* field) {
  ToleranceReport::Stats s;
  if (samples.empty()) return s;
  s.min = 1e300;
  s.max = -1e300;
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& sample : samples) {
    const double v = sample.*field;
    sum += v;
    sum_sq += v * v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  const double n = static_cast<double>(samples.size());
  s.mean = sum / n;
  s.stddev = std::sqrt(std::max(0.0, sum_sq / n - s.mean * s.mean));
  return s;
}

}  // namespace

ToleranceReport::ToleranceReport(std::vector<ToleranceSample> samples)
    : samples_(std::move(samples)) {}

ToleranceReport::Stats ToleranceReport::k_stats() const {
  return stats_of(samples_, &ToleranceSample::effective_k);
}
ToleranceReport::Stats ToleranceReport::on_period_stats() const {
  return stats_of(samples_, &ToleranceSample::on_period);
}
ToleranceReport::Stats ToleranceReport::off_period_stats() const {
  return stats_of(samples_, &ToleranceSample::off_period);
}
ToleranceReport::Stats ToleranceReport::current_stats() const {
  return stats_of(samples_, &ToleranceSample::average_current);
}

double ToleranceReport::k_yield(double lo, double hi) const {
  require(lo < hi, "k_yield: lo must be < hi");
  if (samples_.empty()) return 0.0;
  int hits = 0;
  for (const auto& s : samples_) {
    if (s.effective_k >= lo && s.effective_k <= hi) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples_.size());
}

namespace {

/// Draw and evaluate one production unit on its private RNG stream.
ToleranceSample evaluate_unit(const SystemSpec& nominal, const ToleranceSpec& tol,
                              double voc, Rng& rng) {
  SystemSpec spec = nominal;

  // Resistors: the divider ratio r2/(r1+r2) moves with both parts.
  const double r1 = spec.divider_r_top * (1.0 + tol.resistor_tolerance * rng.gaussian());
  const double r2_nominal =
      spec.divider_r_top * spec.divider_ratio / (1.0 - spec.divider_ratio);
  const double r2 = r2_nominal * (1.0 + tol.resistor_tolerance * rng.gaussian());
  spec.divider_r_top = r1;
  spec.divider_ratio = r2 / (r1 + r2);
  if (tol.trimmed) {
    // The production trim step measures the unit and adjusts R2 until
    // the ratio is nominal (Section IV-A).
    spec.divider_ratio = nominal.divider_ratio;
  }

  // Astable timing scales with its RC parts.
  const double rc_charge = (1.0 + tol.resistor_tolerance * rng.gaussian()) *
                           (1.0 + tol.capacitor_tolerance * rng.gaussian());
  const double rc_discharge = (1.0 + tol.resistor_tolerance * rng.gaussian()) *
                              (1.0 + tol.capacitor_tolerance * rng.gaussian());
  spec.astable_on_period = nominal.astable_on_period * std::max(0.1, rc_charge);
  spec.astable_off_period = nominal.astable_off_period * std::max(0.1, rc_discharge);

  // Active parts.
  spec.comparator_iq =
      nominal.comparator_iq * std::max(0.2, 1.0 + tol.comparator_iq_spread * rng.gaussian());
  spec.buffer_iq_each =
      nominal.buffer_iq_each * std::max(0.2, 1.0 + tol.comparator_iq_spread * rng.gaussian());
  spec.buffer_offset = tol.buffer_offset_sigma * rng.gaussian();
  spec.charge_injection = nominal.charge_injection *
                          std::max(0.0, 1.0 + tol.charge_injection_spread * rng.gaussian());
  spec.hold_leakage = nominal.hold_leakage * std::exp(tol.leakage_spread * rng.gaussian());

  mppt::FocvSampleHoldController controller = make_paper_controller(spec);
  mppt::SensedInputs sensed;
  sensed.time = 0.0;
  sensed.dt = 1.0;
  sensed.voc = voc;
  (void)controller.step(sensed);

  ToleranceSample sample;
  sample.effective_k = 2.0 * controller.held_sample(1.0) / voc;
  sample.on_period = spec.astable_on_period;
  sample.off_period = spec.astable_off_period;
  sample.average_current = controller.average_current();
  return sample;
}

}  // namespace

ToleranceReport run_tolerance_monte_carlo(const SystemSpec& nominal,
                                          const ToleranceSpec& tol, int n,
                                          std::uint64_t seed, int jobs) {
  require(n > 0, "run_tolerance_monte_carlo: n must be > 0");

  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  const double voc = pv::sanyo_am1815().open_circuit_voltage(c);

  // One RNG stream per unit, derived from the root seed: the sample in
  // slot `unit` is identical whether the loop below runs serially or
  // fanned out across any number of worker threads.
  std::vector<ToleranceSample> samples(static_cast<std::size_t>(n));
  const auto evaluate_into = [&](std::size_t unit) {
    Rng rng = make_stream_rng(seed, unit);
    samples[unit] = evaluate_unit(nominal, tol, voc, rng);
  };
  if (jobs == 1) {
    for (std::size_t unit = 0; unit < samples.size(); ++unit) evaluate_into(unit);
  } else {
    runtime::ThreadPool pool(jobs);
    pool.parallel_for(samples.size(), evaluate_into);
  }
  return ToleranceReport(std::move(samples));
}

}  // namespace focv::core
