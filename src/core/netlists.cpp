#include "core/netlists.hpp"

#include "circuit/devices_passive.hpp"
#include "circuit/devices_sources.hpp"

namespace focv::core {

using circuit::Amp;
using circuit::Capacitor;
using circuit::Circuit;
using circuit::Diode;
using circuit::kGround;
using circuit::NodeId;
using circuit::Resistor;
using circuit::Inductor;
using circuit::VoltageSource;
using circuit::VSwitch;
using circuit::Waveform;

AstableNodes build_astable(Circuit& ckt, NodeId vdd, const SystemSpec& spec,
                           const std::string& prefix) {
  AstableNodes nodes;
  nodes.pulse = ckt.node(prefix + "_pulse");
  nodes.cap = ckt.node(prefix + "_cap");
  nodes.ref = ckt.node(prefix + "_ref");

  // Hysteresis network: equal resistors give Vcc/3 and 2*Vcc/3.
  ckt.add<Resistor>(prefix + "_Ra", vdd, nodes.ref, spec.astable_feedback_r);
  ckt.add<Resistor>(prefix + "_Rb", nodes.ref, kGround, spec.astable_feedback_r);
  ckt.add<Resistor>(prefix + "_Rf", nodes.pulse, nodes.ref, spec.astable_feedback_r);

  // Diode-split timing path: fast charge (on-period), slow discharge
  // (off-period).
  const NodeId mid = ckt.node(prefix + "_chg");
  ckt.add<Resistor>(prefix + "_Rchg", nodes.pulse, mid, spec.astable_r_charge);
  Diode::Params dp;
  dp.saturation_current = 1e-9;  // small-signal Schottky: low forward drop
  ckt.add<Diode>(prefix + "_Dchg", mid, nodes.cap, dp);
  ckt.add<Resistor>(prefix + "_Rdis", nodes.pulse, nodes.cap, spec.astable_r_discharge);
  ckt.add<Capacitor>(prefix + "_Ct", nodes.cap, kGround, spec.astable_capacitance);

  Amp::Params cp;
  cp.mode = Amp::Mode::kComparator;
  cp.gain = 1e4;
  cp.output_resistance = 5e3;
  cp.quiescent_current = spec.comparator_iq;
  auto& comp = ckt.add<Amp>(prefix + "_U1", nodes.ref, nodes.cap, nodes.pulse, vdd, kGround, cp);
  comp.set_transition_dt_limit(0.5e-3);  // localise PULSE edges to 0.5 ms
  // Parasitic capacitances. These matter beyond realism: the hysteresis
  // loop (output -> Rf -> ref -> + input) is regenerative, so without
  // dynamics on these nodes the flip instant has no stable solution for
  // Newton to converge to; the parasitics turn the flip into a fast but
  // continuous slew the integrator can follow.
  ckt.add<Capacitor>(prefix + "_Cref", nodes.ref, kGround, 10e-12);
  ckt.add<Capacitor>(prefix + "_Cout", nodes.pulse, kGround, 22e-12);
  return nodes;
}

SampleHoldNodes build_sample_hold(Circuit& ckt, NodeId pv, NodeId pulse, NodeId vdd,
                                  const SystemSpec& spec, const std::string& prefix) {
  SampleHoldNodes nodes;
  nodes.divider = ckt.node(prefix + "_div");
  nodes.hold = ckt.node(prefix + "_hold");
  nodes.held = ckt.node(prefix + "_held");
  nodes.active = ckt.node(prefix + "_active");

  // Voc divider (R1 / R2-trim): ratio = k * alpha.
  const double r2 = spec.divider_r_top * spec.divider_ratio / (1.0 - spec.divider_ratio);
  ckt.add<Resistor>(prefix + "_R1", pv, nodes.divider, spec.divider_r_top);
  ckt.add<Resistor>(prefix + "_R2", nodes.divider, kGround, r2);

  // U2: input unity-gain buffer (closed-loop transfer; see Amp::kBuffer).
  const NodeId buf1 = ckt.node(prefix + "_buf1");
  Amp::Params op;
  op.mode = Amp::Mode::kBuffer;
  op.output_resistance = 2e3;
  op.offset_voltage = spec.buffer_offset;
  op.quiescent_current = spec.buffer_iq_each;
  ckt.add<Amp>(prefix + "_U2", nodes.divider, kGround, buf1, vdd, kGround, op);

  // Analog sampling switch driven by PULSE.
  VSwitch::Params swp;
  swp.on_resistance = spec.switch_on_resistance;
  swp.off_resistance = 1e12;
  swp.threshold = 1.65;
  swp.transition_width = 0.4;
  ckt.add<VSwitch>(prefix + "_S1", buf1, nodes.hold, pulse, kGround, swp);

  // Low-leakage hold capacitor (leakage as an explicit shunt).
  ckt.add<Capacitor>(prefix + "_Ch", nodes.hold, kGround, spec.hold_capacitance);
  if (spec.hold_leakage > 0.0) {
    // Equivalent leakage resistance at the nominal ~1.6 V held level.
    ckt.add<Resistor>(prefix + "_Rleak", nodes.hold, kGround, 1.6 / spec.hold_leakage);
  }

  // U4: output unity-gain buffer, then the R3/C3 ripple filter.
  const NodeId buf2 = ckt.node(prefix + "_buf2");
  ckt.add<Amp>(prefix + "_U4", nodes.hold, kGround, buf2, vdd, kGround, op);
  ckt.add<Resistor>(prefix + "_R3", buf2, nodes.held, spec.r3);
  ckt.add<Capacitor>(prefix + "_C3", nodes.held, kGround, spec.c3);

  // U5: ACTIVE sanity comparator against a fixed fraction of the rail.
  const NodeId thr = ckt.node(prefix + "_thr");
  const double thr_fraction = spec.active_threshold / spec.supply_voltage;
  ckt.add<Resistor>(prefix + "_Rt1", vdd, thr, 15e6 * (1.0 - thr_fraction) / thr_fraction);
  ckt.add<Resistor>(prefix + "_Rt2", thr, kGround, 15e6);
  Amp::Params cp;
  cp.mode = Amp::Mode::kComparator;
  cp.gain = 1e4;
  cp.output_resistance = 5e3;
  cp.quiescent_current = spec.comparator_iq;
  ckt.add<Amp>(prefix + "_U5", nodes.held, thr, nodes.active, vdd, kGround, cp);
  return nodes;
}

Fig3Nodes build_fig3_system(Circuit& ckt, const pv::CellModel& cell,
                            const pv::Conditions& conditions, const SystemSpec& spec,
                            const std::string& prefix) {
  Fig3Nodes nodes;
  nodes.pv = ckt.node(prefix + "_pv");
  nodes.sw_in = ckt.node(prefix + "_swin");
  nodes.pv_sense = ckt.node(prefix + "_inp");

  // Metrology rail.
  const NodeId vdd = ckt.node(prefix + "_vddn");
  ckt.add<VoltageSource>(prefix + "_vdd", vdd, kGround, Waveform::dc(spec.supply_voltage));

  // PV module.
  nodes.cell = &ckt.add<pv::PvCellDevice>(prefix + "_PV", nodes.pv, kGround, cell, conditions);
  // Small terminal capacitance keeps the PV node well-behaved when every
  // load is switched off mid-sample.
  ckt.add<Capacitor>(prefix + "_Cpv", nodes.pv, kGround, 10e-9);

  // Astable + S&H.
  const AstableNodes ast = build_astable(ckt, vdd, spec, prefix + "_ast");
  nodes.pulse = ast.pulse;
  const SampleHoldNodes sh = build_sample_hold(ckt, nodes.pv, ast.pulse, vdd, spec,
                                               prefix + "_sh");
  nodes.held = sh.held;
  nodes.active = sh.active;

  // M1: low-Ron series switch disconnecting every load during sampling
  // (open while PULSE is high).
  VSwitch::Params m1;
  m1.on_resistance = 2.0;
  m1.off_resistance = 1e12;
  m1.threshold = 1.65;
  m1.transition_width = 0.4;
  m1.active_high = false;
  ckt.add<VSwitch>(prefix + "_M1", nodes.pv, nodes.sw_in, nodes.pulse, kGround, m1);

  // Converter input-voltage sense divider (alpha = 1/2).
  ckt.add<Resistor>(prefix + "_Rs1", nodes.sw_in, nodes.pv_sense, 10e6);
  ckt.add<Resistor>(prefix + "_Rs2", nodes.pv_sense, kGround, 10e6);

  // M8 pulls the sense input down while sampling, so the converter is
  // disabled too (Section III-B).
  VSwitch::Params m8;
  m8.on_resistance = 1e3;
  m8.off_resistance = 1e12;
  m8.threshold = 1.65;
  m8.transition_width = 0.4;
  ckt.add<VSwitch>(prefix + "_M8", nodes.pv_sense, kGround, nodes.pulse, kGround, m8);

  // Converter input stage: the modified buck-boost holds its input at
  // HELD/alpha. Model: a controlled shunt element whose conductance
  // rises steeply as the sensed input (pv/2) exceeds HELD — a
  // first-order regulation loop (single pole at the PV node), which is
  // both how hysteretic converter input stages behave on average and
  // numerically robust (no second loop pole to destabilise). Gated by
  // ACTIVE through a series switch so it cannot start on an empty hold
  // capacitor.
  VSwitch::Params reg;
  reg.on_resistance = 50.0;
  reg.off_resistance = 1e12;
  reg.threshold = 0.01;          // conducts once pv_sense exceeds held
  reg.transition_width = 0.04;
  const NodeId drain = ckt.node(prefix + "_drain");
  ckt.add<VSwitch>(prefix + "_Sconv", drain, kGround, nodes.pv_sense, nodes.held, reg);
  VSwitch::Params gatesw;
  gatesw.on_resistance = 100.0;
  gatesw.off_resistance = 1e12;
  gatesw.threshold = 1.65;
  gatesw.transition_width = 0.4;
  ckt.add<VSwitch>(prefix + "_Sen", nodes.sw_in, drain, nodes.active, kGround, gatesw);
  return nodes;
}

SwitchingConverterNodes build_switching_converter(Circuit& ckt, const pv::CellModel& cell,
                                                  const pv::Conditions& conditions,
                                                  double held_reference,
                                                  double initial_output_voltage,
                                                  const std::string& prefix) {
  SwitchingConverterNodes nodes;
  nodes.pv = ckt.node(prefix + "_pv");
  nodes.sw = ckt.node(prefix + "_sw");
  nodes.out = ckt.node(prefix + "_out");
  nodes.gate = ckt.node(prefix + "_gate");

  nodes.cell = &ckt.add<pv::PvCellDevice>(prefix + "_PV", nodes.pv, kGround, cell, conditions);
  // Input capacitor: carries the PV through the switch-on intervals.
  ckt.add<Capacitor>(prefix + "_Cin", nodes.pv, kGround, 4.7e-6,
                     held_reference * 2.0);  // start near the regulation point

  // Rail for the control comparator.
  const NodeId vdd = ckt.node(prefix + "_vddn");
  ckt.add<VoltageSource>(prefix + "_vdd", vdd, kGround, Waveform::dc(3.3));

  // Input sense divider (alpha = 1/2) and the hysteretic comparator.
  const NodeId sense = ckt.node(prefix + "_sense");
  ckt.add<Resistor>(prefix + "_Rs1", nodes.pv, sense, 10e6);
  ckt.add<Resistor>(prefix + "_Rs2", sense, kGround, 10e6);
  const NodeId ref = ckt.node(prefix + "_ref");
  ckt.add<VoltageSource>(prefix + "_Vref", ref, kGround, Waveform::dc(held_reference));
  Amp::Params cp;
  cp.mode = Amp::Mode::kComparator;
  cp.gain = 5e3;
  cp.output_resistance = 2e3;
  auto& comp = ckt.add<Amp>(prefix + "_Uc", sense, ref, nodes.gate, vdd, kGround, cp);
  comp.set_transition_dt_limit(2e-6);
  // Positive feedback for ~30 mV hysteresis at the sense node, so the
  // loop self-oscillates at a well-defined ripple instead of chattering.
  ckt.add<Resistor>(prefix + "_Rh", nodes.gate, sense, 1e9);
  ckt.add<Capacitor>(prefix + "_Csn", sense, kGround, 20e-12);
  ckt.add<Capacitor>(prefix + "_Cg", nodes.gate, kGround, 47e-12);

  // Power path: series switch, inductor, freewheel diode, output cap.
  VSwitch::Params swp;
  swp.on_resistance = 2.0;
  swp.off_resistance = 1e10;
  swp.threshold = 1.65;
  swp.transition_width = 0.4;
  ckt.add<VSwitch>(prefix + "_M", nodes.pv, nodes.sw, nodes.gate, kGround, swp);
  ckt.add<Inductor>(prefix + "_L", nodes.sw, nodes.out, 2.2e-3);
  Diode::Params dp;
  dp.saturation_current = 1e-8;  // Schottky freewheel
  ckt.add<Diode>(prefix + "_Dfw", kGround, nodes.sw, dp);
  ckt.add<Capacitor>(prefix + "_Cout", nodes.out, kGround, 47e-6, initial_output_voltage);
  // A bleed load representing the store's downstream draw keeps the
  // output from running away during short validation transients.
  ckt.add<Resistor>(prefix + "_Rbleed", nodes.out, kGround,
                    initial_output_voltage > 0.0 ? initial_output_voltage / 150e-6 : 20e3);
  return nodes;
}

ColdStartNodes build_coldstart(Circuit& ckt, const pv::CellModel& cell,
                               const pv::Conditions& conditions, const SystemSpec& spec,
                               const std::string& prefix) {
  ColdStartNodes nodes;
  nodes.pv = ckt.node(prefix + "_pv");
  nodes.c1 = ckt.node(prefix + "_c1");
  nodes.mppt_vdd = ckt.node(prefix + "_vdd");

  nodes.cell = &ckt.add<pv::PvCellDevice>(prefix + "_PV", nodes.pv, kGround, cell, conditions);
  ckt.add<Capacitor>(prefix + "_Cpv", nodes.pv, kGround, 10e-9);

  // D1 and C1: the cold-start reservoir charged directly from the PV.
  Diode::Params dp;
  dp.saturation_current = 1e-8;  // Schottky, ~0.25 V at these currents
  ckt.add<Diode>(prefix + "_D1", nodes.pv, nodes.c1, dp);
  ckt.add<Capacitor>(prefix + "_C1", nodes.c1, kGround, spec.coldstart_capacitance);
  // Standby leakage of the threshold detector.
  ckt.add<Resistor>(prefix + "_Rlk", nodes.c1, kGround, 12e6);

  // Threshold switch: powers the MPPT rail once C1 reaches the enable
  // voltage (behaviourally an under-voltage lockout).
  VSwitch::Params uvlo;
  uvlo.on_resistance = 50.0;
  uvlo.off_resistance = 1e12;
  uvlo.threshold = spec.coldstart_threshold;
  uvlo.transition_width = 0.15;
  auto& sw = ckt.add<VSwitch>(prefix + "_Suvlo", nodes.c1, nodes.mppt_vdd, nodes.c1, kGround,
                              uvlo);
  sw.set_transition_dt_limit(5e-3);

  // The MPPT circuitry fed from the switched rail: the astable plus a
  // resistor standing in for the S&H quiescent draw.
  const AstableNodes ast = build_astable(ckt, nodes.mppt_vdd, spec, prefix + "_ast");
  nodes.pulse = ast.pulse;
  ckt.add<Resistor>(prefix + "_Rsh", nodes.mppt_vdd, kGround,
                    spec.supply_voltage / (2.0 * spec.buffer_iq_each + spec.comparator_iq));
  // Rail decoupling.
  ckt.add<Capacitor>(prefix + "_Cvdd", nodes.mppt_vdd, kGround, 1e-6);
  return nodes;
}

}  // namespace focv::core
