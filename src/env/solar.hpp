// Simplified solar geometry and clear-sky illuminance.
#pragma once

namespace focv::env {

/// Location/date inputs for the daylight model.
struct SolarConfig {
  double latitude_deg = 50.9;    ///< Southampton, UK (the paper's lab)
  int day_of_year = 80;          ///< 1..365 (80 ~ spring equinox)
};

/// Sine of the solar elevation angle at `seconds_since_midnight` (local
/// solar time). Negative below the horizon.
[[nodiscard]] double solar_elevation_sin(const SolarConfig& config,
                                         double seconds_since_midnight);

/// Clear-sky horizontal illuminance [lux] at the given time. Includes a
/// simple air-mass attenuation; ~100 klux at high sun, a few hundred lux
/// in twilight, 0 at night.
[[nodiscard]] double clear_sky_illuminance(const SolarConfig& config,
                                           double seconds_since_midnight);

/// Time of sunrise [s since midnight], or -1 when the sun never rises.
[[nodiscard]] double sunrise_time(const SolarConfig& config);

/// Time of sunset [s since midnight], or -1 when the sun never sets.
[[nodiscard]] double sunset_time(const SolarConfig& config);

}  // namespace focv::env
