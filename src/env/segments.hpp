// Piecewise-segment view of a sampled series for event-driven stepping.
//
// The behavioural tier's light traces are sampled at 1 s, but the
// illuminance is piecewise-near-constant for minutes at a time (office
// lamps, overcast sky) with occasional fast ramps. The macro-stepping
// engine in focv::sched wants maximal runs over which the value stays
// inside a multiplicative band, so it can integrate each run analytically
// instead of step by step. The segmentation here is generic over any
// non-negative series; focv::sched applies it to equivalent-lux traces.
#pragma once

#include <cstddef>
#include <vector>

namespace focv::env {

/// One maximal run of consecutive step samples. Covers step indices
/// [first, last); `last - first >= 1`.
struct Segment {
  std::size_t first = 0;   ///< first step index covered
  std::size_t last = 0;    ///< one past the last step index covered
  double min_value = 0.0;  ///< minimum of values[first..last)
  double max_value = 0.0;  ///< maximum of values[first..last)
  bool dark = false;       ///< every value in the run is below `floor`
};

struct SegmentationOptions {
  /// A lit segment is split as soon as max > ratio_band * min. 1.35 keeps
  /// the 2-point quadrature of focv::sched within its error budget while
  /// compressing an office day to a few hundred segments.
  double ratio_band = 1.35;
  /// Values below this are one "dark" class regardless of ratio (a ratio
  /// band is meaningless around zero). Matches the surrogate's dark
  /// cutoff by default (node::CurveCache::kDarkLux).
  double floor = 0.05;
};

/// Greedy left-to-right segmentation of values[0..count). Every step
/// index in [0, count) is covered by exactly one segment, in order.
/// `count` is the number of *steps* (for an n-sample trace, n - 1).
[[nodiscard]] std::vector<Segment> segment_series(const std::vector<double>& values,
                                                  std::size_t count,
                                                  const SegmentationOptions& options);

}  // namespace focv::env
