#include "env/segments.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace focv::env {

std::vector<Segment> segment_series(const std::vector<double>& values, std::size_t count,
                                    const SegmentationOptions& options) {
  require(count <= values.size(), "segment_series: count exceeds series length");
  require(options.ratio_band > 1.0, "segment_series: ratio_band must be > 1");
  require(options.floor > 0.0, "segment_series: floor must be > 0");

  std::vector<Segment> segments;
  if (count == 0) return segments;

  Segment cur;
  cur.first = 0;
  cur.last = 1;
  cur.min_value = cur.max_value = values[0];
  cur.dark = values[0] < options.floor;

  for (std::size_t i = 1; i < count; ++i) {
    const double v = values[i];
    const bool dark = v < options.floor;
    const double lo = std::min(cur.min_value, v);
    const double hi = std::max(cur.max_value, v);
    // The band test stays in the linear domain (hi <= band * lo) so no
    // per-sample logarithm is paid; dark runs merge unconditionally.
    const bool fits = (dark == cur.dark) && (dark || hi <= options.ratio_band * lo);
    if (fits) {
      cur.last = i + 1;
      cur.min_value = lo;
      cur.max_value = hi;
    } else {
      segments.push_back(cur);
      cur.first = i;
      cur.last = i + 1;
      cur.min_value = cur.max_value = v;
      cur.dark = dark;
    }
  }
  segments.push_back(cur);
  return segments;
}

}  // namespace focv::env
