// Scenario generators for indoor / outdoor / mobile illuminance traces.
//
// These reproduce the measurement campaigns of Section II-B:
//  - a 24 h office-desk trace with mixed artificial and natural light
//    (Fig. 2: sunrise and lights-off clearly visible),
//  - the Sunday blinds-closed desk test (source of the E = 12.7 mV
//    figure at a 1-minute hold period),
//  - the semi-mobile Friday test with an outdoor lunch break (source of
//    E = 24.1 mV).
// All stochastic elements draw from an explicit seed; the defaults are
// calibrated so that the Eq. (2) analysis lands near the paper's values
// (verified by tests/repro/sampling_error_test.cpp).
#pragma once

#include <cstdint>

#include "env/light_trace.hpp"
#include "env/solar.hpp"

namespace focv::env {

/// Common stochastic texture of indoor lighting.
struct IndoorNoise {
  double lamp_noise_fraction = 0.01;     ///< slow lamp-level wander (1 sigma)
  double shadow_events_per_hour = 6.0;   ///< people moving past the desk
  double shadow_depth_min = 0.05;        ///< fractional dip
  double shadow_depth_max = 0.45;
  double shadow_duration_min = 3.0;      ///< [s]
  double shadow_duration_max = 45.0;     ///< [s]
};

/// Cloud cover stochastic process (Ornstein-Uhlenbeck in log domain).
struct CloudModel {
  double mean_transmission = 0.55;  ///< long-run average of the cloud factor
  double sigma = 0.35;              ///< volatility of log-transmission
  double correlation_time = 600.0;  ///< [s]
  double min_transmission = 0.08;
  double max_transmission = 1.0;
};

/// 24 h office-desk scenario.
struct OfficeDayParams {
  SolarConfig solar;
  double sample_period = 1.0;            ///< [s]
  double duration = 86400.0;             ///< [s]
  double lights_on_time = 7.75 * 3600;   ///< [s since midnight]
  double lights_off_time = 18.5 * 3600;  ///< [s since midnight]
  double artificial_level_lux = 520.0;   ///< desk illuminance from luminaires
  double window_gain = 0.010;            ///< fraction of outdoor horizontal lux on the desk
  double blinds_transmission = 1.0;      ///< 1 = open, ~0.03 = closed
  IndoorNoise noise;
  CloudModel clouds;
  std::uint64_t seed = 42;
};

/// Fig. 2 office-desk day: artificial + natural mix.
[[nodiscard]] LightTrace office_desk_mixed(const OfficeDayParams& params = {});

/// Section II-B desk test: Sunday, blinds closed, lab lighting on a
/// reduced schedule. Defaults derived from office_desk_mixed.
[[nodiscard]] LightTrace desk_sunday_blinds_closed(std::uint64_t seed = 42);

/// Semi-mobile day scenario.
struct SemiMobileParams {
  SolarConfig solar;
  double sample_period = 1.0;
  double duration = 86400.0;
  double lab_level_lux = 420.0;             ///< lab lighting on the bench
  double lab_window_gain = 0.006;
  double lab_start = 8.0 * 3600;
  double lunch_out_start = 12.25 * 3600;    ///< step outdoors
  double lunch_out_end = 13.5 * 3600;       ///< back into the lab
  double lab_end = 17.75 * 3600;
  double evening_level_lux = 160.0;         ///< home lighting
  double evening_end = 23.0 * 3600;
  /// Outdoor shading while walking (log-normal swings: buildings, trees).
  double outdoor_shade_sigma = 0.33;
  double outdoor_shade_mean = 0.25;
  double outdoor_correlation_time = 60.0;   ///< [s]
  IndoorNoise noise;
  CloudModel clouds;
  std::uint64_t seed = 4242;
};

/// Section II-B mobile test: lab morning, outdoor lunch, lab afternoon,
/// home evening.
[[nodiscard]] LightTrace semi_mobile_day(const SemiMobileParams& params = {});

/// Full outdoor day (for the outdoor-operation benches).
struct OutdoorDayParams {
  SolarConfig solar;
  double sample_period = 1.0;
  double duration = 86400.0;
  CloudModel clouds;
  std::uint64_t seed = 7;
};
[[nodiscard]] LightTrace outdoor_day(const OutdoorDayParams& params = {});

/// Constant illuminance (bench/lab conditions).
[[nodiscard]] LightTrace constant_light(double artificial_lux, double daylight_lux,
                                        double duration, double sample_period = 1.0);

/// Single step between two levels at `step_time` (for controller
/// transient-response tests).
[[nodiscard]] LightTrace step_light(double lux_before, double lux_after, double step_time,
                                    double duration, double sample_period = 1.0);

}  // namespace focv::env
