#include "env/solar.hpp"

#include <cmath>
#include <numbers>

#include "common/require.hpp"

namespace focv::env {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
constexpr double kDaySeconds = 86400.0;

/// Solar declination [rad] via the Cooper approximation.
double declination(int day_of_year) {
  return 23.45 * kDegToRad *
         std::sin(2.0 * std::numbers::pi * (284.0 + day_of_year) / 365.0);
}
}  // namespace

double solar_elevation_sin(const SolarConfig& config, double seconds_since_midnight) {
  require(config.day_of_year >= 1 && config.day_of_year <= 365,
          "solar_elevation_sin: day_of_year out of range");
  const double lat = config.latitude_deg * kDegToRad;
  const double dec = declination(config.day_of_year);
  // Hour angle: 0 at solar noon, 15 deg per hour.
  const double hour_angle =
      (seconds_since_midnight / kDaySeconds - 0.5) * 2.0 * std::numbers::pi;
  return std::sin(lat) * std::sin(dec) + std::cos(lat) * std::cos(dec) * std::cos(hour_angle);
}

double clear_sky_illuminance(const SolarConfig& config, double seconds_since_midnight) {
  const double sin_el = solar_elevation_sin(config, seconds_since_midnight);
  if (sin_el <= 0.0) return 0.0;
  // Direct+diffuse horizontal illuminance with a crude air-mass factor:
  // ~112 klux overhead sun, smoothly decaying towards the horizon.
  const double air_mass_attenuation = std::exp(-0.14 / std::max(sin_el, 0.02));
  return 133000.0 * sin_el * air_mass_attenuation;
}

namespace {
double horizon_crossing(const SolarConfig& config, bool rising) {
  // Scan at 1-minute resolution then refine by bisection.
  double prev = solar_elevation_sin(config, 0.0);
  for (double t = 60.0; t <= kDaySeconds; t += 60.0) {
    const double cur = solar_elevation_sin(config, t);
    const bool crossed = rising ? (prev < 0.0 && cur >= 0.0) : (prev > 0.0 && cur <= 0.0);
    if (crossed) {
      double lo = t - 60.0, hi = t;
      for (int i = 0; i < 40; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double v = solar_elevation_sin(config, mid);
        if ((v < 0.0) == rising) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      return 0.5 * (lo + hi);
    }
    prev = cur;
  }
  return -1.0;
}
}  // namespace

double sunrise_time(const SolarConfig& config) { return horizon_crossing(config, true); }

double sunset_time(const SolarConfig& config) { return horizon_crossing(config, false); }

}  // namespace focv::env
