// Time series of illuminance with separate artificial/daylight channels.
//
// The two channels are kept apart because a-Si photocurrent per lux
// differs between spectra; focv::pv models fold a mixed sample into an
// equivalent fluorescent illuminance via the cell's daylight_ratio.
#pragma once

#include <string>
#include <vector>

#include "pv/cell_model.hpp"
#include "pv/diode_models.hpp"

namespace focv::env {

/// One illuminance sample.
struct LightSample {
  double time = 0.0;            ///< [s] from scenario start
  double artificial_lux = 0.0;  ///< fluorescent-spectrum component
  double daylight_lux = 0.0;    ///< daylight-spectrum component

  [[nodiscard]] double total_lux() const { return artificial_lux + daylight_lux; }
};

/// Uniformly or non-uniformly sampled illuminance trace.
class LightTrace {
 public:
  LightTrace() = default;

  void append(double time, double artificial_lux, double daylight_lux);
  void reserve(std::size_t n);

  [[nodiscard]] std::size_t size() const { return time_.size(); }
  [[nodiscard]] bool empty() const { return time_.empty(); }
  [[nodiscard]] double duration() const;

  [[nodiscard]] const std::vector<double>& time() const { return time_; }
  [[nodiscard]] const std::vector<double>& artificial_lux() const { return artificial_; }
  [[nodiscard]] const std::vector<double>& daylight_lux() const { return daylight_; }

  /// Sample (linear interpolation, clamped ends).
  [[nodiscard]] LightSample at(double t) const;

  /// Copy with each channel scaled by a non-negative factor (e.g. a
  /// corridor desk seeing 30 % of the window desk's daylight). Per-node
  /// attenuation in fleet runs uses NodeConfig::lux_scale instead, which
  /// needs no trace copy; this is for deriving whole environments.
  [[nodiscard]] LightTrace scaled(double artificial_factor, double daylight_factor) const;

  /// Total illuminance series (artificial + daylight per sample).
  [[nodiscard]] std::vector<double> total_lux() const;

  /// Equivalent fluorescent illuminance for the given cell model:
  /// artificial + daylight_ratio * daylight, per sample.
  [[nodiscard]] std::vector<double> equivalent_lux(const pv::SingleDiodeModel& model) const;

  /// Cell Voc series for the given model across the trace [V].
  /// Zero-light samples yield 0 V.
  [[nodiscard]] std::vector<double> voc_series(const pv::SingleDiodeModel& model,
                                               double temperature_k) const;

  /// Write to CSV with columns time,artificial_lux,daylight_lux.
  void write_csv(const std::string& path) const;

 private:
  std::vector<double> time_;
  std::vector<double> artificial_;
  std::vector<double> daylight_;
};

}  // namespace focv::env
