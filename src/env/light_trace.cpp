#include "env/light_trace.hpp"

#include <algorithm>

#include "common/csv.hpp"
#include "common/require.hpp"

namespace focv::env {

void LightTrace::append(double time, double artificial_lux, double daylight_lux) {
  require(time_.empty() || time > time_.back(), "LightTrace::append: time must increase");
  require(artificial_lux >= 0.0 && daylight_lux >= 0.0,
          "LightTrace::append: illuminance must be >= 0");
  time_.push_back(time);
  artificial_.push_back(artificial_lux);
  daylight_.push_back(daylight_lux);
}

void LightTrace::reserve(std::size_t n) {
  time_.reserve(n);
  artificial_.reserve(n);
  daylight_.reserve(n);
}

double LightTrace::duration() const { return time_.empty() ? 0.0 : time_.back() - time_.front(); }

LightSample LightTrace::at(double t) const {
  require(!time_.empty(), "LightTrace::at: empty trace");
  LightSample s;
  s.time = t;
  if (t <= time_.front()) {
    s.artificial_lux = artificial_.front();
    s.daylight_lux = daylight_.front();
    return s;
  }
  if (t >= time_.back()) {
    s.artificial_lux = artificial_.back();
    s.daylight_lux = daylight_.back();
    return s;
  }
  const auto it = std::upper_bound(time_.begin(), time_.end(), t);
  const std::size_t i = static_cast<std::size_t>(it - time_.begin());
  const double f = (t - time_[i - 1]) / (time_[i] - time_[i - 1]);
  s.artificial_lux = artificial_[i - 1] + f * (artificial_[i] - artificial_[i - 1]);
  s.daylight_lux = daylight_[i - 1] + f * (daylight_[i] - daylight_[i - 1]);
  return s;
}

LightTrace LightTrace::scaled(double artificial_factor, double daylight_factor) const {
  require(artificial_factor >= 0.0 && daylight_factor >= 0.0,
          "LightTrace::scaled: factors must be >= 0");
  LightTrace out;
  out.time_ = time_;
  out.artificial_.resize(artificial_.size());
  out.daylight_.resize(daylight_.size());
  for (std::size_t i = 0; i < artificial_.size(); ++i) {
    out.artificial_[i] = artificial_factor * artificial_[i];
    out.daylight_[i] = daylight_factor * daylight_[i];
  }
  return out;
}

std::vector<double> LightTrace::total_lux() const {
  std::vector<double> out(time_.size());
  for (std::size_t i = 0; i < time_.size(); ++i) out[i] = artificial_[i] + daylight_[i];
  return out;
}

std::vector<double> LightTrace::equivalent_lux(const pv::SingleDiodeModel& model) const {
  const double ratio = model.params().daylight_ratio;
  std::vector<double> out(time_.size());
  for (std::size_t i = 0; i < time_.size(); ++i) {
    out[i] = artificial_[i] + ratio * daylight_[i];
  }
  return out;
}

std::vector<double> LightTrace::voc_series(const pv::SingleDiodeModel& model,
                                           double temperature_k) const {
  const std::vector<double> lux = equivalent_lux(model);
  std::vector<double> out(lux.size(), 0.0);
  pv::Conditions c;
  c.spectrum = pv::Spectrum::kFluorescent;
  c.temperature_k = temperature_k;
  for (std::size_t i = 0; i < lux.size(); ++i) {
    if (lux[i] < 0.05) continue;  // effectively dark: Voc ~ 0
    c.illuminance_lux = lux[i];
    out[i] = model.open_circuit_voltage(c);
  }
  return out;
}

void LightTrace::write_csv(const std::string& path) const {
  CsvTable table;
  table.columns = {"time", "artificial_lux", "daylight_lux"};
  table.rows.reserve(time_.size());
  for (std::size_t i = 0; i < time_.size(); ++i) {
    table.rows.push_back({time_[i], artificial_[i], daylight_[i]});
  }
  focv::write_csv(path, table);
}

}  // namespace focv::env
