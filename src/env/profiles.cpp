#include "env/profiles.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace focv::env {

namespace {

/// Ornstein-Uhlenbeck process in log domain, clamped to a range.
class LogOuProcess {
 public:
  LogOuProcess(double mean, double sigma, double tau, double lo, double hi, Rng& rng)
      : log_mean_(std::log(mean)), sigma_(sigma), tau_(tau), lo_(lo), hi_(hi), rng_(rng),
        state_(log_mean_) {}

  double advance(double dt) {
    const double theta = dt / tau_;
    state_ += theta * (log_mean_ - state_) + sigma_ * std::sqrt(2.0 * std::min(theta, 1.0)) *
                                                  rng_.gaussian();
    return std::clamp(std::exp(state_), lo_, hi_);
  }

 private:
  double log_mean_, sigma_, tau_, lo_, hi_;
  Rng& rng_;
  double state_;
};

/// Shadow (occupancy) event generator: multiplies artificial light by a
/// dip factor during Poisson-arriving events.
class ShadowEvents {
 public:
  ShadowEvents(const IndoorNoise& noise, Rng& rng) : noise_(noise), rng_(rng) {}

  double factor(double t, double dt) {
    if (t >= event_end_) {
      // Poisson arrival check for this step.
      const double rate_per_s = noise_.shadow_events_per_hour / 3600.0;
      if (rng_.bernoulli(std::min(1.0, rate_per_s * dt))) {
        event_end_ = t + rng_.uniform(noise_.shadow_duration_min, noise_.shadow_duration_max);
        depth_ = rng_.uniform(noise_.shadow_depth_min, noise_.shadow_depth_max);
      } else {
        return 1.0;
      }
    }
    return 1.0 - depth_;
  }

 private:
  IndoorNoise noise_;
  Rng& rng_;
  double event_end_ = -1.0;
  double depth_ = 0.0;
};

}  // namespace

LightTrace office_desk_mixed(const OfficeDayParams& params) {
  require(params.sample_period > 0.0, "office_desk_mixed: sample_period must be > 0");
  Rng rng(params.seed);
  LogOuProcess clouds(params.clouds.mean_transmission, params.clouds.sigma,
                      params.clouds.correlation_time, params.clouds.min_transmission,
                      params.clouds.max_transmission, rng);
  LogOuProcess lamp(1.0, params.noise.lamp_noise_fraction, 120.0, 0.8, 1.2, rng);
  ShadowEvents shadows(params.noise, rng);

  LightTrace trace;
  const std::size_t n = static_cast<std::size_t>(params.duration / params.sample_period) + 1;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * params.sample_period;
    const double cloud_factor = clouds.advance(params.sample_period);
    const double lamp_factor = lamp.advance(params.sample_period);
    const double shadow_factor = shadows.factor(t, params.sample_period);

    double artificial = 0.0;
    if (t >= params.lights_on_time && t < params.lights_off_time) {
      artificial = params.artificial_level_lux * lamp_factor * shadow_factor;
    }
    const double outdoor = clear_sky_illuminance(params.solar, t) * cloud_factor;
    const double daylight =
        outdoor * params.window_gain * params.blinds_transmission * shadow_factor;
    trace.append(t, artificial, daylight);
  }
  return trace;
}

LightTrace desk_sunday_blinds_closed(std::uint64_t seed) {
  OfficeDayParams p;
  p.seed = seed;
  // Sunday: blinds closed, lab lights only briefly (cleaning/short visit),
  // so the trace is dominated by the dim daylight leaking past the blinds.
  // The quiet-day noise parameters are calibrated so that Eq. (2) at a
  // 60 s hold period lands near the paper's 12.7 mV.
  p.blinds_transmission = 0.035;
  p.lights_on_time = 9.0 * 3600;
  p.lights_off_time = 11.5 * 3600;
  p.artificial_level_lux = 430.0;
  p.noise.shadow_events_per_hour = 2.0;
  p.noise.shadow_depth_max = 0.25;
  p.clouds.sigma = 0.062;
  p.clouds.correlation_time = 2400.0;
  p.noise.lamp_noise_fraction = 0.006;
  return office_desk_mixed(p);
}

LightTrace semi_mobile_day(const SemiMobileParams& params) {
  require(params.sample_period > 0.0, "semi_mobile_day: sample_period must be > 0");
  Rng rng(params.seed);
  LogOuProcess clouds(params.clouds.mean_transmission, params.clouds.sigma,
                      params.clouds.correlation_time, params.clouds.min_transmission,
                      params.clouds.max_transmission, rng);
  LogOuProcess lamp(1.0, params.noise.lamp_noise_fraction, 120.0, 0.8, 1.2, rng);
  LogOuProcess shade(params.outdoor_shade_mean, params.outdoor_shade_sigma,
                     params.outdoor_correlation_time, 0.01, 1.0, rng);
  ShadowEvents shadows(params.noise, rng);

  LightTrace trace;
  const std::size_t n = static_cast<std::size_t>(params.duration / params.sample_period) + 1;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * params.sample_period;
    const double cloud_factor = clouds.advance(params.sample_period);
    const double lamp_factor = lamp.advance(params.sample_period);
    const double shade_factor = shade.advance(params.sample_period);
    const double shadow_factor = shadows.factor(t, params.sample_period);
    const double outdoor = clear_sky_illuminance(params.solar, t) * cloud_factor;

    double artificial = 0.0;
    double daylight = 0.0;
    const bool in_lab = (t >= params.lab_start && t < params.lunch_out_start) ||
                        (t >= params.lunch_out_end && t < params.lab_end);
    if (in_lab) {
      artificial = params.lab_level_lux * lamp_factor * shadow_factor;
      daylight = outdoor * params.lab_window_gain * shadow_factor;
    } else if (t >= params.lunch_out_start && t < params.lunch_out_end) {
      // Walking outdoors: full daylight through variable shading.
      daylight = outdoor * shade_factor;
    } else if (t >= params.lab_end && t < params.evening_end) {
      artificial = params.evening_level_lux * lamp_factor * shadow_factor;
    }
    trace.append(t, artificial, daylight);
  }
  return trace;
}

LightTrace outdoor_day(const OutdoorDayParams& params) {
  require(params.sample_period > 0.0, "outdoor_day: sample_period must be > 0");
  Rng rng(params.seed);
  LogOuProcess clouds(params.clouds.mean_transmission, params.clouds.sigma,
                      params.clouds.correlation_time, params.clouds.min_transmission,
                      params.clouds.max_transmission, rng);
  LightTrace trace;
  const std::size_t n = static_cast<std::size_t>(params.duration / params.sample_period) + 1;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * params.sample_period;
    const double outdoor = clear_sky_illuminance(params.solar, t) * clouds.advance(params.sample_period);
    trace.append(t, 0.0, outdoor);
  }
  return trace;
}

LightTrace constant_light(double artificial_lux, double daylight_lux, double duration,
                          double sample_period) {
  require(sample_period > 0.0 && duration > 0.0, "constant_light: bad timing");
  LightTrace trace;
  const std::size_t n = static_cast<std::size_t>(duration / sample_period) + 1;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace.append(static_cast<double>(i) * sample_period, artificial_lux, daylight_lux);
  }
  return trace;
}

LightTrace step_light(double lux_before, double lux_after, double step_time, double duration,
                      double sample_period) {
  require(sample_period > 0.0 && duration > 0.0, "step_light: bad timing");
  LightTrace trace;
  const std::size_t n = static_cast<std::size_t>(duration / sample_period) + 1;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * sample_period;
    trace.append(t, t < step_time ? lux_before : lux_after, 0.0);
  }
  return trace;
}

}  // namespace focv::env
