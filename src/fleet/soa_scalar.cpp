// Node-major scalar sweep kernels: one transient NodeState per node
// walks the whole shared schedule (the PR 7 hot loop, now one kernel
// among two). This is the reference the lane kernels are byte-compared
// against, and the only kernel that can run kPrototype axes (virtual
// step() on a cloned controller per quadrature point).
//
// Compiled with -ffp-contract=off: the kernel byte-identity contract
// (soa_lanes.cpp) requires both kernels to evaluate the shared
// expression trees without FMA contraction on every target.

#include <utility>

#include "fleet/soa_internal.hpp"

namespace focv::fleet::soa::internal {

template <bool Q>
KernelTotals run_axis_scalar(const EnvContext& cx, const AxisPlan& ax,
                             const sched::EdgeOverlay::Interval* ovs,
                             const std::vector<NodeDraw>& draws, const std::uint32_t* members,
                             std::size_t count, mppt::MpptController* proto,
                             std::vector<node::NodeReport>& reports) {
  const DenseTables& tb = *cx.tb;
  const power::BuckBoostConverter& conv = *cx.conv;
  const double tau = cx.tau;
  const double e_max = cx.e_max;
  const double e_use = cx.e_use;
  const double min_lux = ax.min_lux;
  const double* width_arr = cx.width;
  const double* span_arr = cx.span;
  const double* mean_arr = cx.mean_u;
  const double* xlo = cx.x_lo;
  const double* xhi = cx.x_hi;
  const double* dec_arr = cx.decay;
  const std::uint32_t* nstep_arr = cx.nsteps;
  const std::uint8_t* dark_arr = cx.dark;
  const sched::BatchInterval* ivs = cx.ivs;
  const std::size_t n_iv = cx.n_intervals;

  KernelTotals totals;

  // Supercapacitor::advance_constant_power across interval `ii`. The
  // crossing test is the sign form of time_to_energy's r in (0, 1]
  // (e_use strictly between e0 and the asymptote e_inf, or e0 exactly
  // at the gate); the crossing-free common case costs one decay
  // multiply and never touches the trace time array — span[ii] is
  // bit-identical to the slow path's t[iv.b] - t[iv.a], so the branch
  // cannot change a single report byte.
  const auto advance_span = [&](NodeState& st, std::uint32_t ii, double delivered,
                                double oh_drain) __attribute__((always_inline)) {
    const bool usable = st.e >= e_use;
    const double net = delivered - oh_drain - (usable ? st.load_w : 0.0);
    const double e_inf = 0.5 * net * tau;
    if (st.e != e_use && (st.e - e_use) * (e_inf - e_use) >= 0.0) {
      const double len = span_arr[ii];
      st.e = std::clamp(e_inf + (st.e - e_inf) * dec_arr[ii], 0.0, e_max);
      if (usable) {
        st.served += st.load_w * len;
      } else {
        st.brown_steps += nstep_arr[ii];
        st.brown_t += len;
      }
      return;
    }
    advance_slow(cx, ivs[ii], st.load_w, delivered, oh_drain, dec_arr[ii],
                 SlowRefs{st.e, st.served, st.brown_t, st.brown_steps, st.flips, st.slow});
  };

  // One full day for one node: the flat interval order interleaves dark
  // spans (store advance only) with the axis' lit evaluation.
  const auto sweep_node = [&](std::size_t i, const auto& lit_iv) __attribute__((always_inline)) {
    NodeState st = init_node(cx, draws[members[i]], ax);
    for (std::uint32_t ii = 0; ii < n_iv; ++ii) {
      if (dark_arr[ii] != 0) {
        st.prev_p = st.prev_v = 0.0;
        advance_span(st, ii, 0.0, 0.0);
        continue;
      }
      lit_iv(st, ii);
    }
    finalize_node(cx, st, reports[members[i]]);
    totals.flips += st.flips;
    totals.slow += st.slow;
  };

  if (ax.eval == AxisEval::kSampleHold) {
    // Closed-form sample/hold: the held value right after an edge is
    // (Voc + in_off) * divider + val_const (the acquisition settles to
    // zero error within the 39 ms window), then droops linearly with
    // the sample age. The EdgeOverlay supplies each interval's mean
    // sample age and disconnect duty, shared by every node of this
    // axis.
    const double inv_alpha = 1.0 / ax.alpha;
    const bool has_droop = ax.droop > 0.0;
    const double inv_droop = has_droop ? 1.0 / ax.droop : 0.0;
    const double inv_period = 1.0 / ax.period;
    const auto lit_iv = [&](NodeState& st, std::uint32_t ii) __attribute__((always_inline)) {
      const double w = width_arr[ii];
      // Constant-light intervals collapse the 2-point quadrature
      // to one evaluation: with identical points, 0.5 * (x + x)
      // is exactly x, so the single-eval path is byte-identical.
      const bool two_pt = xlo[ii] != xhi[ii];
      const Slot s_lo = slot_of(tb, st.xoff + xlo[ii]);
      const Curve c_lo = curve_from<Q>(tb, s_lo);
      Slot s_hi = s_lo;
      Curve c_hi = c_lo;
      if (two_pt) {
        s_hi = slot_of(tb, st.xoff + xhi[ii]);
        c_hi = curve_from<Q>(tb, s_hi);
      }
      st.ideal += 0.5 * (c_lo.pmpp + c_hi.pmpp) * w;
      const bool running = min_lux <= 0.0 || st.scale * mean_arr[ii] >= min_lux;
      if (!running) {
        st.prev_p = 0.0;
        st.prev_v = 0.0;
        advance_span(st, ii, 0.0, 0.0);
        return;
      }
      if (st.cold_t < 0.0) st.cold_t = ivs[ii].t0;
      const sched::EdgeOverlay::Interval& ov = ovs[ii];
      if (ov.pre_frac >= 1.0) {
        // Running but no sample held yet: the metrology already
        // drains overhead while the converter stays off.
        st.over += st.oh * w;
        st.prev_p = 0.0;
        st.prev_v = 0.0;
        advance_span(st, ii, 0.0, st.oh);
        return;
      }
      const double harvest_scale = 1.0 - ov.disc;
      const double act_base = 1.0 - ov.pre_frac;
      struct PointOut {
        double p = 0.0, d = 0.0, v = 0.0;
      };
      const auto eval = [&](const Curve& c, const Slot& s) __attribute__((always_inline)) {
        PointOut o;
        const double value0 = (c.voc + ax.in_off) * st.divider + ax.val_const;
        double frac = 1.0;
        double lag = 0.0;
        if (has_droop) {
          const double lag_star = (value0 - ax.threshold) * inv_droop;
          if (lag_star <= 0.0) return o;  // never clears ACTIVE
          if (lag_star >= ax.period) {
            lag = ov.avg_lag;  // active across the whole sawtooth
          } else {
            frac = lag_star * inv_period;  // decays below ACTIVE mid-period
            lag = 0.5 * lag_star;
          }
        } else if (value0 < ax.threshold) {
          return o;
        }
        o.v = (value0 - ax.droop * lag) * inv_alpha;
        const double act = act_base * frac;
        const double p_full = power_at<Q>(tb, s, o.v) * harvest_scale;
        o.p = p_full * act;
        o.d = conv.output_power(p_full, o.v) * act;
        return o;
      };
      const PointOut lo = eval(c_lo, s_lo);
      const PointOut hi = two_pt ? eval(c_hi, s_hi) : lo;
      const double p_bar = 0.5 * (lo.p + hi.p);
      const double d_bar = 0.5 * (lo.d + hi.d);
      st.harv += p_bar * w;
      st.deliv += d_bar * w;
      st.over += st.oh * w;
      st.prev_p = p_bar;
      st.prev_v = 0.5 * (lo.v + hi.v);
      advance_span(st, ii, d_bar, st.oh);
    };
    for (std::size_t i = 0; i < count; ++i) sweep_node(i, lit_iv);
  } else if (ax.eval == AxisEval::kAffineVoc) {
    // Memoryless laws that are affine in Voc (fixed voltage, pilot
    // cell): the closed form replays step()'s exact arithmetic —
    // v = aff_k * ((Voc * aff_s1) * aff_s2) with the same association,
    // act = 1 - min(1, disconnect_fraction) folded at plan build — so
    // this path is bit-identical to running the cloned prototype.
    const auto lit_iv = [&](NodeState& st, std::uint32_t ii) __attribute__((always_inline)) {
      const double w = width_arr[ii];
      const bool two_pt = xlo[ii] != xhi[ii];
      const Slot s_lo = slot_of(tb, st.xoff + xlo[ii]);
      const Curve c_lo = curve_from<Q>(tb, s_lo);
      Slot s_hi = s_lo;
      Curve c_hi = c_lo;
      if (two_pt) {
        s_hi = slot_of(tb, st.xoff + xhi[ii]);
        c_hi = curve_from<Q>(tb, s_hi);
      }
      st.ideal += 0.5 * (c_lo.pmpp + c_hi.pmpp) * w;
      const bool running = min_lux <= 0.0 || st.scale * mean_arr[ii] >= min_lux;
      if (!running) {
        st.prev_p = 0.0;
        st.prev_v = 0.0;
        advance_span(st, ii, 0.0, 0.0);
        return;
      }
      if (st.cold_t < 0.0) st.cold_t = ivs[ii].t0;
      const auto eval = [&](const Curve& c, const Slot& s) __attribute__((always_inline)) {
        const double v = ax.aff_const ? ax.aff_v : ax.aff_k * ((c.voc * ax.aff_s1) * ax.aff_s2);
        const double p = power_at<Q>(tb, s, v) * ax.aff_act;
        return std::pair<double, double>{p, v};
      };
      const auto [pl, vl] = eval(c_lo, s_lo);
      const auto [ph, vh] = two_pt ? eval(c_hi, s_hi) : std::pair<double, double>{pl, vl};
      const double dl = conv.output_power(pl, vl);
      const double dh = two_pt ? conv.output_power(ph, vh) : dl;
      const double p_bar = 0.5 * (pl + ph);
      const double d_bar = 0.5 * (dl + dh);
      st.harv += p_bar * w;
      st.deliv += d_bar * w;
      st.over += st.oh * w;
      st.prev_p = p_bar;
      st.prev_v = 0.5 * (vl + vh);
      advance_span(st, ii, d_bar, st.oh);
    };
    for (std::size_t i = 0; i < count; ++i) sweep_node(i, lit_iv);
  } else {
    // Generic memoryless: exactly MacroStepper::process_interval's eval
    // on the axis' cloned prototype at both quadrature points. step()
    // is pure for kMemoryless controllers, so one clone serves every
    // node and any evaluation order.
    mppt::MpptController& ctl = *proto;
    const double inv_cap2 = cx.inv_cap2;
    const auto lit_iv = [&](NodeState& st, std::uint32_t ii) __attribute__((always_inline)) {
      const double w = width_arr[ii];
      const bool two_pt = xlo[ii] != xhi[ii];
      const Slot s_lo = slot_of(tb, st.xoff + xlo[ii]);
      const Curve c_lo = curve_from<Q>(tb, s_lo);
      Slot s_hi = s_lo;
      Curve c_hi = c_lo;
      if (two_pt) {
        s_hi = slot_of(tb, st.xoff + xhi[ii]);
        c_hi = curve_from<Q>(tb, s_hi);
      }
      st.ideal += 0.5 * (c_lo.pmpp + c_hi.pmpp) * w;
      const bool running = min_lux <= 0.0 || st.scale * mean_arr[ii] >= min_lux;
      if (!running) {
        st.prev_p = 0.0;
        st.prev_v = 0.0;
        advance_span(st, ii, 0.0, 0.0);
        return;
      }
      const sched::BatchInterval& iv = ivs[ii];
      if (st.cold_t < 0.0) st.cold_t = iv.t0;
      mppt::SensedInputs sensed;
      sensed.time = iv.t_mid;
      sensed.dt = iv.dt_bar;
      sensed.illuminance_estimate = iv.total_mean_u * st.scale;
      sensed.prev_power = st.prev_p;
      sensed.prev_voltage = st.prev_v;
      sensed.store_voltage = std::sqrt(st.e * inv_cap2);
      const auto eval = [&](const Curve& c, const Slot& s) __attribute__((always_inline)) {
        sensed.voc = c.voc;
        sensed.pilot_voc = c.voc;
        const mppt::ControlOutput out = ctl.step(sensed);
        const double p = power_at<Q>(tb, s, out.pv_voltage) *
                         (1.0 - std::min(1.0, out.disconnect_fraction));
        return std::pair<double, double>{p, out.pv_voltage};
      };
      const auto [pl, vl] = eval(c_lo, s_lo);
      const auto [ph, vh] = two_pt ? eval(c_hi, s_hi) : std::pair<double, double>{pl, vl};
      const double dl = conv.output_power(pl, vl);
      const double dh = two_pt ? conv.output_power(ph, vh) : dl;
      const double p_bar = 0.5 * (pl + ph);
      const double d_bar = 0.5 * (dl + dh);
      st.harv += p_bar * w;
      st.deliv += d_bar * w;
      st.over += st.oh * w;
      st.prev_p = p_bar;
      st.prev_v = 0.5 * (vl + vh);
      advance_span(st, ii, d_bar, st.oh);
    };
    for (std::size_t i = 0; i < count; ++i) sweep_node(i, lit_iv);
  }

  return totals;
}

template KernelTotals run_axis_scalar<false>(const EnvContext&, const AxisPlan&,
                                             const sched::EdgeOverlay::Interval*,
                                             const std::vector<NodeDraw>&, const std::uint32_t*,
                                             std::size_t, mppt::MpptController*,
                                             std::vector<node::NodeReport>&);
template KernelTotals run_axis_scalar<true>(const EnvContext&, const AxisPlan&,
                                            const sched::EdgeOverlay::Interval*,
                                            const std::vector<NodeDraw>&, const std::uint32_t*,
                                            std::size_t, mppt::MpptController*,
                                            std::vector<node::NodeReport>&);

}  // namespace focv::fleet::soa::internal
