#include "fleet/soa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "common/require.hpp"
#include "core/focv_system.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "obs/obs.hpp"

namespace focv::fleet::soa {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kGrid = node::CurveCache::kGridNodesPerLogLux;

/// Grid coordinate below which the cell is dark (x = 32 ln lux).
/// Namespace-scope so the hot loops read a plain double instead of
/// re-checking a function-local static's init guard on every lookup.
const double kDarkX = kGrid * std::log(node::CurveCache::kDarkLux);

struct Curve {
  double voc = 0.0;
  double pmpp = 0.0;
};

/// Table slot of grid coordinate x, clamped into the exported span
/// (nodes beyond the +-6 sigma export margin read the edge entries).
struct Slot {
  std::size_t k = 0;
  double f = 0.0;
  bool dark = true;
};

inline Slot slot_of(const DenseTables& tb, double x) {
  Slot s;
  if (x < kDarkX || tb.slots < 2) return s;
  s.dark = false;
  long j = static_cast<long>(std::floor(x));
  const long j_hi = tb.grid_lo + tb.slots - 2;
  if (j < tb.grid_lo) {
    j = tb.grid_lo;
    s.f = 0.0;
  } else if (j > j_hi) {
    j = j_hi;
    s.f = 1.0;
  } else {
    s.f = x - static_cast<double>(j);
  }
  s.k = static_cast<std::size_t>(j - tb.grid_lo);
  return s;
}

// Table readers are compiled once per mode (Q = quantized): the hot
// loops never branch on tb.quantized per access.
template <bool Q>
inline double entry_voc(const DenseTables& tb, std::size_t k) {
  if constexpr (Q) {
    return 1e-6 * static_cast<double>(tb.slot_q[k].voc);
  } else {
    return tb.slot_f[k].voc;
  }
}

template <bool Q>
inline double entry_pmpp(const DenseTables& tb, std::size_t k) {
  if constexpr (Q) {
    return 1e-9 * static_cast<double>(tb.slot_q[k].pmpp);
  } else {
    return tb.slot_f[k].pmpp;
  }
}

template <bool Q>
inline double entry_inv_voc(const DenseTables& tb, std::size_t k) {
  if constexpr (Q) {
    return tb.slot_q[k].inv_voc;
  } else {
    return tb.slot_f[k].inv_voc;
  }
}

template <bool Q>
inline double entry_power(const DenseTables& tb, std::size_t k, std::size_t m) {
  const std::size_t idx = k * static_cast<std::size_t>(tb.points) + m;
  if constexpr (Q) {
    return 1e-9 * static_cast<double>(tb.qpower[idx]);
  } else {
    return tb.power[idx];
  }
}

template <bool Q>
inline Curve curve_from(const DenseTables& tb, const Slot& s) {
  Curve c;
  if (s.dark) return c;
  const double voc0 = entry_voc<Q>(tb, s.k);
  const double voc1 = entry_voc<Q>(tb, s.k + 1);
  const double pm0 = entry_pmpp<Q>(tb, s.k);
  const double pm1 = entry_pmpp<Q>(tb, s.k + 1);
  c.voc = voc0 + s.f * (voc1 - voc0);
  c.pmpp = pm0 + s.f * (pm1 - pm0);
  return c;
}

/// CurveCache::table_power on one exported row. `rel = v / Voc(row)` via
/// the precomputed reciprocal — the only difference from the cache's own
/// arithmetic is mul-by-reciprocal instead of divide, well inside the
/// engine's 0.1 % contract.
template <bool Q>
inline double row_power(const DenseTables& tb, std::size_t k, double v) {
  const double rel = v * entry_inv_voc<Q>(tb, k);
  if (rel >= 1.0) return 0.0;
  const int n = tb.points;
  const double pos = rel * static_cast<double>(n - 1);
  const int m = std::min(static_cast<int>(pos), n - 2);
  const double t = pos - static_cast<double>(m);
  const double p0 = entry_power<Q>(tb, k, static_cast<std::size_t>(m));
  const double p1 = entry_power<Q>(tb, k, static_cast<std::size_t>(m) + 1);
  return p0 + t * (p1 - p0);
}

/// CurveCache::power_at_lux on an already-resolved slot (the engine
/// resolves each quadrature point's slot once and reuses it for the
/// Voc/Pmpp read and every P(V) lookup).
template <bool Q>
inline double power_at(const DenseTables& tb, const Slot& s, double v) {
  if (v <= 0.0 || s.dark) return 0.0;
  const double p0 = row_power<Q>(tb, s.k, v);
  const double p1 = row_power<Q>(tb, s.k + 1, v);
  return p0 + s.f * (p1 - p0);
}

DenseTables export_tables(node::CurveCache& cache, double lux_min, double lux_max,
                          TableMode mode) {
  node::CurveCache::DenseExport e = cache.export_range(lux_min, lux_max);
  DenseTables tb;
  tb.grid_lo = e.grid_lo;
  tb.points = e.points;
  tb.slots = static_cast<int>(e.voc.size());
  if (mode == TableMode::kQuantized) {
    tb.quantized = true;
    tb.slot_q.resize(e.voc.size());
    tb.qpower.resize(e.power.size());
    for (std::size_t i = 0; i < e.voc.size(); ++i) {
      tb.slot_q[i].voc = static_cast<std::int32_t>(std::lround(e.voc[i] * 1e6));
      tb.slot_q[i].pmpp = static_cast<std::int32_t>(std::lround(e.pmpp[i] * 1e9));
      const double voc = 1e-6 * static_cast<double>(tb.slot_q[i].voc);
      tb.slot_q[i].inv_voc = voc > 0.0 ? 1.0 / voc : kInf;
    }
    for (std::size_t i = 0; i < e.power.size(); ++i) {
      tb.qpower[i] = static_cast<std::int32_t>(std::lround(e.power[i] * 1e9));
    }
  } else {
    tb.slot_f.resize(e.voc.size());
    for (std::size_t i = 0; i < e.voc.size(); ++i) {
      tb.slot_f[i].voc = e.voc[i];
      tb.slot_f[i].pmpp = e.pmpp[i];
      tb.slot_f[i].inv_voc = e.voc[i] > 0.0 ? 1.0 / e.voc[i] : kInf;
    }
    tb.power = std::move(e.power);
  }
  return tb;
}

/// Per-node control/storage state and accumulators. One instance stays
/// register- and L1-resident for a node's whole day: the node-outer
/// loop below walks the shared schedule once per node instead of
/// streaming chunk-wide arrays once per interval, so the hot state is
/// never reloaded and every axis constant hoists out of the day loop.
/// `e` carries the supercapacitor ENERGY (the voltage is monotonic in
/// it, so the usable() gate compares energies and the voltage is only
/// materialised where a controller senses it).
struct NodeState {
  double scale = 0.0, xoff = 0.0, divider = 0.0, oh = 0.0, load_w = 0.0, e = 0.0;
  double prev_p = 0.0, prev_v = 0.0;
  double ideal = 0.0, harv = 0.0, deliv = 0.0, over = 0.0, served = 0.0, brown_t = 0.0;
  double cold_t = -1.0;
  std::uint32_t brown_steps = 0, flips = 0;
  std::uint32_t slow = 0;  ///< intervals replayed step-by-step (telemetry only)
};

template <bool Q>
void run_env(const SoaPlan& plan, const EnvPlan& env, const FleetSpec& spec,
             const std::vector<NodeDraw>& draws, const std::vector<std::uint32_t>& mem,
             const std::vector<std::unique_ptr<mppt::MpptController>>& clones,
             std::vector<node::NodeReport>& reports) {
  const std::size_t m = mem.size();
  const double* t = env.time->data();
  const DenseTables& tb = env.tables;
  const power::BuckBoostConverter& conv = spec.base.converter;

  const double cap = plan.capacitance;
  const double inv_cap2 = 2.0 / plan.capacitance;
  const double tau = plan.tau;
  const double e_max = plan.max_energy;
  const double e_use = plan.min_useful_energy;

  // Group same-axis nodes contiguously (stable within an axis): the
  // node loops below then run one specialised pass per axis run with
  // the axis constants hoisted. A counting sort keeps this O(members)
  // — a comparison sort here shows up at whole-fleet scale. Per-node
  // results are independent of iteration order, so the grouping cannot
  // change a single report byte.
  const std::size_t n_axes = plan.axes.size();
  std::vector<std::size_t> axis_count(n_axes, 0);
  for (const std::uint32_t node : mem) {
    ++axis_count[static_cast<std::size_t>(draws[node].policy_index)];
  }
  struct AxisRun {
    std::size_t lo = 0, hi = 0;
    std::uint32_t axis = 0;
  };
  std::vector<AxisRun> runs;
  std::vector<std::size_t> cursor(n_axes, 0);
  std::size_t offset = 0;
  for (std::size_t a = 0; a < n_axes; ++a) {
    cursor[a] = offset;
    if (axis_count[a] > 0) {
      runs.push_back({offset, offset + axis_count[a], static_cast<std::uint32_t>(a)});
    }
    offset += axis_count[a];
  }
  std::vector<std::uint32_t> members(m);
  for (const std::uint32_t node : mem) {
    members[cursor[static_cast<std::size_t>(draws[node].policy_index)]++] = node;
  }
  // Within an axis, order nodes by illuminance scale: a node's day
  // touches the table rows around its own log-lux offset, so adjacent
  // scales revisit the same rows while they are still L1-resident
  // instead of spraying lookups across the whole exported span.
  // (Deterministic key with an index tie-break; reports are written by
  // member index, so evaluation order is invisible in the output.)
  for (const AxisRun& run : runs) {
    std::sort(members.begin() + static_cast<std::ptrdiff_t>(run.lo),
              members.begin() + static_cast<std::ptrdiff_t>(run.hi),
              [&](std::uint32_t a, std::uint32_t b) {
                const double ka = draws[a].attenuation * draws[a].cell_factor;
                const double kb = draws[b].attenuation * draws[b].cell_factor;
                if (ka != kb) return ka < kb;
                return a < b;
              });
  }

  const power::WsnLoad::Params& lp = spec.base.load;
  const double burst_j = lp.sense_power * lp.sense_duration + lp.tx_power * lp.tx_duration;
  const double e_init = 0.5 * cap * plan.initial_voltage * plan.initial_voltage;
  const auto init_node = [&](const NodeDraw& d, const AxisPlan& ax) {
    NodeState st;
    st.scale = spec.base.lux_scale * d.attenuation * d.cell_factor;
    st.xoff = kGrid * std::log(st.scale);
    st.divider = d.divider_ratio * ax.div_factor;
    st.oh = ax.law == mppt::MacroLaw::kSampleHold
                ? ax.oh_rep + ax.oh_div * (ax.div_rep - st.divider)
                : ax.oh_const;
    st.load_w = lp.sleep_power + burst_j / d.report_period;
    st.e = e_init;
    return st;
  };

  // Supercapacitor::advance_constant_power + time_to_energy across
  // steps [iv.a, iv.b), split at usable() crossings snapped to step
  // boundaries exactly as MacroStepper::advance_store_span does. The
  // crossing test is the sign form of time_to_energy's r in (0, 1]
  // (e_use strictly between e0 and the asymptote e_inf, or e0 exactly
  // at the gate), so the common no-crossing interval costs one multiply
  // — no division, no log.
  const double* width_arr = env.width.data();
  const double* span_arr = env.span.data();
  const double* mean_arr = env.mean_u.data();
  const std::uint32_t* nstep_arr = env.nsteps.data();
  const sched::BatchInterval* ivs = env.schedule.intervals.data();
  const double* xlo = env.x_lo.data();
  const double* xhi = env.x_hi.data();
  const double* dec_arr = env.decay.data();

  // The rare case: the store crosses usable() inside the interval, so
  // the advance splits at step boundaries exactly as
  // MacroStepper::advance_store_span does. Kept out of line — the fast
  // path below handles virtually every interval.
  const auto advance_slow = [&](NodeState& st, const sched::BatchInterval& iv, double delivered,
                                double oh_drain, double dec_full) {
    ++st.slow;
    std::uint32_t p = iv.a;
    double e = st.e;
    while (p < iv.b) {
      const bool usable = e >= e_use;
      const double net = delivered - oh_drain - (usable ? st.load_w : 0.0);
      const double e_inf = 0.5 * net * tau;
      std::uint32_t q = iv.b;
      double flip_dt = kInf;
      if (e == e_use) {
        flip_dt = 0.0;
      } else if ((e - e_use) * (e_inf - e_use) < 0.0) {
        flip_dt = -0.5 * tau * std::log((e_use - e_inf) / (e - e_inf));
      }
      if (t[p] + flip_dt < t[q]) {
        const double* it = std::upper_bound(t + p, t + q + 1, t[p] + flip_dt);
        auto qf = static_cast<std::uint32_t>(it - t);
        if (qf <= p) qf = p + 1;
        if (qf < q) q = qf;
        ++st.flips;
      }
      const double len = t[q] - t[p];
      const double dec = (p == iv.a && q == iv.b) ? dec_full : std::exp(-2.0 * len / tau);
      e = std::clamp(e_inf + (e - e_inf) * dec, 0.0, e_max);
      if (usable) {
        st.served += st.load_w * len;
      } else {
        st.brown_steps += q - p;
        st.brown_t += len;
      }
      p = q;
    }
    st.e = e;
  };

  // Supercapacitor::advance_constant_power across interval `ii`. The
  // crossing test is the sign form of time_to_energy's r in (0, 1]
  // (e_use strictly between e0 and the asymptote e_inf, or e0 exactly
  // at the gate); the crossing-free common case costs one decay
  // multiply and never touches the trace time array — span[ii] is
  // bit-identical to the slow path's t[iv.b] - t[iv.a], so the branch
  // cannot change a single report byte.
  const auto advance_span = [&](NodeState& st, std::uint32_t ii, double delivered,
                                double oh_drain) __attribute__((always_inline)) {
    const bool usable = st.e >= e_use;
    const double net = delivered - oh_drain - (usable ? st.load_w : 0.0);
    const double e_inf = 0.5 * net * tau;
    if (st.e != e_use && (st.e - e_use) * (e_inf - e_use) >= 0.0) {
      const double len = span_arr[ii];
      st.e = std::clamp(e_inf + (st.e - e_inf) * dec_arr[ii], 0.0, e_max);
      if (usable) {
        st.served += st.load_w * len;
      } else {
        st.brown_steps += nstep_arr[ii];
        st.brown_t += len;
      }
      return;
    }
    advance_slow(st, ivs[ii], delivered, oh_drain, dec_arr[ii]);
  };

  const std::uint64_t events_base = static_cast<std::uint64_t>(env.schedule.segments.size()) +
                                    static_cast<std::uint64_t>(env.schedule.intervals.size());
  const auto finalize = [&](const NodeState& st, node::NodeReport& r) {
    r = node::NodeReport{};
    r.duration = env.duration;
    r.harvested_energy = st.harv;
    r.delivered_energy = st.deliv;
    r.overhead_energy = st.over;
    r.load_energy_served = st.served;
    r.ideal_mpp_energy = st.ideal;
    r.coldstart_time = st.cold_t;
    r.brownout_steps = static_cast<int>(st.brown_steps);
    r.brownout_time = st.brown_t;
    r.final_store_voltage = std::sqrt(st.e * inv_cap2);
    r.steps = env.schedule.intervals.size();
    r.events = events_base + st.flips;
  };

  for (const AxisRun& run : runs) {
    const AxisPlan& ax = plan.axes[run.axis];
    const double min_lux = ax.min_lux;

    // Telemetry is aggregated in plain locals and flushed once per axis
    // run, so the per-interval arithmetic below never sees an obs
    // branch: exports stay byte-identical with telemetry on or off.
    const bool obs_on = obs::enabled();
    std::uint64_t flips_total = 0;
    std::uint64_t slow_total = 0;
    std::optional<obs::Tracer::Span> axis_span;
    if (obs_on) axis_span.emplace(obs::tracer(), "soa_axis_run", "fleet");

    if (ax.law == mppt::MacroLaw::kSampleHold) {
      // Closed-form sample/hold: the held value right after an edge is
      // (Voc + in_off) * divider + val_const (the acquisition settles to
      // zero error within the 39 ms window), then droops linearly with
      // the sample age. The EdgeOverlay supplies each interval's mean
      // sample age and disconnect duty, shared by every node of this
      // axis.
      const sched::EdgeOverlay::Interval* ovs =
          env.overlays[static_cast<std::size_t>(ax.focv_overlay)].intervals.data();
      const double inv_alpha = 1.0 / ax.alpha;
      const bool has_droop = ax.droop > 0.0;
      const double inv_droop = has_droop ? 1.0 / ax.droop : 0.0;
      const double inv_period = 1.0 / ax.period;
      const auto lit_iv = [&](NodeState& st, std::uint32_t ii) __attribute__((always_inline)) {
        const double w = width_arr[ii];
        // Constant-light intervals collapse the 2-point quadrature
        // to one evaluation: with identical points, 0.5 * (x + x)
        // is exactly x, so the single-eval path is byte-identical.
        const bool two_pt = xlo[ii] != xhi[ii];
        const Slot s_lo = slot_of(tb, st.xoff + xlo[ii]);
        const Curve c_lo = curve_from<Q>(tb, s_lo);
        Slot s_hi = s_lo;
        Curve c_hi = c_lo;
        if (two_pt) {
          s_hi = slot_of(tb, st.xoff + xhi[ii]);
          c_hi = curve_from<Q>(tb, s_hi);
        }
        st.ideal += 0.5 * (c_lo.pmpp + c_hi.pmpp) * w;
        const bool running = min_lux <= 0.0 || st.scale * mean_arr[ii] >= min_lux;
        if (!running) {
          st.prev_p = 0.0;
          st.prev_v = 0.0;
          advance_span(st, ii, 0.0, 0.0);
          return;
        }
        if (st.cold_t < 0.0) st.cold_t = ivs[ii].t0;
        const sched::EdgeOverlay::Interval& ov = ovs[ii];
        if (ov.pre_frac >= 1.0) {
          // Running but no sample held yet: the metrology already
          // drains overhead while the converter stays off.
          st.over += st.oh * w;
          st.prev_p = 0.0;
          st.prev_v = 0.0;
          advance_span(st, ii, 0.0, st.oh);
          return;
        }
        const double harvest_scale = 1.0 - ov.disc;
        const double act_base = 1.0 - ov.pre_frac;
        struct PointOut {
          double p = 0.0, d = 0.0, v = 0.0;
        };
        const auto eval = [&](const Curve& c, const Slot& s) __attribute__((always_inline)) {
          PointOut o;
          const double value0 = (c.voc + ax.in_off) * st.divider + ax.val_const;
          double frac = 1.0;
          double lag = 0.0;
          if (has_droop) {
            const double lag_star = (value0 - ax.threshold) * inv_droop;
            if (lag_star <= 0.0) return o;  // never clears ACTIVE
            if (lag_star >= ax.period) {
              lag = ov.avg_lag;  // active across the whole sawtooth
            } else {
              frac = lag_star * inv_period;  // decays below ACTIVE mid-period
              lag = 0.5 * lag_star;
            }
          } else if (value0 < ax.threshold) {
            return o;
          }
          o.v = (value0 - ax.droop * lag) * inv_alpha;
          const double act = act_base * frac;
          const double p_full = power_at<Q>(tb, s, o.v) * harvest_scale;
          o.p = p_full * act;
          o.d = conv.output_power(p_full, o.v) * act;
          return o;
        };
        const PointOut lo = eval(c_lo, s_lo);
        const PointOut hi = two_pt ? eval(c_hi, s_hi) : lo;
        const double p_bar = 0.5 * (lo.p + hi.p);
        const double d_bar = 0.5 * (lo.d + hi.d);
        st.harv += p_bar * w;
        st.deliv += d_bar * w;
        st.over += st.oh * w;
        st.prev_p = p_bar;
        st.prev_v = 0.5 * (lo.v + hi.v);
        advance_span(st, ii, d_bar, st.oh);
      };
      for (std::size_t i = run.lo; i < run.hi; ++i) {
        NodeState st = init_node(draws[members[i]], ax);
        for (const sched::BatchSegment& seg : env.schedule.segments) {
          const std::uint32_t iv_end = seg.first_interval + seg.interval_count;
          if (seg.dark) {
            st.prev_p = st.prev_v = 0.0;
            for (std::uint32_t ii = seg.first_interval; ii < iv_end; ++ii) {
              advance_span(st, ii, 0.0, 0.0);
            }
            continue;
          }
          for (std::uint32_t ii = seg.first_interval; ii < iv_end; ++ii) lit_iv(st, ii);
        }
        finalize(st, reports[members[i]]);
        if (obs_on) {
          flips_total += st.flips;
          slow_total += st.slow;
        }
      }
    } else {
      // Memoryless: exactly MacroStepper::process_interval's eval on
      // the axis' cloned prototype at both quadrature points. step() is
      // pure for kMemoryless controllers, so one clone serves every
      // node and any evaluation order.
      mppt::MpptController& ctl = *clones[run.axis];
      const auto lit_iv = [&](NodeState& st, std::uint32_t ii) __attribute__((always_inline)) {
        const double w = width_arr[ii];
        const bool two_pt = xlo[ii] != xhi[ii];
        const Slot s_lo = slot_of(tb, st.xoff + xlo[ii]);
        const Curve c_lo = curve_from<Q>(tb, s_lo);
        Slot s_hi = s_lo;
        Curve c_hi = c_lo;
        if (two_pt) {
          s_hi = slot_of(tb, st.xoff + xhi[ii]);
          c_hi = curve_from<Q>(tb, s_hi);
        }
        st.ideal += 0.5 * (c_lo.pmpp + c_hi.pmpp) * w;
        const bool running = min_lux <= 0.0 || st.scale * mean_arr[ii] >= min_lux;
        if (!running) {
          st.prev_p = 0.0;
          st.prev_v = 0.0;
          advance_span(st, ii, 0.0, 0.0);
          return;
        }
        const sched::BatchInterval& iv = ivs[ii];
        if (st.cold_t < 0.0) st.cold_t = iv.t0;
        mppt::SensedInputs sensed;
        sensed.time = iv.t_mid;
        sensed.dt = iv.dt_bar;
        sensed.illuminance_estimate = iv.total_mean_u * st.scale;
        sensed.prev_power = st.prev_p;
        sensed.prev_voltage = st.prev_v;
        sensed.store_voltage = std::sqrt(st.e * inv_cap2);
        const auto eval = [&](const Curve& c, const Slot& s) __attribute__((always_inline)) {
          sensed.voc = c.voc;
          sensed.pilot_voc = c.voc;
          const mppt::ControlOutput out = ctl.step(sensed);
          const double p = power_at<Q>(tb, s, out.pv_voltage) *
                           (1.0 - std::min(1.0, out.disconnect_fraction));
          return std::pair<double, double>{p, out.pv_voltage};
        };
        const auto [pl, vl] = eval(c_lo, s_lo);
        const auto [ph, vh] = two_pt ? eval(c_hi, s_hi) : std::pair<double, double>{pl, vl};
        const double dl = conv.output_power(pl, vl);
        const double dh = two_pt ? conv.output_power(ph, vh) : dl;
        const double p_bar = 0.5 * (pl + ph);
        const double d_bar = 0.5 * (dl + dh);
        st.harv += p_bar * w;
        st.deliv += d_bar * w;
        st.over += st.oh * w;
        st.prev_p = p_bar;
        st.prev_v = 0.5 * (vl + vh);
        advance_span(st, ii, d_bar, st.oh);
      };
      for (std::size_t i = run.lo; i < run.hi; ++i) {
        NodeState st = init_node(draws[members[i]], ax);
        for (const sched::BatchSegment& seg : env.schedule.segments) {
          const std::uint32_t iv_end = seg.first_interval + seg.interval_count;
          if (seg.dark) {
            st.prev_p = st.prev_v = 0.0;
            for (std::uint32_t ii = seg.first_interval; ii < iv_end; ++ii) {
              advance_span(st, ii, 0.0, 0.0);
            }
            continue;
          }
          for (std::uint32_t ii = seg.first_interval; ii < iv_end; ++ii) lit_iv(st, ii);
        }
        finalize(st, reports[members[i]]);
        if (obs_on) {
          flips_total += st.flips;
          slow_total += st.slow;
        }
      }
    }

    if (obs_on) {
      static const obs::CounterId nodes_id = obs::metrics().counter("fleet.soa.nodes_swept");
      static const obs::CounterId ivs_id = obs::metrics().counter("fleet.soa.intervals_swept");
      static const obs::CounterId slow_id = obs::metrics().counter("fleet.soa.slow_advances");
      static const obs::CounterId flips_id = obs::metrics().counter("fleet.soa.store_flips");
      const double nodes = static_cast<double>(run.hi - run.lo);
      const double intervals = static_cast<double>(env.schedule.intervals.size());
      obs::metrics().add(nodes_id, nodes);
      obs::metrics().add(ivs_id, nodes * intervals);
      obs::metrics().add(slow_id, static_cast<double>(slow_total));
      obs::metrics().add(flips_id, static_cast<double>(flips_total));
      axis_span->arg("axis", static_cast<double>(run.axis));
      axis_span->arg("law", ax.law == mppt::MacroLaw::kSampleHold ? "sample_hold" : "memoryless");
      axis_span->arg("nodes", nodes);
      axis_span->arg("intervals", intervals);
      axis_span->arg("slow_advances", static_cast<double>(slow_total));
      axis_span->arg("store_flips", static_cast<double>(flips_total));
    }
  }
}

}  // namespace

std::unique_ptr<const SoaPlan> build_plan(
    const FleetSpec& spec, const std::vector<PolicyAxis>& policies,
    const std::vector<std::optional<sched::PreparedTrace>>& prepared,
    node::CurveCache& cache) {
  const node::NodeConfig& base = spec.base;
  // Whole-spec disqualifiers: features the batch arithmetic does not
  // express. The caller falls back to the per-node engine entirely.
  if (base.power_model != node::PowerModel::kSurrogate) return nullptr;
  if (base.battery || base.coldstart) return nullptr;
  if (base.obs_compare_exact) return nullptr;
  if (base.events.resolve_load_bursts) return nullptr;
  if (base.storage.self_discharge_resistance <= 0.0) return nullptr;

  auto plan = std::make_unique<SoaPlan>();
  plan->capacitance = base.storage.capacitance;
  plan->tau = base.storage.self_discharge_resistance * base.storage.capacitance;
  plan->max_voltage = base.storage.max_voltage;
  plan->max_energy = 0.5 * plan->capacitance * plan->max_voltage * plan->max_voltage;
  plan->min_useful_voltage = base.storage.min_useful_voltage;
  plan->min_useful_energy =
      0.5 * plan->capacitance * plan->min_useful_voltage * plan->min_useful_voltage;
  plan->initial_voltage = base.storage.initial_voltage;
  plan->base_lux_scale = base.lux_scale;

  int focv_axes = 0;
  for (const PolicyAxis& axis : policies) {
    AxisPlan ap;
    if (axis.prototype == nullptr && axis.resolved.name == "focv") {
      // The axis' representative controller at the nominal divider: only
      // the divider ratio varies per node, and both its effects (the
      // held-value target and the duty-cycled divider drain) are linear
      // in it, so two coefficients replace per-node construction.
      const mppt::FocvSampleHoldController rep =
          core::make_paper_controller_from_spec(axis.resolved, spec.system);
      ap.batch = true;
      ap.law = mppt::MacroLaw::kSampleHold;
      ap.min_lux = rep.minimum_operating_lux();
      ap.focv_overlay = focv_axes++;
      ap.period = rep.astable().period();
      ap.on_s = rep.astable().params().on_period;
      ap.first_edge = rep.astable().next_rising_edge(0.0);
      ap.droop = rep.sample_hold().droop_rate();
      ap.alpha = rep.params().alpha;
      ap.threshold = rep.params().active_threshold;
      const analog::SampleHold::Params& sh = rep.sample_hold().params();
      ap.in_off = sh.input_buffer_offset;
      ap.val_const = sh.output_buffer_offset - sh.charge_injection / sh.hold_capacitance;
      ap.div_rep = sh.divider_ratio;
      ap.oh_rep = rep.overhead_power();
      ap.oh_div = rep.params().supply_voltage * rep.astable().duty_cycle() * 5.4 /
                  spec.system.divider_r_top;
      ap.div_factor = axis.resolved.is_set("k")
                          ? axis.resolved.value("k") * spec.system.alpha /
                                spec.system.divider_ratio
                          : 1.0;
    } else if (axis.prototype != nullptr &&
               axis.prototype->macro_law() == mppt::MacroLaw::kMemoryless) {
      ap.batch = true;
      ap.law = mppt::MacroLaw::kMemoryless;
      ap.proto = axis.prototype;
      ap.oh_const = axis.prototype->overhead_power();
      ap.min_lux = axis.prototype->minimum_operating_lux();
    }
    plan->any_batch = plan->any_batch || ap.batch;
    plan->axes.push_back(std::move(ap));
  }
  if (!plan->any_batch) return nullptr;

  // Illuminance scale bounds over the heterogeneity draws, with a
  // 6 sigma margin on the log-normal cell factor; rarer nodes clamp to
  // the table edges (sub-ppm of the fleet, bounded by the band width).
  const HeterogeneitySpec& h = spec.heterogeneity;
  const double s_lo =
      base.lux_scale * h.attenuation_min * std::exp(-6.0 * h.cell_tolerance_sigma);
  const double s_hi =
      base.lux_scale * h.attenuation_max * std::exp(6.0 * h.cell_tolerance_sigma);

  plan->envs.resize(spec.environments.size());
  for (std::size_t e = 0; e < spec.environments.size(); ++e) {
    require(prepared[e].has_value(), "soa::build_plan: missing PreparedTrace");
    const env::LightTrace& trace = *spec.environments[e].trace;
    EnvPlan& ep = plan->envs[e];
    ep.schedule = sched::build_batch_schedule(trace, *prepared[e], base.events.max_interval_s);
    ep.time = &trace.time();
    ep.duration = ep.schedule.duration;
    ep.x_lo.reserve(ep.schedule.intervals.size());
    ep.x_hi.reserve(ep.schedule.intervals.size());
    ep.decay.reserve(ep.schedule.intervals.size());
    for (const sched::BatchInterval& iv : ep.schedule.intervals) {
      ep.x_lo.push_back(iv.lo_u > 0.0 ? kGrid * std::log(iv.lo_u) : -kInf);
      ep.x_hi.push_back(iv.hi_u > 0.0 ? kGrid * std::log(iv.hi_u) : -kInf);
      ep.decay.push_back(std::exp(-2.0 * iv.w / plan->tau));
      ep.width.push_back(iv.w);
      ep.span.push_back(iv.t1 - iv.t0);
      ep.mean_u.push_back(iv.mean_u);
      ep.nsteps.push_back(iv.b - iv.a);
    }
    for (const AxisPlan& ap : plan->axes) {
      if (ap.law == mppt::MacroLaw::kSampleHold && ap.batch) {
        ep.overlays.push_back(
            sched::build_edge_overlay(ep.schedule, ap.period, ap.on_s, ap.first_edge));
      }
    }
    double lo_u = 0.0;
    double hi_u = 0.0;
    for (const sched::BatchSegment& seg : ep.schedule.segments) {
      if (seg.dark) continue;
      if (hi_u == 0.0) lo_u = seg.min_u;
      lo_u = std::min(lo_u, seg.min_u);
      hi_u = std::max(hi_u, seg.max_u);
    }
    if (hi_u > 0.0) {
      ep.tables = export_tables(cache, lo_u * s_lo, hi_u * s_hi, spec.table_mode);
    }
  }

  if (obs::enabled()) {
    static const obs::CounterId plans_id = obs::metrics().counter("fleet.soa.plans_built");
    static const obs::GaugeId bytes_id = obs::metrics().gauge("fleet.soa.table_bytes");
    std::size_t table_bytes = 0;
    for (const EnvPlan& ep : plan->envs) table_bytes += ep.tables.bytes();
    obs::metrics().add(plans_id);
    obs::metrics().set(bytes_id, static_cast<double>(table_bytes));
  }
  return plan;
}

void run_batch(const SoaPlan& plan, const FleetSpec& spec, const std::vector<NodeDraw>& draws,
               const std::vector<std::uint32_t>& members,
               std::vector<node::NodeReport>& reports) {
  if (members.empty()) return;
  // One clone per memoryless axis per call: kMemoryless step() is pure,
  // so a single reset instance serves every node deterministically.
  std::vector<std::unique_ptr<mppt::MpptController>> clones(plan.axes.size());
  for (std::size_t a = 0; a < plan.axes.size(); ++a) {
    if (plan.axes[a].batch && plan.axes[a].proto != nullptr) {
      clones[a] = plan.axes[a].proto->clone();
      clones[a]->reset();
    }
  }
  std::vector<std::vector<std::uint32_t>> by_env(plan.envs.size());
  for (const std::uint32_t k : members) {
    require(draws[k].env_index < plan.envs.size(), "soa::run_batch: draw/plan env mismatch");
    require(plan.axes[draws[k].policy_index].batch,
            "soa::run_batch: member's axis is not batchable");
    by_env[draws[k].env_index].push_back(k);
  }
  for (std::size_t e = 0; e < plan.envs.size(); ++e) {
    if (by_env[e].empty()) continue;
    if (plan.envs[e].tables.quantized) {
      run_env<true>(plan, plan.envs[e], spec, draws, by_env[e], clones, reports);
    } else {
      run_env<false>(plan, plan.envs[e], spec, draws, by_env[e], clones, reports);
    }
  }
}

}  // namespace focv::fleet::soa
