// SoA engine dispatch: group an env's members into per-axis runs, build
// the flat EnvContext the kernels read, and hand each run to the
// interval-major lane kernel (soa_lanes.cpp) or the node-major scalar
// kernel (soa_scalar.cpp). Kernel choice can never change a report
// byte — the kernels are byte-identical by construction and verified by
// tests/fleet/soa_lanes_test.cpp — so the dispatch is free to pick per
// axis: closed-form axes default to lanes, kPrototype axes (virtual
// step()) always run scalar, and pre-AVX2 x86-64 hosts fall back to
// scalar at runtime.

#include "fleet/soa.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "common/require.hpp"
#include "fleet/soa_internal.hpp"
#include "obs/obs.hpp"

namespace focv::fleet::soa {

namespace internal {

// Lives in this baseline-compiled TU (not soa_lanes.cpp) so probing for
// the ISA never itself executes AVX2 code.
bool lanes_supported() {
#if defined(__x86_64__) && defined(__GNUC__) && !defined(FOCV_SIMD_PORTABLE)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return true;
#endif
}

}  // namespace internal

namespace {

template <bool Q>
void run_env(const SoaPlan& plan, const EnvPlan& env, const FleetSpec& spec,
             const std::vector<NodeDraw>& draws, const std::vector<std::uint32_t>& mem,
             const std::vector<std::unique_ptr<mppt::MpptController>>& clones,
             std::vector<node::NodeReport>& reports) {
  const std::size_t m = mem.size();

  // Group same-axis nodes contiguously (stable within an axis): each
  // kernel then runs one specialised pass per axis run with the axis
  // constants hoisted. A counting sort keeps this O(members) — a
  // comparison sort here shows up at whole-fleet scale. Per-node
  // results are independent of iteration order, so the grouping cannot
  // change a single report byte.
  const std::size_t n_axes = plan.axes.size();
  std::vector<std::size_t> axis_count(n_axes, 0);
  for (const std::uint32_t node : mem) {
    ++axis_count[static_cast<std::size_t>(draws[node].policy_index)];
  }
  struct AxisRun {
    std::size_t lo = 0, hi = 0;
    std::uint32_t axis = 0;
  };
  std::vector<AxisRun> runs;
  std::vector<std::size_t> cursor(n_axes, 0);
  std::size_t offset = 0;
  for (std::size_t a = 0; a < n_axes; ++a) {
    cursor[a] = offset;
    if (axis_count[a] > 0) {
      runs.push_back({offset, offset + axis_count[a], static_cast<std::uint32_t>(a)});
    }
    offset += axis_count[a];
  }
  std::vector<std::uint32_t> members(m);
  for (const std::uint32_t node : mem) {
    members[cursor[static_cast<std::size_t>(draws[node].policy_index)]++] = node;
  }
  // Within an axis, order nodes by illuminance scale: a node's day
  // touches the table rows around its own log-lux offset, so adjacent
  // scales revisit the same rows while they are still L1-resident
  // instead of spraying lookups across the whole exported span — and
  // the lane kernel's width-W blocks then gather from near-identical
  // slots. (Deterministic key with an index tie-break; reports are
  // written by member index, so evaluation order is invisible in the
  // output.)
  for (const AxisRun& run : runs) {
    std::sort(members.begin() + static_cast<std::ptrdiff_t>(run.lo),
              members.begin() + static_cast<std::ptrdiff_t>(run.hi),
              [&](std::uint32_t a, std::uint32_t b) {
                const double ka = draws[a].attenuation * draws[a].cell_factor;
                const double kb = draws[b].attenuation * draws[b].cell_factor;
                if (ka != kb) return ka < kb;
                return a < b;
              });
  }

  internal::EnvContext cx;
  cx.tb = &env.tables;
  cx.conv = &spec.base.converter;
  cx.t = env.time->data();
  cx.ivs = env.schedule.intervals.data();
  cx.segments = env.schedule.segments.data();
  cx.n_segments = env.schedule.segments.size();
  cx.n_intervals = env.schedule.intervals.size();
  cx.width = env.width.data();
  cx.span = env.span.data();
  cx.mean_u = env.mean_u.data();
  cx.t_start = env.t_start.data();
  cx.x_lo = env.x_lo.data();
  cx.x_hi = env.x_hi.data();
  cx.decay = env.decay.data();
  cx.nsteps = env.nsteps.data();
  cx.dark = env.schedule.interval_dark.data();
  cx.inv_cap2 = 2.0 / plan.capacitance;
  cx.tau = plan.tau;
  cx.e_max = plan.max_energy;
  cx.e_use = plan.min_useful_energy;
  cx.e_init = 0.5 * plan.capacitance * plan.initial_voltage * plan.initial_voltage;
  cx.lux_scale = spec.base.lux_scale;
  const power::WsnLoad::Params& lp = spec.base.load;
  cx.burst_j = lp.sense_power * lp.sense_duration + lp.tx_power * lp.tx_duration;
  cx.sleep_power = lp.sleep_power;
  cx.duration = env.duration;
  cx.events_base = static_cast<std::uint64_t>(env.schedule.segments.size()) +
                   static_cast<std::uint64_t>(env.schedule.intervals.size());

  // tables.slots >= 2 guards the degenerate always-dark env, where the
  // lane kernel's in-bounds gather invariant has no table to stand on
  // (the scalar kernel's slot_of handles it per lookup).
  const bool lanes_ok = spec.soa_kernel == SoaKernel::kLanes && env.tables.slots >= 2 &&
                        internal::lanes_supported();

  for (const AxisRun& run : runs) {
    const AxisPlan& ax = plan.axes[run.axis];
    const bool obs_on = obs::enabled();
    std::optional<obs::Tracer::Span> axis_span;
    if (obs_on) axis_span.emplace(obs::tracer(), "soa_axis_run", "fleet");

    const sched::EdgeOverlay::Interval* ovs =
        ax.eval == AxisEval::kSampleHold
            ? env.overlays[static_cast<std::size_t>(ax.focv_overlay)].intervals.data()
            : nullptr;
    const std::uint32_t* run_members = members.data() + run.lo;
    const std::size_t count = run.hi - run.lo;
    const bool use_lanes = lanes_ok && ax.eval != AxisEval::kPrototype;
    internal::KernelTotals totals;
    if (use_lanes) {
      totals = internal::run_axis_lanes<Q>(cx, ax, ovs, draws, run_members, count, reports);
    } else {
      mppt::MpptController* proto =
          clones[run.axis] != nullptr ? clones[run.axis].get() : nullptr;
      totals =
          internal::run_axis_scalar<Q>(cx, ax, ovs, draws, run_members, count, proto, reports);
    }

    if (obs_on) {
      static const obs::CounterId nodes_id = obs::metrics().counter("fleet.soa.nodes_swept");
      static const obs::CounterId ivs_id = obs::metrics().counter("fleet.soa.intervals_swept");
      static const obs::CounterId slow_id = obs::metrics().counter("fleet.soa.slow_advances");
      static const obs::CounterId flips_id = obs::metrics().counter("fleet.soa.store_flips");
      const double nodes = static_cast<double>(count);
      const double intervals = static_cast<double>(env.schedule.intervals.size());
      obs::metrics().add(nodes_id, nodes);
      obs::metrics().add(ivs_id, nodes * intervals);
      obs::metrics().add(slow_id, static_cast<double>(totals.slow));
      obs::metrics().add(flips_id, static_cast<double>(totals.flips));
      axis_span->arg("axis", static_cast<double>(run.axis));
      axis_span->arg("law", ax.law == mppt::MacroLaw::kSampleHold ? "sample_hold" : "memoryless");
      axis_span->arg("kernel", use_lanes ? "lanes" : "scalar");
      axis_span->arg("nodes", nodes);
      axis_span->arg("intervals", intervals);
      axis_span->arg("slow_advances", static_cast<double>(totals.slow));
      axis_span->arg("store_flips", static_cast<double>(totals.flips));
    }
  }
}

}  // namespace

void run_batch(const SoaPlan& plan, const FleetSpec& spec, const std::vector<NodeDraw>& draws,
               const std::vector<std::uint32_t>& members,
               std::vector<node::NodeReport>& reports) {
  if (members.empty()) return;
  // One clone per generic-memoryless axis per call: kMemoryless step()
  // is pure, so a single reset instance serves every node
  // deterministically. Closed-form axes (sample/hold, affine) never
  // touch a controller object.
  std::vector<std::unique_ptr<mppt::MpptController>> clones(plan.axes.size());
  for (std::size_t a = 0; a < plan.axes.size(); ++a) {
    if (plan.axes[a].batch && plan.axes[a].eval == AxisEval::kPrototype &&
        plan.axes[a].proto != nullptr) {
      clones[a] = plan.axes[a].proto->clone();
      clones[a]->reset();
    }
  }
  std::vector<std::vector<std::uint32_t>> by_env(plan.envs.size());
  for (const std::uint32_t k : members) {
    require(draws[k].env_index < plan.envs.size(), "soa::run_batch: draw/plan env mismatch");
    require(plan.axes[draws[k].policy_index].batch,
            "soa::run_batch: member's axis is not batchable");
    by_env[draws[k].env_index].push_back(k);
  }
  for (std::size_t e = 0; e < plan.envs.size(); ++e) {
    if (by_env[e].empty()) continue;
    if (plan.envs[e].tables.quantized) {
      run_env<true>(plan, plan.envs[e], spec, draws, by_env[e], clones, reports);
    } else {
      run_env<false>(plan, plan.envs[e], spec, draws, by_env[e], clones, reports);
    }
  }
}

}  // namespace focv::fleet::soa
