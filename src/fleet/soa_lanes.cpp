// Interval-major, lane-batched SoA sweep kernels.
//
// The scalar kernel (soa_scalar.cpp) walks the schedule once per node
// with a transient NodeState. This kernel flips the loop order: nodes
// of an axis run live in contiguous 64-byte-aligned per-field arrays,
// and blocks of W = simd::kLanes nodes advance through every interval
// of the flat schedule together — table-slot lookup, curve and P(V)
// gathers, the closed-form controller laws and the supercapacitor
// advance all run width-W, with per-node branches turned into bitwise
// selects. Tail blocks are padded with replicas of the last real node
// so no lane ever asks "am I real"; replica results are discarded at
// finalize.
//
// BYTE-IDENTITY ARGUMENT (vs run_axis_scalar, which the dispatcher and
// tests/fleet/soa_lanes_test.cpp hold it to):
//
//  1. Same expression trees. Every lane evaluates exactly the scalar
//     kernel's arithmetic — same association, same order, through the
//     shared helpers of soa_internal.hpp — and both TUs are compiled
//     with -ffp-contract=off, so no FMA contraction can fuse an
//     (a*b)+c differently in one kernel than the other. simd.hpp ops
//     are the per-lane IEEE scalar ops; there are no horizontal
//     reductions anywhere on the state path.
//  2. Branches become selects with exact identities. Divergent scalar
//     branches (running gate, droop dead/whole, converter guards,
//     table-edge clamps) are computed on all lanes and resolved with
//     bitwise select(), which is a pure bit blend — a masked-off lane
//     contributes exactly +0.0 to an accumulator, and every
//     accumulator here is non-negative with x + 0.0 == x bitwise, so
//     masked adds equal the scalar "skipped add". Values that scalar
//     control flow never computes (dark or dead lanes) are sanitized
//     before any float->int cast and then discarded by the selects.
//  3. Uniform branches stay branches. Per-interval facts (dark
//     segment, pre_frac >= 1, constant-light single-point quadrature)
//     and per-axis facts (droop, min_lux gate, table presence) are the
//     same for every lane, so they remain ordinary branches taken
//     identically to the scalar kernel.
//  4. Rare per-node work falls back to the shared scalar routine. A
//     lane whose store crosses usable() inside an interval keeps its
//     pre-interval state (the selects preserve it), then
//     internal::advance_slow — the same function the scalar kernel
//     calls — replays that one node's interval in lane order.
//  5. Fixed-order merges. Per-node accumulators live in per-node array
//     slots; nothing is summed across lanes. Reports are written per
//     member index exactly as the scalar kernel writes them.
//
// ISA: on x86-64 this TU is compiled with -mavx2 (see
// src/fleet/CMakeLists.txt) so the table gathers lower to vgatherdpd /
// vpgatherdd instead of serial insert chains; the dispatcher gates
// every call through lanes_supported() and falls back to the scalar
// kernel on pre-AVX2 hardware (same bytes, less throughput). -mavx2
// does NOT enable FMA, matching -ffp-contract=off. The extern template
// declarations below keep this TU from emitting AVX2-compiled COMDAT
// copies of shared helpers that baseline TUs could link against.

#include "common/simd.hpp"
#include "fleet/soa_internal.hpp"

// AlignedBuffer's members are instantiated baseline-compiled in
// soa_plan.cpp; calls from here inline or resolve to those symbols.
extern template class focv::AlignedBuffer<double>;
extern template class focv::AlignedBuffer<std::uint32_t>;

namespace focv::fleet::soa::internal {

namespace {

using simd::DVec;
using simd::IVec;
using simd::MVec;

constexpr int W = simd::kLanes;

#define FOCV_LANES_INLINE __attribute__((always_inline)) inline

/// slot_of() on W lanes: clamped table slots, interpolation fractions
/// and the lit mask. Dark lanes are sanitized to a finite in-range
/// coordinate before floor/cast; their slot is forced to 0 so gathers
/// stay in bounds, and the lit mask voids everything read through them.
struct SlotLanes {
  simd::IVec k;
  DVec f;
  MVec lit;
};

FOCV_LANES_INLINE SlotLanes slot_lanes(const DenseTables& tb, DVec x) {
  SlotLanes s;
  const DVec dark_x = simd::broadcast(kDarkX);
  s.lit = x >= dark_x;
  const DVec xs = simd::select(s.lit, x, dark_x);
  const DVec jf = simd::floor(xs);
  const DVec lo = simd::broadcast(static_cast<double>(tb.grid_lo));
  const DVec hi = simd::broadcast(static_cast<double>(tb.grid_lo + tb.slots - 2));
  DVec f = xs - jf;
  f = simd::select(jf < lo, simd::broadcast(0.0),
                   simd::select(jf > hi, simd::broadcast(1.0), f));
  const DVec jc = simd::clamp(jf, lo, hi);
  // jc and grid_lo are both integer-valued doubles, so jc - grid_lo is
  // exact and the int32 truncation equals the scalar kernel's
  // static_cast of the clamped slot. Dark lanes route to slot 0.
  const DVec kd = simd::select(s.lit, jc - lo, simd::broadcast(0.0));
  s.k = simd::to_int(kd);
  s.f = simd::select(s.lit, f, simd::broadcast(0.0));
  return s;
}

struct CurveLanes {
  DVec voc;
  DVec pmpp;
};

/// curve_from() on W lanes: gathers of the two bracketing slot entries,
/// lane-wide interpolation, dark lanes voided to {0, 0}. Slot entries
/// are gathered as strided scalar fields off the first member — SlotF
/// is 3 doubles {voc, pmpp, inv_voc}, SlotQ is 4 int32-sized fields
/// {voc, pmpp, inv_voc as double} — reproducing entry_voc / entry_pmpp
/// of soa_internal.hpp load for load (and for the quantized mode,
/// multiply for multiply: 1e-6 * double(voc), 1e-9 * double(pmpp)).
template <bool Q>
FOCV_LANES_INLINE CurveLanes curve_lanes(const DenseTables& tb,
                                                        const SlotLanes& s) {
  DVec voc0;
  DVec voc1;
  DVec pm0;
  DVec pm1;
  if constexpr (Q) {
    const std::int32_t* qb = &tb.slot_q[0].voc;
    const IVec j = s.k * simd::broadcast_i(4);
    const DVec sv = simd::broadcast(1e-6);
    const DVec sp = simd::broadcast(1e-9);
    voc0 = sv * simd::to_double(simd::gather(qb, j));
    voc1 = sv * simd::to_double(simd::gather(qb, j + simd::broadcast_i(4)));
    pm0 = sp * simd::to_double(simd::gather(qb, j + simd::broadcast_i(1)));
    pm1 = sp * simd::to_double(simd::gather(qb, j + simd::broadcast_i(5)));
  } else {
    const double* fb = &tb.slot_f[0].voc;
    const IVec j = s.k * simd::broadcast_i(3);
    voc0 = simd::gather(fb, j);
    voc1 = simd::gather(fb, j + simd::broadcast_i(3));
    pm0 = simd::gather(fb, j + simd::broadcast_i(1));
    pm1 = simd::gather(fb, j + simd::broadcast_i(4));
  }
  const DVec zero = simd::broadcast(0.0);
  CurveLanes c;
  c.voc = simd::select(s.lit, voc0 + s.f * (voc1 - voc0), zero);
  c.pmpp = simd::select(s.lit, pm0 + s.f * (pm1 - pm0), zero);
  return c;
}

/// power_at() on W lanes: both bracketing row_power() interpolations
/// with the scalar guards (v <= 0, dark, rel >= 1) as selects. Row
/// positions of guarded-off lanes are routed to 0 before the int cast
/// so the gather indices are always in range.
template <bool Q>
FOCV_LANES_INLINE DVec power_lanes(const DenseTables& tb, const SlotLanes& s,
                                                  DVec v) {
  const DVec zero = simd::broadcast(0.0);
  const DVec one = simd::broadcast(1.0);
  const MVec valid = s.lit & (v > zero);
  // Uniform early-out, the block analogue of power_at's v <= 0 / dark
  // guard: every lane's result is select()ed to zero anyway, so
  // skipping the gathers cannot change a byte.
  if (!simd::any(valid)) return zero;
  const int n = tb.points;
  const DVec nscale = simd::broadcast(static_cast<double>(n - 1));
  const DVec n2 = simd::broadcast(static_cast<double>(n - 2));
  DVec row0;
  DVec row1;
  for (int off = 0; off < 2; ++off) {
    const IVec ko = s.k + simd::broadcast_i(off);
    // entry_inv_voc: a plain double in both table modes — SlotF stride
    // 3 doubles at field offset 2, SlotQ stride 2 doubles at offset 1.
    DVec inv;
    if constexpr (Q) {
      inv = simd::gather(&tb.slot_q[0].inv_voc, ko * simd::broadcast_i(2));
    } else {
      inv = simd::gather(&tb.slot_f[0].voc, ko * simd::broadcast_i(3) + simd::broadcast_i(2));
    }
    const DVec rel = v * inv;
    const MVec ok = rel < one;
    const DVec pos = rel * nscale;
    const DVec pos_s = simd::select(ok & valid, pos, zero);
    // min(static_cast<int>(pos_s), n - 2) as lane ops: pos_s is already
    // sanitized to [0, n-1), so int32 truncation + a double-domain min
    // reproduce the scalar row index and its (double)m exactly; the
    // re-truncation of the clamped double recovers the exact int index.
    const IVec mi = simd::to_int(pos_s);
    DVec mdv = simd::to_double(mi);
    mdv = simd::select(mdv > n2, n2, mdv);
    // Power rows are contiguous (idx = k*points + m); a dense table
    // big enough to overflow int32 lane indices would be >16 GiB, far
    // past what build_tables can produce.
    const IVec pidx = ko * simd::broadcast_i(n) + simd::to_int(mdv);
    DVec pav;
    DVec pbv;
    if constexpr (Q) {
      const DVec sq = simd::broadcast(1e-9);
      pav = sq * simd::to_double(simd::gather(tb.qpower.data(), pidx));
      pbv = sq * simd::to_double(simd::gather(tb.qpower.data(), pidx + simd::broadcast_i(1)));
    } else {
      pav = simd::gather(tb.power.data(), pidx);
      pbv = simd::gather(tb.power.data(), pidx + simd::broadcast_i(1));
    }
    const DVec t = pos_s - mdv;
    const DVec interp = pav + t * (pbv - pav);
    const DVec r = simd::select(ok, interp, zero);
    if (off == 0) {
      row0 = r;
    } else {
      row1 = r;
    }
  }
  return simd::select(valid, row0 + s.f * (row1 - row0), zero);
}

/// BuckBoostConverter::output_power on W lanes (converter.hpp): the
/// knee ratio and efficiency in the scalar association, the fixed-loss
/// floor and both guards as selects. p is always >= 0 here so the knee
/// denominator stays positive.
FOCV_LANES_INLINE DVec conv_lanes(const power::BuckBoostConverter::Params& cp,
                                                 DVec p, DVec v) {
  const DVec zero = simd::broadcast(0.0);
  const MVec ok = (p > zero) & (v >= simd::broadcast(cp.min_input_voltage)) &
                  (v <= simd::broadcast(cp.max_input_voltage));
  const DVec knee = p / (p + simd::broadcast(cp.input_power_knee));
  const DVec conv = (p * simd::broadcast(cp.efficiency_peak)) * knee;
  const DVec fixed = simd::broadcast(cp.fixed_loss);
  const DVec out = simd::select(conv > fixed, conv - fixed, zero);
  return simd::select(ok, out, zero);
}

}  // namespace

template <bool Q>
KernelTotals run_axis_lanes(const EnvContext& cx, const AxisPlan& ax,
                                           const sched::EdgeOverlay::Interval* ovs,
                                           const std::vector<NodeDraw>& draws,
                                           const std::uint32_t* members, std::size_t count,
                                           std::vector<node::NodeReport>& reports) {
  const DenseTables& tb = *cx.tb;
  const power::BuckBoostConverter::Params& cp = cx.conv->params();
  const std::size_t blocks = (count + static_cast<std::size_t>(W) - 1) / static_cast<std::size_t>(W);
  const std::size_t padded = blocks * static_cast<std::size_t>(W);

  // Chunk state as resident per-field arrays (cache-line aligned, one
  // slot per lane). Tail lanes replicate the last real node.
  AlignedBuffer<double> a_scale(padded);
  AlignedBuffer<double> a_xoff(padded);
  AlignedBuffer<double> a_div(padded);
  AlignedBuffer<double> a_oh(padded);
  AlignedBuffer<double> a_loadw(padded);
  AlignedBuffer<double> a_e(padded);
  AlignedBuffer<double> a_ideal(padded);
  AlignedBuffer<double> a_harv(padded);
  AlignedBuffer<double> a_deliv(padded);
  AlignedBuffer<double> a_over(padded);
  AlignedBuffer<double> a_served(padded);
  AlignedBuffer<double> a_brownt(padded);
  AlignedBuffer<double> a_cold(padded);
  AlignedBuffer<std::uint32_t> a_bsteps(padded);
  AlignedBuffer<std::uint32_t> a_flips(padded);
  AlignedBuffer<std::uint32_t> a_slow(padded);
  for (std::size_t i = 0; i < padded; ++i) {
    const std::uint32_t node = members[std::min(i, count - 1)];
    const NodeState st = init_node(cx, draws[node], ax);
    a_scale[i] = st.scale;
    a_xoff[i] = st.xoff;
    a_div[i] = st.divider;
    a_oh[i] = st.oh;
    a_loadw[i] = st.load_w;
    a_e[i] = st.e;
    a_cold[i] = st.cold_t;
  }

  const double* width_arr = cx.width;
  const double* span_arr = cx.span;
  const double* mean_arr = cx.mean_u;
  const double* tstart_arr = cx.t_start;
  const double* xlo = cx.x_lo;
  const double* xhi = cx.x_hi;
  const double* dec_arr = cx.decay;
  const std::uint32_t* nstep_arr = cx.nsteps;
  const std::uint8_t* dark_arr = cx.dark;
  const std::size_t n_iv = cx.n_intervals;

  const bool sample_hold = ax.eval == AxisEval::kSampleHold;
  const double min_lux = ax.min_lux;
  const bool gate = min_lux > 0.0;
  const bool has_droop = ax.droop > 0.0;

  const DVec zero = simd::broadcast(0.0);
  const DVec one = simd::broadcast(1.0);
  const DVec half = simd::broadcast(0.5);
  const MVec true_v = zero == zero;
  const DVec tau_v = simd::broadcast(cx.tau);
  const DVec emax_v = simd::broadcast(cx.e_max);
  const DVec euse_v = simd::broadcast(cx.e_use);
  const DVec minlux_v = simd::broadcast(min_lux);
  // Sample-and-hold axis constants (unused lanes of the affine path).
  const DVec inoff_v = simd::broadcast(ax.in_off);
  const DVec vc_v = simd::broadcast(ax.val_const);
  const DVec thr_v = simd::broadcast(ax.threshold);
  const DVec droop_v = simd::broadcast(ax.droop);
  const DVec invalpha_v = simd::broadcast(1.0 / ax.alpha);
  const DVec invdroop_v = simd::broadcast(has_droop ? 1.0 / ax.droop : 0.0);
  const DVec period_v = simd::broadcast(ax.period);
  const DVec invperiod_v = simd::broadcast(sample_hold ? 1.0 / ax.period : 0.0);
  // Affine axis constants.
  const DVec affv_v = simd::broadcast(ax.aff_v);
  const DVec affk_v = simd::broadcast(ax.aff_k);
  const DVec affs1_v = simd::broadcast(ax.aff_s1);
  const DVec affs2_v = simd::broadcast(ax.aff_s2);
  const DVec affact_v = simd::broadcast(ax.aff_act);

  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t off = b * static_cast<std::size_t>(W);
    const DVec scale_v = simd::load(a_scale.data() + off);
    const DVec xoff_v = simd::load(a_xoff.data() + off);
    const DVec div_v = simd::load(a_div.data() + off);
    const DVec oh_v = simd::load(a_oh.data() + off);
    const DVec loadw_v = simd::load(a_loadw.data() + off);
    DVec e_v = simd::load(a_e.data() + off);
    DVec ideal_v = simd::load(a_ideal.data() + off);
    DVec harv_v = simd::load(a_harv.data() + off);
    DVec deliv_v = simd::load(a_deliv.data() + off);
    DVec over_v = simd::load(a_over.data() + off);
    DVec served_v = simd::load(a_served.data() + off);
    DVec brownt_v = simd::load(a_brownt.data() + off);
    DVec cold_v = simd::load(a_cold.data() + off);

    // Lane-wide closed-form supercap advance: the scalar kernel's
    // advance_span with the crossing test as a mask. Lanes that need
    // the slow step-split keep their pre-interval state through the
    // selects; the state is spilled, fixed per lane by the SAME
    // internal::advance_slow the scalar kernel calls, and reloaded.
    // (Kept fused with the table/eval pipeline: the advance is a
    // serial loop-carried chain through e_v, and interleaving it with
    // the independent per-interval table work lets the out-of-order
    // core hide its latency — a staged two-pass split measures ~35%
    // slower on the 10k micro case.)
    const auto advance = [&](std::uint32_t ii, DVec delivered,
                             DVec oh_drain) __attribute__((always_inline)) {
      const MVec usable = e_v >= euse_v;
      const DVec net = (delivered - oh_drain) - simd::select(usable, loadw_v, zero);
      const DVec e_inf = (half * net) * tau_v;
      const MVec fast = (e_v != euse_v) & (((e_v - euse_v) * (e_inf - euse_v)) >= zero);
      const MVec healthy = fast & usable;
      const DVec len = simd::broadcast(span_arr[ii]);
      const DVec e_new =
          simd::clamp(e_inf + (e_v - e_inf) * simd::broadcast(dec_arr[ii]), zero, emax_v);
      e_v = simd::select(fast, e_new, e_v);
      served_v = served_v + simd::select(healthy, loadw_v * len, zero);
      const MVec brown = fast & ~usable;
      brownt_v = brownt_v + simd::select(brown, len, zero);
      // One reduction gates both rare paths: a lane outside
      // fast & usable is either browned out (bstep counters) or
      // crossing usable() (scalar step-split fallback).
      if (simd::all(healthy)) return;
      if (simd::any(brown)) {
        for (int l = 0; l < W; ++l) {
          if (brown.lane(l)) a_bsteps[off + static_cast<std::size_t>(l)] += nstep_arr[ii];
        }
      }
      if (!simd::all(fast)) {
        simd::store(a_e.data() + off, e_v);
        simd::store(a_served.data() + off, served_v);
        simd::store(a_brownt.data() + off, brownt_v);
        for (int l = 0; l < W; ++l) {
          if (fast.lane(l)) continue;
          const std::size_t i = off + static_cast<std::size_t>(l);
          advance_slow(cx, cx.ivs[ii], a_loadw[i], delivered[l], oh_drain[l], dec_arr[ii],
                       SlowRefs{a_e[i], a_served[i], a_brownt[i], a_bsteps[i], a_flips[i],
                                a_slow[i]});
        }
        e_v = simd::load(a_e.data() + off);
        served_v = simd::load(a_served.data() + off);
        brownt_v = simd::load(a_brownt.data() + off);
      }
    };

    for (std::uint32_t ii = 0; ii < n_iv; ++ii) {
      if (dark_arr[ii] != 0) {
        advance(ii, zero, zero);
        continue;
      }
      const DVec w = simd::broadcast(width_arr[ii]);
      const bool two_pt = xlo[ii] != xhi[ii];
      const SlotLanes s_lo = slot_lanes(tb, xoff_v + simd::broadcast(xlo[ii]));
      const CurveLanes c_lo = curve_lanes<Q>(tb, s_lo);
      SlotLanes s_hi = s_lo;
      CurveLanes c_hi = c_lo;
      if (two_pt) {
        s_hi = slot_lanes(tb, xoff_v + simd::broadcast(xhi[ii]));
        c_hi = curve_lanes<Q>(tb, s_hi);
      }
      ideal_v = ideal_v + (half * (c_lo.pmpp + c_hi.pmpp)) * w;
      const MVec running =
          gate ? (scale_v * simd::broadcast(mean_arr[ii])) >= minlux_v : true_v;
      cold_v = simd::select(running & (cold_v < zero), simd::broadcast(tstart_arr[ii]), cold_v);
      // Whole block gated off: the scalar kernel's per-node !running
      // path, hoisted to the block when it is unanimous. Every
      // accumulator below selects on `running`, so the skipped work
      // contributes nothing.
      if (gate && !simd::any(running)) {
        advance(ii, zero, zero);
        continue;
      }

      DVec p_lo;
      DVec d_lo;
      if (sample_hold) {
        const sched::EdgeOverlay::Interval& ov = ovs[ii];
        if (ov.pre_frac >= 1.0) {
          over_v = over_v + simd::select(running, oh_v * w, zero);
          advance(ii, zero, simd::select(running, oh_v, zero));
          continue;
        }
        const DVec hs = simd::broadcast(1.0 - ov.disc);
        const DVec ab = simd::broadcast(1.0 - ov.pre_frac);
        const DVec avglag_v = simd::broadcast(ov.avg_lag);
        const auto eval = [&](const CurveLanes& c, const SlotLanes& s, DVec* p_out,
                              DVec* d_out) __attribute__((always_inline)) {
          const DVec value0 = (c.voc + inoff_v) * div_v + vc_v;
          MVec live;
          DVec frac;
          DVec lag;
          if (has_droop) {
            const DVec lag_star = (value0 - thr_v) * invdroop_v;
            live = lag_star > zero;
            const MVec whole = lag_star >= period_v;
            frac = simd::select(whole, one, lag_star * invperiod_v);
            lag = simd::select(whole, avglag_v, half * lag_star);
          } else {
            live = value0 >= thr_v;
            frac = one;
            lag = zero;
          }
          // All lanes below the ACTIVE threshold: the scalar eval's
          // early return, unanimous. Both outputs are select()ed on
          // `live`, so the skipped power/converter work is all zeros.
          if (!simd::any(live)) {
            *p_out = zero;
            *d_out = zero;
            return;
          }
          const DVec v = (value0 - droop_v * lag) * invalpha_v;
          const DVec act = ab * frac;
          const DVec p_full = power_lanes<Q>(tb, s, v) * hs;
          *p_out = simd::select(live, p_full * act, zero);
          *d_out = simd::select(live, conv_lanes(cp, p_full, v) * act, zero);
        };
        eval(c_lo, s_lo, &p_lo, &d_lo);
        DVec p_hi = p_lo;
        DVec d_hi = d_lo;
        if (two_pt) eval(c_hi, s_hi, &p_hi, &d_hi);
        p_lo = half * (p_lo + p_hi);
        d_lo = half * (d_lo + d_hi);
      } else {
        const auto eval = [&](const CurveLanes& c, const SlotLanes& s, DVec* p_out,
                              DVec* d_out) __attribute__((always_inline)) {
          const DVec v =
              ax.aff_const ? affv_v : affk_v * ((c.voc * affs1_v) * affs2_v);
          const DVec p = power_lanes<Q>(tb, s, v) * affact_v;
          *p_out = p;
          *d_out = conv_lanes(cp, p, v);
        };
        eval(c_lo, s_lo, &p_lo, &d_lo);
        DVec p_hi = p_lo;
        DVec d_hi = d_lo;
        if (two_pt) eval(c_hi, s_hi, &p_hi, &d_hi);
        p_lo = half * (p_lo + p_hi);
        d_lo = half * (d_lo + d_hi);
      }
      // p_lo/d_lo now hold the quadrature means p_bar/d_bar.
      harv_v = harv_v + simd::select(running, p_lo * w, zero);
      deliv_v = deliv_v + simd::select(running, d_lo * w, zero);
      over_v = over_v + simd::select(running, oh_v * w, zero);
      advance(ii, simd::select(running, d_lo, zero), simd::select(running, oh_v, zero));
    }

    simd::store(a_e.data() + off, e_v);
    simd::store(a_ideal.data() + off, ideal_v);
    simd::store(a_harv.data() + off, harv_v);
    simd::store(a_deliv.data() + off, deliv_v);
    simd::store(a_over.data() + off, over_v);
    simd::store(a_served.data() + off, served_v);
    simd::store(a_brownt.data() + off, brownt_v);
    simd::store(a_cold.data() + off, cold_v);
  }

  KernelTotals totals;
  for (std::size_t i = 0; i < count; ++i) {
    NodeState st;
    st.e = a_e[i];
    st.ideal = a_ideal[i];
    st.harv = a_harv[i];
    st.deliv = a_deliv[i];
    st.over = a_over[i];
    st.served = a_served[i];
    st.brown_t = a_brownt[i];
    st.cold_t = a_cold[i];
    st.brown_steps = a_bsteps[i];
    st.flips = a_flips[i];
    st.slow = a_slow[i];
    finalize_node(cx, st, reports[members[i]]);
    totals.flips += a_flips[i];
    totals.slow += a_slow[i];
  }
  return totals;
}

template KernelTotals run_axis_lanes<false>(const EnvContext&, const AxisPlan&,
                                            const sched::EdgeOverlay::Interval*,
                                            const std::vector<NodeDraw>&, const std::uint32_t*,
                                            std::size_t, std::vector<node::NodeReport>&);
template KernelTotals run_axis_lanes<true>(const EnvContext&, const AxisPlan&,
                                           const sched::EdgeOverlay::Interval*,
                                           const std::vector<NodeDraw>&, const std::uint32_t*,
                                           std::size_t, std::vector<node::NodeReport>&);

}  // namespace focv::fleet::soa::internal
