// Internals shared by the SoA fleet engine's translation units:
//
//   soa_plan.cpp    — plan construction (tables, schedules, axis forms)
//   soa_scalar.cpp  — node-major scalar sweep kernels (the reference)
//   soa_lanes.cpp   — interval-major width-W lane kernels
//   soa.cpp         — run_batch dispatch, axis grouping, telemetry
//
// Everything here is arithmetic both kernels must execute IDENTICALLY:
// table slot resolution, dense-table reads, the interpolated P(V)
// lookup, per-node init/finalize, and the slow usable()-crossing store
// advance. The byte-identity contract between the kernels rests on the
// two kernel TUs inlining these exact expression trees (both TUs are
// compiled with -ffp-contract=off so no FMA contraction can split
// them).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "fleet/soa.hpp"
#include "node/harvester_node.hpp"
#include "power/converter.hpp"

namespace focv::fleet::soa::internal {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kGrid = node::CurveCache::kGridNodesPerLogLux;

/// Grid coordinate below which the cell is dark (x = 32 ln lux).
/// Namespace-scope so the hot loops read a plain double instead of
/// re-checking a function-local static's init guard on every lookup.
inline const double kDarkX = kGrid * std::log(node::CurveCache::kDarkLux);

struct Curve {
  double voc = 0.0;
  double pmpp = 0.0;
};

/// Table slot of grid coordinate x, clamped into the exported span
/// (nodes beyond the +-6 sigma export margin read the edge entries).
struct Slot {
  std::size_t k = 0;
  double f = 0.0;
  bool dark = true;
};

inline Slot slot_of(const DenseTables& tb, double x) {
  Slot s;
  if (x < kDarkX || tb.slots < 2) return s;
  s.dark = false;
  long j = static_cast<long>(std::floor(x));
  const long j_hi = tb.grid_lo + tb.slots - 2;
  if (j < tb.grid_lo) {
    j = tb.grid_lo;
    s.f = 0.0;
  } else if (j > j_hi) {
    j = j_hi;
    s.f = 1.0;
  } else {
    s.f = x - static_cast<double>(j);
  }
  s.k = static_cast<std::size_t>(j - tb.grid_lo);
  return s;
}

// Table readers are compiled once per mode (Q = quantized): the hot
// loops never branch on tb.quantized per access.
template <bool Q>
inline double entry_voc(const DenseTables& tb, std::size_t k) {
  if constexpr (Q) {
    return 1e-6 * static_cast<double>(tb.slot_q[k].voc);
  } else {
    return tb.slot_f[k].voc;
  }
}

template <bool Q>
inline double entry_pmpp(const DenseTables& tb, std::size_t k) {
  if constexpr (Q) {
    return 1e-9 * static_cast<double>(tb.slot_q[k].pmpp);
  } else {
    return tb.slot_f[k].pmpp;
  }
}

template <bool Q>
inline double entry_inv_voc(const DenseTables& tb, std::size_t k) {
  if constexpr (Q) {
    return tb.slot_q[k].inv_voc;
  } else {
    return tb.slot_f[k].inv_voc;
  }
}

template <bool Q>
inline double entry_power(const DenseTables& tb, std::size_t k, std::size_t m) {
  const std::size_t idx = k * static_cast<std::size_t>(tb.points) + m;
  if constexpr (Q) {
    return 1e-9 * static_cast<double>(tb.qpower[idx]);
  } else {
    return tb.power[idx];
  }
}

template <bool Q>
inline Curve curve_from(const DenseTables& tb, const Slot& s) {
  Curve c;
  if (s.dark) return c;
  const double voc0 = entry_voc<Q>(tb, s.k);
  const double voc1 = entry_voc<Q>(tb, s.k + 1);
  const double pm0 = entry_pmpp<Q>(tb, s.k);
  const double pm1 = entry_pmpp<Q>(tb, s.k + 1);
  c.voc = voc0 + s.f * (voc1 - voc0);
  c.pmpp = pm0 + s.f * (pm1 - pm0);
  return c;
}

/// CurveCache::table_power on one exported row. `rel = v / Voc(row)` via
/// the precomputed reciprocal — the only difference from the cache's own
/// arithmetic is mul-by-reciprocal instead of divide, well inside the
/// engine's 0.1 % contract.
template <bool Q>
inline double row_power(const DenseTables& tb, std::size_t k, double v) {
  const double rel = v * entry_inv_voc<Q>(tb, k);
  if (rel >= 1.0) return 0.0;
  const int n = tb.points;
  const double pos = rel * static_cast<double>(n - 1);
  const int m = std::min(static_cast<int>(pos), n - 2);
  const double t = pos - static_cast<double>(m);
  const double p0 = entry_power<Q>(tb, k, static_cast<std::size_t>(m));
  const double p1 = entry_power<Q>(tb, k, static_cast<std::size_t>(m) + 1);
  return p0 + t * (p1 - p0);
}

/// CurveCache::power_at_lux on an already-resolved slot (the engine
/// resolves each quadrature point's slot once and reuses it for the
/// Voc/Pmpp read and every P(V) lookup).
template <bool Q>
inline double power_at(const DenseTables& tb, const Slot& s, double v) {
  if (v <= 0.0 || s.dark) return 0.0;
  const double p0 = row_power<Q>(tb, s.k, v);
  const double p1 = row_power<Q>(tb, s.k + 1, v);
  return p0 + s.f * (p1 - p0);
}

/// Per-node control/storage state and accumulators. The scalar kernel
/// keeps one instance register-resident for a node's whole day; the
/// lane kernel scatters/gathers the same fields through its aligned
/// per-field arrays so init and finalize stay one shared code path.
/// `e` carries the supercapacitor ENERGY (the voltage is monotonic in
/// it, so the usable() gate compares energies and the voltage is only
/// materialised where a controller senses it).
struct NodeState {
  double scale = 0.0, xoff = 0.0, divider = 0.0, oh = 0.0, load_w = 0.0, e = 0.0;
  double prev_p = 0.0, prev_v = 0.0;
  double ideal = 0.0, harv = 0.0, deliv = 0.0, over = 0.0, served = 0.0, brown_t = 0.0;
  double cold_t = -1.0;
  std::uint32_t brown_steps = 0, flips = 0;
  std::uint32_t slow = 0;  ///< intervals replayed step-by-step (telemetry only)
};

/// Everything an axis-run kernel needs about its environment and the
/// shared storage model, resolved to plain pointers/doubles once per
/// run_env call so the kernels touch no plan objects on the hot path.
struct EnvContext {
  const DenseTables* tb = nullptr;
  const power::BuckBoostConverter* conv = nullptr;
  const double* t = nullptr;  ///< trace step boundaries
  const sched::BatchInterval* ivs = nullptr;
  const sched::BatchSegment* segments = nullptr;
  std::size_t n_segments = 0;
  std::size_t n_intervals = 0;
  const double* width = nullptr;
  const double* span = nullptr;
  const double* mean_u = nullptr;
  const double* t_start = nullptr;
  const double* x_lo = nullptr;
  const double* x_hi = nullptr;
  const double* decay = nullptr;
  const std::uint32_t* nsteps = nullptr;
  const std::uint8_t* dark = nullptr;  ///< flat interval-order dark flags
  // Storage model.
  double inv_cap2 = 0.0, tau = 0.0, e_max = 0.0, e_use = 0.0, e_init = 0.0;
  // Node init constants.
  double lux_scale = 1.0, burst_j = 0.0, sleep_power = 0.0;
  // Report constants.
  double duration = 0.0;
  std::uint64_t events_base = 0;
};

inline NodeState init_node(const EnvContext& cx, const NodeDraw& d, const AxisPlan& ax) {
  NodeState st;
  st.scale = cx.lux_scale * d.attenuation * d.cell_factor;
  st.xoff = kGrid * std::log(st.scale);
  st.divider = d.divider_ratio * ax.div_factor;
  st.oh = ax.law == mppt::MacroLaw::kSampleHold
              ? ax.oh_rep + ax.oh_div * (ax.div_rep - st.divider)
              : ax.oh_const;
  st.load_w = cx.sleep_power + cx.burst_j / d.report_period;
  st.e = cx.e_init;
  return st;
}

inline void finalize_node(const EnvContext& cx, const NodeState& st, node::NodeReport& r) {
  r = node::NodeReport{};
  r.duration = cx.duration;
  r.harvested_energy = st.harv;
  r.delivered_energy = st.deliv;
  r.overhead_energy = st.over;
  r.load_energy_served = st.served;
  r.ideal_mpp_energy = st.ideal;
  r.coldstart_time = st.cold_t;
  r.brownout_steps = static_cast<int>(st.brown_steps);
  r.brownout_time = st.brown_t;
  r.final_store_voltage = std::sqrt(st.e * cx.inv_cap2);
  r.steps = cx.n_intervals;
  r.events = cx.events_base + st.flips;
}

/// The store fields the slow advance mutates — plain references so the
/// scalar kernel passes NodeState members and the lane kernel passes
/// its array slots; either way the SAME function body runs, so a lane
/// that crosses usable() is bit-identical to its scalar twin.
struct SlowRefs {
  double& e;
  double& served;
  double& brown_t;
  std::uint32_t& brown_steps;
  std::uint32_t& flips;
  std::uint32_t& slow;
};

/// The rare case: the store crosses usable() inside the interval, so
/// the advance splits at step boundaries exactly as
/// MacroStepper::advance_store_span does. Kept out of the kernels' fast
/// paths — they handle virtually every interval with one decay multiply.
inline void advance_slow(const EnvContext& cx, const sched::BatchInterval& iv, double load_w,
                         double delivered, double oh_drain, double dec_full, SlowRefs s) {
  ++s.slow;
  const double* t = cx.t;
  std::uint32_t p = iv.a;
  double e = s.e;
  while (p < iv.b) {
    const bool usable = e >= cx.e_use;
    const double net = delivered - oh_drain - (usable ? load_w : 0.0);
    const double e_inf = 0.5 * net * cx.tau;
    std::uint32_t q = iv.b;
    double flip_dt = kInf;
    if (e == cx.e_use) {
      flip_dt = 0.0;
    } else if ((e - cx.e_use) * (e_inf - cx.e_use) < 0.0) {
      flip_dt = -0.5 * cx.tau * std::log((cx.e_use - e_inf) / (e - e_inf));
    }
    if (t[p] + flip_dt < t[q]) {
      const double* it = std::upper_bound(t + p, t + q + 1, t[p] + flip_dt);
      auto qf = static_cast<std::uint32_t>(it - t);
      if (qf <= p) qf = p + 1;
      if (qf < q) q = qf;
      ++s.flips;
    }
    const double len = t[q] - t[p];
    const double dec = (p == iv.a && q == iv.b) ? dec_full : std::exp(-2.0 * len / cx.tau);
    e = std::clamp(e_inf + (e - e_inf) * dec, 0.0, cx.e_max);
    if (usable) {
      s.served += load_w * len;
    } else {
      s.brown_steps += q - p;
      s.brown_t += len;
    }
    p = q;
  }
  s.e = e;
}

/// What a kernel reports back to the dispatcher for telemetry.
struct KernelTotals {
  std::uint64_t flips = 0;
  std::uint64_t slow = 0;
};

/// Node-major scalar sweep over one axis run (members[0..count)):
/// the PR 7 reference path, handling every AxisEval. `proto` is the
/// run's cloned controller for kPrototype axes (unused otherwise).
template <bool Q>
KernelTotals run_axis_scalar(const EnvContext& cx, const AxisPlan& ax,
                             const sched::EdgeOverlay::Interval* ovs,
                             const std::vector<NodeDraw>& draws, const std::uint32_t* members,
                             std::size_t count, mppt::MpptController* proto,
                             std::vector<node::NodeReport>& reports);

/// Interval-major lane-batched sweep over one axis run. Only valid for
/// closed-form axes (eval != kPrototype). Byte-identical to
/// run_axis_scalar by construction (see soa_lanes.cpp).
///
/// On x86-64 the defining TU (soa_lanes.cpp) is compiled with a
/// TU-level -mavx2 so the simd.hpp gather/floor/movemask intrinsics are
/// usable everywhere in it, including inside lambdas — a per-function
/// target attribute cannot reach those and blocks always_inline
/// helpers. Two guards keep the AVX2 code from leaking into baseline
/// TUs through COMDAT selection: every simd.hpp helper is
/// always_inline (no out-of-line copies exist), and the lanes TU
/// suppresses its AlignedBuffer instantiations with extern template —
/// the baseline definitions come from soa_plan.cpp. The entry points
/// below exchange only scalar/pointer/reference arguments, so the
/// cross-TU call ABI is ISA-independent, and the dispatcher gates every
/// call through lanes_supported().
template <bool Q>
KernelTotals run_axis_lanes(const EnvContext& cx, const AxisPlan& ax,
                            const sched::EdgeOverlay::Interval* ovs,
                            const std::vector<NodeDraw>& draws, const std::uint32_t* members,
                            std::size_t count, std::vector<node::NodeReport>& reports);

/// True when this build/host can run the lane kernels (always true off
/// x86-64; on x86-64 the kernels are compiled for AVX2 and the dispatch
/// falls back to the scalar kernel on older hardware — results are
/// byte-identical either way, only throughput differs).
[[nodiscard]] bool lanes_supported();

}  // namespace focv::fleet::soa::internal
