// Struct-of-arrays fleet engine: batched event queues + dense curve
// tables for million-node runs.
//
// The per-node engine (fleet.cpp + sched/macro_stepper.cpp) owns one
// controller, one supercapacitor and one event loop per node; at 10k+
// nodes the per-node object churn and virtual dispatch dominate. This
// engine flips the loop order: a chunk of nodes is held as contiguous
// per-field arrays (store voltage, divider draw, log-lux grid offset,
// energy accumulators) and one shared batched event schedule per
// environment (sched/batch_schedule.hpp) advances the WHOLE chunk
// interval by interval in tight loops over dense surrogate power tables
// (CurveCache::export_range) — no per-node steppers, no per-node curve
// caches, no virtual calls on the sample-and-hold path.
//
// Semantics: each batched interval reproduces
// MacroStepper::process_interval — the same 2-point illuminance
// quadrature, the same converter and closed-form supercapacitor
// advance with usable() crossings snapped to step boundaries — so the
// engine lives inside the event stepper's existing 0.1 % equivalence
// contract rather than defining a new one. The sample-and-hold command
// is integrated analytically per interval (mean sample age + edge count
// from the shared EdgeOverlay) instead of replaying every astable edge;
// memoryless controllers are evaluated through one cloned prototype per
// chunk exactly as process_interval would.
//
// Determinism: the plan (schedules, tables, overlays) is immutable and
// built before any chunk runs; chunks share nothing mutable, so jobs=1
// and jobs=N produce byte-identical FleetReports in both table modes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/aligned.hpp"
#include "fleet/fleet.hpp"
#include "node/curve_cache.hpp"
#include "sched/batch_schedule.hpp"

namespace focv::fleet::soa {

/// Dense surrogate curve tables for one environment: flat copies of the
/// CurveCache grid entries over the illuminance span any draw of this
/// fleet can reach (a +-6 sigma margin on the heterogeneity bounds;
/// lookups clamp at the edges). kFloat stores the entry doubles
/// verbatim (same interpolation arithmetic as CurveCache::at_lux);
/// kQuantized stores int32 microvolts / nanowatts — half the bytes per
/// entry, with sub-nanowatt rounding per lookup.
struct DenseTables {
  bool quantized = false;
  long grid_lo = 0;  ///< grid index of slot 0
  int slots = 0;
  int points = 0;
  /// Slot-indexed entries stay interleaved: one quadrature point reads
  /// Voc, Pmpp and 1/Voc for slots k and k+1, so packing them per slot
  /// touches one or two cache lines instead of a line per array.
  /// inv_voc (1 / the mode's own Voc value) turns the row-position
  /// division in every P(V) lookup into a multiply.
  struct SlotF {
    double voc = 0.0, pmpp = 0.0, inv_voc = 0.0;
  };
  struct SlotQ {
    std::int32_t voc = 0, pmpp = 0;  ///< uV / nW
    double inv_voc = 0.0;
  };
  std::vector<SlotF> slot_f;             ///< kFloat [slots]
  std::vector<SlotQ> slot_q;             ///< kQuantized [slots]
  std::vector<double> power;             ///< kFloat [slot * points + m]
  std::vector<std::int32_t> qpower;      ///< kQuantized, nW
  [[nodiscard]] std::size_t bytes() const {
    return sizeof(SlotF) * slot_f.size() + sizeof(SlotQ) * slot_q.size() +
           sizeof(double) * power.size() + sizeof(std::int32_t) * qpower.size();
  }
};

/// How a batched axis' controller output is evaluated per interval.
/// kSampleHold and kAffineVoc are closed forms both kernels implement
/// (the lane kernel runs them width-W); kPrototype needs a virtual
/// step() on a cloned controller and always runs on the scalar kernel.
enum class AxisEval {
  kPrototype,   ///< generic memoryless controller via its cloned prototype
  kSampleHold,  ///< the paper's S&H FOCV closed form
  kAffineVoc,   ///< memoryless law that is affine in Voc (fixed / pilot)
};

/// Per-policy-axis batch strategy, resolved once per run.
struct AxisPlan {
  bool batch = false;               ///< false: node falls back to the per-node engine
  mppt::MacroLaw law = mppt::MacroLaw::kPerStepOnly;
  AxisEval eval = AxisEval::kPrototype;
  double min_lux = 0.0;
  int focv_overlay = -1;            ///< index into EnvPlan::overlays (kSampleHold only)
  // Memoryless controllers: the shared prototype, cloned once per chunk.
  std::shared_ptr<const mppt::MpptController> proto;
  double oh_const = 0.0;            ///< overhead power, memoryless axes [W]
  // kAffineVoc closed form, extracted from the prototype's parameters:
  // v = aff_v when aff_const, else aff_k * ((Voc * aff_s1) * aff_s2) —
  // the exact association step() computes, so the closed form is
  // bit-identical to the virtual path it replaces. aff_act is the
  // constant harvest activity 1 - min(1, disconnect_fraction).
  bool aff_const = false;
  double aff_v = 0.0, aff_k = 0.0, aff_s1 = 1.0, aff_s2 = 1.0, aff_act = 1.0;
  // focv closed-form parameters (from the axis' representative
  // controller; only the divider ratio varies per node).
  double period = 0.0, on_s = 0.0, first_edge = 0.0;
  double droop = 0.0;               ///< hold droop rate [V/s]
  double alpha = 0.5, threshold = 0.9;
  double in_off = 0.0;              ///< input buffer offset [V]
  double val_const = 0.0;           ///< output offset - charge-injection drop [V]
  double div_rep = 0.0;             ///< divider the representative was built with
  double oh_rep = 0.0;              ///< overhead at div_rep [W]
  double oh_div = 0.0;              ///< d(overhead)/d(1 - divider) [W]
  double div_factor = 1.0;          ///< per-node divider = draw.divider_ratio * this
};

/// Per-environment shared state: the batched schedule, the dense curve
/// tables, and one astable edge overlay per sample-and-hold axis.
struct EnvPlan {
  sched::BatchSchedule schedule;
  AlignedBuffer<double> x_lo, x_hi;  ///< 32 ln(quadrature lux), per interval
  AlignedBuffer<double> decay;       ///< exp(-2 w / tau), per interval
  // Dense copies of the per-interval fields the inner loops touch every
  // iteration, so the hot path streams a few sequential cache-aligned
  // arrays instead of striding through the 88-byte BatchInterval
  // records.
  AlignedBuffer<double> width;       ///< iv.w (energy quadrature weight)
  AlignedBuffer<double> span;        ///< iv.t1 - iv.t0 (exact step span)
  AlignedBuffer<double> mean_u;      ///< iv.mean_u (running-gate input)
  AlignedBuffer<double> t_start;     ///< iv.t0 (cold-start stamp)
  AlignedBuffer<std::uint32_t> nsteps;  ///< iv.b - iv.a
  std::vector<sched::EdgeOverlay> overlays;
  DenseTables tables;
  const std::vector<double>* time = nullptr;  ///< trace step boundaries
  double duration = 0.0;
};

struct SoaPlan {
  std::vector<AxisPlan> axes;   ///< parallel to effective_policies()
  std::vector<EnvPlan> envs;    ///< parallel to spec.environments
  bool any_batch = false;
  // Shared storage model (batched nodes never carry batteries).
  double capacitance = 0.0, tau = 0.0, max_energy = 0.0;
  double min_useful_voltage = 0.0, min_useful_energy = 0.0, max_voltage = 0.0;
  double initial_voltage = 0.0;
  double base_lux_scale = 1.0;
};

/// Build the immutable plan, or nullptr when the spec as a whole cannot
/// batch (exact power model, battery, cold-start supervisor, burst
/// resolution, obs exact-shadow) — the caller then runs every node on
/// the per-node engine. `prepared` must hold one PreparedTrace per
/// environment; `cache` is the run's warm cache (tables are exported
/// from it).
[[nodiscard]] std::unique_ptr<const SoaPlan> build_plan(
    const FleetSpec& spec, const std::vector<PolicyAxis>& policies,
    const std::vector<std::optional<sched::PreparedTrace>>& prepared,
    node::CurveCache& cache);

/// Advance every draw listed in `members` (indices into `draws`; each
/// must reference a batchable axis) and write its NodeReport into
/// `reports[member]`. Deterministic: depends only on (plan, spec,
/// draws) — never on worker scheduling.
void run_batch(const SoaPlan& plan, const FleetSpec& spec, const std::vector<NodeDraw>& draws,
               const std::vector<std::uint32_t>& members,
               std::vector<node::NodeReport>& reports);

}  // namespace focv::fleet::soa
