// Internal helpers shared between the fleet translation units
// (fleet.cpp, report.cpp, soa.cpp). Not part of the public API.
#pragma once

#include <string>
#include <vector>

#include "fleet/fleet.hpp"

namespace focv::fleet::detail {

/// Skeleton report with every env/policy row present (so merges of
/// partial reports line up) and zero counters.
FleetReport make_skeleton(const FleetSpec& spec, const std::vector<PolicyAxis>& policies);

/// One focv-fleet-node/v1 JSONL record (no trailing newline).
std::string node_record_jsonl(const FleetSpec& spec, const NodeDraw& draw,
                              const node::NodeReport& report, bool failed,
                              const std::string& error, bool energy_neutral,
                              double downtime_s);

/// draw_node() minus the per-call validation and policy-mixture
/// materialization: the fleet loop validates the spec once, resolves
/// effective_policies() once, and then draws millions of nodes through
/// this. Identical output to draw_node(spec, index) by construction.
NodeDraw draw_node_prevalidated(const FleetSpec& spec, const std::vector<PolicyAxis>& policies,
                                std::size_t index);

/// The store voltage a node starts from (battery OCV or supercap
/// initial voltage) — the energy-neutrality reference.
double initial_store_voltage(const node::NodeConfig& config);

}  // namespace focv::fleet::detail
