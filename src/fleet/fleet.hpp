// focv::fleet — multi-node WSN fleet simulation engine.
//
// The paper targets MPPT for *wireless sensor nodes*; a deployment is
// never one node, it is hundreds to thousands of heterogeneous nodes
// sharing an environment and a radio schedule. This module simulates
// N = 10..10,000 harvester nodes over multi-day horizons with bounded
// memory and reports network-level energy statistics:
//
//   FleetSpec spec;
//   spec.node_count = 1000;
//   spec.use_cell(pv::sanyo_am1815());
//   spec.add_environment("office", env::office_desk_mixed(), 0.7);
//   spec.add_environment("outdoor", env::outdoor_day({}), 0.3);
//   spec.add_policy("focv", 0.8);
//   spec.add_policy("fixed[v=3.1]", 0.2);
//   FleetReport report = run_fleet(spec, {.jobs = 8});
//
// Heterogeneity: each node draws its environment, MPPT policy,
// placement attenuation, cell photocurrent tolerance, FOCV divider-k
// spread and load phase/period jitter from a private RNG stream derived
// from the root seed and the node index (common/rng.hpp
// make_stream_rng), so the expansion into per-node NodeConfigs is a
// pure function of (spec, node index).
//
// Execution: nodes are processed in fixed chunks fanned out on the
// focv::runtime::ThreadPool. Each chunk owns one CurveCache that is
// re-prepared across its nodes (nodes share the cell model, so in
// surrogate mode later nodes hit the grid entries earlier nodes built),
// and streams its results into a chunk-local FleetReport accumulator of
// fixed size — per-node waveforms are never retained. Chunk partials
// are merged in chunk-index order, so a FleetReport (and its JSON/JSONL
// exports) is bit-identical no matter how many worker threads ran it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/focv_system.hpp"
#include "env/light_trace.hpp"
#include "node/harvester_node.hpp"
#include "pv/diode_models.hpp"

namespace focv::fleet {

/// DEPRECATED MPPT policy enum (the pre-registry API). New code passes
/// registry spec strings to add_policy(spec, weight) instead — the enum
/// can only name the six original controllers at default parameters,
/// while a spec string reaches every registered controller with
/// arbitrary parameters. Kept as a thin shim: add_policy(MpptPolicy)
/// forwards to the spec-string path under the legacy snake_case report
/// label, so existing reports stay byte-identical.
enum class MpptPolicy {
  kFocvSampleHold,          ///< the paper's S&H FOCV (per-node divider-k spread)
  kFixedVoltage,            ///< voltage-reference IC [8]
  kPilotCellFocv,           ///< pilot-cell FOCV [5]
  kHillClimbing,            ///< P&O hill climbing [2]
  kPeriodicDisconnectFocv,  ///< 100 ms periodic FOCV [4]
  kDirectConnection,        ///< no MPPT, diode-coupled [7]
};

/// Stable snake_case identifier the deprecated enum shim uses as its
/// report/JSONL label (spec-string axes are labelled by their canonical
/// spec instead).
[[nodiscard]] const char* policy_name(MpptPolicy policy);

/// Registry spec string the deprecated enum maps onto (default
/// parameters, e.g. kHillClimbing -> "pando").
[[nodiscard]] const char* policy_spec(MpptPolicy policy);

/// Per-node spread assumptions (drawn per node from its RNG stream).
struct HeterogeneitySpec {
  /// Placement-derived illuminance attenuation, uniform in [min, max]
  /// (a corridor desk sees a fraction of the reference desk's light).
  double attenuation_min = 0.35;
  double attenuation_max = 1.0;
  /// Cell photocurrent tolerance: log-normal factor exp(sigma * N(0,1)).
  /// Behaviourally equivalent to an illuminance scale for these models,
  /// which is what keeps the chunk-shared curve cache valid.
  double cell_tolerance_sigma = 0.03;
  /// Fractional 1-sigma spread of the FOCV divider ratio (untrimmed
  /// production units; only consumed by kFocvSampleHold nodes).
  double divider_spread_sigma = 0.01;
  /// Load report period jitter: uniform fractional spread (+/-).
  double load_period_jitter = 0.05;
  /// Draw each node's sense+tx burst phase uniformly in [0, period)
  /// instead of transmitting in lockstep at the period start.
  bool randomize_load_phase = true;
};

/// Axis value: a named shared light environment with a mixture weight.
struct EnvironmentAxis {
  std::string name;
  std::shared_ptr<const env::LightTrace> trace;
  double weight = 1.0;
};

/// Axis value: one controller of the deployment mixture, described by a
/// resolved registry spec with a mixture weight.
struct PolicyAxis {
  /// Report / JSONL key of this axis: the canonical spec string for
  /// spec-string axes, the legacy snake_case name for enum-shim axes.
  std::string label;
  /// Registry resolution backing the axis (name + final parameters).
  mppt::ResolvedSpec resolved;
  double weight = 1.0;
  /// Shared controller prototype, cloned per node. Null for "focv"
  /// axes: the paper controller is rebuilt per node so the divider-k
  /// tolerance draw folds into the axis parameters (materialize_node).
  std::shared_ptr<const mppt::MpptController> prototype;
  /// DEPRECATED: the legacy enum this axis came from when added through
  /// the shim (best-effort name mapping otherwise; meaningless for
  /// controllers without an enum equivalent). Only NodeDraw::policy
  /// reads it.
  MpptPolicy policy = MpptPolicy::kFocvSampleHold;
};

/// Declarative fleet description. Expands deterministically into
/// node_count per-node NodeConfigs (see draw_node / materialize_node).
/// Which execution engine advances the fleet.
enum class FleetEngine {
  /// One stepper object per node (the reference path): kFixed or kEvent
  /// per FleetSpec::base.stepper. Bit-stable across releases.
  kPerNode,
  /// Batched struct-of-arrays chunks (fleet/soa.hpp): nodes advance in
  /// tight per-interval loops over a shared schedule and dense surrogate
  /// tables, within the event stepper's 0.1 % equivalence contract.
  /// Nodes the batch path cannot express (per-step-only or
  /// store-tracking controllers, batteries, cold-start supervisors,
  /// exact power model) transparently fall back to kPerNode semantics.
  kSoa,
};

/// Numeric representation of the shared surrogate curve tables used by
/// the SoA engine (ignored by kPerNode).
enum class TableMode {
  kFloat,      ///< double copies of the CurveCache entries (default)
  kQuantized,  ///< int32 fixed point, uV / nW: half the bytes per entry
};

/// Which sweep kernel the SoA engine advances batched axis runs with
/// (ignored by kPerNode). Reports are byte-identical across kernels:
/// every lane of the kLanes kernel executes the same IEEE op sequence
/// the scalar sweep does, and per-node accumulators merge in fixed node
/// order (fleet/soa_lanes.cpp documents the argument).
enum class SoaKernel {
  kLanes,   ///< interval-major, width-W lane-batched kernels (default)
  kScalar,  ///< node-major transient-NodeState sweep (the PR 7 path)
};

struct FleetSpec {
  std::size_t node_count = 100;
  /// Root of the per-node RNG streams.
  std::uint64_t root_seed = 2024;
  /// Shared light environments; each node draws one by weight.
  std::vector<EnvironmentAxis> environments;
  /// Policy mixture; empty deploys every node with kFocvSampleHold.
  std::vector<PolicyAxis> policies;
  /// Cell model shared by all nodes (required; heterogeneity is applied
  /// as a per-node photocurrent factor so the chunk curve cache stays
  /// shareable). Set with use_cell().
  std::shared_ptr<const pv::SingleDiodeModel> cell;
  /// Component spec for kFocvSampleHold nodes; divider_ratio is the
  /// pre-spread nominal.
  core::SystemSpec system;
  /// Template for every node's NodeConfig. The cell, controller,
  /// lux_scale and load phase/period slots are overwritten per node;
  /// record_traces is forced off (bounded memory).
  node::NodeConfig base;
  HeterogeneitySpec heterogeneity;
  /// Nodes per scheduling chunk. Part of the result's identity: chunks
  /// bound both the parallel grain and the curve-cache sharing scope.
  std::size_t chunk_size = 64;
  /// Execution engine. kSoa batches whole chunks through shared event
  /// schedules (million-node scale); kPerNode is the bit-stable
  /// reference. jobs=1 vs jobs=N byte-determinism holds on both.
  FleetEngine engine = FleetEngine::kPerNode;
  /// Curve-table representation for the SoA engine.
  TableMode table_mode = TableMode::kFloat;
  /// Sweep kernel for the SoA engine (byte-identical results; kScalar
  /// exists as the reference/bench baseline and for odd build targets).
  SoaKernel soa_kernel = SoaKernel::kLanes;

  /// Borrow a long-lived cell (e.g. a pv::cell_library singleton).
  void use_cell(const pv::SingleDiodeModel& cell_ref);
  void use_cell(std::shared_ptr<const pv::SingleDiodeModel> cell_ptr);
  void add_environment(std::string name, env::LightTrace trace, double weight = 1.0);
  void add_environment(std::string name, std::shared_ptr<const env::LightTrace> trace,
                       double weight = 1.0);
  /// Add a mixture slot from a registry spec string, e.g.
  /// `add_policy("focv[k=0.55]", 0.6)` or `add_policy("graddesc", 0.4)`
  /// (grammar and catalog: mppt/registry.hpp). The report label is the
  /// canonical spec. Throws mppt::SpecError on a bad spec.
  void add_policy(const std::string& spec, double weight = 1.0);
  void add_policy(const char* spec, double weight = 1.0) {
    add_policy(std::string(spec), weight);
  }
  /// DEPRECATED enum shim: forwards to the spec-string path under the
  /// legacy snake_case label (byte-identical reports) and prints a
  /// one-time deprecation note to stderr.
  void add_policy(MpptPolicy policy, double weight = 1.0);
};

/// The policy mixture actually deployed: FleetSpec::policies, or a
/// single default-weight "focv" axis under the legacy label when the
/// spec lists none. materialize_node, the report skeleton and the JSONL
/// writer all label nodes through this.
[[nodiscard]] std::vector<PolicyAxis> effective_policies(const FleetSpec& spec);

/// The heterogeneity draw of one node: a pure function of
/// (spec, node index), independent of execution order.
struct NodeDraw {
  std::size_t node = 0;
  std::uint64_t seed = 0;         ///< this node's RNG stream seed
  std::size_t env_index = 0;
  std::size_t policy_index = 0;   ///< into the effective policy list
  /// DEPRECATED: legacy enum of the drawn axis (see PolicyAxis::policy);
  /// reports key on the axis label, not on this.
  MpptPolicy policy = MpptPolicy::kFocvSampleHold;
  double attenuation = 1.0;       ///< placement factor
  double cell_factor = 1.0;       ///< photocurrent tolerance factor
  double divider_ratio = 0.0;     ///< FOCV k*alpha after spread
  double report_period = 0.0;     ///< load period after jitter [s]
  double burst_phase = 0.0;       ///< load burst offset in [0, period) [s]
};

/// Draw node `index`'s heterogeneity. Deterministic for (spec, index).
[[nodiscard]] NodeDraw draw_node(const FleetSpec& spec, std::size_t index);

/// Expand a draw into the node's full NodeConfig (controller included).
[[nodiscard]] node::NodeConfig materialize_node(const FleetSpec& spec, const NodeDraw& draw);

/// Fixed-width histogram over schema-documented bin edges. Values below
/// the first / at-or-above the last edge land in the end bins, so the
/// counts always sum to the number of observations.
struct FixedHistogram {
  std::vector<double> edges;           ///< n+1 edges, bin i = [edges[i], edges[i+1])
  std::vector<std::uint64_t> counts;   ///< n bins

  explicit FixedHistogram(std::vector<double> bin_edges);
  FixedHistogram() = default;
  void observe(double value);
  void merge(const FixedHistogram& other);
  [[nodiscard]] std::uint64_t total() const;
};

/// Aggregate over the nodes deployed with one policy.
struct PolicyAggregate {
  std::string policy;
  std::uint64_t nodes = 0;            ///< successful runs
  std::uint64_t failed = 0;
  std::uint64_t energy_neutral = 0;
  double harvested_j = 0.0;
  double net_j = 0.0;
  double downtime_s = 0.0;
  double efficiency_sum = 0.0;        ///< over successful runs
  double efficiency_min = 0.0;        ///< 0 when nodes == 0
  double efficiency_max = 0.0;

  [[nodiscard]] double mean_efficiency() const {
    return nodes > 0 ? efficiency_sum / static_cast<double>(nodes) : 0.0;
  }
  [[nodiscard]] double energy_neutral_fraction() const {
    return nodes > 0 ? static_cast<double>(energy_neutral) / static_cast<double>(nodes) : 0.0;
  }
};

/// Node count per environment.
struct EnvironmentAggregate {
  std::string environment;
  std::uint64_t nodes = 0;
};

/// Network-level radio-load coincidence, computed analytically from the
/// per-node load phase/period draws (no simulation): how many nodes
/// burst at once, and the worst instantaneous aggregate load. With
/// randomize_load_phase off every node bursts in lockstep and the peak
/// equals the whole fleet — the overstatement the per-node phase offset
/// exists to remove.
struct LoadConcurrency {
  double window_s = 0.0;                ///< analysed window [0, window_s)
  std::uint64_t peak_concurrent_tx = 0; ///< max nodes in a tx burst at once
  double peak_load_w = 0.0;             ///< max aggregate instantaneous load [W]
  double average_load_w = 0.0;          ///< sum of per-node average power [W]
};

/// Analyse burst coincidence for the fleet's draws over [0, window_s);
/// window_s <= 0 selects 4x the longest drawn report period.
[[nodiscard]] LoadConcurrency analyze_load_concurrency(const FleetSpec& spec,
                                                       double window_s = 0.0);

/// Fixed-size network-level accumulator: everything is a sum, a count,
/// an extremum or a fixed-width histogram, so a 10,000-node fleet costs
/// the same report memory as a 10-node one. Deterministic for a given
/// spec (timing fields excluded from the default JSON export).
struct FleetReport {
  static constexpr const char* kSchema = "focv-fleet/v1";

  // Identity.
  std::size_t node_count = 0;
  std::uint64_t root_seed = 0;
  std::size_t chunk_size = 0;
  double duration_s = 0.0;             ///< longest environment horizon

  // Totals over successful nodes.
  std::uint64_t nodes_ok = 0;
  std::uint64_t nodes_failed = 0;
  std::uint64_t energy_neutral_nodes = 0;  ///< final store >= initial store
  double harvested_j = 0.0;
  double delivered_j = 0.0;
  double overhead_j = 0.0;
  double load_served_j = 0.0;
  double ideal_mpp_j = 0.0;
  double net_j = 0.0;
  double downtime_s = 0.0;             ///< summed brownout time
  std::uint64_t steps = 0;
  std::uint64_t model_evals = 0;
  std::uint64_t curve_entries = 0;
  /// Summed event-engine boundaries (NodeReport::events); 0 when the
  /// fleet runs the fixed stepper. Deterministic for a spec, so jobs=1
  /// and jobs=N runs must agree.
  std::uint64_t events = 0;

  // Distributions (fixed edges, documented in EXPERIMENTS.md).
  double efficiency_sum = 0.0;
  double efficiency_min = 0.0;
  double efficiency_max = 0.0;
  FixedHistogram efficiency_hist;
  FixedHistogram net_energy_hist;
  FixedHistogram downtime_hist;

  std::vector<PolicyAggregate> policies;
  std::vector<EnvironmentAggregate> environments;
  LoadConcurrency load;

  // Timing (depends on the machine and worker count; excluded from the
  // default export so jobs=1 and jobs=N runs compare byte-identical).
  double wall_seconds = 0.0;
  int jobs_used = 0;

  [[nodiscard]] double energy_neutral_fraction() const {
    return nodes_ok > 0 ? static_cast<double>(energy_neutral_nodes) /
                              static_cast<double>(nodes_ok)
                        : 0.0;
  }
  [[nodiscard]] double mean_tracking_efficiency() const {
    return nodes_ok > 0 ? efficiency_sum / static_cast<double>(nodes_ok) : 0.0;
  }

  /// One node's outcome into the accumulator (draw decides the policy /
  /// environment rows). Used by run_fleet; exposed for tests.
  void add_node(const NodeDraw& draw, const node::NodeReport& report, bool energy_neutral,
                double node_downtime_s);
  void add_failed_node(const NodeDraw& draw);
  /// Fold another partial (same spec shape) into this one. run_fleet
  /// merges chunk partials in chunk-index order.
  void merge(const FleetReport& other);

  /// Deterministic "focv-fleet/v1" JSON (byte-stable across runs and
  /// thread counts; include_timing adds the machine-dependent fields).
  [[nodiscard]] std::string to_json(bool include_timing = false) const;
  void write_json(const std::string& path, bool include_timing = false) const;
};

/// Live progress of a running fleet.
struct FleetProgress {
  std::size_t nodes_done = 0;
  std::size_t nodes_total = 0;
  std::size_t chunks_done = 0;
  std::size_t chunks_total = 0;
  std::size_t failed = 0;
};

struct FleetOptions {
  /// Worker threads; 0 selects ThreadPool::default_thread_count(),
  /// 1 runs every chunk inline on the calling thread.
  int jobs = 0;
  /// When set, one "focv-fleet-node/v1" JSONL record per node is
  /// written here, in node order (buffered per chunk; deterministic).
  std::string jsonl_path;
  /// Run the analytic load-concurrency pass (cheap; on by default).
  bool analyze_load = true;
  /// Invoked after each chunk completes; calls are serialized.
  std::function<void(const FleetProgress&)> on_progress;
};

/// Simulate the fleet. Throws PreconditionError on an invalid spec
/// (no cell, no environment, non-positive weights). A node whose
/// simulation throws marks only itself failed; the rest of the fleet
/// still runs.
[[nodiscard]] FleetReport run_fleet(const FleetSpec& spec, const FleetOptions& options);
[[nodiscard]] inline FleetReport run_fleet(const FleetSpec& spec) {
  return run_fleet(spec, FleetOptions{});
}

}  // namespace focv::fleet
