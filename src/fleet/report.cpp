// FleetReport accumulation, merging and the byte-stable focv-fleet/v1
// JSON / focv-fleet-node/v1 JSONL exports.
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/require.hpp"
#include "fleet/fleet.hpp"

namespace focv::fleet {

namespace {

/// Shortest round-trip double formatting shared with the sweep exports,
/// so fleet files are byte-stable across runs and thread counts.
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_array(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += fmt(values[i]);
  }
  return out + "]";
}

std::string json_array(const std::vector<std::uint64_t>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values[i]);
  }
  return out + "]";
}

std::string histogram_json(const FixedHistogram& h) {
  return "{\"edges\": " + json_array(h.edges) + ", \"counts\": " + json_array(h.counts) + "}";
}

// Distribution bin edges: part of the focv-fleet/v1 schema (documented
// in EXPERIMENTS.md). Efficiency is linear in [0, 1]; net energy and
// downtime are signed/positive decades.
std::vector<double> efficiency_edges() {
  std::vector<double> e(21);
  for (int i = 0; i <= 20; ++i) e[static_cast<std::size_t>(i)] = 0.05 * i;
  return e;
}

std::vector<double> net_energy_edges() {
  return {-1e6, -100.0, -10.0, -1.0, -0.1, 0.0, 0.1, 1.0, 10.0, 100.0, 1e6};
}

std::vector<double> downtime_edges() {
  return {0.0, 1.0, 10.0, 60.0, 600.0, 3600.0, 14400.0, 43200.0, 86400.0, 604800.0};
}

}  // namespace

FixedHistogram::FixedHistogram(std::vector<double> bin_edges) : edges(std::move(bin_edges)) {
  require(edges.size() >= 2, "FixedHistogram: need at least 2 edges");
  for (std::size_t i = 1; i < edges.size(); ++i) {
    require(edges[i] > edges[i - 1], "FixedHistogram: edges must strictly increase");
  }
  counts.assign(edges.size() - 1, 0);
}

void FixedHistogram::observe(double value) {
  require(!counts.empty(), "FixedHistogram::observe: default-constructed histogram");
  // upper_bound - 1 is the bin whose [lo, hi) contains the value;
  // out-of-range values clamp into the end bins so totals stay exact.
  const auto it = std::upper_bound(edges.begin(), edges.end(), value);
  std::size_t bin = it == edges.begin() ? 0 : static_cast<std::size_t>(it - edges.begin()) - 1;
  bin = std::min(bin, counts.size() - 1);
  ++counts[bin];
}

void FixedHistogram::merge(const FixedHistogram& other) {
  require(edges == other.edges, "FixedHistogram::merge: edge mismatch");
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
}

std::uint64_t FixedHistogram::total() const {
  std::uint64_t n = 0;
  for (const std::uint64_t c : counts) n += c;
  return n;
}

namespace detail {

FleetReport make_skeleton(const FleetSpec& spec, const std::vector<PolicyAxis>& policies) {
  FleetReport r;
  r.node_count = spec.node_count;
  r.root_seed = spec.root_seed;
  r.chunk_size = spec.chunk_size;
  for (const EnvironmentAxis& e : spec.environments) {
    if (e.trace) r.duration_s = std::max(r.duration_s, e.trace->duration());
    EnvironmentAggregate env;
    env.environment = e.name;
    r.environments.push_back(std::move(env));
  }
  for (const PolicyAxis& p : policies) {
    PolicyAggregate agg;
    agg.policy = p.label;
    r.policies.push_back(std::move(agg));
  }
  r.efficiency_hist = FixedHistogram(efficiency_edges());
  r.net_energy_hist = FixedHistogram(net_energy_edges());
  r.downtime_hist = FixedHistogram(downtime_edges());
  return r;
}

std::string node_record_jsonl(const FleetSpec& spec, const NodeDraw& draw,
                              const node::NodeReport& report, bool failed,
                              const std::string& error, bool energy_neutral,
                              double downtime_s) {
  std::string out = "{\"schema\": \"focv-fleet-node/v1\"";
  out += ", \"node\": " + std::to_string(draw.node);
  out += ", \"seed\": " + std::to_string(draw.seed);
  out += ", \"environment\": \"" +
         json_escape(spec.environments[draw.env_index].name) + "\"";
  const std::vector<PolicyAxis> policies = effective_policies(spec);
  require(draw.policy_index < policies.size(),
          "fleet jsonl: draw's policy index does not match this spec's mixture");
  out += ", \"policy\": \"" + json_escape(policies[draw.policy_index].label) + "\"";
  out += ", \"attenuation\": " + fmt(draw.attenuation);
  out += ", \"cell_factor\": " + fmt(draw.cell_factor);
  out += ", \"divider_ratio\": " + fmt(draw.divider_ratio);
  out += ", \"report_period_s\": " + fmt(draw.report_period);
  out += ", \"burst_phase_s\": " + fmt(draw.burst_phase);
  out += ", \"failed\": ";
  out += failed ? "true" : "false";
  if (failed) {
    out += ", \"error\": \"" + json_escape(error) + "\"";
  } else {
    out += ", \"energy_neutral\": ";
    out += energy_neutral ? "true" : "false";
    out += ", \"harvested_j\": " + fmt(report.harvested_energy);
    out += ", \"delivered_j\": " + fmt(report.delivered_energy);
    out += ", \"overhead_j\": " + fmt(report.overhead_energy);
    out += ", \"load_served_j\": " + fmt(report.load_energy_served);
    out += ", \"net_j\": " + fmt(report.net_energy());
    out += ", \"tracking_efficiency\": " + fmt(report.tracking_efficiency());
    out += ", \"downtime_s\": " + fmt(downtime_s);
    out += ", \"final_store_v\": " + fmt(report.final_store_voltage);
    out += ", \"coldstart_s\": " + fmt(report.coldstart_time);
  }
  out += "}";
  return out;
}

}  // namespace detail

void FleetReport::add_node(const NodeDraw& draw, const node::NodeReport& report,
                           bool energy_neutral, double node_downtime_s) {
  require(draw.policy_index < policies.size() && draw.env_index < environments.size(),
          "FleetReport::add_node: draw does not match this report's shape");
  const double eff = report.tracking_efficiency();
  const double net = report.net_energy();

  if (nodes_ok == 0) {
    efficiency_min = eff;
    efficiency_max = eff;
  } else {
    efficiency_min = std::min(efficiency_min, eff);
    efficiency_max = std::max(efficiency_max, eff);
  }
  ++nodes_ok;
  if (energy_neutral) ++energy_neutral_nodes;
  harvested_j += report.harvested_energy;
  delivered_j += report.delivered_energy;
  overhead_j += report.overhead_energy;
  load_served_j += report.load_energy_served;
  ideal_mpp_j += report.ideal_mpp_energy;
  net_j += net;
  downtime_s += node_downtime_s;
  steps += report.steps;
  model_evals += report.model_evals;
  curve_entries += report.curve_entries;
  events += report.events;
  efficiency_sum += eff;
  efficiency_hist.observe(eff);
  net_energy_hist.observe(net);
  downtime_hist.observe(node_downtime_s);

  PolicyAggregate& p = policies[draw.policy_index];
  if (p.nodes == 0) {
    p.efficiency_min = eff;
    p.efficiency_max = eff;
  } else {
    p.efficiency_min = std::min(p.efficiency_min, eff);
    p.efficiency_max = std::max(p.efficiency_max, eff);
  }
  ++p.nodes;
  if (energy_neutral) ++p.energy_neutral;
  p.harvested_j += report.harvested_energy;
  p.net_j += net;
  p.downtime_s += node_downtime_s;
  p.efficiency_sum += eff;

  ++environments[draw.env_index].nodes;
}

void FleetReport::add_failed_node(const NodeDraw& draw) {
  require(draw.policy_index < policies.size() && draw.env_index < environments.size(),
          "FleetReport::add_failed_node: draw does not match this report's shape");
  ++nodes_failed;
  ++policies[draw.policy_index].failed;
  ++environments[draw.env_index].nodes;
}

void FleetReport::merge(const FleetReport& other) {
  require(policies.size() == other.policies.size() &&
              environments.size() == other.environments.size(),
          "FleetReport::merge: shape mismatch");

  if (other.nodes_ok > 0) {
    if (nodes_ok == 0) {
      efficiency_min = other.efficiency_min;
      efficiency_max = other.efficiency_max;
    } else {
      efficiency_min = std::min(efficiency_min, other.efficiency_min);
      efficiency_max = std::max(efficiency_max, other.efficiency_max);
    }
  }
  nodes_ok += other.nodes_ok;
  nodes_failed += other.nodes_failed;
  energy_neutral_nodes += other.energy_neutral_nodes;
  harvested_j += other.harvested_j;
  delivered_j += other.delivered_j;
  overhead_j += other.overhead_j;
  load_served_j += other.load_served_j;
  ideal_mpp_j += other.ideal_mpp_j;
  net_j += other.net_j;
  downtime_s += other.downtime_s;
  steps += other.steps;
  model_evals += other.model_evals;
  curve_entries += other.curve_entries;
  events += other.events;
  efficiency_sum += other.efficiency_sum;
  efficiency_hist.merge(other.efficiency_hist);
  net_energy_hist.merge(other.net_energy_hist);
  downtime_hist.merge(other.downtime_hist);

  for (std::size_t i = 0; i < policies.size(); ++i) {
    PolicyAggregate& p = policies[i];
    const PolicyAggregate& o = other.policies[i];
    require(p.policy == o.policy, "FleetReport::merge: policy row mismatch");
    if (o.nodes > 0) {
      if (p.nodes == 0) {
        p.efficiency_min = o.efficiency_min;
        p.efficiency_max = o.efficiency_max;
      } else {
        p.efficiency_min = std::min(p.efficiency_min, o.efficiency_min);
        p.efficiency_max = std::max(p.efficiency_max, o.efficiency_max);
      }
    }
    p.nodes += o.nodes;
    p.failed += o.failed;
    p.energy_neutral += o.energy_neutral;
    p.harvested_j += o.harvested_j;
    p.net_j += o.net_j;
    p.downtime_s += o.downtime_s;
    p.efficiency_sum += o.efficiency_sum;
  }
  for (std::size_t i = 0; i < environments.size(); ++i) {
    require(environments[i].environment == other.environments[i].environment,
            "FleetReport::merge: environment row mismatch");
    environments[i].nodes += other.environments[i].nodes;
  }
}

std::string FleetReport::to_json(bool include_timing) const {
  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(kSchema) + "\",\n";
  out += "  \"fleet\": {\"node_count\": " + std::to_string(node_count) +
         ", \"root_seed\": " + std::to_string(root_seed) +
         ", \"chunk_size\": " + std::to_string(chunk_size) +
         ", \"duration_s\": " + fmt(duration_s) + "},\n";
  out += "  \"totals\": {\"nodes_ok\": " + std::to_string(nodes_ok) +
         ", \"nodes_failed\": " + std::to_string(nodes_failed) +
         ", \"energy_neutral_nodes\": " + std::to_string(energy_neutral_nodes) +
         ", \"energy_neutral_fraction\": " + fmt(energy_neutral_fraction()) +
         ", \"harvested_j\": " + fmt(harvested_j) +
         ", \"delivered_j\": " + fmt(delivered_j) +
         ", \"overhead_j\": " + fmt(overhead_j) +
         ", \"load_served_j\": " + fmt(load_served_j) +
         ", \"ideal_mpp_j\": " + fmt(ideal_mpp_j) +
         ", \"net_j\": " + fmt(net_j) +
         ", \"downtime_s\": " + fmt(downtime_s) +
         ", \"steps\": " + std::to_string(steps) +
         ", \"model_evals\": " + std::to_string(model_evals) +
         ", \"curve_entries\": " + std::to_string(curve_entries) +
         ", \"events\": " + std::to_string(events) + "},\n";
  out += "  \"tracking_efficiency\": {\"mean\": " + fmt(mean_tracking_efficiency()) +
         ", \"min\": " + fmt(efficiency_min) + ", \"max\": " + fmt(efficiency_max) +
         ", \"histogram\": " + histogram_json(efficiency_hist) + "},\n";
  out += "  \"net_energy_j\": {\"histogram\": " + histogram_json(net_energy_hist) + "},\n";
  out += "  \"downtime_s\": {\"histogram\": " + histogram_json(downtime_hist) + "},\n";

  out += "  \"policies\": [\n";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const PolicyAggregate& p = policies[i];
    out += "    {\"policy\": \"" + json_escape(p.policy) + "\"" +
           ", \"nodes\": " + std::to_string(p.nodes) +
           ", \"failed\": " + std::to_string(p.failed) +
           ", \"energy_neutral\": " + std::to_string(p.energy_neutral) +
           ", \"energy_neutral_fraction\": " + fmt(p.energy_neutral_fraction()) +
           ", \"mean_tracking_efficiency\": " + fmt(p.mean_efficiency()) +
           ", \"min_tracking_efficiency\": " + fmt(p.efficiency_min) +
           ", \"max_tracking_efficiency\": " + fmt(p.efficiency_max) +
           ", \"harvested_j\": " + fmt(p.harvested_j) +
           ", \"net_j\": " + fmt(p.net_j) +
           ", \"downtime_s\": " + fmt(p.downtime_s) + "}";
    out += i + 1 < policies.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"environments\": [\n";
  for (std::size_t i = 0; i < environments.size(); ++i) {
    out += "    {\"environment\": \"" + json_escape(environments[i].environment) +
           "\", \"nodes\": " + std::to_string(environments[i].nodes) + "}";
    out += i + 1 < environments.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"load\": {\"window_s\": " + fmt(load.window_s) +
         ", \"peak_concurrent_tx\": " + std::to_string(load.peak_concurrent_tx) +
         ", \"peak_load_w\": " + fmt(load.peak_load_w) +
         ", \"average_load_w\": " + fmt(load.average_load_w) + "}";
  if (include_timing) {
    out += ",\n  \"timing\": {\"wall_seconds\": " + fmt(wall_seconds) +
           ", \"jobs_used\": " + std::to_string(jobs_used) + "}";
  }
  out += "\n}\n";
  return out;
}

void FleetReport::write_json(const std::string& path, bool include_timing) const {
  std::ofstream f(path, std::ios::binary);
  require(f.good(), "FleetReport::write_json: cannot open " + path);
  f << to_json(include_timing);
  require(f.good(), "FleetReport::write_json: write failed for " + path);
}

}  // namespace focv::fleet
