#include "fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <utility>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "fleet/detail.hpp"
#include "fleet/soa.hpp"
#include "mppt/baselines.hpp"
#include "node/curve_cache.hpp"
#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/prepared_trace.hpp"

namespace focv::fleet {

const char* policy_name(MpptPolicy policy) {
  switch (policy) {
    case MpptPolicy::kFocvSampleHold: return "focv_sample_hold";
    case MpptPolicy::kFixedVoltage: return "fixed_voltage";
    case MpptPolicy::kPilotCellFocv: return "pilot_cell_focv";
    case MpptPolicy::kHillClimbing: return "hill_climbing";
    case MpptPolicy::kPeriodicDisconnectFocv: return "periodic_focv";
    case MpptPolicy::kDirectConnection: return "direct_connection";
  }
  return "unknown";
}

const char* policy_spec(MpptPolicy policy) {
  switch (policy) {
    case MpptPolicy::kFocvSampleHold: return "focv";
    case MpptPolicy::kFixedVoltage: return "fixed";
    case MpptPolicy::kPilotCellFocv: return "pilot";
    case MpptPolicy::kHillClimbing: return "pando";
    case MpptPolicy::kPeriodicDisconnectFocv: return "periodic";
    case MpptPolicy::kDirectConnection: return "direct";
  }
  return "unknown";
}

void FleetSpec::use_cell(const pv::SingleDiodeModel& cell_ref) {
  cell = std::shared_ptr<const pv::SingleDiodeModel>(
      std::shared_ptr<const pv::SingleDiodeModel>(), &cell_ref);
}

void FleetSpec::use_cell(std::shared_ptr<const pv::SingleDiodeModel> cell_ptr) {
  cell = std::move(cell_ptr);
}

void FleetSpec::add_environment(std::string name, env::LightTrace trace, double weight) {
  add_environment(std::move(name), std::make_shared<const env::LightTrace>(std::move(trace)),
                  weight);
}

void FleetSpec::add_environment(std::string name, std::shared_ptr<const env::LightTrace> trace,
                                double weight) {
  EnvironmentAxis axis;
  axis.name = std::move(name);
  axis.trace = std::move(trace);
  axis.weight = weight;
  environments.push_back(std::move(axis));
}

namespace {

/// Best-effort reverse mapping for NodeDraw::policy (deprecated field):
/// registry names the legacy enum can express; anything else reports as
/// the default kFocvSampleHold (the field is informational only).
MpptPolicy legacy_policy_for(const std::string& registry_name) {
  if (registry_name == "fixed") return MpptPolicy::kFixedVoltage;
  if (registry_name == "pilot") return MpptPolicy::kPilotCellFocv;
  if (registry_name == "pando") return MpptPolicy::kHillClimbing;
  if (registry_name == "periodic") return MpptPolicy::kPeriodicDisconnectFocv;
  if (registry_name == "direct") return MpptPolicy::kDirectConnection;
  return MpptPolicy::kFocvSampleHold;
}

/// Axis construction shared by the spec-string API and the enum shim.
PolicyAxis make_policy_axis(const std::string& spec, double weight) {
  core::register_paper_controller();  // independent of static pull-in order
  PolicyAxis axis;
  axis.resolved = mppt::Registry::instance().resolve(spec);
  axis.label = axis.resolved.spec();
  axis.weight = weight;
  axis.policy = legacy_policy_for(axis.resolved.name);
  // "focv" nodes are built per node (divider-k tolerance folds into the
  // axis parameters); every other controller is one shared prototype.
  if (axis.resolved.name != "focv") {
    axis.prototype = mppt::Registry::instance().make(axis.resolved);
  }
  return axis;
}

}  // namespace

void FleetSpec::add_policy(const std::string& spec, double weight) {
  policies.push_back(make_policy_axis(spec, weight));
}

void FleetSpec::add_policy(MpptPolicy policy, double weight) {
  static bool warned = [] {
    std::fprintf(stderr,
                 "focv::fleet: add_policy(MpptPolicy) is deprecated; pass a registry "
                 "spec string instead, e.g. add_policy(\"focv[k=0.6]\", w) — see "
                 "mppt/registry.hpp for the grammar and catalog.\n");
    return true;
  }();
  (void)warned;
  PolicyAxis axis = make_policy_axis(policy_spec(policy), weight);
  axis.label = policy_name(policy);  // legacy report key, byte-compatible
  axis.policy = policy;
  policies.push_back(std::move(axis));
}

std::vector<PolicyAxis> effective_policies(const FleetSpec& spec) {
  if (spec.policies.empty()) {
    PolicyAxis axis = make_policy_axis("focv", 1.0);
    axis.label = policy_name(MpptPolicy::kFocvSampleHold);  // legacy default label
    return {std::move(axis)};
  }
  return spec.policies;
}

namespace {

/// Index of the weighted-mixture slot that `u` in [0, 1) falls into.
template <typename GetWeight>
std::size_t pick_weighted(double u, std::size_t n, const GetWeight& weight_of) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += weight_of(i);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += weight_of(i);
    if (u * total < acc) return i;
  }
  return n - 1;
}

void validate_draw_inputs(const FleetSpec& spec) {
  require(!spec.environments.empty(), "fleet: at least one environment is required");
  for (const EnvironmentAxis& e : spec.environments) {
    require(e.trace != nullptr, "fleet: null trace on environment '" + e.name + "'");
    require(e.weight > 0.0, "fleet: environment weight must be > 0 ('" + e.name + "')");
  }
  for (const PolicyAxis& p : spec.policies) {
    require(p.weight > 0.0, "fleet: policy weight must be > 0");
  }
  const HeterogeneitySpec& h = spec.heterogeneity;
  require(h.attenuation_min > 0.0 && h.attenuation_min <= h.attenuation_max,
          "fleet: attenuation range must satisfy 0 < min <= max");
  require(h.cell_tolerance_sigma >= 0.0 && h.divider_spread_sigma >= 0.0 &&
              h.load_period_jitter >= 0.0 && h.load_period_jitter < 1.0,
          "fleet: spread parameters must be >= 0 (period jitter < 1)");
}

}  // namespace

namespace detail {

double initial_store_voltage(const node::NodeConfig& config) {
  if (config.battery) {
    return config.battery->nominal_voltage +
           config.battery->voltage_swing * (config.battery->initial_soc - 0.5);
  }
  return config.storage.initial_voltage;
}

NodeDraw draw_node_prevalidated(const FleetSpec& spec, const std::vector<PolicyAxis>& policies,
                                std::size_t index) {
  const HeterogeneitySpec& h = spec.heterogeneity;

  NodeDraw d;
  d.node = index;
  d.seed = derive_stream_seed(spec.root_seed, index);
  Rng rng = make_stream_rng(spec.root_seed, index);

  // Fixed draw order, every value drawn unconditionally: the stream
  // layout (and therefore every node's draw) cannot shift when a spread
  // is zeroed or a policy mixture changes shape.
  const double u_env = rng.uniform();
  const double u_policy = rng.uniform();
  d.attenuation = rng.uniform(h.attenuation_min, h.attenuation_max);
  d.cell_factor = std::exp(h.cell_tolerance_sigma * rng.gaussian());
  const double g_divider = rng.gaussian();
  const double u_period = rng.uniform(-1.0, 1.0);
  const double u_phase = rng.uniform();

  d.env_index = pick_weighted(u_env, spec.environments.size(),
                              [&](std::size_t i) { return spec.environments[i].weight; });
  d.policy_index = pick_weighted(u_policy, policies.size(),
                                 [&](std::size_t i) { return policies[i].weight; });
  d.policy = policies[d.policy_index].policy;
  d.divider_ratio =
      std::max(1e-3, spec.system.divider_ratio * (1.0 + h.divider_spread_sigma * g_divider));
  const power::WsnLoad::Params& load = spec.base.load;
  d.report_period =
      std::max(1.25 * (load.sense_duration + load.tx_duration),
               load.report_period * (1.0 + h.load_period_jitter * u_period));
  d.burst_phase = h.randomize_load_phase ? u_phase * d.report_period : 0.0;
  return d;
}

}  // namespace detail

NodeDraw draw_node(const FleetSpec& spec, std::size_t index) {
  validate_draw_inputs(spec);
  return detail::draw_node_prevalidated(spec, effective_policies(spec), index);
}

node::NodeConfig materialize_node(const FleetSpec& spec, const NodeDraw& draw) {
  require(spec.cell != nullptr, "fleet: cell model is required (use_cell)");
  node::NodeConfig config = spec.base;
  config.cell_model = spec.cell;
  config.lux_scale = spec.base.lux_scale * draw.attenuation * draw.cell_factor;
  config.load.report_period = draw.report_period;
  config.load.burst_phase = draw.burst_phase;
  // Bounded memory at fleet scale: per-node waveforms are never kept.
  config.record_traces = false;
  const std::vector<PolicyAxis> policies = effective_policies(spec);
  require(draw.policy_index < policies.size(),
          "fleet: draw's policy index does not match this spec's mixture");
  const PolicyAxis& axis = policies[draw.policy_index];
  if (axis.prototype != nullptr) {
    config.controller_prototype = axis.prototype;  // shared; cloned per run
  } else {
    // "focv": rebuild per node so the production divider-k tolerance
    // draw folds in. When the axis does not set `k`, the draw's ratio
    // (spread around spec.system's nominal) is used verbatim — the
    // bit-exact legacy path; an explicit `k` re-centres the same
    // relative spread on the axis nominal.
    double divider = draw.divider_ratio;
    if (axis.resolved.is_set("k")) {
      const double relative_spread = draw.divider_ratio / spec.system.divider_ratio;
      divider = axis.resolved.value("k") * spec.system.alpha * relative_spread;
    }
    config.use_controller(std::make_unique<mppt::FocvSampleHoldController>(
        core::make_paper_controller_from_spec(axis.resolved, spec.system, divider)));
  }
  return config;
}

LoadConcurrency analyze_load_concurrency(const FleetSpec& spec, double window_s) {
  validate_draw_inputs(spec);
  require(spec.node_count > 0, "fleet: node_count must be > 0");
  const power::WsnLoad::Params& load = spec.base.load;
  const std::vector<PolicyAxis> policies = effective_policies(spec);

  LoadConcurrency out;
  double max_period = 0.0;
  std::vector<NodeDraw> draws;
  draws.reserve(spec.node_count);
  for (std::size_t i = 0; i < spec.node_count; ++i) {
    draws.push_back(detail::draw_node_prevalidated(spec, policies, i));
    max_period = std::max(max_period, draws.back().report_period);
    const double burst_energy =
        load.sense_power * load.sense_duration + load.tx_power * load.tx_duration;
    out.average_load_w += load.sleep_power + burst_energy / draws.back().report_period;
  }
  out.window_s = window_s > 0.0 ? window_s : 4.0 * max_period;

  // Event sweep over [0, window): +/- power and tx-count deltas at each
  // burst edge, ends applied before starts at equal timestamps.
  struct Edge {
    double time;
    double d_power;
    int d_tx;
  };
  std::vector<Edge> edges;
  edges.reserve(8 * spec.node_count);
  const auto add_interval = [&](double start, double end, double watts, bool is_tx) {
    const double a = std::max(0.0, start);
    const double b = std::min(out.window_s, end);
    if (a >= b) return;
    edges.push_back({a, watts, is_tx ? 1 : 0});
    edges.push_back({b, -watts, is_tx ? -1 : 0});
  };
  for (const NodeDraw& d : draws) {
    // k = -1 catches a burst straddling t = 0.
    for (long k = -1; static_cast<double>(k) * d.report_period + d.burst_phase < out.window_s;
         ++k) {
      const double s = static_cast<double>(k) * d.report_period + d.burst_phase;
      add_interval(s, s + load.sense_duration, load.sense_power, /*is_tx=*/false);
      add_interval(s + load.sense_duration, s + load.sense_duration + load.tx_duration,
                   load.tx_power, /*is_tx=*/true);
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.d_power < b.d_power;
  });

  const double sleep_w = static_cast<double>(spec.node_count) * load.sleep_power;
  double burst_w = 0.0;
  long tx = 0;
  out.peak_load_w = sleep_w;
  for (const Edge& e : edges) {
    burst_w += e.d_power;
    tx += e.d_tx;
    out.peak_load_w = std::max(out.peak_load_w, sleep_w + burst_w);
    out.peak_concurrent_tx =
        std::max(out.peak_concurrent_tx, static_cast<std::uint64_t>(std::max(0l, tx)));
  }
  return out;
}

namespace {

/// Chunk layout: fixed-size contiguous node ranges. The chunking is part
/// of the result's identity (curve-cache sharing scope), never a
/// function of the worker count.
struct ChunkPlan {
  std::size_t count = 0;
  std::size_t size = 0;
  [[nodiscard]] std::size_t begin(std::size_t c) const { return c * size; }
  [[nodiscard]] std::size_t end(std::size_t c, std::size_t nodes) const {
    return std::min(nodes, (c + 1) * size);
  }
};

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary);
  require(f.good(), "fleet export: cannot open " + path);
  f << text;
  require(f.good(), "fleet export: write failed for " + path);
}

}  // namespace

FleetReport run_fleet(const FleetSpec& spec, const FleetOptions& options) {
  validate_draw_inputs(spec);
  require(spec.node_count > 0, "run_fleet: node_count must be > 0");
  require(spec.cell != nullptr, "run_fleet: cell model is required (use_cell)");
  require(spec.chunk_size > 0, "run_fleet: chunk_size must be > 0");
  for (const EnvironmentAxis& e : spec.environments) {
    require(e.trace->size() >= 2,
            "run_fleet: environment '" + e.name + "' needs at least 2 samples");
  }

  const std::vector<PolicyAxis> policies = effective_policies(spec);
  ChunkPlan plan;
  plan.size = spec.chunk_size;
  plan.count = (spec.node_count + spec.chunk_size - 1) / spec.chunk_size;

  // Event stepping: the O(trace) preprocessing (equivalent-lux series,
  // prefix moments, segmentation) depends only on the trace and the
  // cell, so one immutable PreparedTrace per environment is shared
  // read-only by every node and every worker — per-node cost stays
  // O(events), not O(trace). Built here, before any chunk runs.
  std::vector<std::optional<sched::PreparedTrace>> prepared(spec.environments.size());
  std::optional<node::CurveCache> warm_cache;
  if ((spec.base.stepper == node::Stepper::kEvent || spec.engine == FleetEngine::kSoa) &&
      spec.base.power_model == node::PowerModel::kSurrogate) {
    env::SegmentationOptions seg;
    seg.ratio_band = spec.base.events.lux_ratio_band;
    seg.floor = node::CurveCache::kDarkLux;
    for (std::size_t e = 0; e < spec.environments.size(); ++e) {
      prepared[e].emplace(*spec.environments[e].trace, *spec.cell, seg);
    }
    // Warm one cache over the full illuminance span the heterogeneity
    // draws can reach, and seed every chunk's cache from it (see
    // run_chunk): surrogate entries depend only on their grid index, so
    // seeding changes no trajectory — it only stops each chunk from
    // re-solving the same few hundred grid nodes cold, which would
    // otherwise dominate an event-stepped fleet run. The 3-sigma bound
    // on the log-normal cell factor leaves a tail of nodes that touch
    // one or two unseeded edge entries; those build on demand as before.
    const HeterogeneitySpec& h = spec.heterogeneity;
    const double scale_lo =
        spec.base.lux_scale * h.attenuation_min * std::exp(-3.0 * h.cell_tolerance_sigma);
    const double scale_hi =
        spec.base.lux_scale * h.attenuation_max * std::exp(3.0 * h.cell_tolerance_sigma);
    warm_cache.emplace(
        *spec.cell, spec.base.temperature_k,
        node::CurveCache::Options{spec.base.power_model, spec.base.surrogate_points});
    for (std::size_t e = 0; e < spec.environments.size(); ++e) {
      double lo = 0.0;
      double hi = 0.0;
      for (const double v : prepared[e]->eq_lux()) {
        if (v < node::CurveCache::kDarkLux) continue;  // dark: never queried lit
        if (hi == 0.0) lo = v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      if (hi > 0.0) warm_cache->warm_range(lo * scale_lo, hi * scale_hi);
    }
  }

  // SoA engine: one immutable plan (shared schedules, dense tables, edge
  // overlays) built before any chunk runs. Null when the spec as a whole
  // cannot batch — then every node takes the per-node path unchanged.
  std::unique_ptr<const soa::SoaPlan> soa_plan;
  if (spec.engine == FleetEngine::kSoa && warm_cache) {
    soa_plan = soa::build_plan(spec, policies, prepared, *warm_cache);
  }

  std::vector<FleetReport> partials(plan.count);
  for (FleetReport& p : partials) p = detail::make_skeleton(spec, policies);
  const bool want_jsonl = !options.jsonl_path.empty();
  std::vector<std::string> jsonl_chunks(want_jsonl ? plan.count : 0);

  std::mutex progress_mutex;
  FleetProgress progress;
  progress.nodes_total = spec.node_count;
  progress.chunks_total = plan.count;

  const bool obs_on = obs::enabled();
  const double submit_us = obs_on ? obs::tracer().now_us() : 0.0;
  static const obs::HistogramId node_eff_id = obs::metrics().histogram(
      "fleet.node.tracking_efficiency", {1e-3, 1.0 + 1e-9, 48});
  static const obs::HistogramId node_downtime_id =
      obs::metrics().histogram("fleet.node.downtime_s", {1.0, 1e6, 40});
  static const obs::HistogramId chunk_wall_id =
      obs::metrics().histogram("fleet.chunk.wall_us", {1.0, 1e9, 56});

  const auto run_chunk = [&](std::size_t c) {
    const std::size_t first = plan.begin(c);
    const std::size_t last = plan.end(c, spec.node_count);

    std::optional<obs::Tracer::Span> span;
    if (obs_on) {
      span.emplace(obs::tracer().span("fleet_chunk", "fleet"));
      span->arg("chunk", static_cast<double>(c));
      span->arg("first_node", static_cast<double>(first));
      span->arg("nodes", static_cast<double>(last - first));
      span->arg("queue_wait_us", obs::tracer().now_us() - submit_us);
    }
    const auto chunk_start = std::chrono::steady_clock::now();

    const std::size_t n = last - first;
    std::vector<NodeDraw> draws;
    draws.reserve(n);
    for (std::size_t node = first; node < last; ++node) {
      draws.push_back(detail::draw_node_prevalidated(spec, policies, node));
    }

    // Pass 1: simulate. Batchable nodes are collected and advanced in
    // one struct-of-arrays sweep; everything else runs the per-node
    // engine through the chunk's shared curve cache (created lazily so
    // fully-batched chunks never pay the warm-cache seed copy). Every
    // node shares the cell model, so in surrogate mode node k reuses the
    // log-lux grid entries nodes 0..k-1 already solved (trajectories are
    // unchanged; see CurveCache::prepare).
    std::vector<node::NodeReport> reports(n);
    std::vector<std::uint8_t> failed(n, 0);
    std::vector<std::uint8_t> batched(n, 0);
    std::vector<std::string> errors(n);
    std::vector<std::uint8_t> neutral(n, 0);
    std::vector<std::uint32_t> batch_members;
    std::optional<node::CurveCache> cache;
    for (std::size_t k = 0; k < n; ++k) {
      if (soa_plan && soa_plan->axes[draws[k].policy_index].batch) {
        batched[k] = 1;
        batch_members.push_back(static_cast<std::uint32_t>(k));
        continue;
      }
      try {
        const node::NodeConfig config = materialize_node(spec, draws[k]);
        const env::LightTrace& trace = *spec.environments[draws[k].env_index].trace;
        const sched::PreparedTrace* prep =
            prepared[draws[k].env_index] ? &*prepared[draws[k].env_index] : nullptr;
        if (!cache) {
          cache.emplace(
              *spec.cell, spec.base.temperature_k,
              node::CurveCache::Options{spec.base.power_model, spec.base.surrogate_points});
          if (warm_cache) cache->seed_entries(*warm_cache);
        }
        reports[k] = node::simulate_node(trace, config, &*cache, prep);
        neutral[k] =
            reports[k].final_store_voltage >= detail::initial_store_voltage(config) ? 1 : 0;
      } catch (const std::exception& e) {
        failed[k] = 1;
        errors[k] = e.what();
      } catch (...) {
        failed[k] = 1;
        errors[k] = "unknown exception";
      }
    }
    if (soa_plan) {
      soa::run_batch(*soa_plan, spec, draws, batch_members, reports);
      for (const std::uint32_t k : batch_members) {
        // Batched specs never carry batteries (build_plan rejects them),
        // so the neutrality reference is the supercap's initial voltage.
        neutral[k] =
            reports[k].final_store_voltage >= spec.base.storage.initial_voltage ? 1 : 0;
      }
    }

    // Pass 2: fold into the chunk partial in node order (the
    // accumulation order is part of the report's identity).
    FleetReport& acc = partials[c];
    std::size_t chunk_failed = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const bool energy_neutral = neutral[k] != 0;
      const double downtime_s = failed[k] != 0 ? 0.0 : reports[k].brownout_time;
      if (failed[k] != 0) {
        acc.add_failed_node(draws[k]);
        ++chunk_failed;
      } else {
        acc.add_node(draws[k], reports[k], energy_neutral, downtime_s);
        if (obs_on) {
          obs::metrics().observe(node_eff_id, reports[k].tracking_efficiency());
          obs::metrics().observe(node_downtime_id, downtime_s);
        }
      }
      if (want_jsonl) {
        jsonl_chunks[c] += detail::node_record_jsonl(spec, draws[k], reports[k],
                                                     failed[k] != 0, errors[k], energy_neutral,
                                                     downtime_s);
        jsonl_chunks[c] += '\n';
      }
    }

    const double chunk_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - chunk_start).count();
    if (span) {
      span->arg("failed", static_cast<double>(chunk_failed));
      span->arg("batched", static_cast<double>(batch_members.size()));
      span->finish();
      static const obs::CounterId chunks_id = obs::metrics().counter("fleet.chunks");
      static const obs::CounterId nodes_id = obs::metrics().counter("fleet.nodes");
      static const obs::CounterId failed_id = obs::metrics().counter("fleet.nodes_failed");
      static const obs::CounterId batched_id = obs::metrics().counter("fleet.soa.nodes_batched");
      static const obs::CounterId fallback_id =
          obs::metrics().counter("fleet.soa.nodes_fallback");
      obs::metrics().add(chunks_id);
      obs::metrics().add(nodes_id, static_cast<double>(last - first));
      if (chunk_failed > 0) obs::metrics().add(failed_id, static_cast<double>(chunk_failed));
      obs::metrics().add(batched_id, static_cast<double>(batch_members.size()));
      obs::metrics().add(fallback_id, static_cast<double>(n - batch_members.size()));
      obs::metrics().observe(chunk_wall_id, chunk_wall * 1e6);
    }

    std::lock_guard<std::mutex> lock(progress_mutex);
    ++progress.chunks_done;
    progress.nodes_done += last - first;
    progress.failed += chunk_failed;
    if (options.on_progress) options.on_progress(progress);
  };

  std::optional<obs::Tracer::Span> fleet_span;
  if (obs_on) {
    fleet_span.emplace(obs::tracer().span("fleet", "fleet"));
    fleet_span->arg("nodes", static_cast<double>(spec.node_count));
    fleet_span->arg("chunks", static_cast<double>(plan.count));
  }

  const auto start = std::chrono::steady_clock::now();
  int jobs_used = 1;
  if (options.jobs == 1) {
    // Inline serial path: the reference execution the determinism tests
    // compare threaded runs against.
    for (std::size_t c = 0; c < plan.count; ++c) run_chunk(c);
  } else {
    runtime::ThreadPool pool(options.jobs);
    jobs_used = pool.thread_count();
    pool.parallel_for(plan.count, run_chunk);
  }

  // Ordered merge: chunk partials fold in chunk-index order, so the
  // floating-point accumulation order never depends on the schedule.
  FleetReport result = detail::make_skeleton(spec, policies);
  for (const FleetReport& p : partials) result.merge(p);
  if (options.analyze_load) result.load = analyze_load_concurrency(spec);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.jobs_used = jobs_used;

  if (want_jsonl) {
    std::string all;
    for (const std::string& chunk : jsonl_chunks) all += chunk;
    write_text_file(options.jsonl_path, all);
  }

  if (obs_on) {
    fleet_span->arg("jobs_used", static_cast<double>(jobs_used));
    fleet_span->arg("failed", static_cast<double>(result.nodes_failed));
    obs::events().emit("fleet_complete", result.duration_s,
                       {{"nodes", static_cast<double>(spec.node_count)},
                        {"chunks", static_cast<double>(plan.count)},
                        {"jobs_used", jobs_used},
                        {"failed", static_cast<double>(result.nodes_failed)},
                        {"energy_neutral_fraction", result.energy_neutral_fraction()},
                        {"wall_s", result.wall_seconds}});
  }
  return result;
}

}  // namespace focv::fleet
