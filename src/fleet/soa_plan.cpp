// SoA plan construction: dense table export, batched schedules, and the
// per-axis closed forms (sample/hold coefficients, affine-in-Voc laws).
// Everything here runs once per FleetEngine::run; the kernels
// (soa_scalar.cpp / soa_lanes.cpp) only ever read the finished plan.

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <utility>

#include "common/require.hpp"
#include "core/focv_system.hpp"
#include "fleet/soa_internal.hpp"
#include "mppt/baselines.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "obs/obs.hpp"

// Baseline-compiled homes for the AlignedBuffer members that the AVX2
// lane kernel TU declares extern (see soa_lanes.cpp): COMDAT selection
// can then never pick an AVX2-compiled copy for a baseline caller.
template class focv::AlignedBuffer<double>;
template class focv::AlignedBuffer<std::uint32_t>;

namespace focv::fleet::soa {

namespace {

using internal::kGrid;
using internal::kInf;

DenseTables export_tables(node::CurveCache& cache, double lux_min, double lux_max,
                          TableMode mode) {
  node::CurveCache::DenseExport e = cache.export_range(lux_min, lux_max);
  DenseTables tb;
  tb.grid_lo = e.grid_lo;
  tb.points = e.points;
  tb.slots = static_cast<int>(e.voc.size());
  if (mode == TableMode::kQuantized) {
    tb.quantized = true;
    tb.slot_q.resize(e.voc.size());
    tb.qpower.resize(e.power.size());
    for (std::size_t i = 0; i < e.voc.size(); ++i) {
      tb.slot_q[i].voc = static_cast<std::int32_t>(std::lround(e.voc[i] * 1e6));
      tb.slot_q[i].pmpp = static_cast<std::int32_t>(std::lround(e.pmpp[i] * 1e9));
      const double voc = 1e-6 * static_cast<double>(tb.slot_q[i].voc);
      tb.slot_q[i].inv_voc = voc > 0.0 ? 1.0 / voc : kInf;
    }
    for (std::size_t i = 0; i < e.power.size(); ++i) {
      tb.qpower[i] = static_cast<std::int32_t>(std::lround(e.power[i] * 1e9));
    }
  } else {
    tb.slot_f.resize(e.voc.size());
    for (std::size_t i = 0; i < e.voc.size(); ++i) {
      tb.slot_f[i].voc = e.voc[i];
      tb.slot_f[i].pmpp = e.pmpp[i];
      tb.slot_f[i].inv_voc = e.voc[i] > 0.0 ? 1.0 / e.voc[i] : kInf;
    }
    tb.power = std::move(e.power);
  }
  return tb;
}

/// Resolve a memoryless prototype to its closed form when its step() is
/// affine in Voc. FixedVoltageController returns a constant; the pilot
/// cell scales Voc by k * pilot_scale * mismatch in exactly the
/// association aff_k * ((Voc * aff_s1) * aff_s2). Both report
/// disconnect_fraction == 0.0, so the folded activity
/// 1 - min(1, 0) == 1 and the closed form reproduces the virtual path
/// bit for bit — which is what lets the lane kernel run these axes.
void resolve_affine(AxisPlan& ap, const mppt::MpptController* proto) {
  if (const auto* fx = dynamic_cast<const mppt::FixedVoltageController*>(proto)) {
    ap.eval = AxisEval::kAffineVoc;
    ap.aff_const = true;
    ap.aff_v = fx->params().voltage;
    return;
  }
  if (const auto* pc = dynamic_cast<const mppt::PilotCellFocvController*>(proto)) {
    ap.eval = AxisEval::kAffineVoc;
    ap.aff_const = false;
    ap.aff_k = pc->params().k;
    ap.aff_s1 = pc->params().pilot_scale;
    ap.aff_s2 = pc->params().mismatch;
    return;
  }
  ap.eval = AxisEval::kPrototype;
}

}  // namespace

std::unique_ptr<const SoaPlan> build_plan(
    const FleetSpec& spec, const std::vector<PolicyAxis>& policies,
    const std::vector<std::optional<sched::PreparedTrace>>& prepared,
    node::CurveCache& cache) {
  const node::NodeConfig& base = spec.base;
  // Whole-spec disqualifiers: features the batch arithmetic does not
  // express. The caller falls back to the per-node engine entirely.
  if (base.power_model != node::PowerModel::kSurrogate) return nullptr;
  if (base.battery || base.coldstart) return nullptr;
  if (base.obs_compare_exact) return nullptr;
  if (base.events.resolve_load_bursts) return nullptr;
  if (base.storage.self_discharge_resistance <= 0.0) return nullptr;

  auto plan = std::make_unique<SoaPlan>();
  plan->capacitance = base.storage.capacitance;
  plan->tau = base.storage.self_discharge_resistance * base.storage.capacitance;
  plan->max_voltage = base.storage.max_voltage;
  plan->max_energy = 0.5 * plan->capacitance * plan->max_voltage * plan->max_voltage;
  plan->min_useful_voltage = base.storage.min_useful_voltage;
  plan->min_useful_energy =
      0.5 * plan->capacitance * plan->min_useful_voltage * plan->min_useful_voltage;
  plan->initial_voltage = base.storage.initial_voltage;
  plan->base_lux_scale = base.lux_scale;

  int focv_axes = 0;
  for (const PolicyAxis& axis : policies) {
    AxisPlan ap;
    if (axis.prototype == nullptr && axis.resolved.name == "focv") {
      // The axis' representative controller at the nominal divider: only
      // the divider ratio varies per node, and both its effects (the
      // held-value target and the duty-cycled divider drain) are linear
      // in it, so two coefficients replace per-node construction.
      const mppt::FocvSampleHoldController rep =
          core::make_paper_controller_from_spec(axis.resolved, spec.system);
      ap.batch = true;
      ap.law = mppt::MacroLaw::kSampleHold;
      ap.eval = AxisEval::kSampleHold;
      ap.min_lux = rep.minimum_operating_lux();
      ap.focv_overlay = focv_axes++;
      ap.period = rep.astable().period();
      ap.on_s = rep.astable().params().on_period;
      ap.first_edge = rep.astable().next_rising_edge(0.0);
      ap.droop = rep.sample_hold().droop_rate();
      ap.alpha = rep.params().alpha;
      ap.threshold = rep.params().active_threshold;
      const analog::SampleHold::Params& sh = rep.sample_hold().params();
      ap.in_off = sh.input_buffer_offset;
      ap.val_const = sh.output_buffer_offset - sh.charge_injection / sh.hold_capacitance;
      ap.div_rep = sh.divider_ratio;
      ap.oh_rep = rep.overhead_power();
      ap.oh_div = rep.params().supply_voltage * rep.astable().duty_cycle() * 5.4 /
                  spec.system.divider_r_top;
      ap.div_factor = axis.resolved.is_set("k")
                          ? axis.resolved.value("k") * spec.system.alpha /
                                spec.system.divider_ratio
                          : 1.0;
    } else if (axis.prototype != nullptr &&
               axis.prototype->macro_law() == mppt::MacroLaw::kMemoryless) {
      ap.batch = true;
      ap.law = mppt::MacroLaw::kMemoryless;
      ap.proto = axis.prototype;
      ap.oh_const = axis.prototype->overhead_power();
      ap.min_lux = axis.prototype->minimum_operating_lux();
      resolve_affine(ap, axis.prototype.get());
    }
    plan->any_batch = plan->any_batch || ap.batch;
    plan->axes.push_back(std::move(ap));
  }
  if (!plan->any_batch) return nullptr;

  // Illuminance scale bounds over the heterogeneity draws, with a
  // 6 sigma margin on the log-normal cell factor; rarer nodes clamp to
  // the table edges (sub-ppm of the fleet, bounded by the band width).
  const HeterogeneitySpec& h = spec.heterogeneity;
  const double s_lo =
      base.lux_scale * h.attenuation_min * std::exp(-6.0 * h.cell_tolerance_sigma);
  const double s_hi =
      base.lux_scale * h.attenuation_max * std::exp(6.0 * h.cell_tolerance_sigma);

  plan->envs.resize(spec.environments.size());
  for (std::size_t e = 0; e < spec.environments.size(); ++e) {
    require(prepared[e].has_value(), "soa::build_plan: missing PreparedTrace");
    const env::LightTrace& trace = *spec.environments[e].trace;
    EnvPlan& ep = plan->envs[e];
    ep.schedule = sched::build_batch_schedule(trace, *prepared[e], base.events.max_interval_s);
    ep.time = &trace.time();
    ep.duration = ep.schedule.duration;
    const std::size_t n_iv = ep.schedule.intervals.size();
    ep.x_lo.assign(n_iv);
    ep.x_hi.assign(n_iv);
    ep.decay.assign(n_iv);
    ep.width.assign(n_iv);
    ep.span.assign(n_iv);
    ep.mean_u.assign(n_iv);
    ep.t_start.assign(n_iv);
    ep.nsteps.assign(n_iv);
    for (std::size_t i = 0; i < n_iv; ++i) {
      const sched::BatchInterval& iv = ep.schedule.intervals[i];
      ep.x_lo[i] = iv.lo_u > 0.0 ? kGrid * std::log(iv.lo_u) : -kInf;
      ep.x_hi[i] = iv.hi_u > 0.0 ? kGrid * std::log(iv.hi_u) : -kInf;
      ep.decay[i] = std::exp(-2.0 * iv.w / plan->tau);
      ep.width[i] = iv.w;
      ep.span[i] = iv.t1 - iv.t0;
      ep.mean_u[i] = iv.mean_u;
      ep.t_start[i] = iv.t0;
      ep.nsteps[i] = iv.b - iv.a;
    }
    for (const AxisPlan& ap : plan->axes) {
      if (ap.law == mppt::MacroLaw::kSampleHold && ap.batch) {
        ep.overlays.push_back(
            sched::build_edge_overlay(ep.schedule, ap.period, ap.on_s, ap.first_edge));
      }
    }
    double lo_u = 0.0;
    double hi_u = 0.0;
    for (const sched::BatchSegment& seg : ep.schedule.segments) {
      if (seg.dark) continue;
      if (hi_u == 0.0) lo_u = seg.min_u;
      lo_u = std::min(lo_u, seg.min_u);
      hi_u = std::max(hi_u, seg.max_u);
    }
    if (hi_u > 0.0) {
      ep.tables = export_tables(cache, lo_u * s_lo, hi_u * s_hi, spec.table_mode);
    }
  }

  if (obs::enabled()) {
    static const obs::CounterId plans_id = obs::metrics().counter("fleet.soa.plans_built");
    static const obs::GaugeId bytes_id = obs::metrics().gauge("fleet.soa.table_bytes");
    std::size_t table_bytes = 0;
    for (const EnvPlan& ep : plan->envs) table_bytes += ep.tables.bytes();
    obs::metrics().add(plans_id);
    obs::metrics().set(bytes_id, static_cast<double>(table_bytes));
  }
  return plan;
}

}  // namespace focv::fleet::soa
