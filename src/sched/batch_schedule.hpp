// Shared macro-interval schedule for batched fleet stepping.
//
// The event-driven MacroStepper (macro_stepper.cpp) derives its interval
// partition per node, because per-node controller state (the sample/hold
// phase, the store trajectory) feeds back into where intervals may end.
// The struct-of-arrays fleet engine inverts that: every node of an
// environment advances through ONE fixed partition — the ratio-band
// segments of the shared PreparedTrace, cut into intervals of at most
// max_interval_s with the same step-boundary snapping cap_interval()
// uses — and anything per-node (illuminance scale, divider draw, store
// level) enters as pure per-node arithmetic inside the interval loop.
//
// Everything stored here is UNSCALED: a node with lux_scale s sees
// illuminance s * (unscaled value), and because the surrogate curve grid
// is uniform in log-illuminance, its grid coordinate is the shared
// coordinate plus the per-node constant 32 * ln(s). The schedule is
// therefore built once per environment and shared read-only by every
// chunk and every worker.
#pragma once

#include <cstdint>
#include <vector>

#include "env/light_trace.hpp"
#include "sched/prepared_trace.hpp"

namespace focv::sched {

/// One macro interval: trace steps [a, b), with the 2-point illuminance
/// quadrature MacroStepper::process_interval would compute for a node of
/// lux_scale 1 (means, stddev clamp to the segment band — all of which
/// scale linearly with the per-node illuminance factor).
struct BatchInterval {
  std::uint32_t a = 0;  ///< first step (inclusive)
  std::uint32_t b = 0;  ///< last step (exclusive)
  double t0 = 0.0;      ///< t[a]
  double t1 = 0.0;      ///< t[b]
  double w = 0.0;       ///< width t1 - t0 [s]
  double dt_bar = 0.0;  ///< mean step width w / (b - a) [s]
  double t_mid = 0.0;   ///< 0.5 * (t0 + t1)
  double lo_u = 0.0;    ///< lower quadrature illuminance, unscaled [lux]
  double hi_u = 0.0;    ///< upper quadrature illuminance, unscaled [lux]
  double mean_u = 0.0;  ///< dt-weighted mean equivalent lux, unscaled
  double total_mean_u = 0.0;  ///< mean total lux (illuminance-estimate input)
};

/// One ratio-band segment of the trace, as a span of intervals.
struct BatchSegment {
  std::uint32_t first_interval = 0;
  std::uint32_t interval_count = 0;
  bool dark = false;
  double min_u = 0.0;  ///< unscaled segment bounds (running-gate inputs)
  double max_u = 0.0;
};

struct BatchSchedule {
  std::vector<BatchSegment> segments;
  std::vector<BatchInterval> intervals;
  double duration = 0.0;  ///< trace duration [s]

  // Flat interval iteration order for interval-major kernels: intervals
  // are already stored in time order (segments are contiguous spans), so
  // a kernel that walks `intervals` front to back only needs the owning
  // segment's dark flag and bounds without re-deriving the span
  // structure per node block. Both arrays are parallel to `intervals`.
  std::vector<std::uint8_t> interval_dark;      ///< owning segment is dark
  std::vector<std::uint32_t> interval_segment;  ///< index into `segments`
};

/// Build the shared schedule for one environment. Segment cutting uses
/// the same upper_bound step snapping as MacroStepper::cap_interval, so
/// interval boundaries land where the per-node stepper's would for a
/// node with no store-drift guard.
[[nodiscard]] BatchSchedule build_batch_schedule(const env::LightTrace& trace,
                                                 const PreparedTrace& prep,
                                                 double max_interval_s);

/// Per-interval summary of a periodic sample-edge grid (the astable's
/// PULSE rising edges at first_edge + h * period, h = 0, 1, ...). The
/// sample/hold controller resamples the held value at every edge, and
/// the held command between edges droops linearly with the age of the
/// newest sample — so batched interval integration only needs the mean
/// sample age and the edge count, both of which are shared by every
/// node whose controller uses the same astable parameters.
struct EdgeOverlay {
  struct Interval {
    double avg_lag = 0.0;   ///< mean age of the newest sample [s]
    double disc = 0.0;      ///< disconnect fraction: edges * on / width
    double pre_frac = 0.0;  ///< fraction of the interval before the very first edge
  };
  std::vector<Interval> intervals;  ///< parallel to BatchSchedule::intervals
};

[[nodiscard]] EdgeOverlay build_edge_overlay(const BatchSchedule& schedule, double period,
                                             double on_period, double first_edge);

}  // namespace focv::sched
