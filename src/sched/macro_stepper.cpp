#include "sched/macro_stepper.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/require.hpp"
#include "obs/obs.hpp"

namespace focv::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
/// Histogram batches merge into the registry every this many samples.
constexpr std::uint64_t kObsFlushEvery = 64;
}  // namespace

bool event_supported(const node::NodeConfig& config) {
  if (config.power_model != node::PowerModel::kSurrogate) return false;
  if (config.obs_compare_exact) return false;
  if (config.controller_prototype == nullptr) return false;
  return config.controller_prototype->macro_law() != mppt::MacroLaw::kPerStepOnly;
}

// The structure mirrors node/harvester_node.cpp's fixed loop on purpose:
// fallback_step() below IS that loop body (via the lazy at_lux queries),
// and every macro interval must account energy into the same NodeReport
// fields the fixed path uses. Read the two side by side.
node::NodeReport simulate_node_events(const env::LightTrace& trace, const node::NodeConfig& config,
                                      node::CurveCache* shared_curves,
                                      const PreparedTrace* prepared) {
  using node::CurveCache;

  require(config.cell_model != nullptr, "simulate_node: cell is required (use_cell)");
  require(config.controller_prototype != nullptr,
          "simulate_node: controller is required (use_controller)");
  require(trace.size() >= 2, "simulate_node: trace needs at least 2 samples");
  require(config.lux_scale > 0.0, "simulate_node: lux_scale must be > 0");
  require(event_supported(config),
          "simulate_node_events: config cannot run on the event engine (see event_supported)");

  const pv::SingleDiodeModel& cell = *config.cell_model;

  // Per-trace preprocessing: shared read-only across nodes, or built here.
  std::optional<PreparedTrace> owned_prep;
  if (prepared != nullptr) {
    require(&prepared->trace() == &trace,
            "simulate_node_events: PreparedTrace was built for a different trace");
    require(&prepared->cell() == &cell,
            "simulate_node_events: PreparedTrace was built for a different cell model");
  } else {
    env::SegmentationOptions seg;
    seg.ratio_band = config.events.lux_ratio_band;
    seg.floor = CurveCache::kDarkLux;
    owned_prep.emplace(trace, cell, seg);
  }
  const PreparedTrace& prep = prepared != nullptr ? *prepared : *owned_prep;

  std::unique_ptr<mppt::MpptController> owned_controller = config.controller_prototype->clone();
  mppt::MpptController& controller = *owned_controller;
  controller.reset();
  const mppt::MacroLaw law = controller.macro_law();

  power::Supercapacitor supercap(config.storage);
  std::optional<power::Battery> battery;
  if (config.battery) battery.emplace(*config.battery);
  const auto store_voltage = [&] {
    return battery ? battery->open_circuit_voltage() : supercap.voltage();
  };
  const auto store_usable = [&] { return battery ? battery->usable() : supercap.usable(); };
  const auto store_apply = [&](double power, double dt) {
    return battery ? battery->apply_power(power, dt) : supercap.apply_power(power, dt);
  };
  power::WsnLoad load(config.load);
  std::optional<power::ColdStartCircuit> coldstart;
  if (config.coldstart) coldstart.emplace(*config.coldstart);

  std::optional<CurveCache> owned_curves;
  if (shared_curves != nullptr) {
    require(&shared_curves->cell() == &cell,
            "simulate_node: shared curve cache was built for a different cell model");
    require(shared_curves->temperature_k() == config.temperature_k,
            "simulate_node: shared curve cache temperature mismatch");
    require(shared_curves->model() == config.power_model &&
                shared_curves->options().surrogate_points == config.surrogate_points,
            "simulate_node: shared curve cache options mismatch");
  } else {
    owned_curves.emplace(cell, config.temperature_k,
                         CurveCache::Options{config.power_model, config.surrogate_points});
  }
  CurveCache& curves = shared_curves != nullptr ? *shared_curves : *owned_curves;
  const std::uint64_t evals_before = curves.model_evals();
  const std::uint64_t entries_before = curves.entries_built();

  const std::vector<double>& t = trace.time();
  const std::vector<double>& eq = prep.eq_lux();
  const std::vector<double>& total = prep.total_lux();
  const double s = config.lux_scale;
  const std::size_t n_steps = prep.step_count();
  require(n_steps == trace.size() - 1,
          "simulate_node_events: PreparedTrace size does not match the trace");

  const bool obs_on = obs::enabled();
  std::optional<obs::Tracer::Span> run_span;
  if (obs_on) {
    run_span.emplace(obs::tracer().span("simulate_node", "node"));
    run_span->arg("controller", controller.name());
    run_span->arg("power_model", "surrogate");
    run_span->arg("stepper", "event");
  }
  static const obs::HistogramId step_eff_id = obs::metrics().histogram(
      "node.step_tracking_efficiency", {1e-3, 1.0 + 1e-9, 48});
  static const obs::HistogramId interval_id =
      obs::metrics().histogram("sched.interval_s", {1e-3, 1e5, 48});
  obs::HistogramBatch eff_batch({1e-3, 1.0 + 1e-9, 48});

  node::NodeReport report;
  report.duration = trace.duration();

  mppt::SensedInputs sensed;
  double prev_power = 0.0;
  double prev_voltage = 0.0;
  const double overhead_power = controller.overhead_power();
  const double min_operating_lux = controller.minimum_operating_lux();
  const double load_power = load.average_power();
  const double controller_current = overhead_power / 3.3;  // for the cold-start load model
  const bool record = config.record_traces;
  const std::size_t stride = static_cast<std::size_t>(std::max(1, config.record_stride));
  const bool bursts = config.events.resolve_load_bursts;

  std::uint64_t fallback_steps = 0;
  std::uint64_t intervals = 0;
  // Net store power of the last processed interval: seeds the
  // store-tracking drift guard in cap_interval().
  double last_net = -(overhead_power + load_power);

  // --- store advancement ----------------------------------------------
  // Time until the store's usable() flag would flip under constant net
  // power, from its current state. Mirrors the store models exactly:
  // closed-form RC solve for the supercapacitor, linear for the battery.
  const double cap_usable_energy = supercap.min_useful_energy();
  const auto time_to_usable_flip = [&](double net) -> double {
    if (battery) {
      const power::Battery::Params& bp = battery->params();
      const double rate =
          (net >= 0.0 ? std::min(net, bp.max_charge_power) * bp.coulombic_efficiency : net) -
          bp.capacity_j * bp.self_discharge_per_day / 86400.0;
      if (rate == 0.0) return kInf;
      const double dt = (0.02 * bp.capacity_j - battery->stored_energy()) / rate;
      return dt >= 0.0 ? dt : kInf;
    }
    return supercap.time_to_energy(net, cap_usable_energy);
  };
  const auto store_advance = [&](double net, double dt) {
    if (battery) {
      battery->apply_power(net, dt);
    } else {
      supercap.advance_constant_power(net, dt);
    }
  };

  // Opt-in burst resolution: continuous-time advance of [t0, t1) split
  // at load burst edges and usable() crossings. Not an equivalence path
  // (the fixed reference drains the period-average load), so crossings
  // flip in continuous time instead of snapping to step boundaries;
  // brownout_time is authoritative here, brownout_steps only counts
  // tick-stepped fallback steps.
  const auto advance_piece = [&](double t0, double t1, double delivered_pw, double oh_drain) {
    double cur = t0;
    while (cur < t1) {
      const bool usable = store_usable();
      const double load_now = load.power_at(cur);
      const double net = delivered_pw - oh_drain - (usable ? load_now : 0.0);
      double next = std::min(t1, load.next_burst_edge(cur));
      const double flip_dt = time_to_usable_flip(net);
      if (std::isfinite(flip_dt) && cur + flip_dt < next) {
        // Nudge just past the crossing so usable() actually flips.
        next = std::min(t1, cur + flip_dt + 1e-9);
        ++report.events;
      }
      const double len = next - cur;
      store_advance(net, len);
      if (usable) {
        report.load_energy_served += load_now * len;
      } else {
        report.brownout_time += len;
      }
      cur = next;
    }
  };

  // Advance the store across steps [a, b) under constant converter
  // output `delivered_pw` and controller drain `oh_drain`, splitting at
  // usable() threshold crossings (snapped to the step boundary the fixed
  // path would flip on — it tests usable() at step starts), at record
  // points, and (opt-in) at load burst edges. rec_v / rec_p are the
  // held operating point written to recorded traces inside the span.
  const auto advance_store_span = [&](std::size_t a, std::size_t b, double delivered_pw,
                                      double oh_drain, double rec_v, double rec_p) {
    std::size_t p = a;
    while (p < b) {
      std::size_t rec_step = kNone;
      std::size_t q = b;
      if (record) {
        const std::size_t r = ((p + stride - 1) / stride) * stride;  // next recorded step >= p
        if (r < b) {
          rec_step = r;
          q = r + 1;  // the fixed path records step r after applying it
        }
      }
      if (!bursts) {
        const bool usable = store_usable();
        const double net = delivered_pw - oh_drain - (usable ? load_power : 0.0);
        const double flip_dt = time_to_usable_flip(net);
        if (std::isfinite(flip_dt) && t[p] + flip_dt < t[q]) {
          auto it = std::upper_bound(t.begin() + static_cast<std::ptrdiff_t>(p),
                                     t.begin() + static_cast<std::ptrdiff_t>(q) + 1,
                                     t[p] + flip_dt);
          auto qf = static_cast<std::size_t>(it - t.begin());
          if (qf <= p) qf = p + 1;  // crossing at t[p] itself: flip lands on the next boundary
          if (qf < q) {
            q = qf;
            rec_step = kNone;  // the record boundary is beyond this piece now
          }
          ++report.events;  // storage threshold crossing
        }
        const double len = t[q] - t[p];
        store_advance(net, len);
        if (usable) {
          report.load_energy_served += load_power * len;
        } else {
          report.brownout_steps += static_cast<int>(q - p);
          report.brownout_time += len;
        }
      } else {
        advance_piece(t[p], t[q], delivered_pw, oh_drain);
      }
      if (rec_step != kNone) {
        report.time.push_back(t[rec_step]);
        report.pv_voltage.push_back(rec_v);
        report.pv_power.push_back(rec_p);
        report.store_voltage.push_back(store_voltage());
        ++report.events;  // report sampling point
      }
      p = q;
    }
  };

  // --- fallback step ---------------------------------------------------
  // One tick of the fixed reference loop (node/harvester_node.cpp),
  // answered through the lazy at_lux queries so no O(trace) prepare()
  // pass is needed. `advance_cs` is false only inside segments whose
  // cold-start supervisor is certified-and-frozen (see below).
  const auto fallback_step = [&](std::size_t i, bool advance_cs) {
    const double dt = t[i + 1] - t[i];
    const double lux = s * eq[i];
    const CurveCache::StepCurve curve = curves.at_lux(lux);
    report.ideal_mpp_energy += curve.pmpp * dt;

    bool running = true;
    if (coldstart) {
      if (advance_cs) {
        coldstart->advance(cell, curves.conditions_at(lux), dt, controller_current);
      }
      running = coldstart->started();
    }
    if (lux < min_operating_lux) running = false;

    double pv_power = 0.0;
    double pv_voltage = 0.0;
    if (running) {
      if (report.coldstart_time < 0.0) report.coldstart_time = t[i];
      sensed.time = t[i];
      sensed.dt = dt;
      sensed.voc = curve.voc;
      sensed.pilot_voc = curve.voc;
      sensed.illuminance_estimate = s * total[i];
      sensed.prev_power = prev_power;
      sensed.prev_voltage = prev_voltage;
      sensed.store_voltage = store_voltage();
      const mppt::ControlOutput out = controller.step(sensed);
      pv_voltage = out.pv_voltage;
      pv_power = curves.power_at_lux(lux, out.pv_voltage) *
                 (1.0 - std::min(1.0, out.disconnect_fraction));
      report.overhead_energy += overhead_power * dt;
      if (obs_on && curve.pmpp > 0.0) {
        eff_batch.observe(pv_power / curve.pmpp);
        if (eff_batch.pending() >= kObsFlushEvery) obs::metrics().flush(step_eff_id, eff_batch);
      }
    }
    prev_power = pv_power;
    prev_voltage = pv_voltage;
    report.harvested_energy += pv_power * dt;

    const double delivered = config.converter.output_power(pv_power, pv_voltage);
    report.delivered_energy += delivered * dt;

    double drain = running ? overhead_power : 0.0;
    const double step_load = bursts ? load.power_at(t[i]) : load_power;
    if (store_usable()) {
      drain += step_load;
      report.load_energy_served += step_load * dt;
    } else {
      ++report.brownout_steps;
      report.brownout_time += dt;
    }
    store_apply(delivered - drain, dt);

    if (record && i % stride == 0) {
      report.time.push_back(t[i]);
      report.pv_voltage.push_back(pv_voltage);
      report.pv_power.push_back(pv_power);
      report.store_voltage.push_back(store_voltage());
    }
    ++fallback_steps;
    ++report.events;
  };

  // --- analytic macro interval -----------------------------------------
  // Integrate steps [a, b) from one held operating point. Illuminance
  // enters through a 2-point quadrature at the interval's dt-weighted
  // mean +- stddev (O(1) from the prefix moments), clamped to the
  // segment's actual range, which integrates the curve exactly through
  // its second moment — the ratio band bounds what is left.
  const auto process_interval = [&](std::size_t a, std::size_t b, bool running, double lo_lux,
                                    double hi_lux) {
    ++intervals;
    ++report.events;
    const PreparedTrace::Moments m = prep.moments(a, b);
    const double w = m.w;
    const double mean = (m.m1 / m.w) * s;
    const double var = std::max(0.0, (m.m2 / m.w) * s * s - mean * mean);
    const double sd = std::sqrt(var);
    const double l_lo = std::clamp(mean - sd, lo_lux, hi_lux);
    const double l_hi = std::clamp(mean + sd, lo_lux, hi_lux);
    const CurveCache::StepCurve c_lo = curves.at_lux(l_lo);
    const CurveCache::StepCurve c_hi = curves.at_lux(l_hi);
    const double pmpp_bar = 0.5 * (c_lo.pmpp + c_hi.pmpp);
    report.ideal_mpp_energy += pmpp_bar * w;

    if (!running) {
      prev_power = 0.0;
      prev_voltage = 0.0;
      advance_store_span(a, b, 0.0, 0.0, 0.0, 0.0);
      return;
    }
    if (report.coldstart_time < 0.0) report.coldstart_time = t[a];

    const double t_mid = 0.5 * (t[a] + t[b]);
    const double dt_bar = w / static_cast<double>(b - a);
    double pv_v = 0.0;
    double p_lo = 0.0;
    double p_hi = 0.0;
    double d_lo = 0.0;
    double d_hi = 0.0;
    // Evaluate one commanded voltage at both quadrature illuminances.
    const auto power_pair = [&](double v) {
      p_lo = curves.power_at_lux(l_lo, v);
      p_hi = curves.power_at_lux(l_hi, v);
      d_lo = config.converter.output_power(p_lo, v);
      d_hi = config.converter.output_power(p_hi, v);
    };
    switch (law) {
      case mppt::MacroLaw::kSampleHold: {
        // The fixed path applies the command sampled at each step's own
        // time; evaluating the (linear) hold droop half a mean step past
        // the midpoint reproduces that average exactly.
        pv_v = controller.command_at(t_mid + 0.5 * dt_bar);
        power_pair(pv_v);
        break;
      }
      case mppt::MacroLaw::kMemoryless: {
        const double est = prep.total_lux_mean(a, b) * s;
        const auto eval = [&](const CurveCache::StepCurve& c, double lux) {
          sensed.time = t_mid;
          sensed.dt = dt_bar;
          sensed.voc = c.voc;
          sensed.pilot_voc = c.voc;
          sensed.illuminance_estimate = est;
          sensed.prev_power = prev_power;
          sensed.prev_voltage = prev_voltage;
          sensed.store_voltage = store_voltage();
          const mppt::ControlOutput out = controller.step(sensed);
          const double p = curves.power_at_lux(lux, out.pv_voltage) *
                           (1.0 - std::min(1.0, out.disconnect_fraction));
          return std::pair<double, double>{p, out.pv_voltage};
        };
        const auto [pl, vl] = eval(c_lo, l_lo);
        const auto [ph, vh] = eval(c_hi, l_hi);
        p_lo = pl;
        p_hi = ph;
        d_lo = config.converter.output_power(p_lo, vl);
        d_hi = config.converter.output_power(p_hi, vh);
        pv_v = 0.5 * (vl + vh);
        break;
      }
      case mppt::MacroLaw::kTracksStore: {
        const auto command_at_store = [&](double v_store) {
          sensed.time = t_mid;
          sensed.dt = dt_bar;
          sensed.voc = 0.5 * (c_lo.voc + c_hi.voc);
          sensed.pilot_voc = sensed.voc;
          sensed.illuminance_estimate = prep.total_lux_mean(a, b) * s;
          sensed.prev_power = prev_power;
          sensed.prev_voltage = prev_voltage;
          sensed.store_voltage = v_store;
          return controller.step(sensed).pv_voltage;
        };
        // Predictor-corrector: command at the entry store state, predict
        // the midpoint store voltage under that net power, re-command.
        pv_v = command_at_store(store_voltage());
        power_pair(pv_v);
        if (!battery) {
          const double net =
              0.5 * (d_lo + d_hi) - overhead_power - (store_usable() ? load_power : 0.0);
          power::Supercapacitor probe = supercap;  // predict only
          probe.advance_constant_power(net, 0.5 * w);
          pv_v = command_at_store(probe.voltage());
          power_pair(pv_v);
        }
        break;
      }
      case mppt::MacroLaw::kPerStepOnly:
        break;  // unreachable: event_supported() rejects it
    }
    const double p_bar = 0.5 * (p_lo + p_hi);
    const double d_bar = 0.5 * (d_lo + d_hi);
    report.harvested_energy += p_bar * w;
    report.delivered_energy += d_bar * w;
    report.overhead_energy += overhead_power * w;
    prev_power = p_bar;
    prev_voltage = pv_v;
    last_net = d_bar - overhead_power - (store_usable() ? load_power : 0.0);
    if (obs_on) {
      if (pmpp_bar > 0.0) {
        eff_batch.observe(p_bar / pmpp_bar);
        if (eff_batch.pending() >= kObsFlushEvery) obs::metrics().flush(step_eff_id, eff_batch);
      }
      obs::metrics().observe(interval_id, w);
      obs::tracer().record_complete("macro_interval", "sched", t[a] * 1e6, w * 1e6,
                                    obs::Tracer::kSimPid);
    }
    advance_store_span(a, b, d_bar, overhead_power, pv_v, p_bar);
  };

  // Bound one interval: the hard time cap, plus the store-drift guard
  // for store-tracking laws (the commanded voltage follows the store).
  const auto cap_interval = [&](std::size_t p, std::size_t limit) {
    double cap = config.events.max_interval_s;
    if (law == mppt::MacroLaw::kTracksStore && !battery) {
      const double v = std::max(store_voltage(), 0.5);
      const double net = std::max(std::abs(last_net), 1e-9);
      cap = std::min(cap, config.events.store_dv_guard * supercap.params().capacitance * v / net);
    }
    auto it = std::upper_bound(t.begin() + static_cast<std::ptrdiff_t>(p),
                               t.begin() + static_cast<std::ptrdiff_t>(limit) + 1, t[p] + cap);
    auto q = static_cast<std::size_t>(it - t.begin()) - 1;
    if (q <= p) q = p + 1;
    return std::min(q, limit);
  };

  // Cold-start sustain certification: with the supervisor latched on,
  // one exact cell evaluation at the segment's minimum illuminance
  // checks that the PV current at the worst-case hold voltage covers the
  // C1 drain with 4x margin — then started() cannot drop inside the
  // segment and the per-step supervisor integration is skipped (v_c1
  // frozen; it re-equilibrates within seconds of the next tick-stepped
  // segment, so un-start timing is preserved to well under the 0.1 %
  // energy budget).
  const auto coldstart_certified = [&](double scaled_min_lux) {
    if (!coldstart->started()) return false;
    const power::ColdStartCircuit::Params& cp = coldstart->params();
    const double v_hold = cp.threshold - cp.hysteresis + cp.diode_drop;
    const double i_pv =
        std::max(0.0, cell.current(v_hold, curves.conditions_at(scaled_min_lux)));
    return i_pv >= 4.0 * (cp.standby_leakage + controller_current);
  };

  const double dark_lux = CurveCache::kDarkLux;
  for (const env::Segment& seg : prep.segments()) {
    ++report.events;  // light-trace breakpoint
    const double seg_min = s * seg.min_value;
    const double seg_max = s * seg.max_value;

    bool per_step = false;
    bool frozen_cs = false;
    if (min_operating_lux > 0.0 && seg_min < min_operating_lux && seg_max >= min_operating_lux) {
      per_step = true;  // the running gate would flip mid-segment
    }
    if (!per_step && seg.dark && seg_max >= dark_lux) {
      // lux_scale pushed a dark-merged segment (unbounded ratio) across
      // the surrogate's dark cutoff: no band bound for the quadrature.
      per_step = true;
    }
    if (!per_step && coldstart) {
      if (coldstart_certified(seg_min)) {
        frozen_cs = true;
      } else {
        per_step = true;  // supervisor state must evolve tick by tick
        // A started supervisor failing certification is the anomalous
        // case (the drain margin collapsed); pre-start fallbacks are the
        // expected cold-start ramp and stay quiet.
        if (coldstart->started()) {
          obs::anomaly("coldstart_cert_failed", t[seg.first],
                       {{"seg_min_lux", seg_min},
                        {"steps", static_cast<double>(seg.last - seg.first)}});
        }
      }
    }
    if (per_step) {
      for (std::size_t i = seg.first; i < seg.last; ++i) fallback_step(i, true);
      continue;
    }

    const bool running_seg = (min_operating_lux <= 0.0 || seg_min >= min_operating_lux) &&
                             (!coldstart || coldstart->started());
    (void)frozen_cs;  // documented: certified segments never advance the supervisor

    std::size_t p = seg.first;
    while (p < seg.last) {
      if (running_seg && law == mppt::MacroLaw::kSampleHold) {
        const double te = controller.next_command_event(t[p]);
        if (te < t[p + 1]) {
          // The event lands inside step p: replay that step through the
          // real controller so its mutable state (held sample, astable
          // phase, catch-up after dark) is exactly the fixed path's.
          fallback_step(p, false);
          ++p;
          continue;
        }
        std::size_t q = seg.last;
        if (te < t[seg.last]) {
          // Macro-step up to the step that contains the event.
          auto it = std::upper_bound(t.begin() + static_cast<std::ptrdiff_t>(p),
                                     t.begin() + static_cast<std::ptrdiff_t>(seg.last) + 1, te);
          q = static_cast<std::size_t>(it - t.begin()) - 1;
        }
        q = cap_interval(p, q);
        process_interval(p, q, true, seg_min, seg_max);
        p = q;
      } else {
        const std::size_t q = cap_interval(p, seg.last);
        process_interval(p, q, running_seg, seg_min, seg_max);
        p = q;
      }
    }
  }

  report.final_store_voltage = store_voltage();
  report.steps = fallback_steps + intervals;
  report.model_evals = curves.model_evals() - evals_before;
  report.curve_entries = curves.entries_built() - entries_before;

  if (obs_on) {
    obs::metrics().flush(step_eff_id, eff_batch);
    static const obs::CounterId steps_id = obs::metrics().counter("node.steps");
    static const obs::CounterId evals_id = obs::metrics().counter("node.model_evals");
    static const obs::CounterId events_id = obs::metrics().counter("sched.events");
    static const obs::CounterId intervals_id = obs::metrics().counter("sched.intervals");
    static const obs::CounterId fallback_id = obs::metrics().counter("sched.fallback_steps");
    obs::metrics().add(steps_id, static_cast<double>(report.steps));
    obs::metrics().add(evals_id, static_cast<double>(report.model_evals));
    obs::metrics().add(events_id, static_cast<double>(report.events));
    obs::metrics().add(intervals_id, static_cast<double>(intervals));
    obs::metrics().add(fallback_id, static_cast<double>(fallback_steps));
    obs::events().emit("node_run_complete", report.duration,
                       {{"steps", report.steps},
                        {"tracking_efficiency", report.tracking_efficiency()},
                        {"net_j", report.net_energy()},
                        {"curve_entries", report.curve_entries}});
    run_span->arg("steps", static_cast<double>(report.steps));
    run_span->arg("events", static_cast<double>(report.events));
    run_span->arg("fallback_steps", static_cast<double>(fallback_steps));
    run_span->arg("model_evals", static_cast<double>(report.model_evals));
    run_span->arg("tracking_efficiency", report.tracking_efficiency());
  }
  return report;
}

}  // namespace focv::sched
