// Tuning knobs of the event-driven macro-stepping engine (focv::sched).
//
// Kept header-only and free of node/env includes so NodeConfig can embed
// the options without a dependency cycle (the engine itself depends on
// focv::node types and is compiled into the focv_node target).
#pragma once

namespace focv::sched {

/// Options for NodeConfig::stepper == Stepper::kEvent. The defaults are
/// tuned so every NodeReport energy/efficiency output stays within 0.1 %
/// of the fixed-step reference across the repo's indoor/outdoor/
/// cold-start scenarios (see tests/sched/) while compressing a 24 h
/// office day from 86,400 steps to a few thousand events.
struct EventOptions {
  /// Light-trace segmentation band: a segment ends as soon as its
  /// max/min illuminance ratio would exceed this. Wider bands mean
  /// fewer, longer analytic intervals but more quadrature error.
  double lux_ratio_band = 1.35;

  /// Store-tracking laws (direct connection): maximum predicted store
  /// voltage drift per analytic interval [V]. The commanded PV voltage
  /// follows the store, so the interval length is capped at
  /// guard * C * V / |net power| and the operating point is re-evaluated
  /// at the interval midpoint (one predictor-corrector pass).
  double store_dv_guard = 5e-3;

  /// Hard cap on one analytic interval [s] — bounds any slow drift the
  /// per-interval laws do not model (store-coupled sensing, prev_power
  /// feedback into fallback steps).
  double max_interval_s = 900.0;

  /// When true, the duty-cycled load is resolved edge to edge through
  /// WsnLoad::next_burst_edge()/power_at() instead of its period
  /// average. The fixed reference path drains the *average* load power
  /// every step, so burst resolution is a refinement, not an
  /// equivalence target: leave it off (default) when validating against
  /// kFixed, turn it on to study burst-synchronous store dips.
  bool resolve_load_bursts = false;
};

}  // namespace focv::sched
