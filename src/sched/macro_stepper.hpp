// focv::sched — the event-driven macro-stepping engine.
//
// simulate_node's fixed path integrates every trace step (86,400 per
// simulated day); the engine here advances from event to event instead:
//
//   - MPPT sample/hold boundaries: for sample-and-hold laws the
//     controller exposes next_command_event()/command_at(); the step
//     containing an event is replayed through the real step() call, so
//     the controller's mutable state (held sample, astable phase,
//     catch-up edges after dark periods) stays exactly the fixed path's.
//   - Light-trace breakpoints: the ratio-band segmentation of
//     env/segments.hpp via PreparedTrace; any segment straddling a
//     controller's minimum operating illuminance (running would flip
//     mid-segment) is stepped tick by tick instead.
//   - Storage threshold crossings: usable/brown-out flips found by the
//     closed-form root solve in power/storage.cpp (linear solve for the
//     battery), snapped to the step boundary the fixed path would flip
//     on.
//   - Load burst edges (opt-in, EventOptions::resolve_load_bursts) and
//     report/record sampling points.
//
// Between events, harvested/delivered charge is integrated analytically
// from the held operating point and the CurveCache surrogate with a
// 2-point quadrature at the interval's illuminance mean +- stddev (O(1)
// from PreparedTrace prefix moments), so model_evals stays flat while
// steps drops by 1-2 orders of magnitude.
//
// Correctness contract: every NodeReport energy/efficiency output within
// 0.1 % of the fixed-step trajectory (tests/sched/equivalence_test.cpp).
#pragma once

#include "env/light_trace.hpp"
#include "node/harvester_node.hpp"
#include "sched/prepared_trace.hpp"

namespace focv::sched {

/// True when `config` can run on the event engine: surrogate power
/// model, no exact-shadow telemetry, and a controller whose macro law
/// the engine understands. simulate_node silently takes the fixed
/// reference path otherwise.
[[nodiscard]] bool event_supported(const node::NodeConfig& config);

/// Event-driven counterpart of node::simulate_node. `config` must pass
/// event_supported(). `shared_curves` follows the same contract as the
/// fixed path's shared-cache overload (surrogate mode; not re-entrant).
/// `prepared` may be nullptr (built internally) or a caller-owned
/// instance for exactly this trace and cell — shared, read-only, across
/// any number of concurrent runs.
[[nodiscard]] node::NodeReport simulate_node_events(const env::LightTrace& trace,
                                                    const node::NodeConfig& config,
                                                    node::CurveCache* shared_curves,
                                                    const PreparedTrace* prepared);

}  // namespace focv::sched
