// Read-only per-trace preprocessing for the event-driven macro-stepper.
//
// One O(trace) pass computes everything the engine needs to integrate
// analytically between events: the equivalent-lux series, prefix moments
// (so dt-weighted mean and variance of the illuminance over ANY step
// range [i, j) cost O(1)), and the ratio-band segmentation from
// env/segments.hpp. The object is immutable after construction, so one
// instance is shared read-only by every node that runs over the same
// trace + cell — the fleet engine builds one per environment and the
// per-node cost of event stepping stays O(events), not O(trace).
#pragma once

#include <cstddef>
#include <vector>

#include "env/light_trace.hpp"
#include "env/segments.hpp"
#include "pv/diode_models.hpp"

namespace focv::sched {

class PreparedTrace {
 public:
  /// Builds the per-step series, prefix sums and segmentation. The trace
  /// and cell must outlive this object (held by reference).
  PreparedTrace(const env::LightTrace& trace, const pv::SingleDiodeModel& cell,
                const env::SegmentationOptions& segmentation);

  [[nodiscard]] const env::LightTrace& trace() const { return *trace_; }
  [[nodiscard]] const pv::SingleDiodeModel& cell() const { return *cell_; }
  [[nodiscard]] const env::SegmentationOptions& segmentation() const { return seg_options_; }

  /// Number of simulation steps (trace samples - 1).
  [[nodiscard]] std::size_t step_count() const { return n_steps_; }
  /// Equivalent fluorescent illuminance per sample (unscaled — per-node
  /// lux_scale is applied by the engine, which keeps this shareable).
  [[nodiscard]] const std::vector<double>& eq_lux() const { return eq_lux_; }
  /// Total (artificial + daylight) illuminance per sample.
  [[nodiscard]] const std::vector<double>& total_lux() const { return total_lux_; }
  /// Ratio-band segments over the equivalent-lux steps.
  [[nodiscard]] const std::vector<env::Segment>& segments() const { return segments_; }

  /// dt-weighted moments of the (unscaled) equivalent lux over steps
  /// [i, j): w = sum dt, m1 = sum lux*dt, m2 = sum lux^2*dt. O(1).
  struct Moments {
    double w = 0.0;
    double m1 = 0.0;
    double m2 = 0.0;
  };
  [[nodiscard]] Moments moments(std::size_t i, std::size_t j) const {
    return {cum_dt_[j] - cum_dt_[i], cum_eq_[j] - cum_eq_[i], cum_eq2_[j] - cum_eq2_[i]};
  }

  /// dt-weighted mean of the total illuminance over steps [i, j). O(1).
  [[nodiscard]] double total_lux_mean(std::size_t i, std::size_t j) const {
    const double w = cum_dt_[j] - cum_dt_[i];
    return w > 0.0 ? (cum_total_[j] - cum_total_[i]) / w : 0.0;
  }

 private:
  const env::LightTrace* trace_;
  const pv::SingleDiodeModel* cell_;
  env::SegmentationOptions seg_options_;
  std::size_t n_steps_ = 0;
  std::vector<double> eq_lux_;
  std::vector<double> total_lux_;
  // Prefix sums over steps, size n_steps_ + 1 (index 0 is 0).
  std::vector<double> cum_dt_;
  std::vector<double> cum_eq_;
  std::vector<double> cum_eq2_;
  std::vector<double> cum_total_;
  std::vector<env::Segment> segments_;
};

}  // namespace focv::sched
