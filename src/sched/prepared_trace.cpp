#include "sched/prepared_trace.hpp"

#include "common/require.hpp"

namespace focv::sched {

PreparedTrace::PreparedTrace(const env::LightTrace& trace, const pv::SingleDiodeModel& cell,
                             const env::SegmentationOptions& segmentation)
    : trace_(&trace), cell_(&cell), seg_options_(segmentation) {
  require(trace.size() >= 2, "PreparedTrace: trace needs at least 2 samples");
  eq_lux_ = trace.equivalent_lux(cell);
  total_lux_ = trace.total_lux();
  n_steps_ = trace.size() - 1;

  const std::vector<double>& t = trace.time();
  cum_dt_.resize(n_steps_ + 1);
  cum_eq_.resize(n_steps_ + 1);
  cum_eq2_.resize(n_steps_ + 1);
  cum_total_.resize(n_steps_ + 1);
  cum_dt_[0] = cum_eq_[0] = cum_eq2_[0] = cum_total_[0] = 0.0;
  for (std::size_t i = 0; i < n_steps_; ++i) {
    const double dt = t[i + 1] - t[i];
    require(dt > 0.0, "PreparedTrace: trace times must be strictly increasing");
    const double lux = eq_lux_[i];
    cum_dt_[i + 1] = cum_dt_[i] + dt;
    cum_eq_[i + 1] = cum_eq_[i] + lux * dt;
    cum_eq2_[i + 1] = cum_eq2_[i] + lux * lux * dt;
    cum_total_[i + 1] = cum_total_[i] + total_lux_[i] * dt;
  }
  segments_ = env::segment_series(eq_lux_, n_steps_, seg_options_);
}

}  // namespace focv::sched
