#include "sched/batch_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "obs/obs.hpp"

namespace focv::sched {

BatchSchedule build_batch_schedule(const env::LightTrace& trace, const PreparedTrace& prep,
                                   double max_interval_s) {
  require(max_interval_s > 0.0, "build_batch_schedule: max_interval_s must be > 0");
  const std::vector<double>& t = trace.time();
  require(prep.step_count() == trace.size() - 1,
          "build_batch_schedule: PreparedTrace does not match the trace");

  BatchSchedule out;
  out.duration = trace.duration();
  for (const env::Segment& seg : prep.segments()) {
    BatchSegment bs;
    bs.first_interval = static_cast<std::uint32_t>(out.intervals.size());
    bs.dark = seg.dark;
    bs.min_u = seg.min_value;
    bs.max_u = seg.max_value;

    std::size_t p = seg.first;
    while (p < seg.last) {
      // Same cap as MacroStepper::cap_interval: the last step boundary
      // within max_interval_s of t[p], at least one step, never past the
      // segment end.
      auto it = std::upper_bound(t.begin() + static_cast<std::ptrdiff_t>(p),
                                 t.begin() + static_cast<std::ptrdiff_t>(seg.last) + 1,
                                 t[p] + max_interval_s);
      std::size_t q = static_cast<std::size_t>(it - t.begin()) - 1;
      if (q <= p) q = p + 1;
      q = std::min(q, seg.last);

      BatchInterval iv;
      iv.a = static_cast<std::uint32_t>(p);
      iv.b = static_cast<std::uint32_t>(q);
      iv.t0 = t[p];
      iv.t1 = t[q];
      const PreparedTrace::Moments m = prep.moments(p, q);
      iv.w = m.w;
      iv.dt_bar = m.w / static_cast<double>(q - p);
      iv.t_mid = 0.5 * (iv.t0 + iv.t1);
      const double mean = m.m1 / m.w;
      const double var = std::max(0.0, m.m2 / m.w - mean * mean);
      const double sd = std::sqrt(var);
      iv.mean_u = mean;
      iv.lo_u = std::clamp(mean - sd, seg.min_value, seg.max_value);
      iv.hi_u = std::clamp(mean + sd, seg.min_value, seg.max_value);
      iv.total_mean_u = prep.total_lux_mean(p, q);
      out.intervals.push_back(iv);
      p = q;
    }
    bs.interval_count = static_cast<std::uint32_t>(out.intervals.size()) - bs.first_interval;
    out.segments.push_back(bs);
  }

  out.interval_dark.resize(out.intervals.size(), 0);
  out.interval_segment.resize(out.intervals.size(), 0);
  for (std::size_t si = 0; si < out.segments.size(); ++si) {
    const BatchSegment& bs = out.segments[si];
    for (std::uint32_t k = 0; k < bs.interval_count; ++k) {
      out.interval_dark[bs.first_interval + k] = bs.dark ? 1 : 0;
      out.interval_segment[bs.first_interval + k] = static_cast<std::uint32_t>(si);
    }
  }

  if (obs::enabled()) {
    static const obs::CounterId builds_id = obs::metrics().counter("sched.batch.builds");
    static const obs::CounterId segs_id = obs::metrics().counter("sched.batch.segments");
    static const obs::CounterId ivs_id = obs::metrics().counter("sched.batch.intervals");
    static const obs::HistogramId width_id =
        obs::metrics().histogram("sched.batch.interval_s", {1e-3, 1e5, 40});
    obs::metrics().add(builds_id);
    obs::metrics().add(segs_id, static_cast<double>(out.segments.size()));
    obs::metrics().add(ivs_id, static_cast<double>(out.intervals.size()));
    for (const BatchInterval& iv : out.intervals) obs::metrics().observe(width_id, iv.w);
  }
  return out;
}

EdgeOverlay build_edge_overlay(const BatchSchedule& schedule, double period, double on_period,
                               double first_edge) {
  require(period > 0.0 && on_period > 0.0, "build_edge_overlay: periods must be > 0");
  EdgeOverlay out;
  out.intervals.reserve(schedule.intervals.size());
  // Integral of the sample age over [first_edge, first_edge + u]: a
  // sawtooth resetting to 0 at every edge.
  const auto age_integral = [&](double u) {
    const double full = std::floor(u / period);
    const double rem = u - full * period;
    return full * 0.5 * period * period + 0.5 * rem * rem;
  };
  for (const BatchInterval& iv : schedule.intervals) {
    EdgeOverlay::Interval o;
    const double lo = std::max(iv.t0, first_edge);
    if (lo >= iv.t1) {
      // Entirely before the first edge: no sample exists yet.
      o.pre_frac = 1.0;
      out.intervals.push_back(o);
      continue;
    }
    o.pre_frac = (lo - iv.t0) / iv.w;
    const double live = iv.t1 - lo;
    o.avg_lag = (age_integral(iv.t1 - first_edge) - age_integral(lo - first_edge)) / live;
    // Rising edges inside [t0, t1): each one holds the PV input
    // disconnected for on_period while the switch samples Voc.
    const double h0 = std::ceil((iv.t0 - first_edge) / period);
    const double h1 = std::ceil((iv.t1 - first_edge) / period);
    const double edges = std::max(0.0, h1 - h0);
    o.disc = std::min(1.0, edges * on_period / iv.w);
    out.intervals.push_back(o);
  }
  return out;
}

}  // namespace focv::sched
