#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace focv::runtime {

int ThreadPool::default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : default_thread_count();
  queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  stopping_.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> fence(wake_mutex_); }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Fence against the check-then-block window of a sleeping thread: a
  // notify fired between its predicate check and its actual block would
  // otherwise be lost.
  { std::lock_guard<std::mutex> fence(wake_mutex_); }
  wake_.notify_all();
}

bool ThreadPool::run_one(std::size_t home) {
  const std::size_t n = queues_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t q = (home + k) % n;
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(queues_[q]->mutex);
      if (queues_[q]->tasks.empty()) continue;
      if (q == home) {  // own work newest-first, steal oldest-first
        task = std::move(queues_[q]->tasks.back());
        queues_[q]->tasks.pop_back();
      } else {
        task = std::move(queues_[q]->tasks.front());
        queues_[q]->tasks.pop_front();
      }
    }
    queued_.fetch_sub(1, std::memory_order_relaxed);
    queues_[home]->executed.fetch_add(1, std::memory_order_relaxed);
    if (q != home) queues_[home]->stolen.fetch_add(1, std::memory_order_relaxed);
    task();
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      { std::lock_guard<std::mutex> fence(wake_mutex_); }
      wake_.notify_all();
    }
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t id) {
  while (true) {
    if (run_one(id)) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::wait_idle() {
  // Steal from queue 0 onward: the caller is not a worker, so it has no
  // home queue of its own.
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (run_one(0)) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0 ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> stats(queues_.size());
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    stats[i].executed = queues_[i]->executed.load(std::memory_order_relaxed);
    stats[i].stolen = queues_[i]->stolen.load(std::memory_order_relaxed);
  }
  return stats;
}

ThreadPool::WorkerStats ThreadPool::total_stats() const {
  WorkerStats total;
  for (const WorkerStats& w : worker_stats()) {
    total.executed += w.executed;
    total.stolen += w.stolen;
  }
  return total;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

}  // namespace focv::runtime
