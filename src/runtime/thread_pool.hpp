// Work-stealing thread pool: the execution substrate of the scenario
// sweep runtime (sweep.hpp). Kept dependency-free so other modules
// (tolerance Monte-Carlo, sizing fan-outs) can reuse it directly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace focv::runtime {

/// Fixed-size work-stealing thread pool.
///
/// Each worker owns a deque: it runs its own work LIFO (cache friendly
/// for recursively submitted jobs) and steals FIFO from its siblings
/// when empty, so a few long matrix cells cannot strand the rest of a
/// sweep behind them. Tasks must not throw — job-level failures are
/// expected to be caught and recorded inside the task itself (run_sweep
/// does exactly that); an escaping exception terminates the process.
class ThreadPool {
 public:
  /// `threads` <= 0 selects default_thread_count().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Thread-safe; may be called from inside a task.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. The calling thread
  /// helps drain the queues instead of just sleeping.
  void wait_idle();

  [[nodiscard]] int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Per-worker execution statistics. Cumulative since construction;
  /// indexed by the executing context's home queue, so slot 0 also
  /// collects work drained by an external wait_idle() caller (which
  /// scans from queue 0). `stolen` counts tasks taken from a sibling's
  /// queue; `executed` includes them.
  struct WorkerStats {
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
  };
  /// Cheap snapshot (one relaxed atomic load per counter); safe to call
  /// concurrently with running tasks.
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;
  /// Sums of worker_stats() across all workers.
  [[nodiscard]] WorkerStats total_stats() const;

  /// Hardware concurrency, clamped to at least 1.
  [[nodiscard]] static int default_thread_count();

  /// Run fn(i) for each i in [0, n) as n independent stealable jobs and
  /// wait for all of them. fn must not throw.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
    // Stats of the context whose home this queue is (cache-line padded
    // away from siblings by the per-queue heap allocation).
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
  };

  /// Pop from queue `home` (LIFO) or steal from a sibling (FIFO).
  /// Returns false when every queue was empty.
  bool run_one(std::size_t home);
  void worker_loop(std::size_t id);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;           ///< queued work / completion / shutdown
  std::atomic<std::size_t> queued_{0};     ///< tasks sitting in queues
  std::atomic<std::size_t> pending_{0};    ///< queued + currently running tasks
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace focv::runtime
