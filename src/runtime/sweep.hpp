// focv_runtime: declarative parallel scenario-sweep engine.
//
// Every evaluation artefact of this repo — the Table I tracking matrix,
// the SOTA comparison, the hold-period ablation, the tolerance
// Monte-Carlo — is a sweep of independent HarvesterNode runs. This
// module expresses such a sweep as a declarative matrix
//
//     cells x controllers x light scenarios x parameter-grid points
//
// fans each cell of the matrix out as an isolated job on a
// work-stealing thread pool, and aggregates the NodeReports into a
// deterministic, ordered SweepResult with summary statistics and
// CSV/JSON export.
//
// Determinism: every job owns a cloned controller, a copied NodeConfig
// and a private RNG stream derived from the root seed by splitmix64 on
// the job index, and its record lands in a slot addressed by that same
// index — so a SweepResult is bit-identical no matter how many worker
// threads executed it or in which order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "env/light_trace.hpp"
#include "mppt/controller.hpp"
#include "node/harvester_node.hpp"
#include "pv/diode_models.hpp"

namespace focv::runtime {

/// Axis value: a named PV cell.
struct CellAxis {
  std::string name;
  std::shared_ptr<const pv::SingleDiodeModel> model;
};

/// Axis value: a named controller prototype (cloned once per job).
struct ControllerAxis {
  std::string name;
  std::shared_ptr<const mppt::MpptController> prototype;
};

/// Axis value: a named light scenario.
struct ScenarioAxis {
  std::string name;
  std::shared_ptr<const env::LightTrace> trace;
};

/// Axis value: a named mutation of the job's NodeConfig, applied after
/// the cell and controller are installed. `apply` receives the job's
/// private RNG stream (Monte-Carlo grids draw from it); a null `apply`
/// is the identity ("nominal") point.
struct GridAxis {
  std::string name = "nominal";
  std::function<void(node::NodeConfig&, Rng&)> apply;
};

/// Declarative sweep matrix. Job index nesting (outer to inner):
/// cells, controllers, scenarios, grid.
struct SweepSpec {
  std::vector<CellAxis> cells;
  std::vector<ControllerAxis> controllers;
  std::vector<ScenarioAxis> scenarios;
  std::vector<GridAxis> grid;  ///< empty => a single nominal point
  /// Template for every job's NodeConfig; the cell/controller slots are
  /// overwritten per job.
  node::NodeConfig base;
  /// Root of the per-job RNG streams (see file comment).
  std::uint64_t root_seed = 2024;

  // Convenience builders.
  /// Borrow a long-lived cell (e.g. a pv::cell_library singleton).
  void add_cell(std::string name, const pv::SingleDiodeModel& cell);
  /// Deep-copy `prototype` onto the controller axis.
  void add_controller(std::string name, const mppt::MpptController& prototype);
  void add_controller(std::string name, std::unique_ptr<mppt::MpptController> prototype);
  /// Build the axis entry from a registry spec string; the axis name is
  /// the *canonical* spec (mppt::ResolvedSpec::spec()), so CSV/JSON
  /// controller keys are stable across equivalent spellings
  /// (`pando[period=5s]` == `pando[ period = 5000ms ]`). Throws
  /// mppt::SpecError on a bad spec.
  void add_controller(const std::string& spec);
  void add_scenario(std::string name, env::LightTrace trace);
  void add_grid_point(std::string name, std::function<void(node::NodeConfig&, Rng&)> apply);

  /// Total number of matrix cells (grid counted as 1 when empty).
  [[nodiscard]] std::size_t job_count() const;
};

/// Outcome of one matrix cell.
struct SweepRecord {
  std::size_t job = 0;  ///< flat matrix index (also the RNG stream index)
  std::size_t cell_index = 0;
  std::size_t controller_index = 0;
  std::size_t scenario_index = 0;
  std::size_t grid_index = 0;
  std::string cell, controller, scenario, grid;
  node::NodeReport report;   ///< valid only when !failed
  bool failed = false;
  std::string error;         ///< exception text when failed

  // Observability (excluded from exports unless asked; see to_csv).
  // The counters are populated from a per-job obs::MetricsRegistry by
  // run_sweep; when focv::obs is enabled the same values also aggregate
  // into the global metrics under the sweep.* namespace.
  double wall_seconds = 0.0;        ///< this job's execution time
  std::uint64_t steps = 0;          ///< simulation steps executed
  std::uint64_t model_evals = 0;    ///< exact cell-model solves issued by the job
  std::uint64_t curve_entries = 0;  ///< unique illuminance buckets solved by the job
};

/// Mean / stddev / min / max of one quantity across records.
struct SweepStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Per-controller aggregate across all cells, scenarios and grid points.
struct SweepSummary {
  std::string controller;
  std::size_t runs = 0;      ///< successful jobs
  std::size_t failures = 0;
  SweepStats net_energy;
  SweepStats tracking_efficiency;
  SweepStats harvested_energy;
};

struct SweepOptions;
class SweepResult;
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options);

/// Deterministic, ordered result of a sweep.
class SweepResult {
 public:
  [[nodiscard]] const std::vector<SweepRecord>& records() const { return records_; }

  /// Record at the given matrix coordinates.
  [[nodiscard]] const SweepRecord& at(std::size_t cell_i, std::size_t controller_i,
                                      std::size_t scenario_i, std::size_t grid_i = 0) const;

  [[nodiscard]] std::size_t failed_count() const;
  [[nodiscard]] std::vector<SweepSummary> summary() const;

  /// Whole-sweep wall time [s] and the worker count actually used.
  [[nodiscard]] double wall_seconds() const { return wall_seconds_; }
  [[nodiscard]] int jobs_used() const { return jobs_used_; }

  /// Sums of the per-job observability counters (deterministic for a
  /// given spec, independent of the worker count).
  [[nodiscard]] std::uint64_t total_steps() const;
  [[nodiscard]] std::uint64_t total_model_evals() const;

  /// Per-job table, one row per matrix cell in index order. Timing
  /// columns are off by default so that exports from runs with
  /// different thread counts compare byte-identical.
  [[nodiscard]] std::string to_csv(bool include_timing = false) const;
  void write_csv(const std::string& path, bool include_timing = false) const;
  [[nodiscard]] std::string to_json(bool include_timing = false) const;
  void write_json(const std::string& path, bool include_timing = false) const;

 private:
  friend SweepResult run_sweep(const SweepSpec&, const SweepOptions&);

  std::vector<SweepRecord> records_;
  std::size_t controllers_ = 0, scenarios_ = 0, grids_ = 0;
  double wall_seconds_ = 0.0;
  int jobs_used_ = 0;
};

/// Live progress of a running sweep.
struct SweepProgress {
  std::size_t completed = 0;
  std::size_t total = 0;
  std::size_t failed = 0;
  const SweepRecord* last = nullptr;  ///< the job that just finished
};

struct SweepOptions {
  /// Worker threads; 0 selects ThreadPool::default_thread_count().
  /// 1 runs the whole sweep inline on the calling thread.
  int jobs = 0;
  /// Invoked after each job completes; calls are serialized.
  std::function<void(const SweepProgress&)> on_progress;
};

/// Execute the sweep. Throws PreconditionError when an axis is empty or
/// a controller/cell/scenario entry is null. A job that throws marks
/// only its own record failed; all other cells still run.
[[nodiscard]] inline SweepResult run_sweep(const SweepSpec& spec) {
  return run_sweep(spec, SweepOptions{});
}

}  // namespace focv::runtime
