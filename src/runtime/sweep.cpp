#include "runtime/sweep.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>

#include "common/require.hpp"
#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"

namespace focv::runtime {

namespace {

/// Shortest round-trip double formatting shared by the CSV and JSON
/// writers, so exports are byte-stable across runs and thread counts.
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Flatten a free-text field (scenario names, exception messages) into
/// one CSV cell: the separators become ';'.
std::string csv_safe(std::string s) {
  for (char& c : s) {
    if (c == ',' || c == '\n' || c == '\r') c = ';';
  }
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

SweepStats stats_over(const std::vector<double>& values) {
  SweepStats s;
  if (values.empty()) return s;
  s.min = 1e300;
  s.max = -1e300;
  double sum = 0.0, sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  const double n = static_cast<double>(values.size());
  s.mean = sum / n;
  s.stddev = std::sqrt(std::max(0.0, sum_sq / n - s.mean * s.mean));
  return s;
}

}  // namespace

void SweepSpec::add_cell(std::string name, const pv::SingleDiodeModel& cell) {
  CellAxis axis;
  axis.name = std::move(name);
  axis.model = std::shared_ptr<const pv::SingleDiodeModel>(
      std::shared_ptr<const pv::SingleDiodeModel>(), &cell);
  cells.push_back(std::move(axis));
}

void SweepSpec::add_controller(std::string name, const mppt::MpptController& prototype) {
  add_controller(std::move(name), prototype.clone());
}

void SweepSpec::add_controller(std::string name,
                               std::unique_ptr<mppt::MpptController> prototype) {
  ControllerAxis axis;
  axis.name = std::move(name);
  axis.prototype = std::move(prototype);
  controllers.push_back(std::move(axis));
}

void SweepSpec::add_controller(const std::string& spec) {
  const mppt::ResolvedSpec resolved = mppt::Registry::instance().resolve(spec);
  add_controller(resolved.spec(), mppt::Registry::instance().make(resolved));
}

void SweepSpec::add_scenario(std::string name, env::LightTrace trace) {
  ScenarioAxis axis;
  axis.name = std::move(name);
  axis.trace = std::make_shared<const env::LightTrace>(std::move(trace));
  scenarios.push_back(std::move(axis));
}

void SweepSpec::add_grid_point(std::string name,
                               std::function<void(node::NodeConfig&, Rng&)> apply) {
  GridAxis axis;
  axis.name = std::move(name);
  axis.apply = std::move(apply);
  grid.push_back(std::move(axis));
}

std::size_t SweepSpec::job_count() const {
  return cells.size() * controllers.size() * scenarios.size() *
         std::max<std::size_t>(1, grid.size());
}

const SweepRecord& SweepResult::at(std::size_t cell_i, std::size_t controller_i,
                                   std::size_t scenario_i, std::size_t grid_i) const {
  const std::size_t index =
      ((cell_i * controllers_ + controller_i) * scenarios_ + scenario_i) * grids_ + grid_i;
  require(controller_i < controllers_ && scenario_i < scenarios_ && grid_i < grids_ &&
              index < records_.size(),
          "SweepResult::at: coordinates outside the sweep matrix");
  return records_[index];
}

std::uint64_t SweepResult::total_steps() const {
  std::uint64_t n = 0;
  for (const SweepRecord& r : records_) n += r.steps;
  return n;
}

std::uint64_t SweepResult::total_model_evals() const {
  std::uint64_t n = 0;
  for (const SweepRecord& r : records_) n += r.model_evals;
  return n;
}

std::size_t SweepResult::failed_count() const {
  std::size_t n = 0;
  for (const SweepRecord& r : records_) n += r.failed ? 1 : 0;
  return n;
}

std::vector<SweepSummary> SweepResult::summary() const {
  std::vector<SweepSummary> out;
  for (std::size_t c = 0; c < controllers_; ++c) {
    SweepSummary row;
    std::vector<double> net, eff, harvested;
    for (const SweepRecord& r : records_) {
      if (r.controller_index != c) continue;
      if (row.controller.empty()) row.controller = r.controller;
      if (r.failed) {
        ++row.failures;
        continue;
      }
      ++row.runs;
      net.push_back(r.report.net_energy());
      eff.push_back(r.report.tracking_efficiency());
      harvested.push_back(r.report.harvested_energy);
    }
    row.net_energy = stats_over(net);
    row.tracking_efficiency = stats_over(eff);
    row.harvested_energy = stats_over(harvested);
    out.push_back(std::move(row));
  }
  return out;
}

std::string SweepResult::to_csv(bool include_timing) const {
  std::string out =
      "job,cell,controller,scenario,grid,duration_s,harvested_j,delivered_j,"
      "overhead_j,load_served_j,ideal_mpp_j,net_j,tracking_eff,coldstart_s,"
      "brownout_steps,final_store_v,failed,error";
  if (include_timing) out += ",wall_s,steps,model_evals,curve_entries";
  out += "\n";
  for (const SweepRecord& r : records_) {
    const node::NodeReport& rep = r.report;
    out += std::to_string(r.job) + ',' + csv_safe(r.cell) + ',' + csv_safe(r.controller) +
           ',' + csv_safe(r.scenario) + ',' + csv_safe(r.grid) + ',' + fmt(rep.duration) +
           ',' + fmt(rep.harvested_energy) + ',' + fmt(rep.delivered_energy) + ',' +
           fmt(rep.overhead_energy) + ',' + fmt(rep.load_energy_served) + ',' +
           fmt(rep.ideal_mpp_energy) + ',' + fmt(rep.net_energy()) + ',' +
           fmt(rep.tracking_efficiency()) + ',' + fmt(rep.coldstart_time) + ',' +
           std::to_string(rep.brownout_steps) + ',' + fmt(rep.final_store_voltage) + ',' +
           (r.failed ? '1' : '0') + ',' + csv_safe(r.error);
    if (include_timing) {
      out += ',' + fmt(r.wall_seconds) + ',' + std::to_string(r.steps) + ',' +
             std::to_string(r.model_evals) + ',' + std::to_string(r.curve_entries);
    }
    out += '\n';
  }
  return out;
}

std::string SweepResult::to_json(bool include_timing) const {
  std::string out = "{\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const SweepRecord& r = records_[i];
    const node::NodeReport& rep = r.report;
    out += "    {\"job\": " + std::to_string(r.job) +
           ", \"cell\": \"" + json_escape(r.cell) +
           "\", \"controller\": \"" + json_escape(r.controller) +
           "\", \"scenario\": \"" + json_escape(r.scenario) +
           "\", \"grid\": \"" + json_escape(r.grid) +
           "\", \"duration_s\": " + fmt(rep.duration) +
           ", \"harvested_j\": " + fmt(rep.harvested_energy) +
           ", \"delivered_j\": " + fmt(rep.delivered_energy) +
           ", \"overhead_j\": " + fmt(rep.overhead_energy) +
           ", \"load_served_j\": " + fmt(rep.load_energy_served) +
           ", \"ideal_mpp_j\": " + fmt(rep.ideal_mpp_energy) +
           ", \"net_j\": " + fmt(rep.net_energy()) +
           ", \"tracking_eff\": " + fmt(rep.tracking_efficiency()) +
           ", \"coldstart_s\": " + fmt(rep.coldstart_time) +
           ", \"brownout_steps\": " + std::to_string(rep.brownout_steps) +
           ", \"final_store_v\": " + fmt(rep.final_store_voltage) +
           ", \"failed\": " + (r.failed ? "true" : "false") +
           ", \"error\": \"" + json_escape(r.error) + "\"";
    if (include_timing) {
      out += ", \"wall_s\": " + fmt(r.wall_seconds) +
             ", \"steps\": " + std::to_string(r.steps) +
             ", \"model_evals\": " + std::to_string(r.model_evals) +
             ", \"curve_entries\": " + std::to_string(r.curve_entries);
    }
    out += "}";
    if (i + 1 < records_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

namespace {

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary);
  require(f.good(), "sweep export: cannot open " + path);
  f << text;
  require(f.good(), "sweep export: write failed for " + path);
}

}  // namespace

void SweepResult::write_csv(const std::string& path, bool include_timing) const {
  write_text_file(path, to_csv(include_timing));
}

void SweepResult::write_json(const std::string& path, bool include_timing) const {
  write_text_file(path, to_json(include_timing));
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  require(!spec.cells.empty(), "run_sweep: at least one cell is required");
  require(!spec.controllers.empty(), "run_sweep: at least one controller is required");
  require(!spec.scenarios.empty(), "run_sweep: at least one scenario is required");
  for (const CellAxis& c : spec.cells) {
    require(c.model != nullptr, "run_sweep: null cell model on axis '" + c.name + "'");
  }
  for (const ControllerAxis& c : spec.controllers) {
    require(c.prototype != nullptr,
            "run_sweep: null controller prototype on axis '" + c.name + "'");
  }
  for (const ScenarioAxis& s : spec.scenarios) {
    require(s.trace != nullptr, "run_sweep: null scenario trace on axis '" + s.name + "'");
  }

  // An empty grid degenerates to the single nominal point.
  static const GridAxis kNominal{};
  const std::size_t n_grid = std::max<std::size_t>(1, spec.grid.size());

  SweepResult result;
  result.controllers_ = spec.controllers.size();
  result.scenarios_ = spec.scenarios.size();
  result.grids_ = n_grid;
  result.records_.resize(spec.job_count());

  std::mutex progress_mutex;
  SweepProgress progress;
  progress.total = result.records_.size();

  // Telemetry: decided once per sweep; per-job spans carry queue wait
  // (time between fan-out and the job actually starting) and the job's
  // own counters. submit_us is the fan-out timestamp all jobs share —
  // parallel_for enqueues every job up front.
  const bool obs_on = obs::enabled();
  const double submit_us = obs_on ? obs::tracer().now_us() : 0.0;

  const auto run_job = [&](std::size_t job) {
    // Decode the flat index into matrix coordinates.
    const std::size_t grid_i = job % n_grid;
    const std::size_t scenario_i = (job / n_grid) % spec.scenarios.size();
    const std::size_t controller_i =
        (job / (n_grid * spec.scenarios.size())) % spec.controllers.size();
    const std::size_t cell_i = job / (n_grid * spec.scenarios.size() * spec.controllers.size());
    const GridAxis& grid =
        spec.grid.empty() ? kNominal : spec.grid[grid_i];

    SweepRecord record;
    record.job = job;
    record.cell_index = cell_i;
    record.controller_index = controller_i;
    record.scenario_index = scenario_i;
    record.grid_index = grid_i;
    record.cell = spec.cells[cell_i].name;
    record.controller = spec.controllers[controller_i].name;
    record.scenario = spec.scenarios[scenario_i].name;
    record.grid = grid.name;

    std::optional<obs::Tracer::Span> span;
    if (obs_on) {
      span.emplace(obs::tracer().span("sweep_job", "sweep"));
      span->arg("job", static_cast<double>(job));
      span->arg("cell", record.cell);
      span->arg("controller", record.controller);
      span->arg("scenario", record.scenario);
      span->arg("grid", record.grid);
      span->arg("queue_wait_us", obs::tracer().now_us() - submit_us);
    }

    // Per-job observability counters route through a scoped
    // MetricsRegistry: the job is the only writer, and the record's
    // fields are read back from the registry's merged view.
    obs::MetricsRegistry job_metrics;
    const obs::CounterId steps_id = job_metrics.counter("job.steps");
    const obs::CounterId evals_id = job_metrics.counter("job.model_evals");
    const obs::CounterId entries_id = job_metrics.counter("job.curve_entries");

    const auto start = std::chrono::steady_clock::now();
    try {
      node::NodeConfig config = spec.base;
      config.cell_model = spec.cells[cell_i].model;
      config.controller_prototype = spec.controllers[controller_i].prototype;
      Rng rng = make_stream_rng(spec.root_seed, job);
      if (grid.apply) grid.apply(config, rng);
      const env::LightTrace& trace = *spec.scenarios[scenario_i].trace;
      record.report = node::simulate_node(trace, config);
      job_metrics.add(steps_id, static_cast<double>(record.report.steps));
      job_metrics.add(evals_id, static_cast<double>(record.report.model_evals));
      job_metrics.add(entries_id, static_cast<double>(record.report.curve_entries));
      record.steps = static_cast<std::uint64_t>(job_metrics.counter_value("job.steps"));
      record.model_evals =
          static_cast<std::uint64_t>(job_metrics.counter_value("job.model_evals"));
      record.curve_entries =
          static_cast<std::uint64_t>(job_metrics.counter_value("job.curve_entries"));
    } catch (const std::exception& e) {
      record.failed = true;
      record.error = e.what();
    } catch (...) {
      record.failed = true;
      record.error = "unknown exception";
    }
    record.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    if (span) {
      span->arg("failed", record.failed ? 1.0 : 0.0);
      span->arg("steps", static_cast<double>(record.steps));
      span->arg("model_evals", static_cast<double>(record.model_evals));
      span->finish();
      static const obs::HistogramId job_wall_id =
          obs::metrics().histogram("sweep.job.wall_us", {1.0, 1e9, 56});
      static const obs::CounterId jobs_id = obs::metrics().counter("sweep.jobs");
      static const obs::CounterId failed_id = obs::metrics().counter("sweep.jobs_failed");
      obs::metrics().observe(job_wall_id, record.wall_seconds * 1e6);
      obs::metrics().add(jobs_id);
      if (record.failed) obs::metrics().add(failed_id);
    }

    result.records_[job] = std::move(record);
    if (options.on_progress) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      ++progress.completed;
      if (result.records_[job].failed) ++progress.failed;
      progress.last = &result.records_[job];
      options.on_progress(progress);
    } else {
      std::lock_guard<std::mutex> lock(progress_mutex);
      ++progress.completed;
      if (result.records_[job].failed) ++progress.failed;
    }
  };

  std::optional<obs::Tracer::Span> sweep_span;
  if (obs_on) {
    sweep_span.emplace(obs::tracer().span("sweep", "sweep"));
    sweep_span->arg("jobs_total", static_cast<double>(result.records_.size()));
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  ThreadPool::WorkerStats pool_stats;
  if (options.jobs == 1) {
    // Inline serial path: the reference execution the determinism test
    // compares the threaded runs against.
    result.jobs_used_ = 1;
    for (std::size_t job = 0; job < result.records_.size(); ++job) run_job(job);
  } else {
    ThreadPool pool(options.jobs);
    result.jobs_used_ = pool.thread_count();
    pool.parallel_for(result.records_.size(), run_job);
    pool_stats = pool.total_stats();
  }
  result.wall_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start).count();

  if (obs_on) {
    static const obs::CounterId steals_id = obs::metrics().counter("sweep.pool.steals");
    static const obs::CounterId executed_id = obs::metrics().counter("sweep.pool.executed");
    obs::metrics().add(steals_id, static_cast<double>(pool_stats.stolen));
    obs::metrics().add(executed_id, static_cast<double>(pool_stats.executed));
    sweep_span->arg("jobs_used", static_cast<double>(result.jobs_used_));
    sweep_span->arg("pool_steals", static_cast<double>(pool_stats.stolen));
    sweep_span->arg("failed", static_cast<double>(result.failed_count()));
    obs::events().emit("sweep_complete", 0.0,
                       {{"jobs", static_cast<double>(result.records_.size())},
                        {"jobs_used", result.jobs_used_},
                        {"failed", static_cast<double>(result.failed_count())},
                        {"pool_steals", static_cast<double>(pool_stats.stolen)},
                        {"wall_s", result.wall_seconds_}});
  }
  return result;
}

}  // namespace focv::runtime
