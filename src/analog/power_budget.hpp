// Itemised quiescent-current budget of the metrology circuitry.
//
// Reproduces Section IV-A: "The current draw of the combination of the
// astable multivibrator and the sample-and-hold circuit was measured at
// an average of 7.6 uA at 3.3 V", and the evaluation's 8 uA worst-case
// figure.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace focv::analog {

/// One budget line.
struct BudgetItem {
  std::string component;
  double current = 0.0;  ///< average current [A]
  std::string note;
};

/// Aggregates budget lines and renders the table.
class PowerBudget {
 public:
  void add(std::string component, double current_a, std::string note = "");

  [[nodiscard]] double total_current() const;
  [[nodiscard]] double total_power(double supply_voltage) const {
    return total_current() * supply_voltage;
  }
  [[nodiscard]] const std::vector<BudgetItem>& items() const { return items_; }

  void print(std::ostream& os, double supply_voltage) const;

 private:
  std::vector<BudgetItem> items_;
};

}  // namespace focv::analog
