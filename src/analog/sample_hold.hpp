// Behavioural model of the ultra low-power sample-and-hold (Fig. 3).
//
// Hardware: input unity-gain buffer (U2) -> analog switch -> low-leakage
// polyester hold capacitor -> output unity-gain buffer (U4), preceded by
// the resistive divider that scales Voc by k*alpha (Eq. 3). Non-ideal
// effects modelled: finite acquisition, hold droop from leakage, switch
// charge injection, buffer offsets, and the R3/C3 ripple filter.
#pragma once

#include "common/units.hpp"

namespace focv::analog {

/// Behavioural sample-and-hold with droop and offset errors.
class SampleHold {
 public:
  struct Params {
    double divider_ratio = 0.298;        ///< k * alpha of Eq. (3)
    double acquisition_time = 10e-3;     ///< time to settle to the input [s]
    double hold_capacitance = 100e-9;    ///< low-leakage polyester cap [F]
    double leakage_current = 50e-12;     ///< total droop current at the hold node [A]
    double charge_injection = 5e-12;     ///< switch charge injection [C]
    double input_buffer_offset = 0.5e-3; ///< U2 offset [V]
    double output_buffer_offset = 0.5e-3;///< U4 offset [V]
    double buffer_iq = 2.6e-6;           ///< quiescent of U2 + U4 combined [A]
    double divider_current_peak = 0.5e-6;///< divider draw while sampling [A]
  };

  explicit SampleHold(Params params);
  SampleHold() : SampleHold(Params{}) {}

  /// Perform a sampling operation at time t on the (open-circuit) input
  /// voltage `voc`. `sample_duration` is how long PULSE keeps the switch
  /// closed; shorter than acquisition_time leaves a settling error.
  void sample(double t, double voc, double sample_duration);

  /// Held output value at time t (droop applied since the last sample).
  [[nodiscard]] double value(double t) const;

  /// True once at least one sample was taken.
  [[nodiscard]] bool has_sample() const { return has_sample_; }

  /// Droop rate [V/s] = leakage / C_hold.
  [[nodiscard]] double droop_rate() const;

  /// Average supply current given the sampling duty cycle [A].
  [[nodiscard]] double average_current(double duty_cycle) const;

  [[nodiscard]] const Params& params() const { return params_; }

  /// Reset to the power-on state (no sample held).
  void reset();

 private:
  Params params_;
  double held_ = 0.0;
  double sample_time_ = 0.0;
  bool has_sample_ = false;
};

}  // namespace focv::analog
