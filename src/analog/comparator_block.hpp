// Behavioural comparator with hysteresis (the ACTIVE sanity-check
// comparator U5 of Fig. 3, and the cold-start threshold detector).
#pragma once

#include "common/require.hpp"

namespace focv::analog {

/// Latching threshold comparator.
class ComparatorBlock {
 public:
  struct Params {
    double threshold = 1.65;       ///< rising threshold [V]
    double hysteresis = 0.05;      ///< falls at threshold - hysteresis [V]
    double quiescent_current = 0.7e-6;  ///< LMC7215-class [A]
    bool initial_state = false;
  };

  explicit ComparatorBlock(Params params) : params_(params), state_(params.initial_state) {
    require(params_.hysteresis >= 0.0, "ComparatorBlock: hysteresis must be >= 0");
  }
  ComparatorBlock() : ComparatorBlock(Params{}) {}

  /// Update with a new input sample; returns the (possibly new) state.
  bool update(double input) {
    if (!state_ && input >= params_.threshold) {
      state_ = true;
    } else if (state_ && input < params_.threshold - params_.hysteresis) {
      state_ = false;
    }
    return state_;
  }

  [[nodiscard]] bool state() const { return state_; }
  [[nodiscard]] double quiescent_current() const { return params_.quiescent_current; }
  [[nodiscard]] const Params& params() const { return params_; }

  void reset() { state_ = params_.initial_state; }

 private:
  Params params_;
  bool state_;
};

}  // namespace focv::analog
