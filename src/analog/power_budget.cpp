#include "analog/power_budget.hpp"

#include "common/require.hpp"
#include "common/table.hpp"

namespace focv::analog {

void PowerBudget::add(std::string component, double current_a, std::string note) {
  require(current_a >= 0.0, "PowerBudget::add: current must be >= 0");
  items_.push_back({std::move(component), current_a, std::move(note)});
}

double PowerBudget::total_current() const {
  double sum = 0.0;
  for (const auto& item : items_) sum += item.current;
  return sum;
}

void PowerBudget::print(std::ostream& os, double supply_voltage) const {
  focv::ConsoleTable table({"Component", "I avg [uA]", "P [uW]", "Note"});
  for (const auto& item : items_) {
    table.add_row({item.component, focv::ConsoleTable::num(item.current * 1e6, 3),
                   focv::ConsoleTable::num(item.current * supply_voltage * 1e6, 3), item.note});
  }
  table.add_row({"TOTAL", focv::ConsoleTable::num(total_current() * 1e6, 3),
                 focv::ConsoleTable::num(total_power(supply_voltage) * 1e6, 3), ""});
  table.print(os);
}

}  // namespace focv::analog
