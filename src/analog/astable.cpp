#include "analog/astable.hpp"

#include <cmath>

#include "common/require.hpp"

namespace focv::analog {

AstableMultivibrator::AstableMultivibrator(Params params) : params_(params) {
  require(params_.on_period > 0.0, "AstableMultivibrator: on_period must be > 0");
  require(params_.off_period > 0.0, "AstableMultivibrator: off_period must be > 0");
  require(params_.start_delay >= 0.0, "AstableMultivibrator: start_delay must be >= 0");
}

bool AstableMultivibrator::pulse_active(double t) const {
  if (t < params_.start_delay) return false;
  const double local = std::fmod(t - params_.start_delay, period());
  return local < params_.on_period;
}

double AstableMultivibrator::next_rising_edge(double t) const {
  if (t <= params_.start_delay) return params_.start_delay;
  const double since = t - params_.start_delay;
  const double cycles = std::ceil(since / period());
  return params_.start_delay + cycles * period();
}

AstableMultivibrator::Params AstableMultivibrator::timing_from_components(
    const TimingComponents& components, double comparator_iq, double network_current) {
  require(components.r_charge > 0.0 && components.r_discharge > 0.0,
          "timing_from_components: resistances must be > 0");
  require(components.capacitance > 0.0, "timing_from_components: capacitance must be > 0");
  const double lo = components.threshold_low_fraction;
  const double hi = components.threshold_high_fraction;
  require(lo > 0.0 && hi < 1.0 && lo < hi, "timing_from_components: bad threshold fractions");
  Params p;
  p.on_period = components.r_charge * components.capacitance * std::log((1.0 - lo) / (1.0 - hi));
  p.off_period = components.r_discharge * components.capacitance * std::log(hi / lo);
  p.comparator_iq = comparator_iq;
  p.network_current = network_current;
  return p;
}

}  // namespace focv::analog
