#include "analog/sample_hold.hpp"

#include <cmath>

#include "common/require.hpp"

namespace focv::analog {

SampleHold::SampleHold(Params params) : params_(params) {
  require(params_.divider_ratio > 0.0 && params_.divider_ratio < 1.0,
          "SampleHold: divider_ratio must be in (0, 1)");
  require(params_.acquisition_time > 0.0, "SampleHold: acquisition_time must be > 0");
  require(params_.hold_capacitance > 0.0, "SampleHold: hold_capacitance must be > 0");
  require(params_.leakage_current >= 0.0, "SampleHold: leakage_current must be >= 0");
}

void SampleHold::sample(double t, double voc, double sample_duration) {
  require(sample_duration > 0.0, "SampleHold::sample: sample_duration must be > 0");
  // Target value: divided Voc plus the input buffer offset.
  const double target = (voc + params_.input_buffer_offset) * params_.divider_ratio;
  // First-order settling towards the target during the switch-on window.
  const double tau = params_.acquisition_time / 5.0;  // 5 tau == "settled"
  const double start = has_sample_ ? value(t) : 0.0;
  double settled = target + (start - target) * std::exp(-sample_duration / tau);
  // Charge injection kick when the switch opens.
  settled -= params_.charge_injection / params_.hold_capacitance;
  held_ = settled;
  sample_time_ = t + sample_duration;
  has_sample_ = true;
}

double SampleHold::value(double t) const {
  if (!has_sample_) return 0.0;
  const double droop = droop_rate() * std::max(0.0, t - sample_time_);
  const double v = held_ - droop + params_.output_buffer_offset;
  return (v > 0.0) ? v : 0.0;
}

double SampleHold::droop_rate() const {
  return params_.leakage_current / params_.hold_capacitance;
}

double SampleHold::average_current(double duty_cycle) const {
  require(duty_cycle >= 0.0 && duty_cycle <= 1.0, "average_current: duty in [0,1]");
  return params_.buffer_iq + params_.divider_current_peak * duty_cycle;
}

void SampleHold::reset() {
  held_ = 0.0;
  sample_time_ = 0.0;
  has_sample_ = false;
}

}  // namespace focv::analog
