// Behavioural model of the micropower astable multivibrator (Fig. 3).
//
// The hardware is an LMC7215 comparator with an RC timing network and a
// diode-split charge/discharge path so the high ('on') and low ('off')
// periods can be set independently (Section III-B). The prototype
// produced a 39 ms on-period and a 69 s off-period.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace focv::analog {

/// Behavioural astable: a rectangular PULSE train.
class AstableMultivibrator {
 public:
  struct Params {
    double on_period = 39e-3;        ///< PULSE high [s]
    double off_period = 69.0;        ///< PULSE low [s]
    double start_delay = 0.0;        ///< first rising edge [s]
    double comparator_iq = 0.7e-6;   ///< LMC7215 quiescent [A]
    double network_current = 0.25e-6;///< average timing/feedback network draw [A]
  };

  explicit AstableMultivibrator(Params params);
  AstableMultivibrator() : AstableMultivibrator(Params{}) {}

  /// Is PULSE high at time t?
  [[nodiscard]] bool pulse_active(double t) const;

  /// Time of the next rising edge at or after t.
  [[nodiscard]] double next_rising_edge(double t) const;

  /// Full period [s].
  [[nodiscard]] double period() const { return params_.on_period + params_.off_period; }

  /// Duty cycle of the PULSE line.
  [[nodiscard]] double duty_cycle() const { return params_.on_period / period(); }

  /// Average supply current [A].
  [[nodiscard]] double average_current() const {
    return params_.comparator_iq + params_.network_current;
  }

  [[nodiscard]] const Params& params() const { return params_; }

  /// Compute the on/off periods produced by a comparator RC oscillator
  /// with hysteresis thresholds (fractions of the supply) and a
  /// diode-split resistor pair:
  ///   t_on  = r_on  * c * ln((vcc - v_lo) / (vcc - v_hi))
  ///   t_off = r_off * c * ln(v_hi / v_lo)
  /// This ties the behavioural timing to component values; the netlist
  /// builder in focv::core uses the same components and a test checks
  /// the two agree.
  struct TimingComponents {
    double r_charge = 0.0;     ///< resistor charging the cap while PULSE is high [Ohm]
    double r_discharge = 0.0;  ///< resistor discharging while PULSE is low [Ohm]
    double capacitance = 0.0;  ///< timing capacitor [F]
    double threshold_low_fraction = 1.0 / 3.0;   ///< lower hysteresis / Vcc
    double threshold_high_fraction = 2.0 / 3.0;  ///< upper hysteresis / Vcc
  };
  [[nodiscard]] static Params timing_from_components(const TimingComponents& components,
                                                     double comparator_iq = 0.7e-6,
                                                     double network_current = 0.25e-6);

 private:
  Params params_;
};

}  // namespace focv::analog
