// Resistive divider with trim potentiometer (the k*alpha network of
// Eq. (3); Section IV-A notes the ratio "may easily be trimmed by means
// of a variable potentiometer in place of R2").
#pragma once

#include "common/require.hpp"

namespace focv::analog {

/// Two-resistor divider: out = in * r_bottom / (r_top + r_bottom).
class ResistiveDivider {
 public:
  ResistiveDivider(double r_top, double r_bottom) : r_top_(r_top), r_bottom_(r_bottom) {
    require(r_top > 0.0 && r_bottom > 0.0, "ResistiveDivider: resistances must be > 0");
  }

  [[nodiscard]] double ratio() const { return r_bottom_ / (r_top_ + r_bottom_); }
  [[nodiscard]] double output(double input) const { return input * ratio(); }

  /// Current drawn from the source at the given input voltage [A].
  [[nodiscard]] double current(double input) const { return input / (r_top_ + r_bottom_); }

  /// Thevenin output impedance [Ohm].
  [[nodiscard]] double output_impedance() const {
    return r_top_ * r_bottom_ / (r_top_ + r_bottom_);
  }

  /// Adjust the bottom resistor (trim pot) to hit `ratio` exactly.
  void trim_to_ratio(double ratio) {
    require(ratio > 0.0 && ratio < 1.0, "trim_to_ratio: ratio must be in (0,1)");
    r_bottom_ = r_top_ * ratio / (1.0 - ratio);
  }

  [[nodiscard]] double r_top() const { return r_top_; }
  [[nodiscard]] double r_bottom() const { return r_bottom_; }

 private:
  double r_top_;
  double r_bottom_;
};

}  // namespace focv::analog
