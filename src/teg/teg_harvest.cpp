#include "teg/teg_harvest.hpp"

#include <algorithm>
#include <functional>
#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace focv::teg {

mppt::FocvSampleHoldController make_teg_controller(core::SystemSpec spec) {
  // Trim the divider for k = 0.5: ratio = k * alpha = 0.25.
  spec.divider_ratio = TegModel::k_factor() * spec.alpha;
  // TEG voltages are lower than the PV module's; drop the ACTIVE sanity
  // threshold so a valid low-dT sample still enables the converter.
  spec.active_threshold = 0.15;
  return core::make_paper_controller(spec);
}

namespace {

ThermalTrace make_trace(double duration, double sample_period,
                        const std::function<double(double, Rng&)>& level, std::uint64_t seed) {
  require(sample_period > 0.0, "ThermalTrace: sample_period must be > 0");
  Rng rng(seed);
  ThermalTrace trace;
  const std::size_t n = static_cast<std::size_t>(duration / sample_period) + 1;
  trace.time.reserve(n);
  trace.delta_t.reserve(n);
  double smoothed = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * sample_period;
    const double target = level(t, rng);
    // First-order thermal lag (mass of the harvester assembly).
    const double tau = 120.0;
    smoothed += (target - smoothed) * std::min(1.0, sample_period / tau);
    trace.time.push_back(t);
    trace.delta_t.push_back(std::max(0.0, smoothed));
  }
  return trace;
}

}  // namespace

ThermalTrace body_worn_thermal_day(std::uint64_t seed, double sample_period) {
  return make_trace(86400.0, sample_period,
                    [](double t, Rng& rng) {
                      const double hour = t / 3600.0;
                      double base = 0.5;  // asleep under covers
                      if (hour > 7.0 && hour < 8.5) base = 4.5;    // commute outdoors
                      else if (hour >= 8.5 && hour < 12.0) base = 2.0;  // office
                      else if (hour >= 12.0 && hour < 13.0) base = 5.5; // lunchtime walk
                      else if (hour >= 13.0 && hour < 17.5) base = 2.0;
                      else if (hour >= 17.5 && hour < 19.0) base = 4.0; // commute home
                      else if (hour >= 19.0 && hour < 23.0) base = 1.5; // evening indoors
                      return base * (1.0 + 0.1 * rng.gaussian());
                    },
                    seed);
}

ThermalTrace industrial_thermal_day(std::uint64_t seed, double sample_period) {
  return make_trace(86400.0, sample_period,
                    [](double t, Rng& rng) {
                      const double hour = t / 3600.0;
                      // Two production shifts with a maintenance gap.
                      double base = 3.0;  // standby losses keep the pipe warm
                      if ((hour > 6.0 && hour < 14.0) || (hour > 15.0 && hour < 22.0)) {
                        base = 35.0;
                      }
                      return base * (1.0 + 0.05 * rng.gaussian());
                    },
                    seed);
}

TegHarvestReport harvest_teg(const TegModel& teg, const ThermalTrace& trace,
                             mppt::FocvSampleHoldController& controller,
                             double min_operating_voc) {
  require(trace.time.size() == trace.delta_t.size() && trace.time.size() >= 2,
          "harvest_teg: malformed trace");
  controller.reset();
  TegHarvestReport report;
  mppt::SensedInputs sensed;
  for (std::size_t i = 0; i + 1 < trace.time.size(); ++i) {
    const double dt = trace.time[i + 1] - trace.time[i];
    ThermalConditions c;
    c.delta_t = trace.delta_t[i];
    const double voc = teg.open_circuit_voltage(c);
    report.ideal_energy += teg.mpp_power(c) * dt;
    if (voc < min_operating_voc) continue;  // supply floor of the metrology
    sensed.time = trace.time[i];
    sensed.dt = dt;
    sensed.voc = voc;
    const mppt::ControlOutput out = controller.step(sensed);
    const double p = teg.power_at(out.pv_voltage, c) *
                     (1.0 - std::min(1.0, out.disconnect_fraction));
    report.harvested_energy += p * dt;
    report.overhead_energy += controller.overhead_power() * dt;
  }
  return report;
}

}  // namespace focv::teg
