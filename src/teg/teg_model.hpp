// Thermoelectric generator (TEG) models.
//
// Section I of the paper: "While the proposed technique has been
// prototyped and tested with PV modules, it is also applicable to other
// forms of energy harvesting (such as thermoelectric generators) which
// feature a similar relationship between the open-circuit and MPP
// voltage [9]". A TEG is a Thevenin source (V = S*dT with internal
// resistance R_int), so its MPP sits at exactly half the open-circuit
// voltage: FOCV with k = 0.5 is *optimal*, not an approximation. This
// module provides the generator model and the adapter that lets the
// paper's controller harvest from it.
#pragma once

#include <string>

#include "common/require.hpp"

namespace focv::teg {

/// Operating conditions of a TEG.
struct ThermalConditions {
  double delta_t = 5.0;             ///< hot-cold temperature difference [K]
  double cold_side_k = 300.15;      ///< cold-side absolute temperature [K]
};

/// Thevenin model of a thermoelectric module.
class TegModel {
 public:
  struct Params {
    std::string name = "generic TEG";
    double seebeck_v_per_k = 25e-3;      ///< module Seebeck coefficient [V/K]
    double internal_resistance = 10.0;   ///< R_int at reference temperature [Ohm]
    double resistance_tempco = 0.004;    ///< R_int fractional change per K [1/K]
    double max_delta_t = 80.0;           ///< rating [K]
  };

  explicit TegModel(Params params) : params_(params) {
    require(params_.seebeck_v_per_k > 0.0, "TegModel: seebeck must be > 0");
    require(params_.internal_resistance > 0.0, "TegModel: internal_resistance must be > 0");
  }
  TegModel() : TegModel(Params{}) {}

  /// Open-circuit voltage at the given conditions [V].
  [[nodiscard]] double open_circuit_voltage(const ThermalConditions& c) const {
    require(c.delta_t >= 0.0, "TegModel: delta_t must be >= 0");
    return params_.seebeck_v_per_k * c.delta_t;
  }

  /// Internal resistance at the given conditions [Ohm].
  [[nodiscard]] double internal_resistance(const ThermalConditions& c) const {
    const double mean_t = c.cold_side_k + 0.5 * c.delta_t;
    return params_.internal_resistance *
           (1.0 + params_.resistance_tempco * (mean_t - 300.15));
  }

  /// Terminal current when held at voltage v [A] (Thevenin law).
  [[nodiscard]] double current(double v, const ThermalConditions& c) const {
    return (open_circuit_voltage(c) - v) / internal_resistance(c);
  }

  /// Power delivered when held at voltage v (0 outside the generating
  /// quadrant) [W].
  [[nodiscard]] double power_at(double v, const ThermalConditions& c) const {
    if (v <= 0.0) return 0.0;
    const double i = current(v, c);
    return (i > 0.0) ? v * i : 0.0;
  }

  /// Maximum power point: exactly Voc/2 into a matched load.
  [[nodiscard]] double mpp_voltage(const ThermalConditions& c) const {
    return 0.5 * open_circuit_voltage(c);
  }
  [[nodiscard]] double mpp_power(const ThermalConditions& c) const {
    const double voc = open_circuit_voltage(c);
    return voc * voc / (4.0 * internal_resistance(c));
  }

  /// The FOCV factor of a Thevenin source is exactly 1/2.
  [[nodiscard]] static constexpr double k_factor() { return 0.5; }

  /// Tracking efficiency of operating at voltage v.
  [[nodiscard]] double tracking_efficiency(double v, const ThermalConditions& c) const {
    const double pm = mpp_power(c);
    return (pm > 0.0) ? power_at(v, c) / pm : 0.0;
  }

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
};

/// A body-worn TEG (skin-to-air): small dT, low voltage.
[[nodiscard]] const TegModel& body_worn_teg();

/// An industrial TEG on a warm pipe: tens of K across the module.
[[nodiscard]] const TegModel& industrial_teg();

}  // namespace focv::teg
