#include "teg/teg_model.hpp"

namespace focv::teg {

const TegModel& body_worn_teg() {
  static const TegModel model([] {
    TegModel::Params p;
    p.name = "body-worn TEG (skin-air)";
    // Wearable harvesters see 1..5 K across the module; many series
    // couples raise the voltage into the volts range the S&H can use.
    p.seebeck_v_per_k = 0.5;        // high-couple-count thin-film stack
    p.internal_resistance = 250.0;
    p.max_delta_t = 15.0;
    return p;
  }());
  return model;
}

const TegModel& industrial_teg() {
  static const TegModel model([] {
    TegModel::Params p;
    p.name = "industrial TEG (pipe-mounted)";
    p.seebeck_v_per_k = 0.11;       // Bi2Te3 module, ~200 couples
    p.internal_resistance = 4.0;
    p.max_delta_t = 120.0;
    return p;
  }());
  return model;
}

}  // namespace focv::teg
