// Harvesting from a TEG with the paper's FOCV sample-and-hold.
//
// The controller is reused unchanged except for the divider trim: the
// R2 potentiometer is set so k = 0.5 (Section IV-A notes the ratio "may
// easily be trimmed ... to bring it to any desired value"). Because a
// Thevenin source's MPP is exactly Voc/2, FOCV on a TEG is exact up to
// circuit non-idealities.
#pragma once

#include <vector>

#include "core/focv_system.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "teg/teg_model.hpp"

namespace focv::teg {

/// The paper's controller trimmed for TEG harvesting (k = 0.5, so the
/// divider ratio becomes k * alpha = 0.25).
[[nodiscard]] mppt::FocvSampleHoldController make_teg_controller(
    core::SystemSpec spec = core::SystemSpec{});

/// A time series of temperature differences [K].
struct ThermalTrace {
  std::vector<double> time;     ///< [s]
  std::vector<double> delta_t;  ///< [K]
};

/// Synthetic thermal scenarios.
/// Body-worn day: dT follows activity (indoors ~2 K, walking outside up
/// to ~6 K, near zero in a warm bed).
[[nodiscard]] ThermalTrace body_worn_thermal_day(std::uint64_t seed = 99,
                                                 double sample_period = 1.0);

/// Industrial duty cycle: process pipe heats up and cools with the shift.
[[nodiscard]] ThermalTrace industrial_thermal_day(std::uint64_t seed = 17,
                                                  double sample_period = 1.0);

/// Result of a TEG harvesting run.
struct TegHarvestReport {
  double harvested_energy = 0.0;  ///< [J]
  double ideal_energy = 0.0;      ///< matched-load harvest [J]
  double overhead_energy = 0.0;   ///< controller consumption [J]
  [[nodiscard]] double tracking_efficiency() const {
    return (ideal_energy > 0.0) ? harvested_energy / ideal_energy : 0.0;
  }
  [[nodiscard]] double net_energy() const { return harvested_energy - overhead_energy; }
};

/// Run the FOCV S&H controller across a thermal trace.
[[nodiscard]] TegHarvestReport harvest_teg(const TegModel& teg, const ThermalTrace& trace,
                                           mppt::FocvSampleHoldController& controller,
                                           double min_operating_voc = 0.3);

}  // namespace focv::teg
