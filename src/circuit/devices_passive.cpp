#include "circuit/devices_passive.hpp"

#include <cstdarg>
#include <cstdio>

#include "common/require.hpp"

namespace focv::circuit {

Resistor::Resistor(std::string name, NodeId a, NodeId b, double resistance_ohm)
    : Device(std::move(name)), a_(a), b_(b), resistance_(resistance_ohm) {
  require(resistance_ohm > 0.0, "Resistor: resistance must be > 0");
}

void Resistor::set_resistance(double resistance_ohm) {
  require(resistance_ohm > 0.0, "Resistor: resistance must be > 0");
  resistance_ = resistance_ohm;
}

void Resistor::stamp(StampContext& ctx) { ctx.add_conductance(a_, b_, 1.0 / resistance_); }

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double capacitance_farad,
                     double initial_voltage)
    : Device(std::move(name)), a_(a), b_(b), capacitance_(capacitance_farad),
      v_state_(initial_voltage) {
  require(capacitance_farad > 0.0, "Capacitor: capacitance must be > 0");
}

void Capacitor::set_initial_voltage(double v) {
  v_state_ = v;
  i_state_ = 0.0;
}

void Capacitor::begin_step(double /*time*/, double dt) { dt_ = dt; }

void Capacitor::set_dc_state(const Solution& solution) {
  v_state_ = solution.v(a_) - solution.v(b_);
  i_state_ = 0.0;
}

void Capacitor::stamp(StampContext& ctx) {
  if (ctx.dt <= 0.0) {
    // DC: a capacitor is an open circuit; the solver's global gmin keeps
    // otherwise-floating nodes well-posed.
    return;
  }
  if (ctx.integrator == Integrator::kTrapezoidal) {
    geq_ = 2.0 * capacitance_ / ctx.dt;
    ieq_ = geq_ * v_state_ + i_state_;
  } else {
    geq_ = capacitance_ / ctx.dt;
    ieq_ = geq_ * v_state_;
  }
  ctx.add_conductance(a_, b_, geq_);
  // Companion current source ieq injecting a -> b history current.
  ctx.add_current_into(a_, ieq_);
  ctx.add_current_into(b_, -ieq_);
}

void Capacitor::accept_step(const Solution& solution) {
  if (dt_ <= 0.0) return;  // DC pseudo-step: keep the stored IC
  const double v_new = solution.v(a_) - solution.v(b_);
  i_state_ = geq_ * v_new - ieq_;  // device current a -> b under the stamped model
  v_state_ = v_new;
}

Inductor::Inductor(std::string name, NodeId a, NodeId b, double inductance_henry,
                   double initial_current)
    : Device(std::move(name)), a_(a), b_(b), inductance_(inductance_henry),
      i_state_(initial_current) {
  require(inductance_henry > 0.0, "Inductor: inductance must be > 0");
}

void Inductor::begin_step(double /*time*/, double dt) { dt_ = dt; }

void Inductor::set_dc_state(const Solution& solution) {
  i_state_ = solution.branch(branch_);
  v_state_ = 0.0;
}

void Inductor::stamp(StampContext& ctx) {
  const int br = ctx.branch_row(branch_);
  // KCL: branch current i flows a -> b.
  ctx.add_matrix(StampContext::row(a_), br, 1.0);
  ctx.add_matrix(StampContext::row(b_), br, -1.0);
  if (ctx.dt <= 0.0) {
    // DC: inductor is a short: va - vb = 0.
    ctx.add_matrix(br, StampContext::row(a_), 1.0);
    ctx.add_matrix(br, StampContext::row(b_), -1.0);
    return;
  }
  double req = 0.0, veq = 0.0;
  if (ctx.integrator == Integrator::kTrapezoidal) {
    req = 2.0 * inductance_ / ctx.dt;
    veq = -req * i_state_ - v_state_;
  } else {
    req = inductance_ / ctx.dt;
    veq = -req * i_state_;
  }
  // Branch equation: va - vb - req * i = veq.
  ctx.add_matrix(br, StampContext::row(a_), 1.0);
  ctx.add_matrix(br, StampContext::row(b_), -1.0);
  ctx.add_matrix(br, br, -req);
  ctx.add_rhs(br, veq);
}

void Inductor::accept_step(const Solution& solution) {
  if (dt_ <= 0.0) {
    i_state_ = solution.branch(branch_);
    v_state_ = 0.0;
    return;
  }
  i_state_ = solution.branch(branch_);
  v_state_ = solution.v(a_) - solution.v(b_);
}

}  // namespace focv::circuit

namespace focv::circuit {
namespace {
std::string format_card(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}
}  // namespace

std::string Resistor::netlist_card(const std::function<std::string(NodeId)>& names) const {
  return format_card("%s %s %s %.9g", name().c_str(), names(a_).c_str(), names(b_).c_str(),
                     resistance_);
}

std::string Capacitor::netlist_card(const std::function<std::string(NodeId)>& names) const {
  if (v_state_ != 0.0) {
    return format_card("%s %s %s %.9g IC=%.9g", name().c_str(), names(a_).c_str(),
                       names(b_).c_str(), capacitance_, v_state_);
  }
  return format_card("%s %s %s %.9g", name().c_str(), names(a_).c_str(), names(b_).c_str(),
                     capacitance_);
}

std::string Inductor::netlist_card(const std::function<std::string(NodeId)>& names) const {
  if (i_state_ != 0.0) {
    return format_card("%s %s %s %.9g IC=%.9g", name().c_str(), names(a_).c_str(),
                       names(b_).c_str(), inductance_, i_state_);
  }
  return format_card("%s %s %s %.9g", name().c_str(), names(a_).c_str(), names(b_).c_str(),
                     inductance_);
}

}  // namespace focv::circuit
