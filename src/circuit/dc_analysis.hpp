// DC operating-point analysis with gmin and source stepping fallbacks.
#pragma once

#include "circuit/solver.hpp"

namespace focv::circuit {

/// Controls for the operating-point search.
struct DcOptions {
  NewtonOptions newton;
  bool allow_gmin_stepping = true;
  bool allow_source_stepping = true;
};

/// Compute the DC operating point and return the MNA unknown vector
/// (node voltages then branch currents). Throws ConvergenceError when no
/// continuation strategy converges.
///
/// The circuit is finalized as a side effect. `initial_guess` (optional)
/// seeds the Newton iteration.
[[nodiscard]] Vector dc_operating_point(Circuit& circuit, const DcOptions& options = {},
                                        const Vector* initial_guess = nullptr);

}  // namespace focv::circuit
