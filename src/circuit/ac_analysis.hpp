// AC small-signal analysis.
//
// Linearises the circuit at its DC operating point and solves the
// complex MNA system  (G + j*w*C) X = B  across a frequency sweep.
// Reactive elements contribute their admittance at each frequency;
// nonlinear devices contribute the same linearised stamps they would
// hand Newton at the operating point. One independent source is
// designated as the AC stimulus (magnitude 1, phase 0); every node
// voltage is then a transfer function relative to it.
//
// Used by the converter-regulation-loop stability bench: the shunt
// regulator of core::build_fig3_system is first-order by construction,
// and the AC sweep shows it (the earlier two-pole error-amplifier stage
// was unstable and showed up as a supply-current limit cycle).
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "circuit/dc_analysis.hpp"

namespace focv::circuit {

/// Result of an AC sweep: per-frequency complex node voltages.
class AcSweep {
 public:
  AcSweep(std::vector<std::string> signal_names) : names_(std::move(signal_names)) {}

  void append(double frequency_hz, std::vector<std::complex<double>> values);

  [[nodiscard]] const std::vector<double>& frequency() const { return frequency_; }
  [[nodiscard]] std::size_t size() const { return frequency_.size(); }

  /// Complex response of a signal across the sweep.
  [[nodiscard]] std::vector<std::complex<double>> response(const std::string& name) const;

  /// Magnitude in dB / phase in degrees of a signal across the sweep.
  [[nodiscard]] std::vector<double> magnitude_db(const std::string& name) const;
  [[nodiscard]] std::vector<double> phase_deg(const std::string& name) const;

  /// -3 dB corner frequency of a signal relative to its lowest-frequency
  /// magnitude (linear interpolation in log-frequency); -1 if the
  /// response never falls 3 dB within the sweep.
  [[nodiscard]] double corner_frequency(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& signal_names() const { return names_; }

 private:
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  std::vector<std::string> names_;
  std::vector<double> frequency_;
  std::vector<std::vector<std::complex<double>>> values_;  // [point][signal]
};

/// Options for the AC analysis.
struct AcOptions {
  double f_start = 1.0;        ///< [Hz]
  double f_stop = 1e6;         ///< [Hz]
  int points_per_decade = 10;
  std::string stimulus;        ///< name of the VoltageSource or CurrentSource driven with 1 (unit) AC
  DcOptions dc;                ///< operating-point controls
  /// Optional seed for the operating-point Newton (e.g. the final state
  /// of a settling transient, whose unknown ordering matches). Useful
  /// for stiff feedback circuits where a cold DC solve cycles.
  const Vector* initial_guess = nullptr;
};

/// Run the sweep. The circuit's operating point is solved first; all
/// devices are then stamped at that point with reactive companion terms
/// replaced by admittances. Throws PreconditionError when `stimulus`
/// names no independent source in the circuit.
[[nodiscard]] AcSweep ac_analyze(Circuit& circuit, const AcOptions& options);

}  // namespace focv::circuit
