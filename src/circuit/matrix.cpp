#include "circuit/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace focv::circuit {

void Matrix::clear() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Vector Matrix::multiply(const Vector& x) const {
  require(x.size() == cols_, "Matrix::multiply: dimension mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += data_[r * cols_ + c] * x[c];
    y[r] = sum;
  }
  return y;
}

Vector lu_solve(Matrix a, Vector b, double pivot_floor) {
  const std::size_t n = a.rows();
  require(a.cols() == n, "lu_solve: matrix must be square");
  require(b.size() == n, "lu_solve: rhs dimension mismatch");

  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(a.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(a.at(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < pivot_floor) {
      throw ConvergenceError("lu_solve: singular matrix (pivot " + std::to_string(pivot_mag) +
                             " at column " + std::to_string(k) + ")");
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(k, c), a.at(pivot_row, c));
      std::swap(b[k], b[pivot_row]);
    }
    // Eliminate below.
    const double pivot = a.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = a.at(r, k) / pivot;
      if (factor == 0.0) continue;
      a.at(r, k) = 0.0;
      for (std::size_t c = k + 1; c < n; ++c) a.at(r, c) -= factor * a.at(k, c);
      b[r] -= factor * b[k];
    }
  }
  // Back substitution.
  Vector x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a.at(ri, c) * x[c];
    x[ri] = sum / a.at(ri, ri);
  }
  return x;
}

double inf_norm(const Vector& v) {
  double m = 0.0;
  for (const double e : v) m = std::max(m, std::abs(e));
  return m;
}

}  // namespace focv::circuit
