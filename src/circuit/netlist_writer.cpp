#include "circuit/netlist_writer.hpp"

#include <sstream>

namespace focv::circuit {

int write_netlist(std::ostream& os, const Circuit& circuit) {
  const auto names = [&circuit](NodeId n) { return circuit.node_name(n); };
  os << "* netlist exported by focv::circuit::write_netlist\n";
  int omitted = 0;
  for (const auto& device : circuit.devices()) {
    const std::string card = device->netlist_card(names);
    if (card.empty()) {
      os << "* (no card form) " << device->name() << "\n";
      ++omitted;
    } else {
      os << card << "\n";
    }
  }
  os << ".end\n";
  return omitted;
}

std::string write_netlist_string(const Circuit& circuit) {
  std::ostringstream os;
  (void)write_netlist(os, circuit);
  return os.str();
}

}  // namespace focv::circuit
