#include "circuit/devices_sources.hpp"

#include <cstdio>

#include "common/require.hpp"

namespace focv::circuit {

VoltageSource::VoltageSource(std::string name, NodeId a, NodeId b, Waveform waveform)
    : Device(std::move(name)), a_(a), b_(b), waveform_(std::move(waveform)) {}

void VoltageSource::stamp(StampContext& ctx) {
  const int br = ctx.branch_row(branch_);
  ctx.add_matrix(StampContext::row(a_), br, 1.0);
  ctx.add_matrix(StampContext::row(b_), br, -1.0);
  ctx.add_matrix(br, StampContext::row(a_), 1.0);
  ctx.add_matrix(br, StampContext::row(b_), -1.0);
  ctx.add_rhs(br, ctx.source_scale * waveform_.value(ctx.time));
}

void VoltageSource::collect_breakpoints(double t_now, std::vector<double>& out) const {
  waveform_.collect_breakpoints(t_now, out);
}

CurrentSource::CurrentSource(std::string name, NodeId a, NodeId b, Waveform waveform)
    : Device(std::move(name)), a_(a), b_(b), waveform_(std::move(waveform)) {}

void CurrentSource::stamp(StampContext& ctx) {
  const double i = ctx.source_scale * waveform_.value(ctx.time);
  // i flows a -> b through the source: it leaves node a and enters b.
  ctx.add_current_into(a_, -i);
  ctx.add_current_into(b_, i);
}

void CurrentSource::collect_breakpoints(double t_now, std::vector<double>& out) const {
  waveform_.collect_breakpoints(t_now, out);
}

std::string VoltageSource::netlist_card(
    const std::function<std::string(NodeId)>& names) const {
  const std::string shape = waveform_.card_text();
  if (shape.empty()) return "";  // PWL has no card form
  char buf[512];
  std::snprintf(buf, sizeof buf, "%s %s %s %s", name().c_str(), names(a_).c_str(),
                names(b_).c_str(), shape.c_str());
  return buf;
}

std::string CurrentSource::netlist_card(
    const std::function<std::string(NodeId)>& names) const {
  const std::string shape = waveform_.card_text();
  if (shape.empty()) return "";
  char buf[512];
  std::snprintf(buf, sizeof buf, "%s %s %s %s", name().c_str(), names(a_).c_str(),
                names(b_).c_str(), shape.c_str());
  return buf;
}

NonlinearCurrentSource::NonlinearCurrentSource(std::string name, NodeId a, NodeId b, EvalFn fn)
    : Device(std::move(name)), a_(a), b_(b), fn_(std::move(fn)) {
  require(static_cast<bool>(fn_), "NonlinearCurrentSource: null function");
}

void NonlinearCurrentSource::set_function(EvalFn fn) {
  require(static_cast<bool>(fn), "NonlinearCurrentSource: null function");
  fn_ = std::move(fn);
}

void NonlinearCurrentSource::stamp(StampContext& ctx) {
  const double vk = ctx.v(a_) - ctx.v(b_);
  const Eval e = fn_(vk);
  // Element drives I(v) out of node a (into the circuit). Newton
  // linearisation: I(v) ~= Ik + g*(v - vk).
  // KCL (currents leaving the node are positive):
  //   row a: -I(v)  -> matrix -g on (a,a), +g on (a,b); rhs gets Ik - g*vk into a.
  const double g = e.didv;
  ctx.add_matrix_nodes(a_, a_, -g);
  ctx.add_matrix_nodes(a_, b_, g);
  ctx.add_matrix_nodes(b_, a_, g);
  ctx.add_matrix_nodes(b_, b_, -g);
  const double i0 = e.current - g * vk;  // constant part of the injected current
  ctx.add_current_into(a_, i0);
  ctx.add_current_into(b_, -i0);
}

}  // namespace focv::circuit
