// Newton-Raphson solve of the assembled MNA system at one time point.
#pragma once

#include "circuit/circuit.hpp"

namespace focv::circuit {

/// Convergence and damping controls for the Newton iteration.
struct NewtonOptions {
  int max_iterations = 150;
  double v_abs_tol = 1e-6;        ///< node voltage tolerance [V]
  double i_abs_tol = 1e-10;       ///< branch current tolerance [A]
  double rel_tol = 1e-4;          ///< relative tolerance on both
  double max_voltage_step = 1.0;  ///< damping: largest node update per iteration [V]
  double gmin = 1e-12;            ///< node-to-ground conductance [S]
};

/// Outcome of one Newton solve.
struct NewtonResult {
  bool converged = false;
  int iterations = 0;
};

/// Solve the circuit equations at (time, dt) starting from the iterate in
/// `x` (updated in place). dt == 0 selects DC companion models.
/// `source_scale` scales all independent sources (DC source stepping).
[[nodiscard]] NewtonResult newton_solve(Circuit& circuit, Vector& x, double time, double dt,
                                        Integrator integrator, const NewtonOptions& options,
                                        double source_scale = 1.0);

}  // namespace focv::circuit
