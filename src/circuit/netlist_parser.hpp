// SPICE-style text netlist parser.
//
// Lets circuits be described in the familiar card format instead of C++:
//
//   * comment lines start with '*' (or ';' / '//')
//   R1 in out 10k
//   C1 out 0 100n IC=1.2
//   L1 a b 1m
//   V1 in 0 DC 3.3
//   V2 p 0 PULSE(0 3.3 1m 1u 1u 2m 10m)
//   V3 s 0 SIN(1 0.5 50)
//   I1 0 n DC 1m
//   D1 a 0 IS=1e-12 N=1.6
//   S1 a b ctl 0 RON=100 ROFF=1e9 VT=1.65 VW=0.2
//   M1 d g s NMOS VTO=1 KP=2e-3 LAMBDA=0.01
//   E1 o 0 cp cn 8
//   G1 o 0 cp cn 1e-3
//   U1 inp inn out vdd vss COMP GAIN=1e4 ROUT=5k IQ=0.7u
//   U2 in 0 out vdd vss BUF
//   U3 inp inn out vdd vss OPAMP GAIN=2e5
//   .end
//
// Engineering suffixes: f p n u m k meg g t (case-insensitive).
// Node "0" (or "gnd") is ground. Duplicate device names are rejected.
// Parse errors carry the 1-based line number.
#pragma once

#include <istream>
#include <string>

#include "circuit/circuit.hpp"
#include "common/require.hpp"

namespace focv::circuit {

/// Thrown on malformed netlist input; the message includes the line.
class NetlistParseError : public focv::PreconditionError {
 public:
  using focv::PreconditionError::PreconditionError;
};

/// Parse `source` and add the described devices/nodes into `circuit`.
/// Returns the number of devices created.
int parse_netlist(std::istream& source, Circuit& circuit);

/// Convenience: parse from a string.
int parse_netlist_string(const std::string& text, Circuit& circuit);

/// Parse a single engineering-notation value ("10k", "100n", "2meg",
/// "1e-3"). Exposed for tests and tooling.
[[nodiscard]] double parse_engineering_value(const std::string& token);

}  // namespace focv::circuit
