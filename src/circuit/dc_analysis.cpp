#include "circuit/dc_analysis.hpp"

#include "common/require.hpp"

namespace focv::circuit {

Vector dc_operating_point(Circuit& circuit, const DcOptions& options,
                          const Vector* initial_guess) {
  circuit.finalize();
  const std::size_t n = static_cast<std::size_t>(circuit.unknown_count());
  Vector x(n, 0.0);
  if (initial_guess != nullptr) {
    require(initial_guess->size() == n, "dc_operating_point: bad initial guess size");
    x = *initial_guess;
  }

  // 1. Direct Newton.
  {
    Vector trial = x;
    const NewtonResult res = newton_solve(circuit, trial, 0.0, 0.0,
                                          Integrator::kBackwardEuler, options.newton);
    if (res.converged) return trial;
  }

  // 2. Gmin stepping: start heavily shunted, relax towards the real
  //    circuit, reusing each converged solution as the next seed.
  if (options.allow_gmin_stepping) {
    Vector trial = x;
    bool track_ok = true;
    NewtonOptions newton = options.newton;
    for (double gmin = 1e-2; gmin >= options.newton.gmin * 0.99; gmin *= 0.1) {
      newton.gmin = gmin;
      const NewtonResult res = newton_solve(circuit, trial, 0.0, 0.0,
                                            Integrator::kBackwardEuler, newton);
      if (!res.converged) {
        track_ok = false;
        break;
      }
    }
    if (track_ok) {
      newton.gmin = options.newton.gmin;
      const NewtonResult res = newton_solve(circuit, trial, 0.0, 0.0,
                                            Integrator::kBackwardEuler, newton);
      if (res.converged) return trial;
    }
  }

  // 3. Source stepping: ramp all independent sources from zero.
  if (options.allow_source_stepping) {
    Vector trial(n, 0.0);
    double scale = 0.0;
    double step = 0.1;
    bool failed = false;
    while (scale < 1.0 && !failed) {
      const double next = std::min(1.0, scale + step);
      Vector candidate = trial;
      const NewtonResult res = newton_solve(circuit, candidate, 0.0, 0.0,
                                            Integrator::kBackwardEuler, options.newton, next);
      if (res.converged) {
        trial = candidate;
        scale = next;
        step = std::min(step * 2.0, 0.25);
      } else {
        step *= 0.5;
        if (step < 1e-4) failed = true;
      }
    }
    if (!failed) return trial;
  }

  throw ConvergenceError("dc_operating_point: no continuation strategy converged");
}

}  // namespace focv::circuit
