#include "circuit/waveform.hpp"

#include <cmath>
#include <cstdio>
#include <numbers>

#include "common/require.hpp"

namespace focv::circuit {

Waveform Waveform::dc(double value) {
  Waveform w;
  w.kind_ = Kind::kDc;
  w.dc_value_ = value;
  return w;
}

Waveform Waveform::pulse(double v_initial, double v_pulsed, double delay, double rise, double fall,
                         double width, double period) {
  require(rise >= 0.0 && fall >= 0.0 && width >= 0.0, "Waveform::pulse: negative timing");
  require(period <= 0.0 || period >= rise + width + fall,
          "Waveform::pulse: period shorter than pulse shape");
  Waveform w;
  w.kind_ = Kind::kPulse;
  w.v1_ = v_initial;
  w.v2_ = v_pulsed;
  w.delay_ = delay;
  // Zero rise/fall would make the MNA system discontinuous; use a sharp
  // but finite default edge instead (SPICE uses the timestep for this).
  w.rise_ = (rise > 0.0) ? rise : 1e-9;
  w.fall_ = (fall > 0.0) ? fall : 1e-9;
  w.width_ = width;
  w.period_ = period;
  return w;
}

Waveform Waveform::sine(double offset, double amplitude, double frequency_hz, double delay) {
  require(frequency_hz > 0.0, "Waveform::sine: frequency must be > 0");
  Waveform w;
  w.kind_ = Kind::kSine;
  w.offset_ = offset;
  w.amplitude_ = amplitude;
  w.frequency_ = frequency_hz;
  w.delay_ = delay;
  return w;
}

Waveform Waveform::pwl(std::vector<focv::TimedSample> points, double repeat_period) {
  require(!points.empty(), "Waveform::pwl: needs at least one point");
  for (std::size_t i = 1; i < points.size(); ++i) {
    require(points[i].time > points[i - 1].time, "Waveform::pwl: times must be increasing");
  }
  Waveform w;
  w.kind_ = Kind::kPwl;
  w.points_ = std::move(points);
  w.repeat_ = repeat_period;
  return w;
}

double Waveform::value(double t) const {
  switch (kind_) {
    case Kind::kDc:
      return dc_value_;
    case Kind::kPulse: {
      if (t < delay_) return v1_;
      double local = t - delay_;
      if (period_ > 0.0) local = std::fmod(local, period_);
      if (local < rise_) return v1_ + (v2_ - v1_) * (local / rise_);
      local -= rise_;
      if (local < width_) return v2_;
      local -= width_;
      if (local < fall_) return v2_ + (v1_ - v2_) * (local / fall_);
      return v1_;
    }
    case Kind::kSine: {
      if (t < delay_) return offset_;
      return offset_ + amplitude_ * std::sin(2.0 * std::numbers::pi * frequency_ * (t - delay_));
    }
    case Kind::kPwl: {
      double local = t;
      if (repeat_ > 0.0 && local > points_.front().time) {
        const double span = repeat_;
        local = points_.front().time +
                std::fmod(local - points_.front().time, span);
      }
      if (local <= points_.front().time) return points_.front().value;
      if (local >= points_.back().time) return points_.back().value;
      for (std::size_t i = 1; i < points_.size(); ++i) {
        if (local <= points_[i].time) {
          const auto& a = points_[i - 1];
          const auto& b = points_[i];
          const double f = (local - a.time) / (b.time - a.time);
          return a.value + f * (b.value - a.value);
        }
      }
      return points_.back().value;
    }
  }
  return 0.0;
}

std::string Waveform::card_text() const {
  char buf[256];
  switch (kind_) {
    case Kind::kDc:
      std::snprintf(buf, sizeof buf, "DC %.9g", dc_value_);
      return buf;
    case Kind::kPulse:
      std::snprintf(buf, sizeof buf, "PULSE(%.9g %.9g %.9g %.9g %.9g %.9g %.9g)", v1_, v2_,
                    delay_, rise_, fall_, width_, period_);
      return buf;
    case Kind::kSine:
      std::snprintf(buf, sizeof buf, "SIN(%.9g %.9g %.9g %.9g)", offset_, amplitude_,
                    frequency_, delay_);
      return buf;
    case Kind::kPwl:
      return "";
  }
  return "";
}

void Waveform::collect_breakpoints(double t_now, std::vector<double>& out) const {
  auto push_if_future = [&](double t) {
    if (t > t_now) out.push_back(t);
  };
  switch (kind_) {
    case Kind::kDc:
    case Kind::kSine:
      return;
    case Kind::kPulse: {
      // Corners of the current and next period.
      double base = delay_;
      if (period_ > 0.0 && t_now > delay_) {
        const double cycles = std::floor((t_now - delay_) / period_);
        base = delay_ + cycles * period_;
      }
      for (int cycle = 0; cycle < 2; ++cycle) {
        const double t0 = base + cycle * (period_ > 0.0 ? period_ : 0.0);
        push_if_future(t0);
        push_if_future(t0 + rise_);
        push_if_future(t0 + rise_ + width_);
        push_if_future(t0 + rise_ + width_ + fall_);
        if (period_ <= 0.0) break;
      }
      return;
    }
    case Kind::kPwl: {
      if (repeat_ <= 0.0) {
        for (const auto& p : points_) push_if_future(p.time);
      } else {
        const double t0 = points_.front().time;
        double shift = 0.0;
        if (t_now > t0) shift = std::floor((t_now - t0) / repeat_) * repeat_;
        for (int cycle = 0; cycle < 2; ++cycle) {
          for (const auto& p : points_) push_if_future(p.time + shift + cycle * repeat_);
        }
      }
      return;
    }
  }
}

}  // namespace focv::circuit
