#include "circuit/transient.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>

#include "common/require.hpp"
#include "obs/obs.hpp"

namespace focv::circuit {

// ----------------------------------------------------------------- Trace

Trace::Trace(std::vector<std::string> signal_names) : names_(std::move(signal_names)) {
  values_.resize(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) index_.emplace(names_[i], i);
}

void Trace::append(double time, const Vector& x) {
  require(x.size() == names_.size(), "Trace::append: sample width mismatch");
  time_.push_back(time);
  for (std::size_t i = 0; i < x.size(); ++i) values_[i].push_back(x[i]);
}

std::size_t Trace::index_of(const std::string& name) const {
  const auto it = index_.find(name);
  require(it != index_.end(), "Trace: unknown signal '" + name + "'");
  return it->second;
}

const std::vector<double>& Trace::signal(const std::string& name) const {
  return values_[index_of(name)];
}

bool Trace::has_signal(const std::string& name) const { return index_.count(name) > 0; }

double Trace::at(const std::string& name, double t) const {
  const auto& v = signal(name);
  require(!time_.empty(), "Trace::at: empty trace");
  if (t <= time_.front()) return v.front();
  if (t >= time_.back()) return v.back();
  const auto it = std::upper_bound(time_.begin(), time_.end(), t);
  const std::size_t i = static_cast<std::size_t>(it - time_.begin());
  const double f = (t - time_[i - 1]) / (time_[i] - time_[i - 1]);
  return v[i - 1] + f * (v[i] - v[i - 1]);
}

double Trace::time_average(const std::string& name, double t0, double t1) const {
  require(t1 > t0, "Trace::time_average: t1 must exceed t0");
  const auto& v = signal(name);
  double integral = 0.0;
  double prev_t = t0;
  double prev_v = at(name, t0);
  for (std::size_t i = 0; i < time_.size(); ++i) {
    if (time_[i] <= t0) continue;
    if (time_[i] >= t1) break;
    integral += 0.5 * (v[i] + prev_v) * (time_[i] - prev_t);
    prev_t = time_[i];
    prev_v = v[i];
  }
  const double last_v = at(name, t1);
  integral += 0.5 * (last_v + prev_v) * (t1 - prev_t);
  return integral / (t1 - t0);
}

double Trace::minimum(const std::string& name, double t0, double t1) const {
  const auto& v = signal(name);
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < time_.size(); ++i) {
    if (time_[i] < t0 || time_[i] > t1) continue;
    m = std::min(m, v[i]);
  }
  if (!std::isfinite(m)) m = at(name, 0.5 * (t0 + t1));
  return m;
}

double Trace::maximum(const std::string& name, double t0, double t1) const {
  const auto& v = signal(name);
  double m = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < time_.size(); ++i) {
    if (time_[i] < t0 || time_[i] > t1) continue;
    m = std::max(m, v[i]);
  }
  if (!std::isfinite(m)) m = at(name, 0.5 * (t0 + t1));
  return m;
}

std::vector<double> Trace::crossing_times(const std::string& name, double level,
                                          bool rising) const {
  const auto& v = signal(name);
  std::vector<double> out;
  for (std::size_t i = 1; i < v.size(); ++i) {
    const bool crosses = rising ? (v[i - 1] < level && v[i] >= level)
                                : (v[i - 1] > level && v[i] <= level);
    if (crosses && v[i] != v[i - 1]) {
      const double f = (level - v[i - 1]) / (v[i] - v[i - 1]);
      out.push_back(time_[i - 1] + f * (time_[i] - time_[i - 1]));
    }
  }
  return out;
}

// ------------------------------------------------------------- transient

namespace {

std::vector<std::string> build_signal_names(const Circuit& circuit) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(circuit.unknown_count()));
  for (NodeId n = 1; n < circuit.node_count(); ++n) names.push_back(circuit.node_name(n));
  for (const auto& device : circuit.devices()) {
    const int count = device->branch_count();
    for (int k = 0; k < count; ++k) {
      std::string name = "I(" + device->name() + ")";
      if (count > 1) name += "#" + std::to_string(k);
      names.push_back(std::move(name));
    }
  }
  return names;
}

}  // namespace

Trace transient_analyze(Circuit& circuit, const TransientOptions& options) {
  require(options.t_stop > 0.0, "transient_analyze: t_stop must be > 0");
  require(options.dt_initial > 0.0, "transient_analyze: dt_initial must be > 0");
  circuit.finalize();

  const bool obs_on = obs::enabled();
  std::uint64_t accepted_steps = 0;
  std::uint64_t rejected_steps = 0;
  std::optional<obs::Tracer::Span> window_span;
  if (obs_on) {
    window_span.emplace(obs::tracer().span("transient_window", "circuit"));
    window_span->arg("t_stop_s", options.t_stop);
    window_span->arg("unknowns", static_cast<double>(circuit.unknown_count()));
  }
  // Rejection telemetry shared by the retry sites below.
  const auto record_rejection = [&](double sim_t, double dt_failed, const char* reason,
                                    const NewtonResult& nr) {
    ++rejected_steps;
    static const obs::CounterId rejections_id =
        obs::metrics().counter("circuit.transient.step_rejections");
    obs::metrics().add(rejections_id);
    obs::events().emit("step_rejected", sim_t,
                       {{"dt_s", dt_failed},
                        {"reason", reason},
                        {"newton_iterations", nr.iterations},
                        {"newton_converged", nr.converged ? 1.0 : 0.0}});
  };

  const std::size_t n = static_cast<std::size_t>(circuit.unknown_count());
  const double dt_max = (options.dt_max > 0.0) ? options.dt_max : options.t_stop / 50.0;

  Vector x(n, 0.0);
  if (options.start_from_dc) {
    x = dc_operating_point(circuit, options.dc);
    const Solution dc_solution(x, circuit.node_count(), 0.0);
    for (const auto& device : circuit.devices()) device->set_dc_state(dc_solution);
  }

  Trace trace(build_signal_names(circuit));
  trace.append(0.0, x);

  double t = 0.0;
  double dt_nominal = options.dt_initial;
  bool after_discontinuity = true;  // first step uses backward Euler
  int steps_since_record = 0;
  std::vector<double> breakpoints;

  while (t < options.t_stop - 1e-15 * options.t_stop) {
    // Device-imposed constraints on the step.
    const Solution accepted(x, circuit.node_count(), t);
    double dt = std::min({dt_nominal, dt_max, options.t_stop - t});
    for (const auto& device : circuit.devices()) {
      dt = std::min(dt, device->max_timestep(accepted));
    }
    // Never step across a source breakpoint.
    breakpoints.clear();
    for (const auto& device : circuit.devices()) {
      device->collect_breakpoints(t, breakpoints);
    }
    double next_bp = std::numeric_limits<double>::infinity();
    const double bp_guard = 1e-12 * std::max(1.0, t);
    for (const double bp : breakpoints) {
      if (bp > t + bp_guard) next_bp = std::min(next_bp, bp);
    }
    bool lands_on_breakpoint = false;
    if (std::isfinite(next_bp) && t + dt >= next_bp) {
      dt = next_bp - t;
      lands_on_breakpoint = true;
    }

    // Attempt the step, halving on failure.
    Vector x_try;
    double max_dv = 0.0;
    NewtonResult newton_result;
    bool accepted_step = false;
    const Integrator base_integrator =
        after_discontinuity ? Integrator::kBackwardEuler : options.integrator;
    while (!accepted_step) {
      for (const auto& device : circuit.devices()) device->begin_step(t + dt, dt);
      x_try = x;
      newton_result = newton_solve(circuit, x_try, t + dt, dt, base_integrator, options.newton);
      max_dv = 0.0;
      if (newton_result.converged) {
        const int node_vars = circuit.node_count() - 1;
        for (int k = 0; k < node_vars; ++k) {
          max_dv = std::max(max_dv,
                            std::abs(x_try[static_cast<std::size_t>(k)] -
                                     x[static_cast<std::size_t>(k)]));
        }
      }
      if (newton_result.converged && (max_dv <= options.dv_step_max || dt <= options.dt_min)) {
        // Event localisation: let devices veto a step that jumped across
        // a fast transition (comparator flip, switch toggle).
        const Solution before(x, circuit.node_count(), t);
        const Solution after(x_try, circuit.node_count(), t + dt);
        double event_limit = std::numeric_limits<double>::infinity();
        for (const auto& device : circuit.devices()) {
          event_limit = std::min(event_limit, device->post_step_dt_limit(before, after));
        }
        if (dt > event_limit * 1.01 && dt > options.dt_min) {
          if (obs_on) record_rejection(t, dt, "event_localisation", newton_result);
          dt = std::max(event_limit, options.dt_min);
          lands_on_breakpoint = false;
          continue;
        }
        accepted_step = true;
      } else if (!newton_result.converged && dt <= options.dt_min * 1.01) {
        obs::anomaly("newton_nonconverged", t,
                     {{"dt_s", dt}, {"iterations", newton_result.iterations}});
        throw ConvergenceError("transient_analyze: Newton failed at dt_min at t = " +
                               std::to_string(t));
      } else {
        if (obs_on) {
          record_rejection(t, dt,
                           newton_result.converged ? "dv_limit" : "newton_nonconverged",
                           newton_result);
        }
        // A converged step that only violates the dv limit is retried at
        // a smaller dt, but floored at dt_min: a discontinuity forced by
        // a hard source cannot be shrunk by shrinking dt, so the step is
        // accepted there (the accept branch above admits dt <= dt_min).
        dt = std::max(dt * (newton_result.converged ? 0.5 : 0.25), options.dt_min);
        lands_on_breakpoint = false;
      }
    }

    t += dt;
    ++accepted_steps;
    x = std::move(x_try);
    const Solution solution(x, circuit.node_count(), t);
    for (const auto& device : circuit.devices()) device->accept_step(solution);
    if (++steps_since_record >= options.record_stride || t >= options.t_stop) {
      trace.append(t, x);
      steps_since_record = 0;
    }
    after_discontinuity = lands_on_breakpoint;

    // Grow the nominal step when the solve was easy.
    if (max_dv < 0.25 * options.dv_step_max && newton_result.iterations <= 12) {
      dt_nominal = std::max(dt_nominal, dt) * 2.0;
    } else if (max_dv < 0.5 * options.dv_step_max) {
      dt_nominal = std::max(dt_nominal, dt) * 1.2;
    } else {
      dt_nominal = dt;
    }
  }
  if (window_span) {
    static const obs::CounterId steps_id =
        obs::metrics().counter("circuit.transient.steps");
    obs::metrics().add(steps_id, static_cast<double>(accepted_steps));
    window_span->arg("accepted_steps", static_cast<double>(accepted_steps));
    window_span->arg("rejected_steps", static_cast<double>(rejected_steps));
    window_span->arg("trace_points", static_cast<double>(trace.time().size()));
  }
  return trace;
}

}  // namespace focv::circuit
