// Source waveforms (DC / pulse / sine / piecewise-linear).
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace focv::circuit {

/// Time-dependent source value with breakpoint reporting so the
/// transient engine never steps across an edge.
class Waveform {
 public:
  /// Constant value.
  static Waveform dc(double value);

  /// SPICE-style pulse.
  static Waveform pulse(double v_initial, double v_pulsed, double delay, double rise, double fall,
                        double width, double period);

  /// Sinusoid: offset + amplitude * sin(2*pi*freq*(t - delay)).
  static Waveform sine(double offset, double amplitude, double frequency_hz, double delay = 0.0);

  /// Piecewise linear through (t, v) points; holds the last value after
  /// the final point (or repeats with `period` > 0).
  static Waveform pwl(std::vector<focv::TimedSample> points, double repeat_period = 0.0);

  /// Source value at time t.
  [[nodiscard]] double value(double t) const;

  /// Append future discontinuity/corner times after t_now.
  void collect_breakpoints(double t_now, std::vector<double>& out) const;

  /// DC value used for operating-point analysis (value at t = 0).
  [[nodiscard]] double dc_value() const { return value(0.0); }

  /// Netlist card fragment ("DC 3.3", "PULSE(...)", "SIN(...)");
  /// empty for shapes the card format cannot express (PWL).
  [[nodiscard]] std::string card_text() const;

 private:
  enum class Kind { kDc, kPulse, kSine, kPwl };
  Kind kind_ = Kind::kDc;

  // DC
  double dc_value_ = 0.0;
  // Pulse
  double v1_ = 0.0, v2_ = 0.0, delay_ = 0.0, rise_ = 0.0, fall_ = 0.0, width_ = 0.0, period_ = 0.0;
  // Sine
  double offset_ = 0.0, amplitude_ = 0.0, frequency_ = 0.0;
  // PWL
  std::vector<focv::TimedSample> points_;
  double repeat_ = 0.0;
};

}  // namespace focv::circuit
