#include "circuit/netlist_parser.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "circuit/devices_active.hpp"
#include "circuit/devices_passive.hpp"
#include "circuit/devices_sources.hpp"

namespace focv::circuit {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  return s;
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw NetlistParseError("netlist line " + std::to_string(line) + ": " + message);
}

/// Tokenise one card. Parentheses and commas act as whitespace so
/// "PULSE(0 3.3 1m ...)" splits naturally.
std::vector<std::string> tokenize(const std::string& raw) {
  std::string cleaned;
  cleaned.reserve(raw.size());
  for (const char ch : raw) {
    if (ch == '(' || ch == ')' || ch == ',' || ch == '=') {
      cleaned.push_back(' ');
      if (ch == '=') cleaned.append("= ");
    } else {
      cleaned.push_back(ch);
    }
  }
  std::vector<std::string> tokens;
  std::stringstream ss(cleaned);
  std::string tok;
  while (ss >> tok) tokens.push_back(tok);
  return tokens;
}

/// key=value parameters from the tail of a card. The tokenizer expands
/// "k=v" into "k", "=", "v".
std::unordered_map<std::string, double> parse_params(const std::vector<std::string>& tokens,
                                                     std::size_t start, int line) {
  std::unordered_map<std::string, double> params;
  std::size_t i = start;
  while (i < tokens.size()) {
    if (i + 1 >= tokens.size() || tokens[i + 1] != "=") {
      fail(line, "unexpected token '" + tokens[i] + "' (expected key=value)");
    }
    if (i + 2 >= tokens.size()) fail(line, "parameter '" + tokens[i] + "' has no value");
    params[lower(tokens[i])] = parse_engineering_value(tokens[i + 2]);
    i += 3;
  }
  return params;
}

double param_or(const std::unordered_map<std::string, double>& params, const std::string& key,
                double fallback) {
  const auto it = params.find(key);
  return (it == params.end()) ? fallback : it->second;
}

}  // namespace

double parse_engineering_value(const std::string& token) {
  require(!token.empty(), "parse_engineering_value: empty token");
  const std::string t = lower(token);
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(t, &consumed);
  } catch (const std::exception&) {
    throw NetlistParseError("not a number: '" + token + "'");
  }
  const std::string suffix = t.substr(consumed);
  if (suffix.empty()) return value;
  // "meg" must be checked before "m".
  struct Suffix {
    const char* text;
    double scale;
  };
  static constexpr Suffix kSuffixes[] = {
      {"meg", 1e6}, {"f", 1e-15}, {"p", 1e-12}, {"n", 1e-9}, {"u", 1e-6},
      {"m", 1e-3},  {"k", 1e3},   {"g", 1e9},   {"t", 1e12},
  };
  for (const Suffix& s : kSuffixes) {
    if (suffix.rfind(s.text, 0) == 0) return value * s.scale;
  }
  throw NetlistParseError("unknown unit suffix '" + suffix + "' in '" + token + "'");
}

int parse_netlist(std::istream& source, Circuit& circuit) {
  std::string raw;
  int line_no = 0;
  int device_count = 0;
  std::unordered_set<std::string> names;

  auto check_name = [&](const std::string& name, int line) {
    if (!names.insert(lower(name)).second) fail(line, "duplicate device name '" + name + "'");
  };

  while (std::getline(source, raw)) {
    ++line_no;
    // Strip comments.
    std::string text = raw;
    for (const std::string& marker : {std::string(";"), std::string("//")}) {
      const auto pos = text.find(marker);
      if (pos != std::string::npos) text = text.substr(0, pos);
    }
    // Leading '*' comments whole line (SPICE style).
    const auto first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (text[first] == '*') continue;

    const std::vector<std::string> tok = tokenize(text);
    if (tok.empty()) continue;
    const std::string card = lower(tok[0]);

    if (card == ".end") break;
    if (card[0] == '.') fail(line_no, "unsupported directive '" + tok[0] + "'");

    const char kind = card[0];
    auto node = [&](std::size_t idx) -> NodeId {
      if (idx >= tok.size()) fail(line_no, "missing node");
      return circuit.node(tok[idx]);
    };

    switch (kind) {
      case 'r': {
        if (tok.size() < 4) fail(line_no, "resistor needs: Rname a b value");
        check_name(tok[0], line_no);
        circuit.add<Resistor>(tok[0], node(1), node(2), parse_engineering_value(tok[3]));
        break;
      }
      case 'c': {
        if (tok.size() < 4) fail(line_no, "capacitor needs: Cname a b value [IC=v]");
        check_name(tok[0], line_no);
        const auto params = parse_params(tok, 4, line_no);
        circuit.add<Capacitor>(tok[0], node(1), node(2), parse_engineering_value(tok[3]),
                               param_or(params, "ic", 0.0));
        break;
      }
      case 'l': {
        if (tok.size() < 4) fail(line_no, "inductor needs: Lname a b value [IC=i]");
        check_name(tok[0], line_no);
        const auto params = parse_params(tok, 4, line_no);
        circuit.add<Inductor>(tok[0], node(1), node(2), parse_engineering_value(tok[3]),
                              param_or(params, "ic", 0.0));
        break;
      }
      case 'v':
      case 'i': {
        if (tok.size() < 4) fail(line_no, "source needs: name a b DC v | PULSE(...) | SIN(...)");
        check_name(tok[0], line_no);
        const NodeId a = node(1);
        const NodeId b = node(2);
        Waveform waveform = Waveform::dc(0.0);
        const std::string shape = lower(tok[3]);
        if (shape == "dc") {
          if (tok.size() < 5) fail(line_no, "DC source needs a value");
          waveform = Waveform::dc(parse_engineering_value(tok[4]));
        } else if (shape == "pulse") {
          if (tok.size() < 11) {
            fail(line_no, "PULSE needs 7 values: v1 v2 delay rise fall width period");
          }
          waveform = Waveform::pulse(
              parse_engineering_value(tok[4]), parse_engineering_value(tok[5]),
              parse_engineering_value(tok[6]), parse_engineering_value(tok[7]),
              parse_engineering_value(tok[8]), parse_engineering_value(tok[9]),
              parse_engineering_value(tok[10]));
        } else if (shape == "sin") {
          if (tok.size() < 7) fail(line_no, "SIN needs: offset amplitude frequency [delay]");
          waveform = Waveform::sine(
              parse_engineering_value(tok[4]), parse_engineering_value(tok[5]),
              parse_engineering_value(tok[6]),
              tok.size() > 7 ? parse_engineering_value(tok[7]) : 0.0);
        } else {
          // Bare value: treat as DC.
          waveform = Waveform::dc(parse_engineering_value(tok[3]));
        }
        if (kind == 'v') {
          circuit.add<VoltageSource>(tok[0], a, b, waveform);
        } else {
          circuit.add<CurrentSource>(tok[0], a, b, waveform);
        }
        break;
      }
      case 'd': {
        if (tok.size() < 3) fail(line_no, "diode needs: Dname anode cathode [IS=..] [N=..]");
        check_name(tok[0], line_no);
        const auto params = parse_params(tok, 3, line_no);
        Diode::Params dp;
        dp.saturation_current = param_or(params, "is", dp.saturation_current);
        dp.emission_coefficient = param_or(params, "n", dp.emission_coefficient);
        circuit.add<Diode>(tok[0], node(1), node(2), dp);
        break;
      }
      case 's': {
        if (tok.size() < 5) {
          fail(line_no, "switch needs: Sname a b ctl+ ctl- [RON= ROFF= VT= VW=]");
        }
        check_name(tok[0], line_no);
        const auto params = parse_params(tok, 5, line_no);
        VSwitch::Params sp;
        sp.on_resistance = param_or(params, "ron", sp.on_resistance);
        sp.off_resistance = param_or(params, "roff", sp.off_resistance);
        sp.threshold = param_or(params, "vt", sp.threshold);
        sp.transition_width = param_or(params, "vw", sp.transition_width);
        circuit.add<VSwitch>(tok[0], node(1), node(2), node(3), node(4), sp);
        break;
      }
      case 'm': {
        if (tok.size() < 5) fail(line_no, "mosfet needs: Mname d g s NMOS|PMOS [VTO= KP= LAMBDA=]");
        check_name(tok[0], line_no);
        const std::string type = lower(tok[4]);
        if (type != "nmos" && type != "pmos") fail(line_no, "mosfet type must be NMOS or PMOS");
        const auto params = parse_params(tok, 5, line_no);
        Mosfet::Params mp;
        mp.is_nmos = (type == "nmos");
        mp.threshold_voltage = param_or(params, "vto", mp.threshold_voltage);
        mp.transconductance = param_or(params, "kp", mp.transconductance);
        mp.lambda = param_or(params, "lambda", mp.lambda);
        circuit.add<Mosfet>(tok[0], node(1), node(2), node(3), mp);
        break;
      }
      case 'e': {
        if (tok.size() < 6) fail(line_no, "VCVS needs: Ename a b cp cn gain");
        check_name(tok[0], line_no);
        circuit.add<Vcvs>(tok[0], node(1), node(2), node(3), node(4),
                          parse_engineering_value(tok[5]));
        break;
      }
      case 'g': {
        if (tok.size() < 6) fail(line_no, "VCCS needs: Gname a b cp cn gm");
        check_name(tok[0], line_no);
        circuit.add<Vccs>(tok[0], node(1), node(2), node(3), node(4),
                          parse_engineering_value(tok[5]));
        break;
      }
      case 'u': {
        if (tok.size() < 7) {
          fail(line_no, "amp needs: Uname inp inn out vdd vss COMP|OPAMP|BUF [params]");
        }
        check_name(tok[0], line_no);
        const std::string mode = lower(tok[6]);
        Amp::Params ap;
        if (mode == "comp") {
          ap.mode = Amp::Mode::kComparator;
          ap.gain = 1e4;
          ap.output_resistance = 5e3;
        } else if (mode == "opamp") {
          ap.mode = Amp::Mode::kOpAmp;
        } else if (mode == "buf") {
          ap.mode = Amp::Mode::kBuffer;
          ap.output_resistance = 2e3;
        } else {
          fail(line_no, "amp mode must be COMP, OPAMP or BUF");
        }
        const auto params = parse_params(tok, 7, line_no);
        ap.gain = param_or(params, "gain", ap.gain);
        ap.output_resistance = param_or(params, "rout", ap.output_resistance);
        ap.offset_voltage = param_or(params, "voff", ap.offset_voltage);
        ap.quiescent_current = param_or(params, "iq", ap.quiescent_current);
        circuit.add<Amp>(tok[0], node(1), node(2), node(3), node(4), node(5), ap);
        break;
      }
      default:
        fail(line_no, "unknown device card '" + tok[0] + "'");
    }
    ++device_count;
  }
  return device_count;
}

int parse_netlist_string(const std::string& text, Circuit& circuit) {
  std::istringstream stream(text);
  return parse_netlist(stream, circuit);
}

}  // namespace focv::circuit
