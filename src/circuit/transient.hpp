// Adaptive-timestep transient analysis and waveform traces.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/dc_analysis.hpp"

namespace focv::circuit {

/// Recorded waveforms of one transient run: every node voltage plus every
/// branch current, sampled at each accepted timestep.
class Trace {
 public:
  Trace() = default;
  Trace(std::vector<std::string> signal_names);

  void append(double time, const Vector& x);

  [[nodiscard]] const std::vector<double>& time() const { return time_; }
  [[nodiscard]] std::size_t size() const { return time_.size(); }

  /// Full sample vector of a named signal ("node" or "I(device)").
  [[nodiscard]] const std::vector<double>& signal(const std::string& name) const;
  [[nodiscard]] bool has_signal(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& signal_names() const { return names_; }

  /// Linearly interpolated signal value at time t (clamped at the ends).
  [[nodiscard]] double at(const std::string& name, double t) const;

  /// Time-weighted average of a signal over [t0, t1] (trapezoid rule).
  [[nodiscard]] double time_average(const std::string& name, double t0, double t1) const;

  /// Minimum / maximum of a signal over [t0, t1].
  [[nodiscard]] double minimum(const std::string& name, double t0, double t1) const;
  [[nodiscard]] double maximum(const std::string& name, double t0, double t1) const;

  /// Times at which the signal crosses `level` rising (and optionally
  /// falling). Linear interpolation between samples.
  [[nodiscard]] std::vector<double> crossing_times(const std::string& name, double level,
                                                   bool rising = true) const;

 private:
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<double> time_;
  std::vector<std::vector<double>> values_;  // [signal][sample]
};

/// Controls for transient analysis.
struct TransientOptions {
  double t_stop = 1e-3;           ///< end time [s]
  double dt_initial = 1e-6;       ///< first step size [s]
  double dt_min = 1e-12;          ///< floor for step halving [s]
  double dt_max = 0.0;            ///< 0 = t_stop / 50
  double dv_step_max = 0.5;       ///< largest node-voltage change per step [V]
  Integrator integrator = Integrator::kTrapezoidal;
  bool start_from_dc = true;      ///< false: use device initial conditions (UIC)
  int record_stride = 1;          ///< record every k-th accepted step
  NewtonOptions newton;
  DcOptions dc;                   ///< used when start_from_dc
};

/// Run a transient simulation and return the recorded trace.
/// Signal names: node names for voltages, "I(<device>)" for the branch
/// current of voltage-defined devices ("I(<device>)#k" when a device has
/// several branches).
[[nodiscard]] Trace transient_analyze(Circuit& circuit, const TransientOptions& options);

}  // namespace focv::circuit
