// Dense linear algebra for the MNA solver.
//
// MNA systems in this library are small (tens of unknowns: node voltages
// plus branch currents), so a dense LU with partial pivoting is both the
// simplest and the fastest appropriate choice; sparse machinery would
// not pay for itself below a few hundred unknowns.
#pragma once

#include <cstddef>
#include <vector>

namespace focv::circuit {

using Vector = std::vector<double>;

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Reset all entries to zero, keeping dimensions.
  void clear();

  /// Resize and zero.
  void resize(std::size_t rows, std::size_t cols);

  /// y = A * x.
  [[nodiscard]] Vector multiply(const Vector& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

/// Solve A x = b in place via LU with partial pivoting.
///
/// `a` is destroyed. Throws ConvergenceError when the matrix is
/// numerically singular (pivot below `pivot_floor`).
[[nodiscard]] Vector lu_solve(Matrix a, Vector b, double pivot_floor = 1e-300);

/// Infinity norm of a vector.
[[nodiscard]] double inf_norm(const Vector& v);

}  // namespace focv::circuit
