// Serialise a Circuit back to the SPICE-style card format understood by
// netlist_parser — the inverse operation, so programmatically built
// circuits (including the Fig. 3 builders) can be exported, inspected,
// diffed and re-imported.
#pragma once

#include <ostream>
#include <string>

#include "circuit/circuit.hpp"

namespace focv::circuit {

/// Write every supported device as one card. Devices with no card form
/// (behavioural PV cells, custom Device subclasses) are emitted as
/// comment lines noting the omission, and their count is returned so
/// callers can tell whether the export is complete.
///
/// Round-trip guarantee (tested): for circuits made of the parser's
/// device set, parse(write(circuit)) produces an electrically identical
/// circuit (same DC solution and transient behaviour).
int write_netlist(std::ostream& os, const Circuit& circuit);

/// Convenience: netlist text as a string.
[[nodiscard]] std::string write_netlist_string(const Circuit& circuit);

}  // namespace focv::circuit
