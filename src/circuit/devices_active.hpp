// Nonlinear and controlled devices: diode, voltage-controlled switch,
// level-1 MOSFET, linear controlled sources, and a rail-limited
// amplifier macromodel that covers both op-amps and comparators.
#pragma once

#include "circuit/device.hpp"

namespace focv::circuit {

/// Shockley diode with SPICE-style junction voltage limiting.
class Diode : public Device {
 public:
  struct Params {
    double saturation_current = 1e-14;  ///< Is [A]
    double emission_coefficient = 1.0;  ///< n
    double thermal_voltage = 0.02585;   ///< kT/q [V]
    double parallel_gmin = 1e-12;       ///< junction shunt conductance [S]
  };

  Diode(std::string name, NodeId anode, NodeId cathode, Params params);
  Diode(std::string name, NodeId anode, NodeId cathode)
      : Diode(std::move(name), anode, cathode, Params{}) {}

  void stamp(StampContext& ctx) override;
  void begin_step(double time, double dt) override;
  void accept_step(const Solution& solution) override;
  void set_dc_state(const Solution& solution) override { accept_step(solution); }

  /// Diode current at forward voltage v [A].
  [[nodiscard]] double current_at(double v) const;

  [[nodiscard]] std::string netlist_card(
      const std::function<std::string(NodeId)>& names) const override;

 private:
  [[nodiscard]] double limit_junction_voltage(double v_new) const;

  NodeId anode_, cathode_;
  Params params_;
  double v_critical_;
  double v_last_iterate_ = 0.0;   // previous Newton iterate (for limiting)
  double v_accepted_ = 0.0;       // last accepted solution
  mutable bool first_stamp_in_step_ = true;
};

/// Smooth voltage-controlled switch (4-terminal).
///
/// Conductance ramps log-linearly from `off_conductance` to
/// `on_conductance` as the control voltage v(cp)-v(cn) crosses
/// [threshold - width/2, threshold + width/2], with a smoothstep easing
/// so the Jacobian is continuous. Models MOSFETs used as analog switches
/// without the convergence hazards of an abrupt model.
class VSwitch : public Device {
 public:
  struct Params {
    double on_resistance = 100.0;     ///< [Ohm]
    double off_resistance = 1e12;     ///< [Ohm]
    double threshold = 1.0;           ///< control threshold [V]
    double transition_width = 0.2;    ///< control span of the transition [V]
    bool active_high = true;          ///< false inverts the control sense
  };

  VSwitch(std::string name, NodeId a, NodeId b, NodeId control_p, NodeId control_n,
          Params params);
  VSwitch(std::string name, NodeId a, NodeId b, NodeId control_p, NodeId control_n)
      : VSwitch(std::move(name), a, b, control_p, control_n, Params{}) {}

  void stamp(StampContext& ctx) override;
  void begin_step(double time, double dt) override;
  void accept_step(const Solution& solution) override;
  void set_dc_state(const Solution& solution) override { accept_step(solution); }
  [[nodiscard]] double max_timestep(const Solution& solution) const override;

  /// Conductance at control voltage vc [S].
  [[nodiscard]] double conductance_at(double vc) const;

  /// Optional cap on the step size while the control voltage is inside
  /// the transition band (0 disables the cap).
  void set_transition_dt_limit(double dt) { transition_dt_limit_ = dt; }

  [[nodiscard]] std::string netlist_card(
      const std::function<std::string(NodeId)>& names) const override;

 private:
  NodeId a_, b_, cp_, cn_;
  Params params_;
  double log_g_on_, log_g_off_;
  double transition_dt_limit_ = 0.0;
  // Newton control-voltage limiting (the switch analogue of the diode's
  // pnjlim): a steep transition region otherwise makes the iteration
  // overshoot between fully-on and fully-off states.
  double vc_last_iterate_ = 0.0;
  double vc_accepted_ = 0.0;
};

/// Level-1 (Shichman-Hodges) MOSFET, NMOS or PMOS, symmetric in D/S.
class Mosfet : public Device {
 public:
  struct Params {
    bool is_nmos = true;
    double threshold_voltage = 0.6;     ///< Vth [V] (positive for both types)
    double transconductance = 1e-3;     ///< K = mu*Cox*W/L [A/V^2]
    double lambda = 0.0;                ///< channel-length modulation [1/V]
  };

  Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source, Params params);
  Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source)
      : Mosfet(std::move(name), drain, gate, source, Params{}) {}

  void stamp(StampContext& ctx) override;

  /// Drain current for the given gate-source / drain-source voltages [A].
  [[nodiscard]] double drain_current(double vgs, double vds) const;

  [[nodiscard]] std::string netlist_card(
      const std::function<std::string(NodeId)>& names) const override;

 private:
  NodeId d_, g_, s_;
  Params params_;
};

/// Linear voltage-controlled current source: i(a->b) = gm * (v(cp)-v(cn)).
class Vccs : public Device {
 public:
  Vccs(std::string name, NodeId a, NodeId b, NodeId cp, NodeId cn, double transconductance);
  void stamp(StampContext& ctx) override;
  [[nodiscard]] std::string netlist_card(
      const std::function<std::string(NodeId)>& names) const override;

 private:
  NodeId a_, b_, cp_, cn_;
  double gm_;
};

/// Linear voltage-controlled voltage source: v(a)-v(b) = gain * (v(cp)-v(cn)).
class Vcvs : public Device {
 public:
  Vcvs(std::string name, NodeId a, NodeId b, NodeId cp, NodeId cn, double gain);

  [[nodiscard]] int branch_count() const override { return 1; }
  void set_branch_offset(int offset) override { branch_ = offset; }
  void stamp(StampContext& ctx) override;
  [[nodiscard]] std::string netlist_card(
      const std::function<std::string(NodeId)>& names) const override;

 private:
  NodeId a_, b_, cp_, cn_;
  double gain_;
  int branch_ = -1;
};

/// Behavioural rail-limited amplifier covering op-amps, comparators and
/// closed-loop unity buffers.
///
/// High-impedance differential inputs; the output is a voltage source
/// (one branch variable) with series output resistance whose open-loop
/// value is a smooth, rail-limited function of the differential input:
///
///  - kOpAmp:      vout = softclamp(vmid + gain*(vp - vn + voffset))
///  - kComparator: vout = vlo + (vhi - vlo) * logistic(slope*(vp - vn + voffset))
///  - kBuffer:     vout = softclamp(v(inp) + voffset); the closed-loop
///                 transfer of a unity-feedback op-amp. Use this instead
///                 of wiring a kOpAmp with out->inn feedback: an open-loop
///                 gain of 1e5 leaves a ~uV-wide linear window that a
///                 damped Newton cannot land in (it ping-pongs between
///                 the two saturated branches), whereas the closed-loop
///                 gain-1 transfer is benign. inn is ignored.
///
/// Rails can be fixed parameters or follow supply nodes. A constant
/// quiescent current is drawn from vdd to vss when supplies are wired,
/// modelling micropower parts such as the LMC7215 comparator used by the
/// paper's astable multivibrator.
class Amp : public Device {
 public:
  enum class Mode { kOpAmp, kComparator, kBuffer };

  struct Params {
    Mode mode = Mode::kOpAmp;
    double gain = 1e5;                ///< open-loop gain (op-amp) or comparator gain
    double output_resistance = 100.0; ///< [Ohm]
    double offset_voltage = 0.0;      ///< input-referred offset [V]
    double input_bias_current = 0.0;  ///< drawn into each input [A]
    double rail_low = 0.0;            ///< used when supply nodes are not wired [V]
    double rail_high = 3.3;           ///< used when supply nodes are not wired [V]
    double rail_headroom = 0.0;       ///< output swing loss to each rail [V]
    double quiescent_current = 0.0;   ///< supply draw [A]
    double clamp_softness = 0.01;     ///< soft-clamp knee width [V]
  };

  /// Construct without supply pins (fixed rails).
  Amp(std::string name, NodeId in_p, NodeId in_n, NodeId out, Params params);

  /// Construct with supply pins (rails follow v(vdd)/v(vss); quiescent
  /// current flows vdd -> vss).
  Amp(std::string name, NodeId in_p, NodeId in_n, NodeId out, NodeId vdd, NodeId vss,
      Params params);

  [[nodiscard]] int branch_count() const override { return 1; }
  void set_branch_offset(int offset) override { branch_ = offset; }
  void stamp(StampContext& ctx) override;
  [[nodiscard]] double max_timestep(const Solution& solution) const override;
  [[nodiscard]] double post_step_dt_limit(const Solution& before,
                                          const Solution& after) const override;
  [[nodiscard]] double quiescent_current() const override { return params_.quiescent_current; }

  /// Open-loop output value for the given inputs (rails as configured).
  [[nodiscard]] double transfer(double v_diff, double rail_lo, double rail_hi) const;

  /// Optional cap on step size while the comparator input is near its
  /// threshold (0 disables).
  void set_transition_dt_limit(double dt) { transition_dt_limit_ = dt; }

  [[nodiscard]] std::string netlist_card(
      const std::function<std::string(NodeId)>& names) const override;

 private:
  struct TransferEval {
    double value = 0.0;
    double d_vdiff = 0.0;
    double d_lo = 0.0;
    double d_hi = 0.0;
  };
  [[nodiscard]] TransferEval eval_transfer(double v_diff, double rail_lo, double rail_hi) const;

  NodeId inp_, inn_, out_;
  NodeId vdd_ = kGround, vss_ = kGround;
  bool has_supplies_ = false;
  Params params_;
  int branch_ = -1;
  double transition_dt_limit_ = 0.0;
};

}  // namespace focv::circuit
