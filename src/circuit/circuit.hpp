// Circuit container: nodes, devices, and MNA bookkeeping.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "circuit/device.hpp"

namespace focv::circuit {

/// A netlist: named nodes plus owned devices.
///
/// Usage:
///   Circuit ckt;
///   auto vdd = ckt.node("vdd");
///   ckt.add<VoltageSource>("V1", vdd, kGround, Waveform::dc(3.3));
///   ckt.add<Resistor>("R1", vdd, ckt.node("out"), 10e3);
class Circuit {
 public:
  Circuit() { node_names_.push_back("0"); }

  /// Get or create a named node. "0" and "gnd" refer to ground.
  NodeId node(const std::string& name);

  /// Create a fresh anonymous internal node.
  NodeId internal_node(const std::string& prefix = "int");

  /// Construct and register a device. Returns a stable reference.
  template <typename DeviceT, typename... Args>
  DeviceT& add(Args&&... args) {
    auto device = std::make_unique<DeviceT>(std::forward<Args>(args)...);
    DeviceT& ref = *device;
    devices_.push_back(std::move(device));
    return ref;
  }

  /// Number of nodes including ground.
  [[nodiscard]] int node_count() const { return static_cast<int>(node_names_.size()); }

  /// Total branch variables across devices (assigned by finalize()).
  [[nodiscard]] int branch_count() const { return branch_count_; }

  /// Size of the MNA unknown vector.
  [[nodiscard]] int unknown_count() const { return node_count() - 1 + branch_count(); }

  [[nodiscard]] const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  [[nodiscard]] const std::string& node_name(NodeId n) const;

  /// Look up an existing node id by name; throws if absent.
  [[nodiscard]] NodeId find_node(const std::string& name) const;

  /// Assign branch variable offsets. Called by analyses; idempotent.
  void finalize();

  /// Sum of quiescent currents reported by behavioural devices [A].
  [[nodiscard]] double total_quiescent_current() const;

 private:
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_index_;
  std::vector<std::unique_ptr<Device>> devices_;
  int branch_count_ = 0;
  int anon_counter_ = 0;
};

}  // namespace focv::circuit
