#include "circuit/circuit.hpp"

#include "common/require.hpp"

namespace focv::circuit {

NodeId Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = node_index_.find(name);
  if (it != node_index_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  node_index_.emplace(name, id);
  return id;
}

NodeId Circuit::internal_node(const std::string& prefix) {
  return node(prefix + "#" + std::to_string(anon_counter_++));
}

const std::string& Circuit::node_name(NodeId n) const {
  require(n >= 0 && n < node_count(), "Circuit::node_name: invalid node id");
  return node_names_[static_cast<std::size_t>(n)];
}

NodeId Circuit::find_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = node_index_.find(name);
  require(it != node_index_.end(), "Circuit::find_node: unknown node '" + name + "'");
  return it->second;
}

void Circuit::finalize() {
  int offset = 0;
  for (const auto& device : devices_) {
    device->set_branch_offset(offset);
    offset += device->branch_count();
  }
  branch_count_ = offset;
}

double Circuit::total_quiescent_current() const {
  double total = 0.0;
  for (const auto& device : devices_) total += device->quiescent_current();
  return total;
}

}  // namespace focv::circuit
