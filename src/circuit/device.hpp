// Device interface for the MNA (modified nodal analysis) engine.
//
// Every element contributes a linearised "companion model" around the
// current Newton iterate into the MNA matrix G and right-hand side. The
// unknown vector x holds all non-ground node voltages followed by branch
// currents of voltage-defined devices (sources, inductors, amplifier
// outputs).
#pragma once

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "circuit/matrix.hpp"

namespace focv::circuit {

/// Node handle. kGround (0) is the reference node and is not part of x.
using NodeId = int;
inline constexpr NodeId kGround = 0;

/// Integration scheme for reactive companion models.
enum class Integrator {
  kBackwardEuler,  ///< L-stable; used for the first step and after events
  kTrapezoidal,    ///< A-stable, 2nd order; the default for accepted running
};

/// View of the system being assembled, passed to Device::stamp().
///
/// Index convention: node n (n >= 1) maps to row/column n-1; branch
/// variable b maps to row/column (node_count-1) + b.
class StampContext {
 public:
  StampContext(Matrix& g, Vector& rhs, const Vector& x, int node_count)
      : g_(g), rhs_(rhs), x_(x), node_count_(node_count) {}

  double time = 0.0;          ///< current simulation time [s]
  double dt = 0.0;            ///< timestep [s]; 0 for DC analyses
  Integrator integrator = Integrator::kBackwardEuler;
  double gmin = 1e-12;        ///< shunt conductance for convergence aid
  double source_scale = 1.0;  ///< scale factor for source stepping (DC only)

  /// Voltage of a node at the current iterate (0 for ground).
  [[nodiscard]] double v(NodeId n) const { return n == kGround ? 0.0 : x_[static_cast<std::size_t>(n - 1)]; }

  /// Value of branch variable b at the current iterate.
  [[nodiscard]] double branch(int b) const {
    return x_[static_cast<std::size_t>(node_count_ - 1 + b)];
  }

  /// Stamp a conductance g between nodes a and b.
  void add_conductance(NodeId a, NodeId b, double g) {
    add_matrix(row(a), row(a), g);
    add_matrix(row(b), row(b), g);
    add_matrix(row(a), row(b), -g);
    add_matrix(row(b), row(a), -g);
  }

  /// Stamp a transconductance: current g*(v_cp - v_cn) flowing a -> b
  /// (out of node a, into node b).
  void add_transconductance(NodeId a, NodeId b, NodeId cp, NodeId cn, double g) {
    add_matrix(row(a), row(cp), g);
    add_matrix(row(a), row(cn), -g);
    add_matrix(row(b), row(cp), -g);
    add_matrix(row(b), row(cn), g);
  }

  /// Stamp a constant current `i` flowing INTO node n.
  void add_current_into(NodeId n, double i) {
    const int r = row(n);
    if (r >= 0) rhs_[static_cast<std::size_t>(r)] += i;
  }

  /// Raw matrix access by node (use branch_row for branch variables).
  void add_matrix_nodes(NodeId a, NodeId b, double value) { add_matrix(row(a), row(b), value); }

  /// Matrix row/column index of branch variable b.
  [[nodiscard]] int branch_row(int b) const { return node_count_ - 1 + b; }

  /// Raw matrix element addition by row/col index (-1 = ground, ignored).
  void add_matrix(int r, int c, double value) {
    if (r < 0 || c < 0) return;
    g_.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += value;
  }

  /// Raw RHS addition by row index (-1 = ground, ignored).
  void add_rhs(int r, double value) {
    if (r < 0) return;
    rhs_[static_cast<std::size_t>(r)] += value;
  }

  /// MNA row of a node (-1 for ground).
  [[nodiscard]] static int row(NodeId n) { return n - 1; }

 private:
  Matrix& g_;
  Vector& rhs_;
  const Vector& x_;
  int node_count_;
};

/// Converged solution snapshot handed to devices when a step is accepted.
class Solution {
 public:
  Solution(const Vector& x, int node_count, double time)
      : x_(x), node_count_(node_count), time_(time) {}

  [[nodiscard]] double v(NodeId n) const { return n == kGround ? 0.0 : x_[static_cast<std::size_t>(n - 1)]; }
  [[nodiscard]] double branch(int b) const {
    return x_[static_cast<std::size_t>(node_count_ - 1 + b)];
  }
  [[nodiscard]] double time() const { return time_; }

 private:
  const Vector& x_;
  int node_count_;
  double time_;
};

/// Base class for all circuit elements.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Number of extra MNA branch-current variables this device needs.
  [[nodiscard]] virtual int branch_count() const { return 0; }

  /// Analysis setup assigns the device its first branch variable index.
  virtual void set_branch_offset(int /*offset*/) {}

  /// Contribute the linearised model at the given iterate.
  virtual void stamp(StampContext& ctx) = 0;

  /// Called once before Newton iterations at each new candidate step.
  virtual void begin_step(double /*time*/, double /*dt*/) {}

  /// Commit internal state (capacitor voltage, switch state, ...) after a
  /// step converged and was accepted by the step controller.
  virtual void accept_step(const Solution& /*solution*/) {}

  /// Restore state to the last accepted step (step rejected).
  virtual void reject_step() {}

  /// Initialise internal state from a DC operating point before a
  /// transient run (capacitors take the node voltage, inductors the
  /// branch current).
  virtual void set_dc_state(const Solution& /*solution*/) {}

  /// Append future time points the integrator must not step across
  /// (source edges etc.).
  virtual void collect_breakpoints(double /*t_now*/, std::vector<double>& /*out*/) const {}

  /// Upper bound on the next timestep this device tolerates at the last
  /// accepted solution (e.g. near a comparator threshold).
  [[nodiscard]] virtual double max_timestep(const Solution& /*solution*/) const {
    return std::numeric_limits<double>::infinity();
  }

  /// Event localisation: inspect a converged candidate step and return
  /// the largest dt acceptable for the transition it contains (infinity
  /// when nothing abrupt happened). The integrator rejects and retries
  /// any step longer than this, so fast events (comparator flips) are
  /// pinned down to the returned resolution even when the surrounding
  /// waveforms would allow huge steps.
  [[nodiscard]] virtual double post_step_dt_limit(const Solution& /*before*/,
                                                  const Solution& /*after*/) const {
    return std::numeric_limits<double>::infinity();
  }

  /// Quiescent supply current this device draws that is modelled outside
  /// the netlist (behavioural blocks report it here so that system power
  /// budgets can include it) [A].
  [[nodiscard]] virtual double quiescent_current() const { return 0.0; }

  /// Card-format serialisation for netlist_writer; empty when the device
  /// has no card form (behavioural/custom devices). `names` resolves
  /// node ids to names.
  [[nodiscard]] virtual std::string netlist_card(
      const std::function<std::string(NodeId)>& /*names*/) const {
    return "";
  }

 private:
  std::string name_;
};

}  // namespace focv::circuit
