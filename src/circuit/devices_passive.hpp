// Linear passive elements: resistor, capacitor, inductor.
#pragma once

#include "circuit/device.hpp"

namespace focv::circuit {

/// Ideal linear resistor between nodes a and b.
class Resistor : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double resistance_ohm);

  void stamp(StampContext& ctx) override;

  /// Change the value between analyses (e.g. trim potentiometer sweeps).
  void set_resistance(double resistance_ohm);
  [[nodiscard]] double resistance() const { return resistance_; }

  /// Current a -> b at a solution [A].
  [[nodiscard]] double current(const Solution& s) const {
    return (s.v(a_) - s.v(b_)) / resistance_;
  }

  [[nodiscard]] std::string netlist_card(
      const std::function<std::string(NodeId)>& names) const override;

 private:
  NodeId a_, b_;
  double resistance_;
};

/// Linear capacitor with optional initial condition.
class Capacitor : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double capacitance_farad,
            double initial_voltage = 0.0);

  void stamp(StampContext& ctx) override;
  void begin_step(double time, double dt) override;
  void accept_step(const Solution& solution) override;
  void set_dc_state(const Solution& solution) override;

  [[nodiscard]] double capacitance() const { return capacitance_; }
  /// Committed capacitor voltage (a - b) from the last accepted step [V].
  [[nodiscard]] double voltage() const { return v_state_; }
  /// Reset the state (e.g. before re-running a transient).
  void set_initial_voltage(double v);

  [[nodiscard]] std::string netlist_card(
      const std::function<std::string(NodeId)>& names) const override;

 private:
  NodeId a_, b_;
  double capacitance_;
  double v_state_;       // committed voltage
  double i_state_ = 0.0;  // committed current (for trapezoidal)
  double dt_ = 0.0;
  // Companion values used in the current step (recomputed in stamp).
  double geq_ = 0.0;
  double ieq_ = 0.0;
};

/// Linear inductor (one MNA branch variable).
class Inductor : public Device {
 public:
  Inductor(std::string name, NodeId a, NodeId b, double inductance_henry,
           double initial_current = 0.0);

  [[nodiscard]] int branch_count() const override { return 1; }
  void set_branch_offset(int offset) override { branch_ = offset; }

  void stamp(StampContext& ctx) override;
  void begin_step(double time, double dt) override;
  void accept_step(const Solution& solution) override;
  void set_dc_state(const Solution& solution) override;

  /// Committed inductor current a -> b [A].
  [[nodiscard]] double current() const { return i_state_; }
  [[nodiscard]] int branch_index() const { return branch_; }

  [[nodiscard]] std::string netlist_card(
      const std::function<std::string(NodeId)>& names) const override;

 private:
  NodeId a_, b_;
  double inductance_;
  double i_state_;
  double v_state_ = 0.0;
  double dt_ = 0.0;
  int branch_ = -1;
};

}  // namespace focv::circuit
