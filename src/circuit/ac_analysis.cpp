#include "circuit/ac_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "circuit/devices_passive.hpp"
#include "circuit/devices_sources.hpp"
#include "common/require.hpp"

namespace focv::circuit {

// ----------------------------------------------------------------- AcSweep

void AcSweep::append(double frequency_hz, std::vector<std::complex<double>> values) {
  require(values.size() == names_.size(), "AcSweep::append: sample width mismatch");
  frequency_.push_back(frequency_hz);
  values_.push_back(std::move(values));
}

std::size_t AcSweep::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  throw PreconditionError("AcSweep: unknown signal '" + name + "'");
}

std::vector<std::complex<double>> AcSweep::response(const std::string& name) const {
  const std::size_t idx = index_of(name);
  std::vector<std::complex<double>> out;
  out.reserve(values_.size());
  for (const auto& row : values_) out.push_back(row[idx]);
  return out;
}

std::vector<double> AcSweep::magnitude_db(const std::string& name) const {
  std::vector<double> out;
  for (const auto& v : response(name)) {
    out.push_back(20.0 * std::log10(std::max(std::abs(v), 1e-30)));
  }
  return out;
}

std::vector<double> AcSweep::phase_deg(const std::string& name) const {
  std::vector<double> out;
  for (const auto& v : response(name)) {
    out.push_back(std::arg(v) * 180.0 / std::numbers::pi);
  }
  return out;
}

double AcSweep::corner_frequency(const std::string& name) const {
  const std::vector<double> mag = magnitude_db(name);
  if (mag.empty()) return -1.0;
  const double reference = mag.front();
  for (std::size_t i = 1; i < mag.size(); ++i) {
    if (mag[i] <= reference - 3.0) {
      // Interpolate in log frequency between i-1 and i.
      const double f0 = std::log10(frequency_[i - 1]);
      const double f1 = std::log10(frequency_[i]);
      const double m0 = mag[i - 1];
      const double m1 = mag[i];
      const double t = (reference - 3.0 - m0) / (m1 - m0);
      return std::pow(10.0, f0 + t * (f1 - f0));
    }
  }
  return -1.0;
}

// ------------------------------------------------------------- complex LU

namespace {

using Complex = std::complex<double>;

std::vector<Complex> complex_lu_solve(std::vector<Complex> a, std::vector<Complex> b,
                                      std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(a[k * n + k]);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(a[r * n + k]);
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < 1e-300) throw ConvergenceError("ac_analyze: singular complex matrix");
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[k * n + c], a[pivot_row * n + c]);
      std::swap(b[k], b[pivot_row]);
    }
    const Complex pivot = a[k * n + k];
    for (std::size_t r = k + 1; r < n; ++r) {
      const Complex factor = a[r * n + k] / pivot;
      if (factor == Complex{}) continue;
      a[r * n + k] = Complex{};
      for (std::size_t c = k + 1; c < n; ++c) a[r * n + c] -= factor * a[k * n + c];
      b[r] -= factor * b[k];
    }
  }
  std::vector<Complex> x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    Complex sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a[ri * n + c] * x[c];
    x[ri] = sum / a[ri * n + ri];
  }
  return x;
}

std::vector<std::string> build_signal_names(const Circuit& circuit) {
  std::vector<std::string> names;
  for (NodeId n = 1; n < circuit.node_count(); ++n) names.push_back(circuit.node_name(n));
  for (const auto& device : circuit.devices()) {
    const int count = device->branch_count();
    for (int k = 0; k < count; ++k) {
      std::string name = "I(" + device->name() + ")";
      if (count > 1) name += "#" + std::to_string(k);
      names.push_back(std::move(name));
    }
  }
  return names;
}

}  // namespace

AcSweep ac_analyze(Circuit& circuit, const AcOptions& options) {
  require(options.f_start > 0.0 && options.f_stop > options.f_start,
          "ac_analyze: bad frequency range");
  require(options.points_per_decade >= 1, "ac_analyze: points_per_decade must be >= 1");

  // 1. Operating point; devices linearise around it.
  const Vector x_op = dc_operating_point(circuit, options.dc, options.initial_guess);
  const Solution op(x_op, circuit.node_count(), 0.0);
  for (const auto& device : circuit.devices()) device->set_dc_state(op);

  const int n = circuit.unknown_count();
  const int node_vars = circuit.node_count() - 1;

  // 2. Real (conductance) part: stamp every non-reactive device at the
  //    operating point; the rhs it produces is discarded (small signal).
  //    Reactive elements and the stimulus are handled per-frequency.
  Matrix g_real(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  Vector scratch_rhs(static_cast<std::size_t>(n), 0.0);
  {
    StampContext ctx(g_real, scratch_rhs, x_op, circuit.node_count());
    ctx.dt = 0.0;
    ctx.gmin = options.dc.newton.gmin;
    for (const auto& device : circuit.devices()) {
      if (dynamic_cast<const Capacitor*>(device.get()) != nullptr) continue;
      if (dynamic_cast<const Inductor*>(device.get()) != nullptr) continue;
      device->begin_step(0.0, 0.0);
      device->stamp(ctx);
    }
    for (int r = 0; r < node_vars; ++r) {
      g_real.at(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) +=
          options.dc.newton.gmin;
    }
  }

  // 3. Locate the stimulus.
  const VoltageSource* v_stim = nullptr;
  const CurrentSource* i_stim = nullptr;
  for (const auto& device : circuit.devices()) {
    if (device->name() != options.stimulus) continue;
    v_stim = dynamic_cast<const VoltageSource*>(device.get());
    i_stim = dynamic_cast<const CurrentSource*>(device.get());
  }
  require(v_stim != nullptr || i_stim != nullptr,
          "ac_analyze: stimulus '" + options.stimulus + "' is not an independent source");

  AcSweep sweep(build_signal_names(circuit));

  const double decades = std::log10(options.f_stop / options.f_start);
  const int points = std::max(2, static_cast<int>(decades * options.points_per_decade) + 1);

  for (int p = 0; p < points; ++p) {
    const double f = options.f_start * std::pow(10.0, decades * p / (points - 1));
    const double w = 2.0 * std::numbers::pi * f;

    // Assemble A = G + jwC with reactive elements as admittances.
    std::vector<Complex> a(static_cast<std::size_t>(n) * n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        a[static_cast<std::size_t>(r) * n + c] =
            g_real.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
      }
    }
    // Reactive stamps. We reach into the same stamping conventions the
    // devices use (see devices_passive.cpp).
    Matrix c_cap(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    Vector unused(static_cast<std::size_t>(n), 0.0);
    int inductor_branch_base = 0;
    (void)inductor_branch_base;
    for (const auto& device : circuit.devices()) {
      if (const auto* cap = dynamic_cast<const Capacitor*>(device.get())) {
        // Admittance jwC between the capacitor's nodes: re-stamp through
        // a fresh context to reuse the node bookkeeping.
        // Capacitor doesn't expose its nodes, so stamp via a companion
        // trick: a backward-Euler stamp with dt = 1 yields G = C, which
        // is exactly the pattern we need scaled by jw.
        Matrix pattern(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
        Vector pattern_rhs(static_cast<std::size_t>(n), 0.0);
        StampContext cctx(pattern, pattern_rhs, x_op, circuit.node_count());
        cctx.dt = 1.0;
        cctx.integrator = Integrator::kBackwardEuler;
        auto* mutable_cap = const_cast<Capacitor*>(cap);
        mutable_cap->begin_step(0.0, 1.0);
        mutable_cap->stamp(cctx);
        for (int r = 0; r < n; ++r) {
          for (int c2 = 0; c2 < n; ++c2) {
            const double cij = pattern.at(static_cast<std::size_t>(r),
                                          static_cast<std::size_t>(c2));
            if (cij != 0.0) a[static_cast<std::size_t>(r) * n + c2] += Complex{0.0, w * cij};
          }
        }
      } else if (const auto* ind = dynamic_cast<const Inductor*>(device.get())) {
        // Branch equation: va - vb - jwL * i = 0. The DC stamp (dt = 0)
        // was skipped above, so stamp the full complex form here via the
        // BE companion pattern at dt = 1 (va - vb - L*i = -L*i_prev).
        Matrix pattern(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
        Vector pattern_rhs(static_cast<std::size_t>(n), 0.0);
        StampContext lctx(pattern, pattern_rhs, x_op, circuit.node_count());
        lctx.dt = 1.0;
        lctx.integrator = Integrator::kBackwardEuler;
        auto* mutable_ind = const_cast<Inductor*>(ind);
        mutable_ind->begin_step(0.0, 1.0);
        mutable_ind->stamp(lctx);
        const int br = circuit.node_count() - 1 + ind->branch_index();
        for (int r = 0; r < n; ++r) {
          for (int c2 = 0; c2 < n; ++c2) {
            const double pij = pattern.at(static_cast<std::size_t>(r),
                                          static_cast<std::size_t>(c2));
            if (pij == 0.0) continue;
            if (r == br && c2 == br) {
              // -L on the branch diagonal becomes -jwL.
              a[static_cast<std::size_t>(r) * n + c2] += Complex{0.0, w * pij};
            } else {
              a[static_cast<std::size_t>(r) * n + c2] += Complex{pij, 0.0};
            }
          }
        }
      }
    }

    // Stimulus: unit magnitude.
    std::vector<Complex> b(static_cast<std::size_t>(n));
    if (v_stim != nullptr) {
      b[static_cast<std::size_t>(circuit.node_count() - 1 + v_stim->branch_index())] =
          Complex{1.0, 0.0};
    }
    if (i_stim != nullptr) {
      // CurrentSource lacks node accessors; inject through its transient
      // stamp pattern by differencing two stamped rhs vectors.
      Matrix dummy(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
      Vector rhs1(static_cast<std::size_t>(n), 0.0);
      StampContext ictx(dummy, rhs1, x_op, circuit.node_count());
      ictx.source_scale = 1.0;
      ictx.time = 0.0;
      const_cast<CurrentSource*>(i_stim)->stamp(ictx);
      // rhs1 now holds -I0 at node a and +I0 at node b (scaled by the
      // waveform's DC value); normalise to a unit injection.
      double scale = 0.0;
      for (const double v : rhs1) scale = std::max(scale, std::abs(v));
      require(scale > 0.0, "ac_analyze: current-source stimulus has zero DC value; "
                           "give it a nonzero waveform to define the injection nodes");
      for (int r = 0; r < n; ++r) b[static_cast<std::size_t>(r)] = rhs1[static_cast<std::size_t>(r)] / scale;
    }

    sweep.append(f, complex_lu_solve(std::move(a), std::move(b), static_cast<std::size_t>(n)));
  }
  return sweep;
}

}  // namespace focv::circuit
