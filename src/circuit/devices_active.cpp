#include "circuit/devices_active.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/require.hpp"

namespace focv::circuit {

namespace {

/// exp with linear extension above `cap` to avoid overflow during the
/// early, far-from-solution Newton iterations.
double safe_exp(double x, double cap = 80.0) {
  if (x <= cap) return std::exp(x);
  return std::exp(cap) * (1.0 + (x - cap));
}

double safe_exp_deriv(double x, double cap = 80.0) {
  if (x <= cap) return std::exp(x);
  return std::exp(cap);
}

double logistic(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-std::min(x, 500.0));
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(std::max(x, -500.0));
  return e / (1.0 + e);
}

}  // namespace

// ---------------------------------------------------------------- Diode

Diode::Diode(std::string name, NodeId anode, NodeId cathode, Params params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode), params_(params) {
  require(params_.saturation_current > 0.0, "Diode: Is must be > 0");
  require(params_.emission_coefficient > 0.0, "Diode: n must be > 0");
  require(params_.thermal_voltage > 0.0, "Diode: Vt must be > 0");
  const double nvt = params_.emission_coefficient * params_.thermal_voltage;
  v_critical_ = nvt * std::log(nvt / (std::sqrt(2.0) * params_.saturation_current));
}

double Diode::current_at(double v) const {
  const double nvt = params_.emission_coefficient * params_.thermal_voltage;
  return params_.saturation_current * (safe_exp(v / nvt) - 1.0) + params_.parallel_gmin * v;
}

double Diode::limit_junction_voltage(double v_new) const {
  // SPICE pnjlim: prevent the exponential from exploding between
  // iterations while preserving the converged solution.
  const double nvt = params_.emission_coefficient * params_.thermal_voltage;
  const double v_old = v_last_iterate_;
  if (v_new <= v_critical_ || std::abs(v_new - v_old) <= 2.0 * nvt) return v_new;
  if (v_old > 0.0) {
    const double arg = 1.0 + (v_new - v_old) / nvt;
    return (arg > 0.0) ? v_old + nvt * std::log(arg) : v_critical_;
  }
  return nvt * std::log(std::max(v_new, nvt) / nvt);
}

void Diode::begin_step(double /*time*/, double /*dt*/) {
  v_last_iterate_ = v_accepted_;
  first_stamp_in_step_ = true;
}

void Diode::stamp(StampContext& ctx) {
  const double nvt = params_.emission_coefficient * params_.thermal_voltage;
  double vd = ctx.v(anode_) - ctx.v(cathode_);
  if (!first_stamp_in_step_ || vd != 0.0) {
    vd = limit_junction_voltage(vd);
  }
  first_stamp_in_step_ = false;
  v_last_iterate_ = vd;

  const double x = vd / nvt;
  const double i = params_.saturation_current * (safe_exp(x) - 1.0) + params_.parallel_gmin * vd;
  const double g = params_.saturation_current * safe_exp_deriv(x) / nvt + params_.parallel_gmin +
                   ctx.gmin;
  // Norton companion: i(v) ~= g*v + (i_k - g*v_k).
  ctx.add_conductance(anode_, cathode_, g);
  const double ieq = i - g * vd;  // constant current anode -> cathode
  ctx.add_current_into(anode_, -ieq);
  ctx.add_current_into(cathode_, ieq);
}

void Diode::accept_step(const Solution& solution) {
  v_accepted_ = solution.v(anode_) - solution.v(cathode_);
}

// -------------------------------------------------------------- VSwitch

VSwitch::VSwitch(std::string name, NodeId a, NodeId b, NodeId control_p, NodeId control_n,
                 Params params)
    : Device(std::move(name)), a_(a), b_(b), cp_(control_p), cn_(control_n), params_(params) {
  require(params_.on_resistance > 0.0, "VSwitch: on_resistance must be > 0");
  require(params_.off_resistance > params_.on_resistance,
          "VSwitch: off_resistance must exceed on_resistance");
  require(params_.transition_width > 0.0, "VSwitch: transition_width must be > 0");
  log_g_on_ = std::log(1.0 / params_.on_resistance);
  log_g_off_ = std::log(1.0 / params_.off_resistance);
}

double VSwitch::conductance_at(double vc) const {
  double u = (vc - (params_.threshold - 0.5 * params_.transition_width)) /
             params_.transition_width;
  u = std::clamp(u, 0.0, 1.0);
  double s = u * u * (3.0 - 2.0 * u);
  if (!params_.active_high) s = 1.0 - s;
  return std::exp(log_g_off_ + (log_g_on_ - log_g_off_) * s);
}

void VSwitch::begin_step(double /*time*/, double /*dt*/) { vc_last_iterate_ = vc_accepted_; }

void VSwitch::accept_step(const Solution& solution) {
  vc_accepted_ = solution.v(cp_) - solution.v(cn_);
  vc_last_iterate_ = vc_accepted_;
}

void VSwitch::stamp(StampContext& ctx) {
  double vc = ctx.v(cp_) - ctx.v(cn_);
  // Limit the per-iteration movement of the control voltage through the
  // transition band so Newton walks the conductance ramp instead of
  // leaping across it. Outside the band the limit is irrelevant (the
  // conductance saturates), so only engage near the threshold.
  const double band = 2.0 * params_.transition_width;
  const double dist_new = vc - params_.threshold;
  const double dist_old = vc_last_iterate_ - params_.threshold;
  const double max_move = 0.25 * params_.transition_width;
  if (dist_new * dist_old < 0.0 && std::abs(dist_old) > 0.5 * params_.transition_width) {
    // The iterate leapt across the transition: land at the band centre,
    // where the conductance slope (and hence the Jacobian feedback) is
    // maximal, and let subsequent iterations settle inside the band.
    vc = params_.threshold;
  } else if (std::abs(dist_new) < band || std::abs(dist_old) < band) {
    if (vc - vc_last_iterate_ > max_move) {
      vc = vc_last_iterate_ + max_move;
    } else if (vc_last_iterate_ - vc > max_move) {
      vc = vc_last_iterate_ - max_move;
    }
  }
  vc_last_iterate_ = vc;
  const double vab = ctx.v(a_) - ctx.v(b_);

  double u = (vc - (params_.threshold - 0.5 * params_.transition_width)) /
             params_.transition_width;
  double dsdu = 0.0;
  if (u > 0.0 && u < 1.0) dsdu = 6.0 * u * (1.0 - u);
  u = std::clamp(u, 0.0, 1.0);
  double s = u * u * (3.0 - 2.0 * u);
  double sign = 1.0;
  if (!params_.active_high) {
    s = 1.0 - s;
    sign = -1.0;
  }
  const double g = std::exp(log_g_off_ + (log_g_on_ - log_g_off_) * s);
  const double dgdvc =
      sign * g * (log_g_on_ - log_g_off_) * dsdu / params_.transition_width;

  // i = g(vc) * vab, linearised at (vab, vc).
  ctx.add_conductance(a_, b_, g);
  const double beta = dgdvc * vab;
  ctx.add_transconductance(a_, b_, cp_, cn_, beta);
  ctx.add_current_into(a_, beta * vc);
  ctx.add_current_into(b_, -beta * vc);
}

double VSwitch::max_timestep(const Solution& solution) const {
  if (transition_dt_limit_ <= 0.0) return std::numeric_limits<double>::infinity();
  const double vc = solution.v(cp_) - solution.v(cn_);
  const double margin = params_.transition_width;
  if (std::abs(vc - params_.threshold) < margin) return transition_dt_limit_;
  return std::numeric_limits<double>::infinity();
}

// --------------------------------------------------------------- Mosfet

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source, Params params)
    : Device(std::move(name)), d_(drain), g_(gate), s_(source), params_(params) {
  require(params_.transconductance > 0.0, "Mosfet: transconductance must be > 0");
  require(params_.threshold_voltage > 0.0, "Mosfet: threshold_voltage must be > 0");
  require(params_.lambda >= 0.0, "Mosfet: lambda must be >= 0");
}

double Mosfet::drain_current(double vgs, double vds) const {
  // Computed in the NMOS frame with vds >= 0.
  double sign = 1.0;
  if (!params_.is_nmos) {
    vgs = -vgs;
    vds = -vds;
  }
  if (vds < 0.0) {
    // Symmetric device: swap drain/source.
    vgs = vgs - vds;  // vgd
    vds = -vds;
    sign = -sign;
  }
  const double vov = vgs - params_.threshold_voltage;
  if (vov <= 0.0) return 0.0;
  const double k = params_.transconductance;
  double id = 0.0;
  if (vds < vov) {
    id = k * (vov - 0.5 * vds) * vds * (1.0 + params_.lambda * vds);
  } else {
    id = 0.5 * k * vov * vov * (1.0 + params_.lambda * vds);
  }
  if (!params_.is_nmos) sign = -sign;
  return sign * id;
}

void Mosfet::stamp(StampContext& ctx) {
  // Work in a frame where the device looks like an NMOS with vds >= 0.
  const double type_sign = params_.is_nmos ? 1.0 : -1.0;
  double vd = type_sign * ctx.v(d_);
  double vg = type_sign * ctx.v(g_);
  double vs = type_sign * ctx.v(s_);
  NodeId eff_d = d_, eff_s = s_;
  if (vd < vs) {
    std::swap(vd, vs);
    std::swap(eff_d, eff_s);
  }
  const double vgs = vg - vs;
  const double vds = vd - vs;
  const double vov = vgs - params_.threshold_voltage;
  const double k = params_.transconductance;

  double id = 0.0, gm = 0.0, gds = 0.0;
  if (vov <= 0.0) {
    id = 0.0;
    gm = 0.0;
    gds = 0.0;
  } else if (vds < vov) {
    const double clm = 1.0 + params_.lambda * vds;
    id = k * (vov - 0.5 * vds) * vds * clm;
    gm = k * vds * clm;
    gds = k * (vov - vds) * clm + k * (vov - 0.5 * vds) * vds * params_.lambda;
  } else {
    const double clm = 1.0 + params_.lambda * vds;
    id = 0.5 * k * vov * vov * clm;
    gm = k * vov * clm;
    gds = 0.5 * k * vov * vov * params_.lambda;
  }
  gds += ctx.gmin;

  // In the effective frame, current id flows eff_d -> eff_s. The frame
  // transform (type_sign) cancels out of the conductance stamps and
  // applies to the constant term through the node voltages already in
  // the effective frame, so stamp in effective nodes directly.
  const double c = id - gm * vgs - gds * vds;  // constant part, effective frame
  // KCL row eff_d (current leaving): +id.
  ctx.add_matrix_nodes(eff_d, eff_d, gds);
  ctx.add_matrix_nodes(eff_d, g_, gm * 1.0);
  ctx.add_matrix_nodes(eff_d, eff_s, -(gm + gds));
  ctx.add_matrix_nodes(eff_s, eff_d, -gds);
  ctx.add_matrix_nodes(eff_s, g_, -gm);
  ctx.add_matrix_nodes(eff_s, eff_s, gm + gds);
  // Constant current c (effective frame) leaves eff_d; map back with sign.
  ctx.add_current_into(eff_d, -type_sign * c);
  ctx.add_current_into(eff_s, type_sign * c);
}

// ------------------------------------------------------------ Vccs/Vcvs

Vccs::Vccs(std::string name, NodeId a, NodeId b, NodeId cp, NodeId cn, double transconductance)
    : Device(std::move(name)), a_(a), b_(b), cp_(cp), cn_(cn), gm_(transconductance) {}

void Vccs::stamp(StampContext& ctx) { ctx.add_transconductance(a_, b_, cp_, cn_, gm_); }

Vcvs::Vcvs(std::string name, NodeId a, NodeId b, NodeId cp, NodeId cn, double gain)
    : Device(std::move(name)), a_(a), b_(b), cp_(cp), cn_(cn), gain_(gain) {}

void Vcvs::stamp(StampContext& ctx) {
  const int br = ctx.branch_row(branch_);
  ctx.add_matrix(StampContext::row(a_), br, 1.0);
  ctx.add_matrix(StampContext::row(b_), br, -1.0);
  ctx.add_matrix(br, StampContext::row(a_), 1.0);
  ctx.add_matrix(br, StampContext::row(b_), -1.0);
  ctx.add_matrix(br, StampContext::row(cp_), -gain_);
  ctx.add_matrix(br, StampContext::row(cn_), gain_);
}

// ------------------------------------------------------------------ Amp

Amp::Amp(std::string name, NodeId in_p, NodeId in_n, NodeId out, Params params)
    : Device(std::move(name)), inp_(in_p), inn_(in_n), out_(out), params_(params) {
  require(params_.output_resistance > 0.0, "Amp: output_resistance must be > 0");
  require(params_.gain > 0.0, "Amp: gain must be > 0");
}

Amp::Amp(std::string name, NodeId in_p, NodeId in_n, NodeId out, NodeId vdd, NodeId vss,
         Params params)
    : Amp(std::move(name), in_p, in_n, out, params) {
  vdd_ = vdd;
  vss_ = vss;
  has_supplies_ = true;
}

Amp::TransferEval Amp::eval_transfer(double v_diff, double rail_lo, double rail_hi) const {
  TransferEval r;
  const double lo = rail_lo + params_.rail_headroom;
  const double hi = rail_hi - params_.rail_headroom;
  const double span = std::max(hi - lo, 1e-9);
  const double vd = v_diff + params_.offset_voltage;

  if (params_.mode == Mode::kComparator) {
    // Slope at the threshold equals `gain`.
    const double k = 4.0 * params_.gain / span;
    const double s = logistic(k * vd);
    r.value = lo + span * s;
    r.d_vdiff = span * s * (1.0 - s) * k;  // == 4*gain*s*(1-s)
    r.d_lo = 1.0 - s;
    r.d_hi = s;
    return r;
  }

  // Op-amp / buffer: (closed-loop) linear transfer with soft clamping.
  const double mid = 0.5 * (lo + hi);
  const double u = (params_.mode == Mode::kBuffer) ? vd : mid + params_.gain * vd;
  const double u_gain = (params_.mode == Mode::kBuffer) ? 1.0 : params_.gain;
  const double w = std::max(params_.clamp_softness, 1e-6);
  // smax(u, lo), then smin(., hi).
  const double du_dlo = (params_.mode == Mode::kBuffer) ? 0.0 : 0.5;  // via mid
  const double du_dhi = du_dlo;
  const double root1 = std::sqrt((u - lo) * (u - lo) + w * w);
  const double x = 0.5 * (u + lo + root1);
  const double dx_du = 0.5 * (1.0 + (u - lo) / root1);
  const double dx_dlo = 0.5 * (1.0 - (u - lo) / root1);
  const double root2 = std::sqrt((x - hi) * (x - hi) + w * w);
  const double y = 0.5 * (x + hi - root2);
  const double dy_dx = 0.5 * (1.0 - (x - hi) / root2);
  const double dy_dhi = 0.5 * (1.0 + (x - hi) / root2);

  r.value = y;
  r.d_vdiff = dy_dx * dx_du * u_gain;
  r.d_lo = dy_dx * (dx_dlo + dx_du * du_dlo);
  r.d_hi = dy_dhi + dy_dx * dx_du * du_dhi;
  return r;
}

double Amp::transfer(double v_diff, double rail_lo, double rail_hi) const {
  return eval_transfer(v_diff, rail_lo, rail_hi).value;
}

void Amp::stamp(StampContext& ctx) {
  const double rail_lo = has_supplies_ ? ctx.v(vss_) : params_.rail_low;
  const double rail_hi = has_supplies_ ? ctx.v(vdd_) : params_.rail_high;
  const bool single_ended = (params_.mode == Mode::kBuffer);
  const double vd_k = single_ended ? ctx.v(inp_) : ctx.v(inp_) - ctx.v(inn_);
  const TransferEval f = eval_transfer(vd_k, rail_lo, rail_hi);

  const int br = ctx.branch_row(branch_);
  // Branch current i flows out of the amp into node `out`.
  ctx.add_matrix(StampContext::row(out_), br, -1.0);
  if (has_supplies_) {
    // Push-pull output stage: sourced current comes from vdd, sunk
    // current returns to vss. Split by the output position within the
    // rails (treated as constant within one Newton iterate).
    const double span = std::max(rail_hi - rail_lo, 1e-9);
    const double s = std::clamp((f.value - rail_lo) / span, 0.0, 1.0);
    ctx.add_matrix(StampContext::row(vdd_), br, s);
    ctx.add_matrix(StampContext::row(vss_), br, 1.0 - s);
    // Quiescent supply draw vdd -> vss.
    ctx.add_current_into(vdd_, -params_.quiescent_current);
    ctx.add_current_into(vss_, params_.quiescent_current);
  }
  // Branch equation: v(out) + rout*i - f(vd, lo, hi) = 0, linearised.
  ctx.add_matrix(br, StampContext::row(out_), 1.0);
  ctx.add_matrix(br, br, params_.output_resistance);
  ctx.add_matrix(br, StampContext::row(inp_), -f.d_vdiff);
  if (!single_ended) ctx.add_matrix(br, StampContext::row(inn_), f.d_vdiff);
  double rhs = f.value - f.d_vdiff * vd_k;
  if (has_supplies_) {
    ctx.add_matrix(br, StampContext::row(vss_), -f.d_lo);
    ctx.add_matrix(br, StampContext::row(vdd_), -f.d_hi);
    rhs -= f.d_lo * rail_lo + f.d_hi * rail_hi;
  }
  ctx.add_rhs(br, rhs);
  // Keep the high-impedance inputs non-floating even without bias current.
  if (params_.input_bias_current != 0.0) {
    ctx.add_current_into(inp_, -params_.input_bias_current);
    ctx.add_current_into(inn_, -params_.input_bias_current);
  }
}

double Amp::post_step_dt_limit(const Solution& before, const Solution& after) const {
  if (transition_dt_limit_ <= 0.0) return std::numeric_limits<double>::infinity();
  const double rail_lo = has_supplies_ ? after.v(vss_) : params_.rail_low;
  const double rail_hi = has_supplies_ ? after.v(vdd_) : params_.rail_high;
  const double span = std::max(rail_hi - rail_lo, 1e-9);
  const double swing = std::abs(after.v(out_) - before.v(out_));
  if (swing > 0.1 * span) return transition_dt_limit_;
  return std::numeric_limits<double>::infinity();
}

double Amp::max_timestep(const Solution& solution) const {
  if (transition_dt_limit_ <= 0.0 || params_.mode != Mode::kComparator) {
    return std::numeric_limits<double>::infinity();
  }
  const double rail_lo = has_supplies_ ? solution.v(vss_) : params_.rail_low;
  const double rail_hi = has_supplies_ ? solution.v(vdd_) : params_.rail_high;
  const double span = std::max(rail_hi - rail_lo, 1e-9);
  const double k = 4.0 * params_.gain / span;
  const double vd = solution.v(inp_) - solution.v(inn_) + params_.offset_voltage;
  if (std::abs(vd) < 20.0 / k) return transition_dt_limit_;
  return std::numeric_limits<double>::infinity();
}

namespace {
template <typename... Args>
std::string card(const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof buf, fmt, args...);
  return buf;
}
}  // namespace

std::string Diode::netlist_card(const std::function<std::string(NodeId)>& names) const {
  return card("%s %s %s IS=%.9g N=%.9g", name().c_str(), names(anode_).c_str(),
              names(cathode_).c_str(), params_.saturation_current,
              params_.emission_coefficient);
}

std::string VSwitch::netlist_card(const std::function<std::string(NodeId)>& names) const {
  if (!params_.active_high) return "";  // no card form for inverted sense
  return card("%s %s %s %s %s RON=%.9g ROFF=%.9g VT=%.9g VW=%.9g", name().c_str(),
              names(a_).c_str(), names(b_).c_str(), names(cp_).c_str(), names(cn_).c_str(),
              params_.on_resistance, params_.off_resistance, params_.threshold,
              params_.transition_width);
}

std::string Mosfet::netlist_card(const std::function<std::string(NodeId)>& names) const {
  return card("%s %s %s %s %s VTO=%.9g KP=%.9g LAMBDA=%.9g", name().c_str(),
              names(d_).c_str(), names(g_).c_str(), names(s_).c_str(),
              params_.is_nmos ? "NMOS" : "PMOS", params_.threshold_voltage,
              params_.transconductance, params_.lambda);
}

std::string Vccs::netlist_card(const std::function<std::string(NodeId)>& names) const {
  return card("%s %s %s %s %s %.9g", name().c_str(), names(a_).c_str(), names(b_).c_str(),
              names(cp_).c_str(), names(cn_).c_str(), gm_);
}

std::string Vcvs::netlist_card(const std::function<std::string(NodeId)>& names) const {
  return card("%s %s %s %s %s %.9g", name().c_str(), names(a_).c_str(), names(b_).c_str(),
              names(cp_).c_str(), names(cn_).c_str(), gain_);
}

std::string Amp::netlist_card(const std::function<std::string(NodeId)>& names) const {
  if (!has_supplies_) return "";  // the card format requires supply pins
  const char* mode = (params_.mode == Mode::kComparator)
                         ? "COMP"
                         : (params_.mode == Mode::kBuffer ? "BUF" : "OPAMP");
  return card("%s %s %s %s %s %s %s GAIN=%.9g ROUT=%.9g VOFF=%.9g IQ=%.9g", name().c_str(),
              names(inp_).c_str(), names(inn_).c_str(), names(out_).c_str(),
              names(vdd_).c_str(), names(vss_).c_str(), mode, params_.gain,
              params_.output_resistance, params_.offset_voltage, params_.quiescent_current);
}

}  // namespace focv::circuit
