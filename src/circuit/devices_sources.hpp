// Independent sources.
#pragma once

#include <functional>

#include "circuit/device.hpp"
#include "circuit/waveform.hpp"

namespace focv::circuit {

/// Independent voltage source (one branch variable).
///
/// Branch current convention matches SPICE: positive branch current
/// flows INTO the + terminal (node a), through the source, out of b —
/// so a source delivering power reports a negative branch current.
class VoltageSource : public Device {
 public:
  VoltageSource(std::string name, NodeId a, NodeId b, Waveform waveform);

  [[nodiscard]] int branch_count() const override { return 1; }
  void set_branch_offset(int offset) override { branch_ = offset; }
  void stamp(StampContext& ctx) override;
  void collect_breakpoints(double t_now, std::vector<double>& out) const override;

  [[nodiscard]] int branch_index() const { return branch_; }
  void set_waveform(Waveform waveform) { waveform_ = std::move(waveform); }
  [[nodiscard]] const Waveform& waveform() const { return waveform_; }

  /// Source current at a solution [A] (positive into + terminal).
  [[nodiscard]] double current(const Solution& s) const { return s.branch(branch_); }

  [[nodiscard]] std::string netlist_card(
      const std::function<std::string(NodeId)>& names) const override;

 private:
  NodeId a_, b_;
  Waveform waveform_;
  int branch_ = -1;
};

/// Independent current source: `value` amps flow from node a through the
/// source to node b (so the source injects current into node b).
class CurrentSource : public Device {
 public:
  CurrentSource(std::string name, NodeId a, NodeId b, Waveform waveform);

  void stamp(StampContext& ctx) override;
  void collect_breakpoints(double t_now, std::vector<double>& out) const override;
  void set_waveform(Waveform waveform) { waveform_ = std::move(waveform); }

  [[nodiscard]] std::string netlist_card(
      const std::function<std::string(NodeId)>& names) const override;

 private:
  NodeId a_, b_;
  Waveform waveform_;
};

/// Two-terminal nonlinear current source defined by a user function.
///
/// The function maps the terminal voltage v = v(a) - v(b) to the current
/// the element drives out of its + terminal (a) into the external
/// circuit, and its derivative: f(v) -> {I, dI/dv}. This is the adapter
/// point for the PV cell models (a PV cell is exactly such an element).
class NonlinearCurrentSource : public Device {
 public:
  /// Evaluation result: current out of the + terminal and its slope.
  struct Eval {
    double current = 0.0;
    double didv = 0.0;
  };
  using EvalFn = std::function<Eval(double v)>;

  NonlinearCurrentSource(std::string name, NodeId a, NodeId b, EvalFn fn);

  void stamp(StampContext& ctx) override;

  /// Swap the element law between analyses (e.g. illuminance change).
  void set_function(EvalFn fn);

 private:
  NodeId a_, b_;
  EvalFn fn_;
};

}  // namespace focv::circuit
