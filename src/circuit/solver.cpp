#include "circuit/solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/require.hpp"
#include "obs/obs.hpp"

namespace focv::circuit {

namespace {

/// Telemetry for one finished Newton solve: iteration-count and final
/// voltage-update (residual proxy) histograms plus outcome counters.
void record_newton_solve(const NewtonResult& result, double final_max_dv) {
  static const obs::HistogramId iterations_id =
      obs::metrics().histogram("circuit.newton.iterations", {1.0, 256.0, 32});
  static const obs::HistogramId residual_id =
      obs::metrics().histogram("circuit.newton.residual_dv", {1e-12, 1.0, 48});
  static const obs::CounterId solves_id = obs::metrics().counter("circuit.newton.solves");
  static const obs::CounterId failures_id =
      obs::metrics().counter("circuit.newton.nonconverged");
  obs::metrics().observe(iterations_id, static_cast<double>(result.iterations));
  obs::metrics().observe(residual_id, final_max_dv);
  obs::metrics().add(solves_id);
  if (!result.converged) obs::metrics().add(failures_id);
}

}  // namespace

NewtonResult newton_solve(Circuit& circuit, Vector& x, double time, double dt,
                          Integrator integrator, const NewtonOptions& options,
                          double source_scale) {
  const bool obs_on = obs::enabled();
  const int n = circuit.unknown_count();
  require(static_cast<int>(x.size()) == n, "newton_solve: iterate size mismatch");
  const int node_vars = circuit.node_count() - 1;

  Matrix g(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  Vector rhs(static_cast<std::size_t>(n), 0.0);

  NewtonResult result;
  double last_max_dv = 0.0;  // final voltage update, reported to telemetry
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    g.clear();
    std::fill(rhs.begin(), rhs.end(), 0.0);

    StampContext ctx(g, rhs, x, circuit.node_count());
    ctx.time = time;
    ctx.dt = dt;
    ctx.integrator = integrator;
    ctx.gmin = options.gmin;
    ctx.source_scale = source_scale;
    for (const auto& device : circuit.devices()) device->stamp(ctx);
    // Global gmin from every node to ground keeps high-impedance nodes
    // (comparator inputs, open switches) well-conditioned.
    for (int r = 0; r < node_vars; ++r) {
      g.at(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) += options.gmin;
    }

    Vector x_new;
    try {
      x_new = lu_solve(g, rhs);
    } catch (const ConvergenceError&) {
      if (obs_on) record_newton_solve(result, last_max_dv);
      return result;  // singular: not converged
    }

    double max_dv = 0.0;
    double max_di = 0.0;
    bool within_tol = true;
    for (int k = 0; k < n; ++k) {
      const double delta = x_new[static_cast<std::size_t>(k)] - x[static_cast<std::size_t>(k)];
      if (!std::isfinite(delta)) {
        if (obs_on) record_newton_solve(result, last_max_dv);
        return result;
      }
      const double magnitude = std::abs(x[static_cast<std::size_t>(k)]);
      if (k < node_vars) {
        max_dv = std::max(max_dv, std::abs(delta));
        if (std::abs(delta) > options.v_abs_tol + options.rel_tol * magnitude) within_tol = false;
      } else {
        max_di = std::max(max_di, std::abs(delta));
        if (std::abs(delta) > options.i_abs_tol + options.rel_tol * magnitude) within_tol = false;
      }
    }

    last_max_dv = max_dv;

    static const bool debug = std::getenv("FOCV_NEWTON_DEBUG") != nullptr;
    if (debug) {
      std::fprintf(stderr, "  newton iter %d: max_dv=%.4g max_di=%.4g x=[", iter, max_dv, max_di);
      for (int k = 0; k < std::min(n, 8); ++k) std::fprintf(stderr, "%.4g ", x_new[static_cast<std::size_t>(k)]);
      std::fprintf(stderr, "]\n");
    }

    if (max_dv > options.max_voltage_step) {
      // Damped update: move a bounded distance towards the Newton point.
      const double scale = options.max_voltage_step / max_dv;
      for (int k = 0; k < n; ++k) {
        x[static_cast<std::size_t>(k)] +=
            scale * (x_new[static_cast<std::size_t>(k)] - x[static_cast<std::size_t>(k)]);
      }
      continue;
    }

    x = std::move(x_new);
    if (within_tol) {
      result.converged = true;
      if (obs_on) record_newton_solve(result, last_max_dv);
      return result;
    }
  }
  if (obs_on) record_newton_solve(result, last_max_dv);
  return result;
}

}  // namespace focv::circuit
