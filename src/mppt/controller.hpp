// Common interface of all MPPT controllers (the paper's technique and
// the state-of-the-art baselines it compares against).
#pragma once

#include <limits>
#include <memory>
#include <string>

namespace focv::mppt {

/// Everything a controller may sense in one simulation step. Which
/// fields a controller reads defines what hardware it needs (pilot cell,
/// photodiode, microcontroller ADC, ...) — see each controller's note.
struct SensedInputs {
  double time = 0.0;              ///< [s]
  double dt = 1.0;                ///< step length [s]
  double voc = 0.0;               ///< main-cell Voc, valid only while sampling [V]
  double pilot_voc = 0.0;         ///< pilot-cell Voc (continuously available) [V]
  double illuminance_estimate = 0.0;  ///< photodetector reading [lux]
  double prev_power = 0.0;        ///< power harvested during the previous step [W]
  double prev_voltage = 0.0;      ///< PV voltage commanded in the previous step [V]
  double store_voltage = 0.0;     ///< energy-store voltage [V]
};

/// One step's command.
struct ControlOutput {
  double pv_voltage = 0.0;          ///< commanded PV operating voltage [V]
  double disconnect_fraction = 0.0; ///< fraction of dt the PV is disconnected (sampling)
};

/// How a controller's command evolves between simulation steps — the
/// contract the event-driven macro-stepper (focv::sched) relies on to
/// skip dead time. Conservative by default: a law the engine cannot
/// classify is stepped tick by tick.
enum class MacroLaw {
  /// Mutable state updated every step (P&O, incremental conductance):
  /// only the fixed reference path is exact.
  kPerStepOnly,
  /// step() is a pure function of the sensed inputs (fixed voltage,
  /// pilot cell, photodetector): the engine may evaluate it at arbitrary
  /// quadrature points.
  kMemoryless,
  /// Sample-and-hold: the command is piecewise-deterministic between
  /// sample events, exposed via next_command_event()/command_at().
  kSampleHold,
  /// The command follows the energy-store voltage (direct connection):
  /// the engine bounds the store drift per macro interval instead.
  kTracksStore,
};

/// Abstract MPPT controller.
///
/// Lifecycle contract (relied on by the sweep runtime in focv::runtime):
///  - `reset()` restores the power-on state: after it, the controller
///    behaves as if freshly constructed with the same parameters.
///  - `clone()` returns a deep, independent copy carrying both the
///    parameters AND the current mutable tracking state. Stepping a
///    clone never affects the original (and vice versa), so one
///    controller instance can serve as an immutable *prototype* that is
///    cloned once per simulation run and stepped concurrently from many
///    threads. A `clone()` followed by `reset()` is therefore the
///    canonical way to stamp out a fresh controller for an isolated run.
class MpptController {
 public:
  virtual ~MpptController() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy (parameters + mutable state). See the class contract.
  [[nodiscard]] virtual std::unique_ptr<MpptController> clone() const = 0;

  /// Advance one step and command the operating point.
  [[nodiscard]] virtual ControlOutput step(const SensedInputs& inputs) = 0;

  /// Average electrical overhead of the tracking circuitry [W]. Drawn
  /// from the harvested energy by the node simulator.
  [[nodiscard]] virtual double overhead_power() const = 0;

  /// Lowest illuminance at which the controller's circuitry can operate
  /// (cold-start and sustain itself) [lux]. The node simulator freezes
  /// the controller below this level.
  [[nodiscard]] virtual double minimum_operating_lux() const { return 0.0; }

  /// Classification used by the event-driven macro-stepper. See MacroLaw.
  [[nodiscard]] virtual MacroLaw macro_law() const { return MacroLaw::kPerStepOnly; }

  /// kSampleHold only: earliest time >= t at which the commanded voltage
  /// changes discontinuously or leaves its closed-form law (next sample
  /// edge, hold-decay threshold crossing). Infinity when no event is
  /// pending. The engine snaps the returned time to the enclosing trace
  /// step and replays that step through step() so the mutable state stays
  /// exact.
  [[nodiscard]] virtual double next_command_event(double t) const {
    (void)t;
    return std::numeric_limits<double>::infinity();
  }

  /// kSampleHold only: commanded PV voltage at time t, assuming no
  /// command event occurs in between. Pure (no state mutation).
  [[nodiscard]] virtual double command_at(double t) const {
    (void)t;
    return 0.0;
  }

  /// Restore the power-on state.
  virtual void reset() = 0;
};

}  // namespace focv::mppt
