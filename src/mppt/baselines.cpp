#include "mppt/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace focv::mppt {

// -------------------------------------------------------- HillClimbing

HillClimbingController::HillClimbingController(Params params)
    : params_(params), voltage_(params.start_voltage) {
  require(params_.voltage_step > 0.0, "HillClimbingController: voltage_step must be > 0");
  require(params_.update_period > 0.0, "HillClimbingController: update_period must be > 0");
}

ControlOutput HillClimbingController::step(const SensedInputs& inputs) {
  if (inputs.time >= next_update_) {
    next_update_ = inputs.time + params_.update_period;
    if (has_last_power_) {
      // Keep climbing while power rises; reverse when it falls.
      if (inputs.prev_power < last_power_) direction_ = -direction_;
      voltage_ = std::clamp(voltage_ + direction_ * params_.voltage_step, 0.0,
                            params_.max_voltage);
    }
    last_power_ = inputs.prev_power;
    has_last_power_ = true;
  }
  return {voltage_, 0.0};
}

void HillClimbingController::reset() {
  voltage_ = params_.start_voltage;
  direction_ = 1.0;
  last_power_ = 0.0;
  next_update_ = 0.0;
  has_last_power_ = false;
}

// ----------------------------------------------- IncrementalConductance

IncrementalConductanceController::IncrementalConductanceController(Params params)
    : params_(params), voltage_(params.start_voltage) {
  require(params_.voltage_step > 0.0,
          "IncrementalConductanceController: voltage_step must be > 0");
}

ControlOutput IncrementalConductanceController::step(const SensedInputs& inputs) {
  if (inputs.time >= next_update_) {
    next_update_ = inputs.time + params_.update_period;
    const double v = inputs.prev_voltage;
    const double i = (v > 1e-9) ? inputs.prev_power / v : 0.0;
    if (has_prev_ && v > 1e-9) {
      const double dv = v - prev_v_;
      const double di = i - prev_i_;
      double move = 0.0;
      if (std::abs(dv) < 1e-9) {
        // Voltage unchanged: move along the sign of the current change.
        if (std::abs(di) > params_.tolerance) move = (di > 0.0) ? 1.0 : -1.0;
      } else {
        const double inc = di / dv;        // incremental conductance
        const double neg = -i / v;         // negative instantaneous conductance
        if (std::abs(inc - neg) > params_.tolerance) move = (inc > neg) ? 1.0 : -1.0;
      }
      voltage_ = std::clamp(voltage_ + move * params_.voltage_step, 0.0, params_.max_voltage);
    }
    prev_v_ = v;
    prev_i_ = i;
    has_prev_ = true;
  }
  return {voltage_, 0.0};
}

void IncrementalConductanceController::reset() {
  voltage_ = params_.start_voltage;
  prev_v_ = prev_i_ = 0.0;
  has_prev_ = false;
  next_update_ = 0.0;
}

// ------------------------------------------------------- PilotCellFocv

PilotCellFocvController::PilotCellFocvController(Params params) : params_(params) {
  require(params_.k > 0.0 && params_.k < 1.0, "PilotCellFocvController: k must be in (0,1)");
  require(params_.pilot_scale > 0.0, "PilotCellFocvController: pilot_scale must be > 0");
}

ControlOutput PilotCellFocvController::step(const SensedInputs& inputs) {
  const double estimated_voc = inputs.pilot_voc * params_.pilot_scale * params_.mismatch;
  return {params_.k * estimated_voc, 0.0};
}

// ------------------------------------------------------- Photodetector

PhotodetectorController::PhotodetectorController(Params params) : params_(params) {}

PhotodetectorController::Params PhotodetectorController::calibrate(double lux1, double vmpp1,
                                                                   double lux2, double vmpp2,
                                                                   Params base) {
  require(lux1 > 0.0 && lux2 > 0.0 && lux1 != lux2, "PhotodetectorController: bad cal points");
  base.b = (vmpp2 - vmpp1) / (std::log(lux2) - std::log(lux1));
  base.a = vmpp1 - base.b * std::log(lux1);
  return base;
}

ControlOutput PhotodetectorController::step(const SensedInputs& inputs) {
  const double lux = std::max(1.0, inputs.illuminance_estimate * params_.sensor_gain_error);
  const double v = params_.a + params_.b * std::log(lux);
  return {std::max(0.0, v), 0.0};
}

// ---------------------------------------------- PeriodicDisconnectFocv

PeriodicDisconnectFocvController::PeriodicDisconnectFocvController(Params params)
    : params_(params) {
  require(params_.period > 0.0 && params_.sample_duration > 0.0 &&
              params_.sample_duration < params_.period,
          "PeriodicDisconnectFocvController: bad timing");
}

ControlOutput PeriodicDisconnectFocvController::step(const SensedInputs& inputs) {
  // Samples are far denser than any realistic simulation step, so the
  // held Voc is effectively the instantaneous Voc and the disconnect
  // duty is the full sample_duration/period ratio.
  held_voc_ = inputs.voc;
  return {params_.k * held_voc_, params_.sample_duration / params_.period};
}

// -------------------------------------------------------- FixedVoltage

FixedVoltageController::FixedVoltageController(Params params) : params_(params) {
  require(params_.voltage > 0.0, "FixedVoltageController: voltage must be > 0");
}

ControlOutput FixedVoltageController::step(const SensedInputs& /*inputs*/) {
  return {params_.voltage, 0.0};
}

// ---------------------------------------------------- DirectConnection

DirectConnectionController::DirectConnectionController(Params params) : params_(params) {
  require(params_.diode_drop >= 0.0, "DirectConnectionController: diode_drop must be >= 0");
}

ControlOutput DirectConnectionController::step(const SensedInputs& inputs) {
  return {std::max(0.0, inputs.store_voltage + params_.diode_drop), 0.0};
}

}  // namespace focv::mppt
