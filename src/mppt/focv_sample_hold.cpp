#include "mppt/focv_sample_hold.hpp"

#include <algorithm>
#include <memory>

#include "common/require.hpp"
#include "obs/obs.hpp"

namespace focv::mppt {

/// Thread-local (per-controller) accumulator for the per-window
/// metrics. Events and trace spans are emitted per window as before;
/// only the counter/histogram traffic is batched.
struct FocvSampleHoldController::SampleObs {
  obs::CounterId samples_id;
  obs::HistogramId held_id;
  obs::HistogramBatch held_batch;
  std::uint64_t pending_windows = 0;

  SampleObs()
      : samples_id(obs::metrics().counter("mppt.sample_windows")),
        held_id(obs::metrics().histogram("mppt.held_voltage_v", {0.1, 10.0, 40})),
        held_batch({0.1, 10.0, 40}) {}

  void flush() {
    if (pending_windows > 0) {
      obs::metrics().add(samples_id, static_cast<double>(pending_windows));
      pending_windows = 0;
    }
    obs::metrics().flush(held_id, held_batch);  // no-op when empty
  }
};

FocvSampleHoldController::FocvSampleHoldController(Params params)
    : params_(params), astable_(params.astable), sample_hold_(params.sample_hold) {
  require(params_.alpha > 0.0 && params_.alpha <= 1.0,
          "FocvSampleHoldController: alpha must be in (0, 1]");
  require(params_.supply_voltage > 0.0,
          "FocvSampleHoldController: supply_voltage must be > 0");
  next_sample_time_ = astable_.next_rising_edge(0.0);
}

FocvSampleHoldController::FocvSampleHoldController(const FocvSampleHoldController& other)
    : params_(other.params_),
      astable_(other.astable_),
      sample_hold_(other.sample_hold_),
      next_sample_time_(other.next_sample_time_),
      was_active_(other.was_active_) {}

FocvSampleHoldController::~FocvSampleHoldController() {
  if (obs_) obs_->flush();
}

ControlOutput FocvSampleHoldController::step(const SensedInputs& inputs) {
  // Telemetry is observation-only: every instrumented branch below reads
  // state the step computes anyway, so enabling it cannot perturb the
  // commanded trajectory.
  const bool obs_on = obs::enabled();
  ControlOutput out;
  const double t_end = inputs.time + inputs.dt;
  // Fire every PULSE rising edge inside this step (dt can exceed the
  // astable period in coarse simulations).
  while (next_sample_time_ < t_end) {
    const double sample_duration =
        std::min(astable_.params().on_period, t_end - next_sample_time_);
    sample_hold_.sample(next_sample_time_, inputs.voc, astable_.params().on_period);
    out.disconnect_fraction += sample_duration / inputs.dt;
    if (obs_on) {
      const double t_open = next_sample_time_;
      const double t_close = t_open + sample_duration;
      const double held = sample_hold_.value(t_close);
      obs::events().emit("sample_window_open", t_open,
                         {{"voc", inputs.voc}, {"window_s", sample_duration}});
      obs::events().emit("sample_window_close", t_close, {{"held_v", held}});
      obs::events().emit(
          "held_voltage_updated", t_close,
          {{"held_v", held}, {"voc", inputs.voc}, {"pv_v_cmd", held / params_.alpha}});
      obs::tracer().record_complete("sample_window", "mppt", t_open * 1e6,
                                    sample_duration * 1e6, obs::Tracer::kSimPid,
                                    {{"voc", inputs.voc}, {"held_v", held}});
      if (!obs_) obs_ = std::make_unique<SampleObs>();
      obs_->held_batch.observe(held);
      if (++obs_->pending_windows >= kObsFlushEvery) obs_->flush();
    }
    next_sample_time_ += astable_.period();
  }
  out.disconnect_fraction = std::min(out.disconnect_fraction, 1.0);
  // The converter regulates the PV input at HELD / alpha once ACTIVE
  // asserts (the U5 sanity check of Section III-B).
  const bool now_active = active(t_end);
  out.pv_voltage = now_active ? sample_hold_.value(t_end) / params_.alpha : 0.0;
  if (obs_on && was_active_ && !now_active) {
    // The held sample drooped below the ACTIVE threshold before the next
    // PULSE refreshed it: the converter free-runs until then.
    obs::events().emit("hold_sample_decayed", t_end,
                       {{"held_v", sample_hold_.value(t_end)},
                        {"threshold_v", params_.active_threshold},
                        {"droop_v_per_s", sample_hold_.droop_rate()}});
    static const obs::CounterId decays_id = obs::metrics().counter("mppt.hold_decays");
    obs::metrics().add(decays_id);
  }
  was_active_ = now_active;
  return out;
}

bool FocvSampleHoldController::active(double t) const {
  return sample_hold_.has_sample() && sample_hold_.value(t) >= params_.active_threshold;
}

double FocvSampleHoldController::next_command_event(double t) const {
  double event = next_sample_time_;
  // Between sample edges the held value droops linearly, so the moment
  // ACTIVE deasserts (command snaps to 0 V) is closed-form.
  if (active(t)) {
    const double droop = sample_hold_.droop_rate();
    if (droop > 0.0) {
      const double decay = t + (sample_hold_.value(t) - params_.active_threshold) / droop;
      event = std::min(event, decay);
    }
  }
  return event;
}

double FocvSampleHoldController::command_at(double t) const {
  return active(t) ? sample_hold_.value(t) / params_.alpha : 0.0;
}

double FocvSampleHoldController::average_current() const {
  return astable_.average_current() + sample_hold_.average_current(astable_.duty_cycle()) +
         params_.comparator_iq + params_.misc_leakage;
}

double FocvSampleHoldController::overhead_power() const {
  return average_current() * params_.supply_voltage;
}

void FocvSampleHoldController::reset() {
  if (obs_) obs_->flush();
  sample_hold_.reset();
  next_sample_time_ = astable_.next_rising_edge(0.0);
  was_active_ = false;
}

}  // namespace focv::mppt
