#include "mppt/focv_sample_hold.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace focv::mppt {

FocvSampleHoldController::FocvSampleHoldController(Params params)
    : params_(params), astable_(params.astable), sample_hold_(params.sample_hold) {
  require(params_.alpha > 0.0 && params_.alpha <= 1.0,
          "FocvSampleHoldController: alpha must be in (0, 1]");
  require(params_.supply_voltage > 0.0,
          "FocvSampleHoldController: supply_voltage must be > 0");
  next_sample_time_ = astable_.next_rising_edge(0.0);
}

ControlOutput FocvSampleHoldController::step(const SensedInputs& inputs) {
  ControlOutput out;
  const double t_end = inputs.time + inputs.dt;
  // Fire every PULSE rising edge inside this step (dt can exceed the
  // astable period in coarse simulations).
  while (next_sample_time_ < t_end) {
    const double sample_duration =
        std::min(astable_.params().on_period, t_end - next_sample_time_);
    sample_hold_.sample(next_sample_time_, inputs.voc, astable_.params().on_period);
    out.disconnect_fraction += sample_duration / inputs.dt;
    next_sample_time_ += astable_.period();
  }
  out.disconnect_fraction = std::min(out.disconnect_fraction, 1.0);
  // The converter regulates the PV input at HELD / alpha once ACTIVE
  // asserts (the U5 sanity check of Section III-B).
  out.pv_voltage = active(t_end) ? sample_hold_.value(t_end) / params_.alpha : 0.0;
  return out;
}

bool FocvSampleHoldController::active(double t) const {
  return sample_hold_.has_sample() && sample_hold_.value(t) >= params_.active_threshold;
}

double FocvSampleHoldController::average_current() const {
  return astable_.average_current() + sample_hold_.average_current(astable_.duty_cycle()) +
         params_.comparator_iq + params_.misc_leakage;
}

double FocvSampleHoldController::overhead_power() const {
  return average_current() * params_.supply_voltage;
}

void FocvSampleHoldController::reset() {
  sample_hold_.reset();
  next_sample_time_ = astable_.next_rising_edge(0.0);
}

}  // namespace focv::mppt
