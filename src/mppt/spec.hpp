// Controller spec strings: the parseable grammar behind the runtime
// controller registry (mppt/registry.hpp).
//
//   spec   := name [ '[' param (',' param)* ']' ]
//   name   := [a-z][a-z0-9_]*
//   param  := key '=' value
//   value  := number [unit-suffix]          e.g. 10mV, 69s, 0.6, 1mW
//
// Whitespace is allowed around every token, so `focv[ k = 0.6, hold = 69s ]`
// parses the same as `focv[k=0.6,hold=69s]`. Values are unit-aware: each
// registered parameter declares its dimension (voltage, time, power,
// illuminance or dimensionless) and only that dimension's SI suffixes are
// accepted; a bare number means base SI units (volts, seconds, watts,
// lux). Canonical printing inverts the parse with the tightest suffix
// whose mantissa is >= 1, which is what makes `spec()` strings stable
// keys for CSV/JSON reports.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/require.hpp"

namespace focv::mppt {

/// Thrown on a malformed spec string, an unknown controller name, an
/// unknown/duplicate parameter key or an out-of-range value. The message
/// always quotes the offending token and lists the valid alternatives —
/// a spec error must never produce a default-constructed controller.
class SpecError : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

/// Dimension of a controller parameter; selects the accepted unit
/// suffixes and the canonical printing.
enum class Unit {
  kNone,     ///< dimensionless (bare number only)
  kVoltage,  ///< V, mV, uV
  kTime,     ///< s, ms, us, min, h
  kPower,    ///< W, mW, uW, nW
  kLux,      ///< lux, klux
};

/// A spec string split into its name and raw `key=value` tokens, before
/// any registry lookup (values still unparsed — the registry knows each
/// key's dimension). Keys keep their source order; duplicates are
/// rejected here.
struct ParsedSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;
};

/// Split `spec` into name + raw key/value pairs. Throws SpecError on
/// grammar violations (quoting the offending token).
[[nodiscard]] ParsedSpec parse_spec_string(const std::string& spec);

/// Parse a value token (`10mV`, `69s`, `0.6`, ...) of the given
/// dimension into base SI units. Throws SpecError naming the token and
/// the suffixes valid for `unit`.
[[nodiscard]] double parse_value(const std::string& token, Unit unit);

/// Canonical printing of a base-SI value: shortest %.12g mantissa with
/// the tightest suffix >= 1 (69 s -> "69s", 0.01 V -> "10mV"). Stable:
/// equal doubles always print equal strings.
[[nodiscard]] std::string format_value(double value, Unit unit);

/// Human-readable list of the suffixes accepted for a dimension, for
/// error messages and --help output (e.g. "V, mV, uV").
[[nodiscard]] const char* unit_suffixes(Unit unit);

}  // namespace focv::mppt
