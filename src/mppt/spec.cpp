#include "mppt/spec.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace focv::mppt {

namespace {

std::string trim(const std::string& s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

bool valid_identifier(const std::string& s) {
  if (s.empty() || !std::islower(static_cast<unsigned char>(s[0]))) return false;
  for (const char c : s) {
    const bool ok = std::islower(static_cast<unsigned char>(c)) ||
                    std::isdigit(static_cast<unsigned char>(c)) || c == '_';
    if (!ok) return false;
  }
  return true;
}

[[noreturn]] void fail(const std::string& spec, const std::string& what) {
  throw SpecError("mppt spec \"" + spec + "\": " + what);
}

struct Suffix {
  const char* text;
  double factor;
};

/// Accepted suffixes per dimension; the first entry is the base unit.
/// Order within a dimension is longest-match-irrelevant (exact string
/// compare after the numeric prefix).
const Suffix* suffix_table(Unit unit, std::size_t& count) {
  static const Suffix kVolt[] = {{"V", 1.0}, {"mV", 1e-3}, {"uV", 1e-6}};
  static const Suffix kTime[] = {
      {"s", 1.0}, {"ms", 1e-3}, {"us", 1e-6}, {"min", 60.0}, {"h", 3600.0}};
  static const Suffix kPower[] = {{"W", 1.0}, {"mW", 1e-3}, {"uW", 1e-6}, {"nW", 1e-9}};
  static const Suffix kLux[] = {{"lux", 1.0}, {"klux", 1e3}};
  switch (unit) {
    case Unit::kVoltage: count = 3; return kVolt;
    case Unit::kTime: count = 5; return kTime;
    case Unit::kPower: count = 4; return kPower;
    case Unit::kLux: count = 2; return kLux;
    case Unit::kNone: count = 0; return nullptr;
  }
  count = 0;
  return nullptr;
}

std::string fmt_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

const char* unit_suffixes(Unit unit) {
  switch (unit) {
    case Unit::kVoltage: return "V, mV, uV";
    case Unit::kTime: return "s, ms, us, min, h";
    case Unit::kPower: return "W, mW, uW, nW";
    case Unit::kLux: return "lux, klux";
    case Unit::kNone: return "(dimensionless: bare number only)";
  }
  return "";
}

ParsedSpec parse_spec_string(const std::string& spec) {
  const std::string body = trim(spec);
  if (body.empty()) fail(spec, "empty spec");

  ParsedSpec out;
  const std::size_t open = body.find('[');
  if (open == std::string::npos) {
    out.name = trim(body);
    if (!valid_identifier(out.name)) {
      fail(spec, "invalid controller name \"" + out.name +
                     "\" (expected [a-z][a-z0-9_]*)");
    }
    return out;
  }

  out.name = trim(body.substr(0, open));
  if (!valid_identifier(out.name)) {
    fail(spec,
         "invalid controller name \"" + out.name + "\" (expected [a-z][a-z0-9_]*)");
  }
  if (body.back() != ']') fail(spec, "missing closing ']'");
  const std::string inner = body.substr(open + 1, body.size() - open - 2);
  if (inner.find('[') != std::string::npos || inner.find(']') != std::string::npos) {
    fail(spec, "nested '[' / ']' in parameter list");
  }
  if (trim(inner).empty()) return out;  // name[] == name

  std::size_t start = 0;
  while (start <= inner.size()) {
    std::size_t comma = inner.find(',', start);
    if (comma == std::string::npos) comma = inner.size();
    const std::string token = trim(inner.substr(start, comma - start));
    if (token.empty()) fail(spec, "empty parameter token");
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      fail(spec, "parameter token \"" + token + "\" is not key=value");
    }
    const std::string key = trim(token.substr(0, eq));
    const std::string value = trim(token.substr(eq + 1));
    if (!valid_identifier(key)) {
      fail(spec, "invalid parameter key \"" + key + "\" (expected [a-z][a-z0-9_]*)");
    }
    if (value.empty()) fail(spec, "empty value for parameter \"" + key + "\"");
    for (const auto& [existing, unused] : out.params) {
      (void)unused;
      if (existing == key) fail(spec, "duplicate parameter \"" + key + "\"");
    }
    out.params.emplace_back(key, value);
    if (comma == inner.size()) break;
    start = comma + 1;
  }
  return out;
}

double parse_value(const std::string& token, Unit unit) {
  const std::string body = trim(token);
  if (body.empty()) throw SpecError("empty value token");
  const char* begin = body.c_str();
  char* end = nullptr;
  const double magnitude = std::strtod(begin, &end);
  if (end == begin) {
    throw SpecError("value \"" + body + "\" does not start with a number");
  }
  if (!std::isfinite(magnitude)) {
    throw SpecError("value \"" + body + "\" is not finite");
  }
  const std::string suffix = trim(std::string(end));
  if (suffix.empty()) return magnitude;  // bare number = base SI units
  std::size_t n = 0;
  const Suffix* table = suffix_table(unit, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (suffix == table[i].text) return magnitude * table[i].factor;
  }
  throw SpecError("value \"" + body + "\" has unit suffix \"" + suffix +
                  "\" invalid here (accepted: " + unit_suffixes(unit) + ")");
}

std::string format_value(double value, Unit unit) {
  std::size_t n = 0;
  const Suffix* table = suffix_table(unit, n);
  if (table == nullptr || value == 0.0) {
    std::string out = fmt_g(value);
    if (table != nullptr) out += table[0].text;  // "0s", "0V", ...
    return out;
  }
  // Tightest suffix whose mantissa lands at >= 1 (min/h are parse-only
  // conveniences, never canonical output): the largest factor <= |value|.
  const double mag = std::fabs(value);
  const Suffix* best = &table[0];
  double best_factor = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (table[i].factor > 1.0) continue;  // canonical output never scales up
    if (mag >= table[i].factor && table[i].factor > best_factor) {
      best = &table[i];
      best_factor = table[i].factor;
    }
  }
  if (best_factor == 0.0) {
    // Smaller than the smallest suffix: use the smallest one anyway.
    for (std::size_t i = 0; i < n; ++i) {
      if (table[i].factor > 1.0) continue;
      if (best_factor == 0.0 || table[i].factor < best_factor) {
        best = &table[i];
        best_factor = table[i].factor;
      }
    }
  }
  return fmt_g(value / best->factor) + best->text;
}

}  // namespace focv::mppt
