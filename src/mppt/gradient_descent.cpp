#include "mppt/gradient_descent.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace focv::mppt {

GradientDescentController::GradientDescentController(Params params)
    : params_(params), voltage_(params.start_voltage), lr_(params.learning_rate) {
  require(params_.learning_rate > 0.0,
          "GradientDescentController: learning_rate must be > 0");
  require(params_.decay > 0.0 && params_.decay <= 1.0,
          "GradientDescentController: decay must be in (0, 1]");
  require(params_.lr_min >= 0.0 && params_.lr_min <= params_.learning_rate,
          "GradientDescentController: need 0 <= lr_min <= learning_rate");
  require(params_.update_period > 0.0,
          "GradientDescentController: update_period must be > 0");
  require(params_.max_step > 0.0 && params_.probe_step > 0.0,
          "GradientDescentController: step bounds must be > 0");
}

ControlOutput GradientDescentController::step(const SensedInputs& inputs) {
  if (inputs.time >= next_update_) {
    next_update_ = inputs.time + params_.update_period;
    const double power = inputs.prev_power;
    const double voltage = inputs.prev_voltage;
    if (!has_prev_) {
      // Bootstrap: perturb once so the first gradient is defined.
      voltage_ = std::clamp(voltage_ + params_.probe_step, 0.0, params_.max_voltage);
    } else {
      const double dv = voltage - prev_voltage_;
      if (std::fabs(dv) < 1e-9) {
        // Command saturated or unchanged: probe toward the rail with
        // room left, so the next decision sees a real voltage delta.
        const double direction = voltage_ > 0.5 * params_.max_voltage ? -1.0 : 1.0;
        voltage_ =
            std::clamp(voltage_ + direction * params_.probe_step, 0.0, params_.max_voltage);
      } else {
        const double gradient = (power - prev_power_) / dv;
        if (has_gradient_ && gradient * prev_gradient_ < 0.0) {
          // Overshot the MPP: anneal the learning rate (the adaptive
          // part — big strides far out, fine steps at the summit).
          lr_ = std::max(params_.lr_min, lr_ * params_.decay);
        }
        const double raw = lr_ * gradient;
        const double bounded = std::clamp(raw, -params_.max_step, params_.max_step);
        voltage_ = std::clamp(voltage_ + bounded, 0.0, params_.max_voltage);
        prev_gradient_ = gradient;
        has_gradient_ = true;
      }
    }
    prev_power_ = power;
    prev_voltage_ = voltage;
    has_prev_ = true;
  }
  return {voltage_, 0.0};
}

void GradientDescentController::reset() {
  voltage_ = params_.start_voltage;
  lr_ = params_.learning_rate;
  prev_power_ = 0.0;
  prev_voltage_ = 0.0;
  prev_gradient_ = 0.0;
  has_prev_ = false;
  has_gradient_ = false;
  next_update_ = 0.0;
}

}  // namespace focv::mppt
