// Baseline MPPT techniques the paper compares against (Sections I, IV-B).
//
// Overhead powers and minimum operating illuminance follow the figures
// the paper quotes for each reference system:
//   [2] hill-climbing / incremental conductance: needs a microcontroller
//       ("fine-grained control of the system"), ~1 mW class.
//   [4] Simjee & Chou: FOCV with a 100 ms sampling period, ~2 mW total.
//   [5] Brunelli et al. (DATE'08): pilot solar cell, ~300 uW when 'off'.
//   [6] AmbiMax: photodetector-controlled, ~500 uA.
//   [7] indoor harvesters that "ignore MPPT completely".
//   [8] fixed-voltage operation using a voltage-reference IC (whose
//       current exceeds the proposed S&H's 8 uA).
#pragma once

#include "mppt/controller.hpp"

namespace focv::mppt {

/// Perturb & observe hill climbing [2]. Senses: own terminal power
/// (microcontroller with ADC). Tracks the true MPP but cannot run from
/// indoor light levels.
class HillClimbingController : public MpptController {
 public:
  struct Params {
    double voltage_step = 0.05;      ///< perturbation [V]
    double update_period = 1.0;      ///< perturbation cadence [s]
    double start_voltage = 2.0;      ///< initial operating point [V]
    double max_voltage = 8.0;        ///< slew limit [V]
    double overhead = 1.0e-3;        ///< microcontroller + ADC [W]
    double min_lux = 1500.0;         ///< supply floor of the uC circuitry
  };

  explicit HillClimbingController(Params params);
  HillClimbingController() : HillClimbingController(Params{}) {}

  [[nodiscard]] std::string name() const override { return "hill climbing (P&O) [2]"; }
  [[nodiscard]] std::unique_ptr<MpptController> clone() const override {
    return std::make_unique<HillClimbingController>(*this);
  }
  [[nodiscard]] ControlOutput step(const SensedInputs& inputs) override;
  [[nodiscard]] double overhead_power() const override { return params_.overhead; }
  [[nodiscard]] double minimum_operating_lux() const override { return params_.min_lux; }
  void reset() override;

 private:
  Params params_;
  double voltage_;
  double direction_ = 1.0;
  double last_power_ = 0.0;
  double next_update_ = 0.0;
  bool has_last_power_ = false;
};

/// Incremental conductance [2]: same hardware class as P&O, different
/// update law (compares dI/dV against -I/V to find the MPP).
class IncrementalConductanceController : public MpptController {
 public:
  struct Params {
    double voltage_step = 0.05;
    double update_period = 1.0;
    double start_voltage = 2.0;
    double max_voltage = 8.0;
    double tolerance = 1e-7;     ///< conductance match tolerance [A/V]
    double overhead = 1.0e-3;
    double min_lux = 1500.0;
  };

  explicit IncrementalConductanceController(Params params);
  IncrementalConductanceController() : IncrementalConductanceController(Params{}) {}

  [[nodiscard]] std::string name() const override { return "incremental conductance [2]"; }
  [[nodiscard]] std::unique_ptr<MpptController> clone() const override {
    return std::make_unique<IncrementalConductanceController>(*this);
  }
  [[nodiscard]] ControlOutput step(const SensedInputs& inputs) override;
  [[nodiscard]] double overhead_power() const override { return params_.overhead; }
  [[nodiscard]] double minimum_operating_lux() const override { return params_.min_lux; }
  void reset() override;

 private:
  Params params_;
  double voltage_;
  double prev_v_ = 0.0;
  double prev_i_ = 0.0;
  bool has_prev_ = false;
  double next_update_ = 0.0;
};

/// Pilot-cell FOCV [5]: a small matched cell stays open-circuit
/// permanently; the main cell is regulated at k * pilot scaling. No
/// disconnection of the main cell, but the pilot's Voc differs from the
/// main cell's (mismatch, different mounting) and the support circuitry
/// burns ~300 uW.
class PilotCellFocvController : public MpptController {
 public:
  struct Params {
    double k = 0.60;
    double pilot_scale = 1.0;     ///< main Voc / pilot Voc nominal ratio
    double mismatch = 0.97;       ///< systematic pilot tracking error
    double overhead = 300e-6;     ///< [W], per [5]
    double min_lux = 500.0;
  };

  explicit PilotCellFocvController(Params params);
  PilotCellFocvController() : PilotCellFocvController(Params{}) {}

  [[nodiscard]] std::string name() const override { return "pilot-cell FOCV [5]"; }
  [[nodiscard]] std::unique_ptr<MpptController> clone() const override {
    return std::make_unique<PilotCellFocvController>(*this);
  }
  [[nodiscard]] ControlOutput step(const SensedInputs& inputs) override;
  [[nodiscard]] double overhead_power() const override { return params_.overhead; }
  [[nodiscard]] double minimum_operating_lux() const override { return params_.min_lux; }
  [[nodiscard]] MacroLaw macro_law() const override { return MacroLaw::kMemoryless; }
  [[nodiscard]] const Params& params() const { return params_; }
  void reset() override {}

 private:
  Params params_;
};

/// Photodetector proxy (AmbiMax-style [6]): a light sensor estimates the
/// illuminance and an analog law maps it to an operating voltage:
///   Vset = a + b * ln(lux).
class PhotodetectorController : public MpptController {
 public:
  struct Params {
    double a = 0.0;               ///< intercept of the Vset law [V]
    double b = 0.0;               ///< slope per ln(lux) [V]
    double sensor_gain_error = 1.05;  ///< photodiode calibration error
    double overhead = 1.65e-3;    ///< 500 uA at 3.3 V, per [6]
    double min_lux = 2500.0;
  };

  explicit PhotodetectorController(Params params);
  PhotodetectorController() : PhotodetectorController(Params{}) {}

  /// Build the Vset law through two (lux, vmpp) calibration points.
  static Params calibrate(double lux1, double vmpp1, double lux2, double vmpp2, Params base);
  static Params calibrate(double lux1, double vmpp1, double lux2, double vmpp2) {
    return calibrate(lux1, vmpp1, lux2, vmpp2, Params{});
  }

  [[nodiscard]] std::string name() const override { return "photodetector proxy [6]"; }
  [[nodiscard]] std::unique_ptr<MpptController> clone() const override {
    return std::make_unique<PhotodetectorController>(*this);
  }
  [[nodiscard]] ControlOutput step(const SensedInputs& inputs) override;
  [[nodiscard]] double overhead_power() const override { return params_.overhead; }
  [[nodiscard]] double minimum_operating_lux() const override { return params_.min_lux; }
  [[nodiscard]] MacroLaw macro_law() const override { return MacroLaw::kMemoryless; }
  void reset() override {}

 private:
  Params params_;
};

/// FOCV with frequent periodic disconnection [4]: the cell is
/// open-circuited every `period` for `sample_duration`, which at 100 ms
/// costs a large disconnect fraction on top of a ~2 mW controller.
class PeriodicDisconnectFocvController : public MpptController {
 public:
  struct Params {
    double k = 0.60;
    double period = 100e-3;          ///< [s], per [4]
    double sample_duration = 5e-3;   ///< [s]
    double overhead = 2.0e-3;        ///< [W], per [4]
    double min_lux = 3000.0;
  };

  explicit PeriodicDisconnectFocvController(Params params);
  PeriodicDisconnectFocvController() : PeriodicDisconnectFocvController(Params{}) {}

  [[nodiscard]] std::string name() const override { return "100 ms periodic FOCV [4]"; }
  [[nodiscard]] std::unique_ptr<MpptController> clone() const override {
    return std::make_unique<PeriodicDisconnectFocvController>(*this);
  }
  [[nodiscard]] ControlOutput step(const SensedInputs& inputs) override;
  [[nodiscard]] double overhead_power() const override { return params_.overhead; }
  [[nodiscard]] double minimum_operating_lux() const override { return params_.min_lux; }
  void reset() override { held_voc_ = 0.0; }

 private:
  Params params_;
  double held_voc_ = 0.0;
};

/// Fixed-voltage operation [8]: the cell is held at a constant voltage
/// produced by a reference IC; correct only near the design illuminance.
class FixedVoltageController : public MpptController {
 public:
  struct Params {
    double voltage = 3.0;        ///< design operating point [V]
    double overhead = 36.3e-6;   ///< 11 uA reference IC at 3.3 V [W]
    double min_lux = 150.0;
  };

  explicit FixedVoltageController(Params params);
  FixedVoltageController() : FixedVoltageController(Params{}) {}

  [[nodiscard]] std::string name() const override { return "fixed voltage [8]"; }
  [[nodiscard]] std::unique_ptr<MpptController> clone() const override {
    return std::make_unique<FixedVoltageController>(*this);
  }
  [[nodiscard]] ControlOutput step(const SensedInputs& inputs) override;
  [[nodiscard]] double overhead_power() const override { return params_.overhead; }
  [[nodiscard]] double minimum_operating_lux() const override { return params_.min_lux; }
  [[nodiscard]] MacroLaw macro_law() const override { return MacroLaw::kMemoryless; }
  [[nodiscard]] const Params& params() const { return params_; }
  void reset() override {}

 private:
  Params params_;
};

/// No MPPT [7]: the cell is wired (through a diode) to the energy store
/// and therefore operates at the store voltage.
class DirectConnectionController : public MpptController {
 public:
  struct Params {
    double diode_drop = 0.25;  ///< Schottky [V]
    double overhead = 0.0;
  };

  explicit DirectConnectionController(Params params);
  DirectConnectionController() : DirectConnectionController(Params{}) {}

  [[nodiscard]] std::string name() const override { return "no MPPT, direct [7]"; }
  [[nodiscard]] std::unique_ptr<MpptController> clone() const override {
    return std::make_unique<DirectConnectionController>(*this);
  }
  [[nodiscard]] ControlOutput step(const SensedInputs& inputs) override;
  [[nodiscard]] double overhead_power() const override { return params_.overhead; }
  [[nodiscard]] MacroLaw macro_law() const override { return MacroLaw::kTracksStore; }
  void reset() override {}

 private:
  Params params_;
};

}  // namespace focv::mppt
