// Adaptive gradient-descent MPPT (after arXiv 2511.20895): a
// computationally light digital tracker that climbs the measured P(V)
// gradient with a learning rate that anneals on gradient sign
// reversals, converging to small oscillations around the MPP without
// the fixed-step dithering loss of plain P&O.
#pragma once

#include "mppt/controller.hpp"

namespace focv::mppt {

/// Gradient-descent hill climber with adaptive learning rate.
///
/// Update law, once per `update_period`:
///   g_k = (P_k - P_{k-1}) / (V_k - V_{k-1})          [W/V]
///   if sign(g_k) != sign(g_{k-1}): lr <- max(lr_min, lr * decay)
///   V <- clamp(V + clamp(lr * g_k, +/- max_step), 0, max_voltage)
///
/// Senses: own terminal power/voltage (microcontroller + ADC, like P&O,
/// but the proportional-to-gradient step takes large strides far from
/// the MPP and shrinks near it — the complexity/performance trade the
/// source paper benchmarks). A zero voltage delta falls back to a small
/// probe perturbation so the gradient estimate stays defined.
class GradientDescentController : public MpptController {
 public:
  struct Params {
    double learning_rate = 0.05;  ///< initial step gain [V^2/W]
    double decay = 0.9;           ///< lr multiplier on gradient sign reversal
    double lr_min = 1e-3;         ///< learning-rate floor [V^2/W]
    double update_period = 1.0;   ///< decision cadence [s]
    double start_voltage = 2.0;   ///< initial operating point [V]
    double max_voltage = 8.0;     ///< slew limit [V]
    double max_step = 0.2;        ///< per-decision voltage bound [V]
    double probe_step = 0.02;     ///< bootstrap / stalled-gradient perturbation [V]
    double overhead = 120e-6;     ///< low-duty MCU + ADC [W]
    double min_lux = 400.0;       ///< supply floor of the digital circuitry
  };

  explicit GradientDescentController(Params params);
  GradientDescentController() : GradientDescentController(Params{}) {}

  [[nodiscard]] std::string name() const override {
    return "adaptive gradient descent";
  }
  [[nodiscard]] std::unique_ptr<MpptController> clone() const override {
    return std::make_unique<GradientDescentController>(*this);
  }
  [[nodiscard]] ControlOutput step(const SensedInputs& inputs) override;
  [[nodiscard]] double overhead_power() const override { return params_.overhead; }
  [[nodiscard]] double minimum_operating_lux() const override { return params_.min_lux; }
  void reset() override;

  [[nodiscard]] const Params& params() const { return params_; }
  /// Current (annealed) learning rate [V^2/W] — telemetry/tests.
  [[nodiscard]] double learning_rate() const { return lr_; }

 private:
  Params params_;
  double voltage_;
  double lr_;
  double prev_power_ = 0.0;
  double prev_voltage_ = 0.0;
  double prev_gradient_ = 0.0;
  bool has_prev_ = false;
  bool has_gradient_ = false;
  double next_update_ = 0.0;
};

}  // namespace focv::mppt
