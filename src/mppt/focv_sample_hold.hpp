// The paper's controller: FOCV via the ultra low-power sample-and-hold.
#pragma once

#include <cstdint>
#include <memory>

#include "analog/astable.hpp"
#include "analog/sample_hold.hpp"
#include "mppt/controller.hpp"

namespace focv::mppt {

/// Fractional-open-circuit-voltage MPPT driven by the astable + S&H of
/// Fig. 3. Senses: the main cell's own Voc, only during the brief PULSE
/// windows (no pilot cell, no photodiode, no microcontroller).
///
/// The commanded operating voltage is 2 x HELD_SAMPLE (alpha = 1/2 in
/// Eq. (3): the held value is half of k*Voc so it fits under the 3.3 V
/// rail; the switching converter's input comparator works on the divided
/// PV voltage).
class FocvSampleHoldController : public MpptController {
 public:
  struct Params {
    analog::AstableMultivibrator::Params astable;
    analog::SampleHold::Params sample_hold;
    double supply_voltage = 3.3;     ///< [V]
    double alpha = 0.5;              ///< representation divider of Eq. (3)
    double active_threshold = 0.9;   ///< ACTIVE asserts above this HELD level [V]
    double comparator_iq = 0.7e-6;   ///< ACTIVE comparator (U5) [A]
    double misc_leakage = 0.9e-6;    ///< switches, M8 gate network, board leakage [A]
    double min_lux = 180.0;          ///< sustains itself down to ~200 lux
  };

  explicit FocvSampleHoldController(Params params);
  FocvSampleHoldController() : FocvSampleHoldController(Params{}) {}
  /// Copies the control state; the telemetry batch is per-instance and
  /// starts empty in the copy.
  FocvSampleHoldController(const FocvSampleHoldController& other);
  ~FocvSampleHoldController() override;

  [[nodiscard]] std::string name() const override { return "FOCV sample-and-hold (proposed)"; }
  [[nodiscard]] std::unique_ptr<MpptController> clone() const override {
    return std::make_unique<FocvSampleHoldController>(*this);
  }
  [[nodiscard]] ControlOutput step(const SensedInputs& inputs) override;
  [[nodiscard]] double overhead_power() const override;
  [[nodiscard]] double minimum_operating_lux() const override { return params_.min_lux; }
  [[nodiscard]] MacroLaw macro_law() const override { return MacroLaw::kSampleHold; }
  [[nodiscard]] double next_command_event(double t) const override;
  [[nodiscard]] double command_at(double t) const override;
  void reset() override;

  /// The HELD_SAMPLE line value at time t [V].
  [[nodiscard]] double held_sample(double t) const { return sample_hold_.value(t); }

  /// ACTIVE line: true once a valid sample is held.
  [[nodiscard]] bool active(double t) const;

  /// Average current of the complete metrology circuit [A]
  /// (reproduces the 7.6 uA measurement of Section IV-A).
  [[nodiscard]] double average_current() const;

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const analog::AstableMultivibrator& astable() const { return astable_; }
  [[nodiscard]] const analog::SampleHold& sample_hold() const { return sample_hold_; }

 private:
  // Per-sample-window metrics are accumulated locally and merged into
  // the global registry in batches (one atomic RMW per touched bucket
  // every kObsFlushEvery windows instead of three per window), so the
  // obs-enabled tax stays flat over a 24 h run with ~1250 windows.
  // Allocated lazily on the first instrumented window; flushed on
  // reset() and destruction. Domain events and trace spans remain
  // per-window — they ARE the log.
  struct SampleObs;
  static constexpr std::uint64_t kObsFlushEvery = 256;

  Params params_;
  analog::AstableMultivibrator astable_;
  analog::SampleHold sample_hold_;
  double next_sample_time_ = 0.0;
  bool was_active_ = false;  ///< ACTIVE level at the previous step (telemetry edge detect)
  std::unique_ptr<SampleObs> obs_;
};

}  // namespace focv::mppt
