// Runtime MPPT controller registry: a table of controller factories
// keyed by name, each taking a typed, validated parameter bag parsed
// from a spec string (mppt/spec.hpp), e.g.
//
//   focv[k=0.6,hold=69s]   pando[step=10mV,period=5s]
//   inccond[step=5mV]      graddesc[lr=0.05,decay=0.9]
//
// This is the single construction path the sweep engine, the fleet
// engine and every CLI consume: adding an algorithm means registering
// one Entry here — SweepSpec / FleetSpec / NodeConfig / the tournament
// bench pick it up with zero changes (the gradient-descent controller
// of arXiv 2511.20895 enters exactly this way).
//
// The paper's own S&H FOCV ("focv") depends on the component-level
// core::SystemSpec, so its entry is registered by focv::core (see
// core::register_paper_controller(); focv_system.cpp also installs it
// from a static registrar, so any binary linking focv_core gets it).
// All baseline entries and graddesc self-register on first
// Registry::instance() use.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mppt/controller.hpp"
#include "mppt/spec.hpp"

namespace focv::mppt {

/// One registered parameter: key, dimension, default and validation
/// bounds (inclusive). Declaration order is the canonical print order.
struct ParamDesc {
  std::string key;
  Unit unit = Unit::kNone;
  double default_value = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  std::string help;
};

/// A spec resolved against its registry entry: every catalog parameter
/// carries its final value and whether the spec set it explicitly.
struct ResolvedSpec {
  struct Value {
    std::string key;
    double value = 0.0;
    bool is_set = false;  ///< explicitly given (vs. catalog default)
  };

  std::string name;
  std::vector<Value> params;  ///< full catalog, declaration order
  std::string canonical;      ///< stable round-trip string, see spec()

  /// Final value of a parameter; throws SpecError on an unknown key
  /// (registry and caller disagreeing on the catalog is a bug).
  [[nodiscard]] double value(const std::string& key) const;
  [[nodiscard]] bool is_set(const std::string& key) const;

  /// Canonical spec string: `name[key=value,...]` with the explicitly
  /// set, non-default parameters in catalog order and canonical unit
  /// formatting — `focv[hold=69s, k=0.596]` and `focv` both print as
  /// "focv". Stable across re-parsing, so it is the report key the
  /// sweep/fleet/tournament exports use.
  [[nodiscard]] const std::string& spec() const { return canonical; }
};

/// Runtime table of controller factories.
class Registry {
 public:
  using Factory = std::function<std::unique_ptr<MpptController>(const ResolvedSpec&)>;

  struct Entry {
    std::string name;     ///< registry key, e.g. "pando"
    std::string summary;  ///< one-line description for the catalog
    std::vector<ParamDesc> params;
    /// Complexity-aware benchmarking axis (arXiv 2511.20895): estimated
    /// arithmetic/ADC operations one MPPT decision costs on a low-power
    /// microcontroller. 0 = analog implementation, no digital compute.
    double ops_per_decision = 0.0;
    /// Key of the parameter holding the decision cadence [s]; empty for
    /// continuous/analog laws.
    std::string period_key;
    Factory factory;
  };

  /// The process-wide registry (baseline + graddesc entries installed
  /// on first use; "focv" comes from focv::core, see file comment).
  static Registry& instance();

  /// Install an entry. Throws PreconditionError on a duplicate or
  /// malformed entry. Idempotent re-registration of a byte-identical
  /// name is rejected too — register once, at startup.
  void add(Entry entry);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Entry by name; throws SpecError listing the registered names.
  [[nodiscard]] const Entry& entry(const std::string& name) const;
  /// Registered names, sorted (for --help / error messages).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Parse + validate a spec string against its entry: unknown name,
  /// unknown/duplicate key, malformed value and out-of-range value all
  /// throw SpecError quoting the offending token and the valid
  /// alternatives. Never returns a partially-defaulted resolution.
  [[nodiscard]] ResolvedSpec resolve(const std::string& spec) const;

  /// Canonical round-trip: resolve(spec).spec().
  [[nodiscard]] std::string canonical(const std::string& spec) const;

  /// Build a controller from a spec string / resolved spec.
  [[nodiscard]] std::unique_ptr<MpptController> make(const std::string& spec) const;
  [[nodiscard]] std::unique_ptr<MpptController> make(const ResolvedSpec& resolved) const;

  /// Multi-line catalog: one block per entry with parameter keys,
  /// dimensions, defaults and ranges — the `--help` / `--list` text.
  [[nodiscard]] std::string catalog() const;

 private:
  Registry() = default;
  [[nodiscard]] std::vector<std::string> names_unlocked() const;
  std::vector<Entry> entries_;  ///< insertion order; lookup is by name
};

}  // namespace focv::mppt
