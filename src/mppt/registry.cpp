#include "mppt/registry.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "mppt/baselines.hpp"
#include "mppt/gradient_descent.hpp"
#include "obs/obs.hpp"

namespace focv::mppt {

namespace {

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

[[noreturn]] void fail_spec(const std::string& spec, const std::string& what) {
  if (obs::enabled()) {
    static const obs::CounterId errors_id = obs::metrics().counter("mppt.spec.errors");
    obs::metrics().add(errors_id);
  }
  throw SpecError("mppt spec \"" + spec + "\": " + what);
}

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

std::string param_keys(const Registry::Entry& entry) {
  std::string out;
  for (const ParamDesc& p : entry.params) {
    if (!out.empty()) out += ", ";
    out += p.key;
  }
  return out;
}

void register_builtins(Registry& registry);

}  // namespace

double ResolvedSpec::value(const std::string& key) const {
  for (const Value& v : params) {
    if (v.key == key) return v.value;
  }
  throw SpecError("ResolvedSpec \"" + name + "\": unknown parameter \"" + key + "\"");
}

bool ResolvedSpec::is_set(const std::string& key) const {
  for (const Value& v : params) {
    if (v.key == key) return v.is_set;
  }
  throw SpecError("ResolvedSpec \"" + name + "\": unknown parameter \"" + key + "\"");
}

Registry& Registry::instance() {
  static Registry* registry = [] {
    auto* r = new Registry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

void Registry::add(Entry entry) {
  require(!entry.name.empty() && entry.factory != nullptr,
          "mppt::Registry::add: entry needs a name and a factory");
  for (const ParamDesc& p : entry.params) {
    require(!p.key.empty() && p.min_value <= p.max_value &&
                p.default_value >= p.min_value && p.default_value <= p.max_value,
            "mppt::Registry::add(" + entry.name + "): bad descriptor for \"" + p.key + "\"");
  }
  if (!entry.period_key.empty()) {
    bool found = false;
    for (const ParamDesc& p : entry.params) found = found || p.key == entry.period_key;
    require(found, "mppt::Registry::add(" + entry.name + "): period_key \"" +
                       entry.period_key + "\" is not a parameter");
  }
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const Entry& e : entries_) {
    require(e.name != entry.name,
            "mppt::Registry::add: \"" + entry.name + "\" is already registered");
  }
  entries_.push_back(std::move(entry));
}

bool Registry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const Entry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

const Registry::Entry& Registry::entry(const std::string& name) const {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const Entry& e : entries_) {
    if (e.name == name) return e;
  }
  throw SpecError("mppt registry: unknown controller \"" + name +
                  "\"; registered: " + joined(names_unlocked()));
}

std::vector<std::string> Registry::names() const {
  std::lock_guard<std::mutex> lock(registry_mutex());
  return names_unlocked();
}

std::vector<std::string> Registry::names_unlocked() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  std::sort(out.begin(), out.end());
  return out;
}

ResolvedSpec Registry::resolve(const std::string& spec) const {
  if (obs::enabled()) {
    static const obs::CounterId parses_id = obs::metrics().counter("mppt.spec.parses");
    obs::metrics().add(parses_id);
  }
  const ParsedSpec parsed = parse_spec_string(spec);
  if (!contains(parsed.name)) {
    fail_spec(spec, "unknown controller \"" + parsed.name +
                        "\"; registered: " + joined(names()));
  }
  const Entry& e = entry(parsed.name);

  ResolvedSpec out;
  out.name = e.name;
  out.params.reserve(e.params.size());
  for (const ParamDesc& p : e.params) {
    out.params.push_back({p.key, p.default_value, false});
  }

  for (const auto& [key, raw] : parsed.params) {
    const ParamDesc* desc = nullptr;
    ResolvedSpec::Value* slot = nullptr;
    for (std::size_t i = 0; i < e.params.size(); ++i) {
      if (e.params[i].key == key) {
        desc = &e.params[i];
        slot = &out.params[i];
        break;
      }
    }
    if (desc == nullptr) {
      fail_spec(spec, "unknown parameter \"" + key + "\" for \"" + e.name +
                          "\"; valid: " + param_keys(e));
    }
    double value = 0.0;
    try {
      value = parse_value(raw, desc->unit);
    } catch (const SpecError& err) {
      fail_spec(spec, std::string("parameter \"") + key + "\": " + err.what());
    }
    if (value < desc->min_value || value > desc->max_value) {
      fail_spec(spec, "parameter \"" + key + "=" + raw + "\" out of range [" +
                          format_value(desc->min_value, desc->unit) + ", " +
                          format_value(desc->max_value, desc->unit) + "]");
    }
    slot->value = value;
    slot->is_set = true;
  }

  // Canonical print: explicitly set, non-default values in catalog order.
  std::string args;
  for (std::size_t i = 0; i < e.params.size(); ++i) {
    const ResolvedSpec::Value& v = out.params[i];
    if (!v.is_set || v.value == e.params[i].default_value) continue;
    if (!args.empty()) args += ",";
    args += v.key + "=" + format_value(v.value, e.params[i].unit);
  }
  out.canonical = args.empty() ? e.name : e.name + "[" + args + "]";
  return out;
}

std::string Registry::canonical(const std::string& spec) const {
  return resolve(spec).canonical;
}

std::unique_ptr<MpptController> Registry::make(const std::string& spec) const {
  return make(resolve(spec));
}

std::unique_ptr<MpptController> Registry::make(const ResolvedSpec& resolved) const {
  const Entry& e = entry(resolved.name);
  try {
    auto controller = e.factory(resolved);
    ensure(controller != nullptr,
           "mppt registry: factory for \"" + e.name + "\" returned null");
    return controller;
  } catch (const SpecError&) {
    throw;
  } catch (const PreconditionError& err) {
    // Cross-parameter constraints enforced by the controller ctor.
    throw SpecError("mppt spec \"" + resolved.spec() + "\": " + err.what());
  }
}

std::string Registry::catalog() const {
  std::string out;
  for (const std::string& name : names()) {
    const Entry& e = entry(name);
    out += "  " + e.name;
    if (!e.params.empty()) out += "[" + param_keys(e) + "]";
    out += "\n      " + e.summary + "\n";
    for (const ParamDesc& p : e.params) {
      out += "      " + p.key + " = " + format_value(p.default_value, p.unit) +
             "  (range " + format_value(p.min_value, p.unit) + " .. " +
             format_value(p.max_value, p.unit) + ")  " + p.help + "\n";
    }
  }
  return out;
}

namespace {

// ------------------------------------------------------------------
// Builtin entries: the paper's baselines (Section IV-B hardware
// classes) plus the adaptive gradient-descent tracker. Defaults match
// each controller's Params{} defaults exactly, so a registry-built
// controller is indistinguishable from a default-constructed one (the
// byte-determinism contract of the legacy enum shim). "focv" itself is
// registered by focv::core (component-level SystemSpec lives there).

void register_builtins(Registry& r) {
  const double kLuxMax = 200e3;

  {
    Registry::Entry e;
    e.name = "pando";
    e.summary = "perturb & observe hill climbing [2]: uC + ADC, fixed voltage step";
    e.params = {
        {"step", Unit::kVoltage, 0.05, 1e-4, 1.0, "perturbation step"},
        {"period", Unit::kTime, 1.0, 0.01, 3600.0, "decision cadence"},
        {"start", Unit::kVoltage, 2.0, 0.0, 12.0, "initial operating point"},
        {"vmax", Unit::kVoltage, 8.0, 0.1, 24.0, "slew limit"},
        {"overhead", Unit::kPower, 1.0e-3, 0.0, 1.0, "uC + ADC draw"},
        {"min_lux", Unit::kLux, 1500.0, 0.0, kLuxMax, "supply floor"},
    };
    e.ops_per_decision = 6.0;  // ADC read, subtract, compare, add, clamp
    e.period_key = "period";
    e.factory = [](const ResolvedSpec& s) -> std::unique_ptr<MpptController> {
      HillClimbingController::Params p;
      p.voltage_step = s.value("step");
      p.update_period = s.value("period");
      p.start_voltage = s.value("start");
      p.max_voltage = s.value("vmax");
      p.overhead = s.value("overhead");
      p.min_lux = s.value("min_lux");
      return std::make_unique<HillClimbingController>(p);
    };
    r.add(std::move(e));
  }

  {
    Registry::Entry e;
    e.name = "inccond";
    e.summary = "incremental conductance [2]: dI/dV vs -I/V on the same uC hardware";
    e.params = {
        {"step", Unit::kVoltage, 0.05, 1e-4, 1.0, "voltage step"},
        {"period", Unit::kTime, 1.0, 0.01, 3600.0, "decision cadence"},
        {"start", Unit::kVoltage, 2.0, 0.0, 12.0, "initial operating point"},
        {"vmax", Unit::kVoltage, 8.0, 0.1, 24.0, "slew limit"},
        {"tol", Unit::kNone, 1e-7, 0.0, 1.0, "conductance match tolerance [A/V]"},
        {"overhead", Unit::kPower, 1.0e-3, 0.0, 1.0, "uC + ADC draw"},
        {"min_lux", Unit::kLux, 1500.0, 0.0, kLuxMax, "supply floor"},
    };
    e.ops_per_decision = 10.0;  // two ADC reads, divide, compare chain
    e.period_key = "period";
    e.factory = [](const ResolvedSpec& s) -> std::unique_ptr<MpptController> {
      IncrementalConductanceController::Params p;
      p.voltage_step = s.value("step");
      p.update_period = s.value("period");
      p.start_voltage = s.value("start");
      p.max_voltage = s.value("vmax");
      p.tolerance = s.value("tol");
      p.overhead = s.value("overhead");
      p.min_lux = s.value("min_lux");
      return std::make_unique<IncrementalConductanceController>(p);
    };
    r.add(std::move(e));
  }

  {
    Registry::Entry e;
    e.name = "graddesc";
    e.summary =
        "adaptive gradient-descent tracker (arXiv 2511.20895): lr anneals on overshoot";
    e.params = {
        {"lr", Unit::kNone, 0.05, 1e-5, 100.0, "initial learning rate [V^2/W]"},
        {"decay", Unit::kNone, 0.9, 0.1, 1.0, "lr multiplier on sign reversal"},
        {"lr_min", Unit::kNone, 1e-3, 0.0, 10.0, "learning-rate floor"},
        {"period", Unit::kTime, 1.0, 0.01, 3600.0, "decision cadence"},
        {"start", Unit::kVoltage, 2.0, 0.0, 12.0, "initial operating point"},
        {"vmax", Unit::kVoltage, 8.0, 0.1, 24.0, "slew limit"},
        {"max_step", Unit::kVoltage, 0.2, 1e-3, 5.0, "per-decision voltage bound"},
        {"probe", Unit::kVoltage, 0.02, 1e-4, 1.0, "bootstrap perturbation"},
        {"overhead", Unit::kPower, 120e-6, 0.0, 1.0, "low-duty MCU + ADC draw"},
        {"min_lux", Unit::kLux, 400.0, 0.0, kLuxMax, "supply floor"},
    };
    e.ops_per_decision = 14.0;  // gradient divide, lr multiply, clamps, history
    e.period_key = "period";
    e.factory = [](const ResolvedSpec& s) -> std::unique_ptr<MpptController> {
      GradientDescentController::Params p;
      p.learning_rate = s.value("lr");
      p.decay = s.value("decay");
      p.lr_min = s.value("lr_min");
      p.update_period = s.value("period");
      p.start_voltage = s.value("start");
      p.max_voltage = s.value("vmax");
      p.max_step = s.value("max_step");
      p.probe_step = s.value("probe");
      p.overhead = s.value("overhead");
      p.min_lux = s.value("min_lux");
      return std::make_unique<GradientDescentController>(p);
    };
    r.add(std::move(e));
  }

  {
    Registry::Entry e;
    e.name = "pilot";
    e.summary = "pilot-cell FOCV [5]: matched open-circuit cell, ~300 uW support";
    e.params = {
        {"k", Unit::kNone, 0.60, 0.05, 0.95, "FOCV fraction"},
        {"scale", Unit::kNone, 1.0, 0.01, 100.0, "main Voc / pilot Voc ratio"},
        {"mismatch", Unit::kNone, 0.97, 0.5, 1.5, "systematic pilot error"},
        {"overhead", Unit::kPower, 300e-6, 0.0, 1.0, "support circuitry"},
        {"min_lux", Unit::kLux, 500.0, 0.0, kLuxMax, "supply floor"},
    };
    e.factory = [](const ResolvedSpec& s) -> std::unique_ptr<MpptController> {
      PilotCellFocvController::Params p;
      p.k = s.value("k");
      p.pilot_scale = s.value("scale");
      p.mismatch = s.value("mismatch");
      p.overhead = s.value("overhead");
      p.min_lux = s.value("min_lux");
      return std::make_unique<PilotCellFocvController>(p);
    };
    r.add(std::move(e));
  }

  {
    Registry::Entry e;
    e.name = "photo";
    e.summary = "photodetector proxy (AmbiMax [6]): Vset = a + b ln(lux), two-point cal";
    e.params = {
        {"lux1", Unit::kLux, 500.0, 1.0, kLuxMax, "calibration point 1 illuminance"},
        {"v1", Unit::kVoltage, 3.18, 0.0, 24.0, "calibration point 1 Vmpp"},
        {"lux2", Unit::kLux, 5000.0, 1.0, kLuxMax, "calibration point 2 illuminance"},
        {"v2", Unit::kVoltage, 3.22, 0.0, 24.0, "calibration point 2 Vmpp"},
        {"gain_err", Unit::kNone, 1.05, 0.5, 2.0, "photodiode calibration error"},
        {"overhead", Unit::kPower, 1.65e-3, 0.0, 1.0, "500 uA at 3.3 V"},
        {"min_lux", Unit::kLux, 2500.0, 0.0, kLuxMax, "supply floor"},
    };
    e.factory = [](const ResolvedSpec& s) -> std::unique_ptr<MpptController> {
      PhotodetectorController::Params base;
      base.sensor_gain_error = s.value("gain_err");
      base.overhead = s.value("overhead");
      base.min_lux = s.value("min_lux");
      return std::make_unique<PhotodetectorController>(PhotodetectorController::calibrate(
          s.value("lux1"), s.value("v1"), s.value("lux2"), s.value("v2"), base));
    };
    r.add(std::move(e));
  }

  {
    Registry::Entry e;
    e.name = "periodic";
    e.summary = "100 ms periodic-disconnect FOCV [4]: frequent sampling, ~2 mW";
    e.params = {
        {"k", Unit::kNone, 0.60, 0.05, 0.95, "FOCV fraction"},
        {"period", Unit::kTime, 100e-3, 1e-3, 3600.0, "disconnect period"},
        {"sample", Unit::kTime, 5e-3, 1e-4, 10.0, "open-circuit dwell"},
        {"overhead", Unit::kPower, 2.0e-3, 0.0, 1.0, "controller draw"},
        {"min_lux", Unit::kLux, 3000.0, 0.0, kLuxMax, "supply floor"},
    };
    e.ops_per_decision = 4.0;  // timer, S&H trigger, compare
    e.period_key = "period";
    e.factory = [](const ResolvedSpec& s) -> std::unique_ptr<MpptController> {
      PeriodicDisconnectFocvController::Params p;
      p.k = s.value("k");
      p.period = s.value("period");
      p.sample_duration = s.value("sample");
      p.overhead = s.value("overhead");
      p.min_lux = s.value("min_lux");
      return std::make_unique<PeriodicDisconnectFocvController>(p);
    };
    r.add(std::move(e));
  }

  {
    Registry::Entry e;
    e.name = "fixed";
    e.summary = "fixed-voltage operation [8]: reference IC, correct only near design lux";
    e.params = {
        {"v", Unit::kVoltage, 3.0, 0.0, 24.0, "design operating point"},
        {"overhead", Unit::kPower, 36.3e-6, 0.0, 1.0, "reference IC draw"},
        {"min_lux", Unit::kLux, 150.0, 0.0, kLuxMax, "supply floor"},
    };
    e.factory = [](const ResolvedSpec& s) -> std::unique_ptr<MpptController> {
      FixedVoltageController::Params p;
      p.voltage = s.value("v");
      p.overhead = s.value("overhead");
      p.min_lux = s.value("min_lux");
      return std::make_unique<FixedVoltageController>(p);
    };
    r.add(std::move(e));
  }

  {
    Registry::Entry e;
    e.name = "direct";
    e.summary = "no MPPT [7]: diode-coupled to the store, operates at store voltage";
    e.params = {
        {"drop", Unit::kVoltage, 0.25, 0.0, 1.0, "Schottky diode drop"},
        {"overhead", Unit::kPower, 0.0, 0.0, 1.0, "none"},
    };
    e.factory = [](const ResolvedSpec& s) -> std::unique_ptr<MpptController> {
      DirectConnectionController::Params p;
      p.diode_drop = s.value("drop");
      p.overhead = s.value("overhead");
      return std::make_unique<DirectConnectionController>(p);
    };
    r.add(std::move(e));
  }
}

}  // namespace

}  // namespace focv::mppt
