// Extension bench: switch-level validation of the converter model.
//
// The paper's modified buck-boost "acts to maintain a constant voltage
// across its input terminals" (Section III-A). The long-horizon benches
// use an averaged efficiency model for it (DESIGN.md §5.1); here the
// hysteretic input-regulated converter is simulated switch by switch
// (inductor, freewheel diode, comparator, series MOSFET) and its input
// regulation and efficiency are compared against the averaged model.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "circuit/transient.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "core/netlists.hpp"
#include "power/converter.hpp"
#include "pv/cell_library.hpp"

namespace {

using namespace focv;
using namespace focv::circuit;

struct ConverterRun {
  double pv_avg = 0.0;
  double ripple = 0.0;
  double f_sw = 0.0;
  double p_in = 0.0;
  double p_out = 0.0;
  Trace trace{std::vector<std::string>{}};
};

ConverterRun run_converter(double lux) {
  Circuit ckt;
  pv::Conditions c;
  c.illuminance_lux = lux;
  const double voc = pv::sanyo_am1815().open_circuit_voltage(c);
  const double held = voc * 0.298;
  core::build_switching_converter(ckt, pv::sanyo_am1815(), c, held, 2.5);
  TransientOptions opt;
  opt.t_stop = 20e-3;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-7;
  opt.dt_max = 20e-6;
  opt.dv_step_max = 0.3;
  ConverterRun r;
  r.trace = transient_analyze(ckt, opt);
  const double t0 = 10e-3, t1 = 20e-3;
  r.pv_avg = r.trace.time_average("conv_pv", t0, t1);
  r.ripple = r.trace.maximum("conv_pv", t0, t1) - r.trace.minimum("conv_pv", t0, t1);
  int edges = 0;
  for (const double e : r.trace.crossing_times("conv_gate", 1.65, true)) {
    if (e > t0 && e < t1) ++edges;
  }
  r.f_sw = edges / (t1 - t0);
  // Input power: P = V * I of the cell at the averaged operating point.
  const double i_cell = pv::sanyo_am1815().current(r.pv_avg, c);
  r.p_in = r.pv_avg * i_cell;
  // Output power: inductor current delivered at the output voltage.
  const double i_l = r.trace.time_average("I(conv_L)", t0, t1);
  const double v_out = r.trace.time_average("conv_out", t0, t1);
  r.p_out = i_l * v_out;
  return r;
}

void reproduce_converter() {
  bench::print_header(
      "Extension -- switch-level hysteretic converter vs the averaged model",
      "Section III-A: the converter holds its input at the HELD_SAMPLE setpoint");

  const power::BuckBoostConverter averaged;

  ConsoleTable table({"lux", "PV avg [V]", "setpoint [V]", "ripple [mV]", "f_sw [kHz]",
                      "eff switch-level [%]", "eff averaged model [%]"});
  for (const double lux : {500.0, 1000.0, 3000.0}) {
    pv::Conditions c;
    c.illuminance_lux = lux;
    const double target = 2.0 * 0.298 * pv::sanyo_am1815().open_circuit_voltage(c);
    const ConverterRun r = run_converter(lux);
    table.add_row({ConsoleTable::num(lux, 0), ConsoleTable::num(r.pv_avg, 3),
                   ConsoleTable::num(target, 3), ConsoleTable::num(r.ripple * 1e3, 0),
                   ConsoleTable::num(r.f_sw / 1e3, 2),
                   ConsoleTable::num(r.p_out / r.p_in * 100.0, 1),
                   ConsoleTable::num(averaged.efficiency(r.p_in, r.pv_avg) * 100.0, 1)});
  }
  table.print(std::cout);

  // Waveform detail at 1000 lux.
  const ConverterRun detail = run_converter(1000.0);
  std::vector<double> t_ms, pvv, sw;
  for (int i = 0; i <= 120; ++i) {
    const double t = 10e-3 + 8e-3 * i / 120.0;
    t_ms.push_back(t * 1e3);
    pvv.push_back(detail.trace.at("conv_pv", t));
    sw.push_back(detail.trace.at("conv_gate", t));
  }
  AsciiPlotOptions popt;
  popt.title = "Input-voltage regulation ripple (1000 lux)";
  popt.x_label = "time [ms]";
  popt.y_label = "voltage [V]";
  popt.height = 14;
  ascii_plot(std::cout, {{t_ms, pvv, 'v', "PV input"}, {t_ms, sw, 'g', "switch gate"}}, popt);

  bench::print_note(
      "The switch-level input stays within ~1% (plus ripple) of the HELD/alpha "
      "setpoint and the realised efficiency lands in the averaged model's range, "
      "justifying the averaged substitution for 24 h scenarios.");
}

void bm_switching_converter(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_converter(1000.0));
  }
}
BENCHMARK(bm_switching_converter)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_converter();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
