// Extension bench: temperature robustness.
//
// A PV cell's Voc falls with temperature (the a-Si module loses tens of
// millivolts per kelvin). FOCV tracks that automatically — the setpoint
// is derived from the live Voc — while a fixed-voltage design [8] holds
// the operating point it was trimmed at. This bench sweeps cell
// temperature and compares the two, plus the effect on the paper's
// Table I quantities.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/focv_system.hpp"
#include "mppt/baselines.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "pv/cell_library.hpp"

namespace {

using namespace focv;

void reproduce_temperature() {
  bench::print_header(
      "Extension -- temperature sweep",
      "FOCV derives its setpoint from the live Voc, so the circuit ratio (Table I's "
      "k) holds at any cell temperature");

  const pv::MertenAsiModel& cell = pv::sanyo_am1815();
  auto focv_ctl = core::make_paper_controller();
  mppt::FixedVoltageController fixed;  // trimmed at the nominal 27 degC point

  ConsoleTable table({"cell temp [degC]", "Voc [V]", "Vmpp [V]", "FOCV setpoint [V]",
                      "eff FOCV [%]", "eff fixed 3.0 V [%]"});
  for (const double temp_c : {-10.0, 5.0, 27.0, 45.0, 60.0}) {
    pv::Conditions c;
    c.illuminance_lux = 1000.0;
    c.temperature_k = temp_c + 273.15;
    const double voc = cell.open_circuit_voltage(c);
    const pv::MppResult mpp = cell.maximum_power_point(c);
    focv_ctl.reset();
    mppt::SensedInputs s;
    s.time = 0.0;
    s.dt = 1.0;
    s.voc = voc;
    const double v_focv = focv_ctl.step(s).pv_voltage;
    const double v_fixed = fixed.step(s).pv_voltage;
    table.add_row({ConsoleTable::num(temp_c, 0), ConsoleTable::num(voc, 3),
                   ConsoleTable::num(mpp.voltage, 3), ConsoleTable::num(v_focv, 3),
                   ConsoleTable::num(cell.tracking_efficiency(v_focv, c) * 100.0, 2),
                   ConsoleTable::num(cell.tracking_efficiency(v_fixed, c) * 100.0, 2)});
  }
  table.print(std::cout);

  // Table I quantities vs temperature: the circuit ratio is temperature
  // independent (resistor ratios), so HELD follows Voc exactly.
  ConsoleTable t1({"cell temp [degC]", "Voc @1000 lux [V]", "HELD [V]", "k [%]"});
  for (const double temp_c : {0.0, 27.0, 50.0}) {
    pv::Conditions c;
    c.illuminance_lux = 1000.0;
    c.temperature_k = temp_c + 273.15;
    const double voc = cell.open_circuit_voltage(c);
    auto ctl = core::make_paper_controller();
    mppt::SensedInputs s;
    s.time = 0.0;
    s.dt = 1.0;
    s.voc = voc;
    (void)ctl.step(s);
    const double held = ctl.held_sample(1.0);
    t1.add_row({ConsoleTable::num(temp_c, 0), ConsoleTable::num(voc, 3),
                ConsoleTable::num(held, 3), ConsoleTable::num(2.0 * held / voc * 100.0, 1)});
  }
  t1.print(std::cout);

  bench::print_note(
      "Between -10 and +60 degC the Voc moves by more than a volt while the FOCV "
      "ratio stays pinned at 59.6% (it is set by resistors): HELD simply follows "
      "the cell, reproducing Table I's constancy at any temperature. On this "
      "calibrated cell the P-V maximum is broad enough that a well-trimmed fixed "
      "voltage also survives the sweep (both stay above 98.5%) -- the honest "
      "comparison notes of EXPERIMENTS.md apply here too.");
}

void bm_temperature_sweep(benchmark::State& state) {
  const pv::MertenAsiModel& cell = pv::sanyo_am1815();
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  double t = 280.0;
  for (auto _ : state) {
    c.temperature_k = t;
    t = (t > 330.0) ? 280.0 : t + 1.0;
    benchmark::DoNotOptimize(cell.maximum_power_point(c));
  }
}
BENCHMARK(bm_temperature_sweep);

}  // namespace

int main(int argc, char** argv) {
  reproduce_temperature();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
