// Extension bench: AC small-signal analysis of the converter input
// regulation loop.
//
// During development, a textbook two-pole error-amplifier input stage
// limit-cycled (visible as a 7x inflated supply current); the shipped
// netlist uses a first-order shunt regulator instead. This bench runs
// the MNA AC analysis on the regulated system and shows the input node
// behaves as a clean single pole — the analytic counterpart of that
// debugging story, and a demonstration of the engine's AC capability.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "circuit/ac_analysis.hpp"
#include "circuit/transient.hpp"
#include "circuit/devices_passive.hpp"
#include "circuit/devices_sources.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "core/netlists.hpp"
#include "pv/cell_library.hpp"

namespace {

using namespace focv;
using namespace focv::circuit;

void reproduce_loop_stability() {
  bench::print_header(
      "Extension -- AC analysis of the converter input regulation loop",
      "the input stage that holds the PV at HELD/alpha must be stable at every "
      "illuminance (a two-pole version limit-cycles; see DESIGN.md)");

  ConsoleTable table({"lux", "input-node corner [Hz]", "peaking above DC [dB]",
                      "verdict"});
  for (const double lux : {200.0, 1000.0, 5000.0}) {
    // Regulated operating point: the converter holds the PV node, the
    // hold capacitor carries the sampled value. Reproduce that bias by
    // pinning HELD with a source (the S&H output impedance is low) and
    // probing the PV node with a small AC current.
    Circuit ckt;
    pv::Conditions c;
    c.illuminance_lux = lux;
    const double voc = pv::sanyo_am1815().open_circuit_voltage(c);

    const NodeId pv_node = ckt.node("pv");
    const NodeId held = ckt.node("held");
    const NodeId sense = ckt.node("sense");
    ckt.add<pv::PvCellDevice>("PV", pv_node, kGround, pv::sanyo_am1815(), c);
    ckt.add<Capacitor>("Cpv", pv_node, kGround, 10e-9);
    ckt.add<VoltageSource>("Vheld", held, kGround, Waveform::dc(voc * 0.298));
    ckt.add<Resistor>("Rs1", pv_node, sense, 10e6);
    ckt.add<Resistor>("Rs2", sense, kGround, 10e6);
    VSwitch::Params reg;
    reg.on_resistance = 50.0;
    reg.off_resistance = 1e12;
    reg.threshold = 0.01;
    reg.transition_width = 0.04;
    ckt.add<VSwitch>("Sconv", pv_node, kGround, sense, held, reg);
    // AC probe: 1 (unit) current into the PV node.
    ckt.add<CurrentSource>("Iprobe", kGround, pv_node, Waveform::dc(1e-9));

    // The stiff shunt feedback cycles a cold DC Newton; settle the
    // regulator with a short transient and seed the operating point
    // from its final state (the unknown ordering matches).
    TransientOptions settle;
    settle.t_stop = 5e-3;
    settle.start_from_dc = false;
    settle.dt_initial = 1e-7;
    settle.dv_step_max = 0.3;
    const Trace settled = transient_analyze(ckt, settle);
    Vector x_guess;
    for (const auto& name : settled.signal_names()) {
      x_guess.push_back(settled.signal(name).back());
    }

    AcOptions opt;
    opt.initial_guess = &x_guess;
    opt.f_start = 0.1;
    opt.f_stop = 1e6;
    opt.points_per_decade = 15;
    opt.stimulus = "Iprobe";
    const AcSweep sweep = ac_analyze(ckt, opt);

    const auto mag = sweep.magnitude_db("pv");
    double peak = mag.front();
    for (const double m : mag) peak = std::max(peak, m);
    const double peaking = peak - mag.front();
    const double corner = sweep.corner_frequency("pv");
    table.add_row({ConsoleTable::num(lux, 0),
                   corner > 0 ? ConsoleTable::num(corner, 1) : "none in sweep",
                   ConsoleTable::num(peaking, 2),
                   peaking < 1.0 ? "first-order, stable" : "PEAKING (check loop!)"});

    if (lux == 1000.0) {
      std::vector<double> logf;
      for (const double f : sweep.frequency()) logf.push_back(std::log10(f));
      AsciiPlotOptions popt;
      popt.title = "PV input-node impedance vs frequency at 1000 lux (dB, rel.)";
      popt.x_label = "log10 frequency [Hz]";
      popt.y_label = "|Z| [dB]";
      popt.height = 12;
      ascii_plot(std::cout, {{logf, mag, '*', "|Z(pv)|"}}, popt);
    }
  }
  table.print(std::cout);

  bench::print_note(
      "No peaking at any illuminance: the shunt-regulated input is first-order, so "
      "the supply current measured in bench/power_budget is quiescent draw, not "
      "limit-cycle slosh.");
}

void bm_ac_sweep_system(benchmark::State& state) {
  for (auto _ : state) {
    Circuit ckt;
    pv::Conditions c;
    c.illuminance_lux = 1000.0;
    const NodeId pv_node = ckt.node("pv");
    ckt.add<pv::PvCellDevice>("PV", pv_node, kGround, pv::sanyo_am1815(), c);
    ckt.add<Capacitor>("Cpv", pv_node, kGround, 10e-9);
    ckt.add<CurrentSource>("Iprobe", kGround, pv_node, Waveform::dc(1e-9));
    AcOptions opt;
    opt.stimulus = "Iprobe";
    benchmark::DoNotOptimize(ac_analyze(ckt, opt));
  }
}
BENCHMARK(bm_ac_sweep_system)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_loop_stability();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
