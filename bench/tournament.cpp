// Parameterized MPPT tournament: every registered controller spec
// cross-producted with the deployment scenario classes, scored on
// tracking efficiency, harvested/net energy AND a complexity-aware
// compute-cost axis (registry ops-per-decision at ~1 nJ/op on a
// low-power MCU — the performance/complexity trade of arXiv
// 2511.20895). The grid runs through the focv_runtime sweep engine, so
// the leaderboard is bit-identical for any --jobs count; the
// "focv-tournament/v1" JSON export is the CI artifact.
//
//   tournament --list                 print the controller catalog
//   tournament --smoke                short traces (CI gate)
//   tournament --controller SPEC      override the roster (repeatable)
//   tournament --json PATH            write the leaderboard JSON
//   tournament --jobs N               sweep worker threads
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/require.hpp"
#include "common/table.hpp"
#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "mppt/registry.hpp"
#include "node/harvester_node.hpp"
#include "obs/cli.hpp"
#include "power/coldstart.hpp"
#include "pv/cell_library.hpp"
#include "runtime/sweep.hpp"

namespace {

using namespace focv;

/// MCU energy per controller arithmetic/ADC operation (complexity axis).
constexpr double kJoulePerOp = 1e-9;

/// Shortest round-trip double formatting (matches the fleet/sweep
/// exports) — keeps the JSON byte-stable across runs and thread counts.
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// One scenario class of the grid: a trace plus the node configuration
/// that makes the class what it is (store state, cold-start circuit).
struct ScenarioClass {
  std::string name;
  env::LightTrace trace;
  std::function<void(node::NodeConfig&)> configure;
};

std::vector<ScenarioClass> make_scenarios(bool smoke) {
  const auto store_at = [](double volts) {
    return [volts](node::NodeConfig& c) { c.storage.initial_voltage = volts; };
  };
  const auto cold = [](node::NodeConfig& c) {
    c.storage.initial_voltage = 0.5;
    c.coldstart = power::ColdStartCircuit::Params{};
  };

  std::vector<ScenarioClass> out;
  if (smoke) {
    // Same class names and store states, 30-minute constant/step traces.
    out.push_back({"indoor_office", env::constant_light(500.0, 0.0, 1800.0),
                   store_at(2.5)});
    out.push_back({"outdoor", env::constant_light(0.0, 20e3, 1800.0), store_at(3.0)});
    out.push_back({"wearable_mixed", env::step_light(500.0, 20e3, 900.0, 1800.0),
                   store_at(3.0)});
    out.push_back({"coldstart", env::constant_light(500.0, 0.0, 1800.0), cold});
    return out;
  }
  out.push_back({"indoor_office", env::office_desk_mixed(), store_at(2.5)});
  out.push_back({"outdoor", env::outdoor_day(), store_at(3.0)});
  out.push_back({"wearable_mixed", env::semi_mobile_day(), store_at(3.0)});
  out.push_back({"coldstart", env::office_desk_mixed(), cold});
  return out;
}

/// Default roster: every builtin entry, the paper's system first.
std::vector<std::string> default_roster() {
  return {"focv",  "pando", "inccond", "graddesc", "pilot",
          "photo", "periodic", "fixed", "direct"};
}

struct ScenarioOutcome {
  std::string scenario;
  double duration_s = 0.0;
  bool failed = false;
  std::string error;
  double tracking_efficiency = 0.0;
  double harvested_j = 0.0;
  double net_j = 0.0;
  double normalized_net = 0.0;  ///< net vs the scenario's best positive net
  double coldstart_s = -1.0;
  double downtime_s = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t model_evals = 0;
  double compute_j = 0.0;  ///< decision compute over the scenario horizon
};

struct ControllerResult {
  std::string spec;          ///< canonical registry spec (leaderboard key)
  std::string display_name;  ///< MpptController::name()
  double overhead_w = 0.0;
  double ops_per_decision = 0.0;
  double decision_period_s = 0.0;  ///< 0 = continuous/analog law
  double compute_w = 0.0;          ///< ops * 1 nJ / period
  std::vector<ScenarioOutcome> outcomes;
  double score = 0.0;  ///< mean normalized net energy across scenarios
};

std::vector<ControllerResult> run_tournament(const std::vector<std::string>& roster,
                                             const std::vector<ScenarioClass>& scenarios,
                                             int jobs) {
  const mppt::Registry& registry = mppt::Registry::instance();

  std::vector<ControllerResult> results;
  for (const std::string& spec : roster) {
    const mppt::ResolvedSpec resolved = registry.resolve(spec);
    const mppt::Registry::Entry& entry = registry.entry(resolved.name);
    ControllerResult r;
    r.spec = resolved.spec();
    r.display_name = registry.make(resolved)->name();
    r.overhead_w = registry.make(resolved)->overhead_power();
    r.ops_per_decision = entry.ops_per_decision;
    if (!entry.period_key.empty()) {
      r.decision_period_s = resolved.value(entry.period_key);
      if (r.decision_period_s > 0.0) {
        r.compute_w = entry.ops_per_decision * kJoulePerOp / r.decision_period_s;
      }
    }
    results.push_back(std::move(r));
  }

  // One sweep per scenario class (each class owns its NodeConfig base);
  // the controller axis fans out on the pool within each sweep.
  for (const ScenarioClass& sc : scenarios) {
    runtime::SweepSpec sweep;
    sweep.add_cell("AM-1815", pv::sanyo_am1815());
    for (const ControllerResult& r : results) sweep.add_controller(r.spec);
    sweep.add_scenario(sc.name, sc.trace);
    sweep.base.load.report_period = 300.0;
    if (sc.configure) sc.configure(sweep.base);

    runtime::SweepOptions options;
    options.jobs = jobs;
    const runtime::SweepResult result = runtime::run_sweep(sweep, options);

    for (std::size_t i = 0; i < results.size(); ++i) {
      const runtime::SweepRecord& rec = result.at(0, i, 0);
      ScenarioOutcome o;
      o.scenario = sc.name;
      o.duration_s = sc.trace.duration();
      o.failed = rec.failed;
      o.error = rec.error;
      if (!rec.failed) {
        o.tracking_efficiency = rec.report.tracking_efficiency();
        o.harvested_j = rec.report.harvested_energy;
        o.net_j = rec.report.net_energy();
        o.coldstart_s = rec.report.coldstart_time;
        o.downtime_s = rec.report.brownout_time;
        o.steps = rec.report.steps;
        o.model_evals = rec.report.model_evals;
        o.compute_j = results[i].compute_w * o.duration_s;
      }
      results[i].outcomes.push_back(std::move(o));
    }
  }

  // Score: per scenario, net energy normalized by the best positive net
  // in that scenario (0 when nothing nets positive — e.g. every tracker
  // below its supply floor); the leaderboard score is the mean across
  // scenarios, so one great outdoor run cannot buy back an indoor loss.
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    double best = 0.0;
    for (const ControllerResult& r : results) {
      if (!r.outcomes[s].failed) best = std::max(best, r.outcomes[s].net_j);
    }
    for (ControllerResult& r : results) {
      ScenarioOutcome& o = r.outcomes[s];
      o.normalized_net =
          (!o.failed && best > 0.0) ? std::max(0.0, o.net_j) / best : 0.0;
    }
  }
  for (ControllerResult& r : results) {
    double sum = 0.0;
    for (const ScenarioOutcome& o : r.outcomes) sum += o.normalized_net;
    r.score = r.outcomes.empty() ? 0.0 : sum / static_cast<double>(r.outcomes.size());
  }

  // Leaderboard order: score descending, canonical spec as tie-break —
  // deterministic no matter the roster order on the command line.
  std::stable_sort(results.begin(), results.end(),
                   [](const ControllerResult& a, const ControllerResult& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.spec < b.spec;
                   });
  return results;
}

std::string leaderboard_json(const std::vector<ControllerResult>& results,
                             const std::vector<ScenarioClass>& scenarios, bool smoke) {
  std::string out = "{\n";
  out += "  \"schema\": \"focv-tournament/v1\",\n";
  out += "  \"cell\": \"AM-1815\",\n";
  out += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  out += "  \"joule_per_op\": " + fmt(kJoulePerOp) + ",\n";
  out += "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    out += "    {\"name\": \"" + json_escape(scenarios[i].name) +
           "\", \"duration_s\": " + fmt(scenarios[i].trace.duration()) + "}";
    out += i + 1 < scenarios.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"leaderboard\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ControllerResult& r = results[i];
    out += "    {\"rank\": " + std::to_string(i + 1);
    out += ", \"spec\": \"" + json_escape(r.spec) + "\"";
    out += ", \"controller\": \"" + json_escape(r.display_name) + "\"";
    out += ", \"score\": " + fmt(r.score);
    out += ", \"overhead_w\": " + fmt(r.overhead_w);
    out += ", \"compute\": {\"ops_per_decision\": " + fmt(r.ops_per_decision) +
           ", \"decision_period_s\": " + fmt(r.decision_period_s) +
           ", \"power_w\": " + fmt(r.compute_w) + "}";
    out += ",\n     \"scenarios\": [\n";
    for (std::size_t s = 0; s < r.outcomes.size(); ++s) {
      const ScenarioOutcome& o = r.outcomes[s];
      out += "       {\"scenario\": \"" + json_escape(o.scenario) + "\"";
      if (o.failed) {
        out += ", \"failed\": true, \"error\": \"" + json_escape(o.error) + "\"";
      } else {
        out += ", \"tracking_efficiency\": " + fmt(o.tracking_efficiency);
        out += ", \"harvested_j\": " + fmt(o.harvested_j);
        out += ", \"net_j\": " + fmt(o.net_j);
        out += ", \"normalized_net\": " + fmt(o.normalized_net);
        out += ", \"coldstart_s\": " + fmt(o.coldstart_s);
        out += ", \"downtime_s\": " + fmt(o.downtime_s);
        out += ", \"steps\": " + std::to_string(o.steps);
        out += ", \"model_evals\": " + std::to_string(o.model_evals);
        out += ", \"compute_j\": " + fmt(o.compute_j);
      }
      out += "}";
      out += s + 1 < r.outcomes.size() ? ",\n" : "\n";
    }
    out += "     ]}";
    out += i + 1 < results.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

void print_leaderboard(const std::vector<ControllerResult>& results) {
  ConsoleTable table({"rank", "spec", "score", "mean eff", "total net [J]",
                      "overhead", "compute"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ControllerResult& r = results[i];
    double eff_sum = 0.0;
    double net_sum = 0.0;
    std::size_t ok = 0;
    for (const ScenarioOutcome& o : r.outcomes) {
      if (o.failed) continue;
      eff_sum += o.tracking_efficiency;
      net_sum += o.net_j;
      ++ok;
    }
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%.1f uW", r.overhead_w * 1e6);
    char compute[48];
    if (r.decision_period_s > 0.0) {
      std::snprintf(compute, sizeof compute, "%.0f ops / %.3gs", r.ops_per_decision,
                    r.decision_period_s);
    } else {
      std::snprintf(compute, sizeof compute, "analog");
    }
    table.add_row({std::to_string(i + 1), r.spec, ConsoleTable::num(r.score, 3),
                   ConsoleTable::num(ok > 0 ? eff_sum / static_cast<double>(ok) : 0.0, 3),
                   ConsoleTable::num(net_sum, 3), overhead, compute});
  }
  table.print(std::cout);
}

void print_usage() {
  std::printf(
      "usage: tournament [--smoke] [--list] [--jobs N] [--json PATH]\n"
      "                  [--controller SPEC]...\n"
      "                  %s\n\n",
      obs::CliTelemetry::usage());
  std::printf(
      "Controller specs follow the registry grammar `name[key=value,...]`\n"
      "with unit-suffixed values (10mV, 69s, 1mW, 500lux); see --list for\n"
      "the catalog. Repeat --controller to pick the roster (default: every\n"
      "registered controller at default parameters).\n");
}

}  // namespace

int main(int argc, char** argv) {
  core::register_paper_controller();
  int jobs = bench::parse_jobs_flag(argc, argv);

  bool smoke = false;
  std::string json_path;
  std::vector<std::string> roster;
  obs::CliTelemetry telemetry;
  for (int i = 1; i < argc; ++i) {
    if (telemetry.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      std::printf("registered controllers:\n%s",
                  mppt::Registry::instance().catalog().c_str());
      return 0;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--controller") == 0 && i + 1 < argc) {
      roster.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "tournament: unknown argument '%s'\n\n", argv[i]);
      print_usage();
      return 2;
    }
  }
  if (roster.empty()) roster = default_roster();
  telemetry.begin();

  // Fail fast on a bad spec, before any simulation runs.
  try {
    for (const std::string& spec : roster) {
      (void)mppt::Registry::instance().resolve(spec);
    }
  } catch (const mppt::SpecError& e) {
    std::fprintf(stderr, "tournament: %s\n", e.what());
    return 2;
  }

  bench::print_header(
      "MPPT tournament -- registered controllers x deployment scenario classes",
      "only the S&H FOCV affords MPPT across the whole indoor..outdoor range; "
      "digital trackers buy efficiency with decision compute");

  const std::vector<ScenarioClass> scenarios = make_scenarios(smoke);
  const std::vector<ControllerResult> results = run_tournament(roster, scenarios, jobs);
  print_leaderboard(results);
  std::printf("\ngrid: %zu controllers x %zu scenarios%s\n", results.size(),
              scenarios.size(), smoke ? " (smoke traces)" : "");

  if (!json_path.empty()) {
    const std::string json = leaderboard_json(results, scenarios, smoke);
    std::ofstream f(json_path, std::ios::binary);
    require(f.good(), "tournament: cannot open " + json_path);
    f << json;
    require(f.good(), "tournament: write failed for " + json_path);
    std::printf("wrote %s\n", json_path.c_str());
  }
  telemetry.finish();
  return 0;
}
