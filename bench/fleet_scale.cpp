// Fleet-size scaling bench: the struct-of-arrays engine from 10 to
// 1,000,000 nodes on a 24 h horizon.
//
// Each ladder rung runs the SoA engine in both table modes (float and
// int32-quantized), byte-compares the focv-fleet/v1 JSON of a --jobs 1
// run against a --jobs N run on each mode (the determinism contract),
// and up to 10k nodes also times the per-node MacroStepper on the
// identical roster — the "x per node" column is the SoA speedup the
// fleet_soa_* micro cases pin at 10k. Peak RSS is sampled per rung: the
// schedules and curve tables are shared per environment and per-node
// state is transient, so memory must stay far below the 2 GiB budget
// all the way to a million nodes.
//
// Each rung also times the node-major scalar SoA kernel on the float
// roster and byte-compares it against the lane kernel — the "x kern"
// column is the interval-major lane speedup, and "kern ==" is the
// kernel byte-identity contract checked at every scale.
//
//   ./build/bench/fleet_scale             # full ladder, 10 -> 1M nodes
//   ./build/bench/fleet_scale --smoke     # CI-sized ladder, 10 -> 200
//   ./build/bench/fleet_scale --gate100k  # CI gate: 100k nodes, both
//                                         # table modes byte-identical
//                                         # across jobs, RSS < 2048 MiB
//   ./build/bench/fleet_scale --jobs N    # threaded-leg worker count
//                                         # (0 = hardware concurrency;
//                                         # default max(8, hardware))
//
// The shared telemetry flags (--trace/--metrics/--snapshot/--flight)
// record the ladder under focv::obs: fleet_chunk/soa_axis_run spans,
// fleet.soa.* batch counters and the per-node histograms. The
// byte-compare legs are unaffected — telemetry never touches exports.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "env/profiles.hpp"
#include "fleet/fleet.hpp"
#include "fleet/soa.hpp"
#include "node/curve_cache.hpp"
#include "obs/cli.hpp"
#include "pv/cell_library.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/prepared_trace.hpp"

namespace {

/// Peak resident set size so far [MiB] (Linux VmHWM; 0 elsewhere).
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      long kib = 0;
      std::sscanf(line.c_str() + 6, "%ld", &kib);
      return static_cast<double>(kib) / 1024.0;
    }
  }
  return 0.0;
}

struct Environs {
  std::shared_ptr<const focv::env::LightTrace> office, corridor, outdoor;
};

focv::fleet::FleetSpec make_spec(std::size_t nodes, const Environs& env,
                                 focv::fleet::FleetEngine engine,
                                 focv::fleet::TableMode mode,
                                 focv::fleet::SoaKernel kernel = focv::fleet::SoaKernel::kLanes) {
  using namespace focv;
  fleet::FleetSpec spec;
  spec.node_count = nodes;
  spec.root_seed = 2024;
  spec.use_cell(pv::sanyo_am1815());
  spec.add_environment("office_desk", env.office, 0.55);
  spec.add_environment("corridor", env.corridor, 0.25);
  spec.add_environment("outdoor", env.outdoor, 0.20);
  // All three axes batch (focv closed form; fixed/pilot memoryless), so
  // the ladder exercises the SoA sweep itself, not the fallback path.
  spec.add_policy("focv", 0.70);
  spec.add_policy("fixed", 0.15);
  spec.add_policy("pilot", 0.15);
  spec.base.storage.initial_voltage = 2.5;
  spec.base.load.report_period = 120.0;
  spec.base.stepper = node::Stepper::kEvent;
  spec.chunk_size = 4096;  // one SoA sweep per chunk, still >200 parallel grains at 1M
  spec.engine = engine;
  spec.table_mode = mode;
  spec.soa_kernel = kernel;
  return spec;
}

struct PairResult {
  focv::fleet::FleetReport serial;  ///< the jobs=1 reference run
  bool identical = false;           ///< jobs=N JSON byte-equal to jobs=1
};

PairResult run_pair(const focv::fleet::FleetSpec& spec, int jobs, bool analyze_load) {
  focv::fleet::FleetOptions serial;
  serial.jobs = 1;
  serial.analyze_load = analyze_load;
  PairResult out;
  out.serial = focv::fleet::run_fleet(spec, serial);
  focv::fleet::FleetOptions threaded;
  threaded.jobs = jobs;
  threaded.analyze_load = analyze_load;
  const focv::fleet::FleetReport par = focv::fleet::run_fleet(spec, threaded);
  out.identical = par.to_json() == out.serial.to_json();
  // The report must acknowledge the worker count it actually ran with —
  // a silent fallback to one worker would fake the determinism compare.
  if (out.serial.jobs_used != 1 || par.jobs_used != jobs) {
    std::fprintf(stderr, "FAIL: jobs_used %d/%d, expected 1/%d\n", out.serial.jobs_used,
                 par.jobs_used, jobs);
    out.identical = false;
  }
  return out;
}

/// Shared-table footprint of the SoA plan for this spec [bytes].
std::size_t plan_table_bytes(const focv::fleet::FleetSpec& spec) {
  using namespace focv;
  env::SegmentationOptions seg;
  seg.ratio_band = spec.base.events.lux_ratio_band;
  seg.floor = node::CurveCache::kDarkLux;
  std::vector<std::optional<sched::PreparedTrace>> prepared;
  for (const fleet::EnvironmentAxis& e : spec.environments) {
    prepared.emplace_back(std::in_place, *e.trace, *spec.cell, seg);
  }
  node::CurveCache cache(*spec.cell, spec.base.temperature_k,
                         node::CurveCache::Options{spec.base.power_model,
                                                  spec.base.surrogate_points});
  const auto plan =
      fleet::soa::build_plan(spec, fleet::effective_policies(spec), prepared, cache);
  if (!plan) return 0;
  std::size_t bytes = 0;
  for (const fleet::soa::EnvPlan& e : plan->envs) bytes += e.tables.bytes();
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace focv;

  bool smoke = false;
  bool gate100k = false;
  int jobs_arg = -1;  // -1: flag absent
  obs::CliTelemetry telemetry;
  for (int i = 1; i < argc; ++i) {
    if (telemetry.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--gate100k") == 0) gate100k = true;
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs_arg = std::atoi(argv[++i]);
      if (jobs_arg < 0) {
        std::fprintf(stderr, "FAIL: --jobs must be >= 0 (0 = hardware concurrency)\n");
        return 2;
      }
    }
  }
  telemetry.begin();

  std::printf("building the shared 24 h environments...\n");
  Environs environs;
  environs.office = std::make_shared<const env::LightTrace>(env::office_desk_mixed());
  environs.corridor =
      std::make_shared<const env::LightTrace>(environs.office->scaled(0.65, 0.1));
  environs.outdoor = std::make_shared<const env::LightTrace>(env::outdoor_day({}));

  const std::vector<std::size_t> sizes =
      gate100k ? std::vector<std::size_t>{100000}
      : smoke  ? std::vector<std::size_t>{10, 50, 200}
               : std::vector<std::size_t>{10, 100, 1000, 10000, 100000, 1000000};
  // Default: at least 8 workers even on small machines — the point of
  // the threaded leg is contended scheduling against the serial
  // reference. --jobs overrides; --jobs 0 resolves to the hardware
  // concurrency exactly as FleetOptions{jobs=0} would.
  const int jobs = jobs_arg < 0 ? std::max(8, runtime::ThreadPool::default_thread_count())
                   : jobs_arg == 0
                       ? runtime::ThreadPool::default_thread_count()
                       : jobs_arg;
  // Per-node reference column: the identical roster on the per-node
  // MacroStepper, only up to 10k nodes (it is the ~50x slower path the
  // SoA engine replaces; a 1M per-node run would take hours).
  const std::size_t per_node_cap = 10000;

  ConsoleTable table({"nodes", "lanes s", "nodes/s", "scalar s", "x kern", "per-node s",
                      "x per node", "RSS MiB", "neutral %", "float ==", "quant ==",
                      "kern =="});
  bool all_identical = true;
  for (const std::size_t n : sizes) {
    // Load-concurrency analysis sorts O(nodes * bursts) edges — useful
    // reporting at desk scale, pure accounting noise at fleet scale.
    const bool analyze_load = n < 100000;

    const fleet::FleetSpec spec_f =
        make_spec(n, environs, fleet::FleetEngine::kSoa, fleet::TableMode::kFloat);
    const PairResult flt = run_pair(spec_f, jobs, analyze_load);
    const fleet::FleetSpec spec_q =
        make_spec(n, environs, fleet::FleetEngine::kSoa, fleet::TableMode::kQuantized);
    const PairResult qnt = run_pair(spec_q, jobs, analyze_load);
    all_identical = all_identical && flt.identical && qnt.identical;

    // The node-major scalar kernel on the identical float roster: the
    // "x kern" lane speedup, and the byte-identity contract between the
    // two kernels checked at every scale (the quantized leg of that
    // contract is pinned by tests/fleet/soa_lanes_test.cpp).
    const fleet::FleetSpec spec_s = make_spec(n, environs, fleet::FleetEngine::kSoa,
                                              fleet::TableMode::kFloat,
                                              fleet::SoaKernel::kScalar);
    fleet::FleetOptions scalar_opt;
    scalar_opt.jobs = 1;
    scalar_opt.analyze_load = analyze_load;
    const fleet::FleetReport scalar = fleet::run_fleet(spec_s, scalar_opt);
    const bool kern_identical = scalar.to_json() == flt.serial.to_json();
    all_identical = all_identical && kern_identical;

    double per_node_wall = 0.0;
    if (n <= per_node_cap) {
      const fleet::FleetSpec ref_spec =
          make_spec(n, environs, fleet::FleetEngine::kPerNode, fleet::TableMode::kFloat);
      fleet::FleetOptions ref_opt;
      ref_opt.jobs = 1;
      ref_opt.analyze_load = analyze_load;
      per_node_wall = fleet::run_fleet(ref_spec, ref_opt).wall_seconds;
    }

    const double wall = flt.serial.wall_seconds;
    const double scalar_wall = scalar.wall_seconds;
    table.add_row({ConsoleTable::num(static_cast<double>(n), 0),
                   ConsoleTable::num(wall, 3),
                   ConsoleTable::num(static_cast<double>(n) / wall, 0),
                   ConsoleTable::num(scalar_wall, 3),
                   ConsoleTable::num(scalar_wall / wall, 2),
                   per_node_wall > 0.0 ? ConsoleTable::num(per_node_wall, 3) : "-",
                   per_node_wall > 0.0 ? ConsoleTable::num(per_node_wall / wall, 1) : "-",
                   ConsoleTable::num(peak_rss_mib(), 1),
                   ConsoleTable::num(flt.serial.energy_neutral_fraction() * 100.0, 1),
                   flt.identical ? "yes" : "NO", qnt.identical ? "yes" : "NO",
                   kern_identical ? "yes" : "NO"});
    std::printf("  %zu nodes done (%.3f s lanes, %.3f s scalar, %.3f s quantized, jobs=%d)\n",
                n, flt.serial.wall_seconds, scalar_wall, qnt.serial.wall_seconds, jobs);
  }
  table.print(std::cout);

  // Memory model: the dense curve tables are the only per-environment
  // state the sweep touches per node-interval; per-node state is a
  // transient ~200 B scalar struct, so RSS is dominated by the shared
  // traces plus draws/reports of the chunks in flight.
  const std::size_t biggest = sizes.back();
  const std::size_t tb_f = plan_table_bytes(
      make_spec(biggest, environs, fleet::FleetEngine::kSoa, fleet::TableMode::kFloat));
  const std::size_t tb_q = plan_table_bytes(
      make_spec(biggest, environs, fleet::FleetEngine::kSoa, fleet::TableMode::kQuantized));
  const double rss = peak_rss_mib();
  std::printf("shared curve tables: %.1f KiB float, %.1f KiB quantized (all envs)\n",
              static_cast<double>(tb_f) / 1024.0, static_cast<double>(tb_q) / 1024.0);
  std::printf("peak RSS %.1f MiB at %zu nodes (%.1f bytes/node amortised)\n", rss,
              biggest, rss * 1024.0 * 1024.0 / static_cast<double>(biggest));

  if (gate100k && rss >= 2048.0) {
    std::fprintf(stderr, "FAIL: peak RSS %.1f MiB >= 2048 MiB budget at 100k nodes\n", rss);
    return 1;
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: a threaded run or the scalar kernel diverged from the\n"
                         "      serial lane reference\n");
    return 1;
  }
  std::printf("all fleet sizes byte-identical between --jobs 1 and --jobs %d on both\n"
              "table modes, and between the lane and scalar kernels\n", jobs);
  telemetry.finish();
  return 0;
}
