// Fleet-size scaling bench: how the fleet engine behaves from 10 to
// 10,000 nodes on a 24 h horizon.
//
// For each fleet size it reports wall time, throughput, parallel
// speedup and peak RSS (the report accumulator is fixed-size and the
// light traces are shared, so memory must stay flat as N grows), and
// byte-compares the focv-fleet/v1 JSON of a --jobs 1 run against a
// --jobs N run — the determinism contract of the chunked stepper.
//
//   ./build/bench/fleet_scale            # full sweep up to 10,000 nodes
//   ./build/bench/fleet_scale --smoke    # CI-sized sweep up to 200
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "env/profiles.hpp"
#include "fleet/fleet.hpp"
#include "pv/cell_library.hpp"
#include "runtime/thread_pool.hpp"

namespace {

/// Peak resident set size so far [MiB] (Linux VmHWM; 0 elsewhere).
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      long kib = 0;
      std::sscanf(line.c_str() + 6, "%ld", &kib);
      return static_cast<double>(kib) / 1024.0;
    }
  }
  return 0.0;
}

focv::fleet::FleetSpec make_spec(std::size_t nodes, const focv::env::LightTrace& office,
                                 const focv::env::LightTrace& corridor,
                                 const focv::env::LightTrace& outdoor) {
  using namespace focv;
  fleet::FleetSpec spec;
  spec.node_count = nodes;
  spec.root_seed = 2024;
  spec.use_cell(pv::sanyo_am1815());
  spec.add_environment("office_desk", std::shared_ptr<const env::LightTrace>(
                                          std::shared_ptr<const env::LightTrace>(), &office),
                       0.55);
  spec.add_environment("corridor", std::shared_ptr<const env::LightTrace>(
                                       std::shared_ptr<const env::LightTrace>(), &corridor),
                       0.25);
  spec.add_environment("outdoor", std::shared_ptr<const env::LightTrace>(
                                      std::shared_ptr<const env::LightTrace>(), &outdoor),
                       0.20);
  spec.add_policy("focv", 0.70);
  spec.add_policy("fixed", 0.15);
  spec.add_policy("direct", 0.15);
  spec.base.storage.initial_voltage = 2.5;
  spec.base.load.report_period = 120.0;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace focv;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("building the shared 24 h environments...\n");
  const env::LightTrace office = env::office_desk_mixed();
  const env::LightTrace corridor = office.scaled(0.65, 0.1);
  const env::LightTrace outdoor = env::outdoor_day({});

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{10, 50, 200}
            : std::vector<std::size_t>{10, 100, 1000, 10000};
  // At least 8 workers even on small machines: the point of the
  // threaded leg is contended stealing against the serial reference.
  const int jobs = std::max(8, runtime::ThreadPool::default_thread_count());

  ConsoleTable table({"nodes", "jobs", "wall s", "nodes/s", "speedup", "peak RSS MiB",
                      "neutral %", "jobs=1 identical"});
  bool all_identical = true;
  for (const std::size_t n : sizes) {
    const fleet::FleetSpec spec = make_spec(n, office, corridor, outdoor);

    fleet::FleetOptions serial;
    serial.jobs = 1;
    const fleet::FleetReport ref = fleet::run_fleet(spec, serial);

    fleet::FleetOptions threaded;
    threaded.jobs = jobs;
    const fleet::FleetReport report = fleet::run_fleet(spec, threaded);

    const bool identical = report.to_json() == ref.to_json();
    all_identical = all_identical && identical;
    table.add_row({ConsoleTable::num(static_cast<double>(n), 0), std::to_string(jobs),
                   ConsoleTable::num(report.wall_seconds, 2),
                   ConsoleTable::num(static_cast<double>(n) / report.wall_seconds, 0),
                   ConsoleTable::num(ref.wall_seconds / report.wall_seconds, 2),
                   ConsoleTable::num(peak_rss_mib(), 1),
                   ConsoleTable::num(report.energy_neutral_fraction() * 100.0, 1),
                   identical ? "yes" : "NO"});
    std::printf("  %zu nodes done (%.2f s serial, %.2f s with %d jobs)\n", n,
                ref.wall_seconds, report.wall_seconds, jobs);
  }
  table.print(std::cout);

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: a threaded run diverged from the serial reference\n");
    return 1;
  }
  std::printf("all fleet sizes byte-identical between --jobs 1 and --jobs %d\n", jobs);
  return 0;
}
