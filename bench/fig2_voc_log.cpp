// Fig. 2: 24-hour log of the PV cell's open-circuit voltage on an office
// desk lit by a mix of artificial and natural light ("Sunrise, and
// lights-off at the end of the day, can easily be identified").
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "env/profiles.hpp"
#include "env/solar.hpp"
#include "pv/cell_library.hpp"

namespace {

using namespace focv;

void plot_voc_day(const std::string& title, const env::LightTrace& trace) {
  const auto& cell = pv::schott_asi_1116929();
  const std::vector<double> voc = trace.voc_series(cell, 300.15);
  // Thin to ~2-minute points for the plot.
  std::vector<double> hours, volts;
  for (std::size_t i = 0; i < voc.size(); i += 120) {
    hours.push_back(trace.time()[i] / 3600.0);
    volts.push_back(voc[i]);
  }
  AsciiPlotOptions opt;
  opt.title = title;
  opt.x_label = "time of day [h]";
  opt.y_label = "cell Voc [V]";
  ascii_plot(std::cout, {{hours, volts, '*', "Voc"}}, opt);
}

void reproduce_fig2() {
  bench::print_header("Fig. 2 -- 24 h log of PV open-circuit voltage on an office desk",
                      "Voc trace where sunrise and end-of-day lights-off are visible");

  const env::LightTrace office = env::office_desk_mixed();
  plot_voc_day("Fig. 2: office desk, mixed artificial + natural light", office);

  // The identifiable events called out in the caption.
  env::SolarConfig solar;
  const double sunrise_h = env::sunrise_time(solar) / 3600.0;
  const auto voc = office.voc_series(pv::schott_asi_1116929(), 300.15);
  // Lights-off: last time artificial drops to zero while it was lit.
  double lights_off_h = 0.0;
  for (std::size_t i = 1; i < office.size(); ++i) {
    if (office.artificial_lux()[i - 1] > 10.0 && office.artificial_lux()[i] <= 1.0) {
      lights_off_h = office.time()[i] / 3600.0;
    }
  }
  ConsoleTable events({"event", "time of day", "visibility in the trace"});
  events.add_row({"sunrise", ConsoleTable::num(sunrise_h, 2) + " h",
                  "Voc rises from 0 as daylight reaches the desk"});
  events.add_row({"lights on", "7.75 h", "step up to the office level"});
  events.add_row({"lights off", ConsoleTable::num(lights_off_h, 2) + " h",
                  "step down; Voc then follows remaining daylight"});
  events.print(std::cout);

  bench::print_note(
      "The companion measurement campaigns of Section II-B "
      "(the Sunday blinds-closed desk test and the semi-mobile Friday) "
      "are plotted below; the Eq. (2) numbers they feed are reproduced "
      "by bench/sampling_error.");

  plot_voc_day("Section II-B test 1: desk on a Sunday, blinds closed",
               env::desk_sunday_blinds_closed());
  plot_voc_day("Section II-B test 2: semi-mobile day with outdoor lunch",
               env::semi_mobile_day());
}

void bm_trace_generation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(env::office_desk_mixed());
  }
}
BENCHMARK(bm_trace_generation);

void bm_voc_series_24h(benchmark::State& state) {
  const env::LightTrace trace = env::office_desk_mixed();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.voc_series(pv::schott_asi_1116929(), 300.15));
  }
}
BENCHMARK(bm_voc_series_24h);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
