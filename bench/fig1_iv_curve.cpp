// Fig. 1: I-V curve of the Schott Solar 1116929 a-Si cell under
// artificial light, with the MPP at 1000 lux marked.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "pv/cell_library.hpp"

namespace {

using namespace focv;

void reproduce_fig1() {
  bench::print_header(
      "Fig. 1 -- I-V curve of Schott Solar 1116929 a-Si cell under artificial light",
      "curve shape with the MPP at 1000 lux marked (dashed line in the paper)");

  const pv::MertenAsiModel& cell = pv::schott_asi_1116929();
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  c.spectrum = pv::Spectrum::kFluorescent;

  const pv::IVCurve curve = cell.curve(c, 161);
  const pv::MppResult mpp = cell.maximum_power_point(c);
  const double voc = cell.open_circuit_voltage(c);
  const double isc = cell.short_circuit_current(c);

  // I-V curve with the MPP marked.
  std::vector<double> i_ua(curve.current.size());
  for (std::size_t k = 0; k < curve.current.size(); ++k) i_ua[k] = curve.current[k] * 1e6;
  AsciiSeries iv{curve.voltage, i_ua, '*', "I-V at 1000 lux"};
  AsciiSeries mpp_mark{{mpp.voltage, mpp.voltage}, {0.0, mpp.current * 1e6}, '|',
                       "MPP location (paper's dashed line)"};
  AsciiPlotOptions opt;
  opt.title = "Fig. 1: I-V curve, Schott Solar 1116929, 1000 lux fluorescent";
  opt.x_label = "cell voltage [V]";
  opt.y_label = "cell current [uA]";
  ascii_plot(std::cout, {iv, mpp_mark}, opt);

  // P-V view (how the MPP was located).
  std::vector<double> p_uw(curve.power.size());
  for (std::size_t k = 0; k < curve.power.size(); ++k) p_uw[k] = curve.power[k] * 1e6;
  AsciiPlotOptions popt;
  popt.title = "P-V curve (same conditions)";
  popt.x_label = "cell voltage [V]";
  popt.y_label = "cell power [uW]";
  popt.height = 12;
  ascii_plot(std::cout, {{curve.voltage, p_uw, '#', "P-V"}}, popt);

  ConsoleTable table({"quantity", "value", "note"});
  table.add_row({"Voc", ConsoleTable::num(voc, 3) + " V", "open-circuit voltage"});
  table.add_row({"Isc", ConsoleTable::num(isc * 1e6, 1) + " uA", "short-circuit current"});
  table.add_row({"Vmpp", ConsoleTable::num(mpp.voltage, 3) + " V", "dashed line of Fig. 1"});
  table.add_row({"Impp", ConsoleTable::num(mpp.current * 1e6, 1) + " uA", ""});
  table.add_row({"Pmpp", ConsoleTable::num(mpp.power * 1e6, 1) + " uW", ""});
  table.add_row({"k = Vmpp/Voc", ConsoleTable::num(mpp.voltage / voc * 100.0, 1) + " %",
                 "Section II-A: k typically 0.6..0.8 for a-Si"});
  table.add_row({"fill factor", ConsoleTable::num(cell.fill_factor(c) * 100.0, 1) + " %", ""});
  table.print(std::cout);

  bench::print_note(
      "The paper prints no axis values for Fig. 1; this cell model reuses the "
      "AM-1815 junction calibration scaled to the Schott module (DESIGN.md #2), "
      "which lands this module's k slightly below the AM-1815's ~0.6 (the R2 "
      "trim pot absorbs per-module k, Section IV-A). The reproduced shape -- "
      "linear-ish photo-shunt droop into a soft knee at the MPP -- is the "
      "relevant comparison.");

  // Sweep a few intensities like the lamp tests behind Fig. 1.
  ConsoleTable sweep({"lux", "Voc [V]", "Vmpp [V]", "Impp [uA]", "Pmpp [uW]", "k [%]"});
  for (const double lux : {200.0, 500.0, 1000.0, 2000.0, 5000.0}) {
    c.illuminance_lux = lux;
    const pv::MppResult m = cell.maximum_power_point(c);
    const double v = cell.open_circuit_voltage(c);
    sweep.add_row({ConsoleTable::num(lux, 0), ConsoleTable::num(v, 3),
                   ConsoleTable::num(m.voltage, 3), ConsoleTable::num(m.current * 1e6, 1),
                   ConsoleTable::num(m.power * 1e6, 1),
                   ConsoleTable::num(m.voltage / v * 100.0, 1)});
  }
  sweep.print(std::cout);
}

void bm_iv_curve_solve(benchmark::State& state) {
  const pv::MertenAsiModel& cell = pv::schott_asi_1116929();
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.curve(c, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(bm_iv_curve_solve)->Arg(101)->Arg(1001);

void bm_mpp_solve(benchmark::State& state) {
  const pv::MertenAsiModel& cell = pv::schott_asi_1116929();
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.maximum_power_point(c));
  }
}
BENCHMARK(bm_mpp_solve);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
