// Section II-B: Eq. (2) worst-case mean sampling error analysis.
// Paper numbers: at a 1-minute hold period the desk-mounted 24 h test
// gives E = 12.7 mV and the semi-mobile test 24.1 mV; these map to MPP
// voltage errors of ~7.7 mV and ~14.7 mV, i.e. an efficiency loss below
// 1% -- justifying hold periods > 60 s.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "analysis/sampling_error.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "env/profiles.hpp"
#include "pv/cell_library.hpp"

namespace {

using namespace focv;

void reproduce_sampling_error() {
  bench::print_header(
      "Section II-B -- Eq. (2) sampling-error analysis",
      "60 s hold: E = 12.7 mV (desk) / 24.1 mV (semi-mobile); MPP error 7.7 / 14.7 mV; "
      "efficiency loss < 1%");

  const auto& cell = pv::schott_asi_1116929();
  const env::LightTrace desk = env::desk_sunday_blinds_closed();
  const env::LightTrace mobile = env::semi_mobile_day();
  const std::vector<double> voc_desk = desk.voc_series(cell, 300.15);
  const std::vector<double> voc_mobile = mobile.voc_series(cell, 300.15);

  const std::vector<double> periods = {5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0};
  const auto sweep_desk = analysis::error_vs_period(voc_desk, 1.0, periods);
  const auto sweep_mobile = analysis::error_vs_period(voc_mobile, 1.0, periods);

  ConsoleTable table({"hold period [s]", "E desk [mV]", "E semi-mobile [mV]"});
  for (std::size_t i = 0; i < periods.size(); ++i) {
    table.add_row({ConsoleTable::num(periods[i], 0),
                   ConsoleTable::num(sweep_desk[i].error * 1e3, 2),
                   ConsoleTable::num(sweep_mobile[i].error * 1e3, 2)});
  }
  table.print(std::cout);

  const double e_desk = analysis::worst_case_mean_error(voc_desk, 60);
  const double e_mobile = analysis::worst_case_mean_error(voc_mobile, 60);
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  const double k = cell.k_factor(c);
  const double mpp_err_desk = analysis::mpp_voltage_error(e_desk, k);
  const double mpp_err_mobile = analysis::mpp_voltage_error(e_mobile, k);

  ConsoleTable summary({"quantity", "paper", "this reproduction"});
  summary.add_row({"E @ 60 s, desk test", "12.7 mV", ConsoleTable::num(e_desk * 1e3, 1) + " mV"});
  summary.add_row(
      {"E @ 60 s, semi-mobile", "24.1 mV", ConsoleTable::num(e_mobile * 1e3, 1) + " mV"});
  summary.add_row({"MPP-voltage error, desk", "~7.7 mV",
                   ConsoleTable::num(mpp_err_desk * 1e3, 1) + " mV"});
  summary.add_row({"MPP-voltage error, semi-mobile", "~14.7 mV",
                   ConsoleTable::num(mpp_err_mobile * 1e3, 1) + " mV"});
  const double loss =
      analysis::efficiency_loss_at_offset(cell, c, std::max(mpp_err_desk, mpp_err_mobile));
  summary.add_row({"worst efficiency loss", "< 1%",
                   ConsoleTable::num(loss * 100.0, 3) + " %"});
  summary.print(std::cout);

  bench::print_note(
      "Conclusion reproduced: even the semi-mobile worst case costs well under 1% of "
      "the harvest, so a hold period > 60 s is justified (the design choice that makes "
      "the 8 uA sample-and-hold possible).");
}

void bm_eq2_24h_trace(benchmark::State& state) {
  const env::LightTrace desk = env::desk_sunday_blinds_closed();
  const auto voc = desk.voc_series(pv::schott_asi_1116929(), 300.15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::worst_case_mean_error(voc, static_cast<std::size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(voc.size()));
}
BENCHMARK(bm_eq2_24h_trace)->Arg(60)->Arg(600);

}  // namespace

int main(int argc, char** argv) {
  reproduce_sampling_error();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
