// Sections I / IV-B: comparison against the state of the art. The paper
// positions the proposed 8 uA sample-and-hold against: hill climbing
// (needs a microcontroller) [2], 100 ms-sampling FOCV at 2 mW [4], the
// pilot-cell harvester at ~300 uW [5], the photodetector-based AmbiMax
// at ~500 uA [6], no-MPPT direct connection [7], and fixed-voltage
// operation via a reference IC [8]. The claim: only the proposed system
// can afford MPPT across the full indoor..outdoor range.
//
// The whole controllers x scenarios matrix runs through the
// focv_runtime sweep engine (pass `--jobs N` to pick the worker count;
// the tables are bit-identical for any N). The shared telemetry flags
// (--trace/--metrics/--snapshot/--flight) capture the reproduction
// pass — one span per sweep job with queue wait and steal statistics —
// before the google-benchmark timing loops run with telemetry off.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "mppt/baselines.hpp"
#include "node/harvester_node.hpp"
#include "obs/cli.hpp"
#include "obs/obs.hpp"
#include "pv/cell_library.hpp"
#include "runtime/sweep.hpp"

namespace {

using namespace focv;

int g_jobs = 0;  // --jobs N (0 = hardware concurrency)

runtime::SweepSpec make_comparison_spec() {
  // Every technique is built through the controller registry (the
  // "photo" entry's calibration defaults are this bench's two-point
  // AmbiMax fit); the table keeps its citation-style display names.
  core::register_paper_controller();
  const mppt::Registry& registry = mppt::Registry::instance();
  runtime::SweepSpec spec;
  spec.add_cell("AM-1815", pv::sanyo_am1815());
  spec.add_controller("proposed (FOCV S&H)", registry.make("focv"));
  spec.add_controller("hill climbing [2]", registry.make("pando"));
  spec.add_controller("inc. conductance [2]", registry.make("inccond"));
  spec.add_controller("100 ms FOCV [4]", registry.make("periodic"));
  spec.add_controller("pilot cell [5]", registry.make("pilot"));
  spec.add_controller("photodetector [6]", registry.make("photo"));
  spec.add_controller("no MPPT, direct [7]", registry.make("direct"));
  spec.add_controller("fixed voltage [8]", registry.make("fixed"));

  spec.add_scenario("office, constant 500 lux, 4 h",
                    env::constant_light(500.0, 0.0, 4.0 * 3600.0));
  spec.add_scenario("dim indoor, constant 200 lux, 4 h",
                    env::constant_light(200.0, 0.0, 4.0 * 3600.0));
  spec.add_scenario("24 h office desk (Fig. 2 conditions)", env::office_desk_mixed());
  spec.add_scenario("24 h semi-mobile day (indoor + outdoor lunch)",
                    env::semi_mobile_day());
  spec.add_scenario("24 h outdoors", env::outdoor_day());

  spec.base.storage.initial_voltage = 3.0;
  spec.base.load.report_period = 300.0;
  return spec;
}

void print_scenario_table(const runtime::SweepSpec& spec,
                          const runtime::SweepResult& result, std::size_t scenario_i) {
  std::printf("\n--- scenario: %s ---\n", spec.scenarios[scenario_i].name.c_str());
  ConsoleTable table({"technique", "overhead", "harvest [J]", "net [J]", "track eff",
                      "verdict"});
  double proposed_net = 0.0;
  for (std::size_t ctl_i = 0; ctl_i < spec.controllers.size(); ++ctl_i) {
    const runtime::SweepRecord& rec = result.at(0, ctl_i, scenario_i);
    const node::NodeReport& r = rec.report;
    const double net = r.net_energy();
    if (ctl_i == 0) proposed_net = net;
    std::string verdict;
    if (rec.failed) {
      verdict = "FAILED: " + rec.error;
    } else if (r.coldstart_time < 0.0) {
      verdict = "cannot run (supply floor)";
    } else if (net <= 0.0) {
      verdict = "net loss";
    } else if (net >= proposed_net * 0.98) {
      verdict = "competitive";
    } else {
      verdict = "behind proposed";
    }
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%7.1f uW",
                  spec.controllers[ctl_i].prototype->overhead_power() * 1e6);
    table.add_row({spec.controllers[ctl_i].name, overhead,
                   ConsoleTable::num(r.harvested_energy, 3), ConsoleTable::num(net, 3),
                   ConsoleTable::num(r.tracking_efficiency() * 100.0, 1) + " %", verdict});
  }
  table.print(std::cout);
}

void reproduce_comparison() {
  bench::print_header(
      "Sections I / IV-B -- comparison against state-of-the-art systems",
      "outdoor-grade trackers are too power-hungry indoors; the proposed 8 uA S&H "
      "makes MPPT profitable from 200 lux up");

  const runtime::SweepSpec spec = make_comparison_spec();
  runtime::SweepOptions options;
  options.jobs = g_jobs;
  const runtime::SweepResult result = runtime::run_sweep(spec, options);

  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    print_scenario_table(spec, result, s);
  }

  std::printf("\nsweep: %zu jobs on %d worker(s) in %.2f s (%zu failed)\n",
              result.records().size(), result.jobs_used(), result.wall_seconds(),
              result.failed_count());

  bench::print_note(
      "Shape reproduced: indoors only the proposed system (and the near-passive "
      "fixed-voltage/no-MPPT baselines) net positive energy -- the uC/photodetector/"
      "100 ms techniques cannot even power themselves; outdoors everything works and "
      "the proposed system stays competitive with the 1 mW hill climber while "
      "spending 25 uW.");
}

void bm_one_day_simulation(benchmark::State& state) {
  const env::LightTrace trace = env::office_desk_mixed();
  node::NodeConfig cfg;
  cfg.use_cell(pv::sanyo_am1815());
  core::register_paper_controller();
  cfg.use_controller(std::string("focv"));
  cfg.storage.initial_voltage = 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(node::simulate_node(trace, cfg));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(bm_one_day_simulation)->Unit(benchmark::kMillisecond);

void bm_comparison_sweep(benchmark::State& state) {
  const runtime::SweepSpec spec = make_comparison_spec();
  runtime::SweepOptions options;
  options.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::run_sweep(spec, options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.job_count()));
}
BENCHMARK(bm_comparison_sweep)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  g_jobs = focv::bench::parse_jobs_flag(argc, argv);
  // Strip the telemetry flags before google-benchmark parses the rest.
  focv::obs::CliTelemetry telemetry;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (telemetry.consume(argc, argv, i)) continue;
    argv[kept++] = argv[i];
  }
  argc = kept;
  telemetry.begin();
  reproduce_comparison();
  if (telemetry.any()) {
    telemetry.finish();
    obs::set_enabled(false);  // keep the timed benchmark loops clean
    obs::reset_all();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
